//! Minimal dependency-free argument parsing for `woha-cli`.

use std::fmt;
use woha_core::{CapMode, PriorityPolicy, QueueStrategy};
use woha_model::{config::parse_duration, SimTime};
use woha_sim::{ClusterConfig, FaultConfig, MasterFaultConfig};

/// A parsed command line.
// One Command exists per process, so the size skew between `Simulate`
// (which carries the whole cluster/fault/observability config) and the
// small variants costs nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `woha-cli validate <workflow.xml>...`
    Validate {
        /// Workflow files.
        workflows: Vec<WorkflowArg>,
    },
    /// `woha-cli plan <workflow.xml> [--slots N] [--policy hlf|lpf|mpf] [--cap min|full|N]`
    Plan {
        /// The workflow file.
        workflow: WorkflowArg,
        /// Cluster capacity in slots.
        slots: u32,
        /// Job prioritization policy.
        policy: PriorityPolicy,
        /// Cap mode.
        cap: CapMode,
    },
    /// `woha-cli simulate <workflow.xml[@release]>... [--cluster NxMxR]
    /// [--scheduler S] [--index dsl|btree|pheap|naive] [--no-batch]
    /// [--jitter F] [--seed N] [--jobs N] [--failures P] [--mtbf D]
    /// [--mttr D] [--detect-missed N] [--blacklist-after N]
    /// [--predict-failures] [--pad-plans] [--risk-placement]
    /// [--adaptive-blacklist T]
    /// [--master-mtbf D] [--master-mttr D] [--checkpoint-interval D]
    /// [--scripted-master-crash T]... [--no-wal] [--arrivals FILE]
    /// [--admission off|necessary] [--trace-out FILE]
    /// [--trace-format chrome|jsonl] [--metrics-out FILE]
    /// [--obs-sample-interval D] [--json]`
    ///
    /// Node-fault and master-fault flags attach a [`FaultConfig`] to the
    /// cluster; the observability flags enable structured tracing and
    /// metrics export (see `woha_sim::obs`).
    Simulate {
        /// Workflow files with optional release offsets.
        workflows: Vec<WorkflowArg>,
        /// Stream the workload from a JSONL arrival file instead of
        /// workflow XML files.
        arrivals: Option<String>,
        /// Cluster shape.
        cluster: ClusterConfig,
        /// Scheduler name (`woha-lpf`, `woha-hlf`, `woha-mpf`, `fifo`,
        /// `fair`, `edf`), or `all` to compare every scheduler.
        scheduler: String,
        /// Priority-index backend for the WOHA schedulers.
        index: QueueStrategy,
        /// Batched heartbeat processing (on unless `--no-batch`).
        batch: bool,
        /// Task duration jitter.
        jitter: f64,
        /// Jitter/failure seed.
        seed: u64,
        /// Worker threads for the `--scheduler all` comparison sweep
        /// (0 = available parallelism; ignored for a single scheduler,
        /// and results are identical for any value).
        jobs: usize,
        /// Task failure probability.
        failures: f64,
        /// Track per-node failure propensity (the prediction layer).
        predict_failures: bool,
        /// Proactively pad WOHA plan budgets by the expected rework
        /// fraction derived from the cluster MTBF.
        pad_plans: bool,
        /// Steer deadline-critical work away from failure-prone nodes and
        /// preemptively speculate attempts already running on them.
        risk_placement: bool,
        /// Propensity threshold for adaptive blacklisting, replacing the
        /// fixed `--blacklist-after` crash count.
        adaptive_blacklist: Option<f64>,
        /// Screen each arriving workflow through the demand-bound
        /// admission test before it enters the cluster.
        admission: bool,
        /// Write the scheduling decision loop trace to this path.
        trace_out: Option<String>,
        /// Trace file format for `--trace-out`.
        trace_format: TraceFormat,
        /// Write the run's metrics in Prometheus text format to this path.
        metrics_out: Option<String>,
        /// Gauge/timeline sampling interval for the observability layer
        /// (defaults to the simulator's legacy sampling interval).
        obs_sample_interval: Option<woha_model::SimDuration>,
        /// Emit machine-readable JSON instead of a table.
        json: bool,
    },
    /// `woha-cli serve --follow <path> [--wall-clock] [--tenants FILE] ...`
    ///
    /// Run the scheduler as a long-lived service over a growing JSONL
    /// arrival feed (a file being appended to, or a directory of rotated
    /// files). See [`woha_serve`] for the service architecture.
    Serve {
        /// JSONL file or directory of `*.jsonl` files to tail.
        follow: String,
        /// Cluster shape.
        cluster: ClusterConfig,
        /// Scheduler name (single scheduler only; no `all`).
        scheduler: String,
        /// Priority-index backend for the WOHA schedulers.
        index: QueueStrategy,
        /// Tenant admission config file (TOML subset; see
        /// `woha_serve::TenantsConfig`).
        tenants: Option<String>,
        /// Demand-bound admission when no tenant file is given
        /// (default on: a live service should protect itself).
        admission: bool,
        /// Pace execution against real time instead of replaying.
        wall_clock: bool,
        /// Sim-time-per-real-time factor for `--wall-clock`.
        speedup: f64,
        /// Wall-clock poll slice (arrival/shutdown latency bound).
        poll_interval: woha_model::SimDuration,
        /// Arrival buffer capacity.
        buffer: usize,
        /// Shedding high watermark (defaults to the buffer capacity).
        high: Option<usize>,
        /// Shedding low watermark (defaults to half the high mark).
        low: Option<usize>,
        /// Stop when this file appears (the no-signals `kill -TERM`).
        stop_file: Option<String>,
        /// Stop after this long without a new arrival.
        idle_timeout: Option<woha_model::SimDuration>,
        /// Stop once this many workflows have arrived.
        max_arrivals: Option<u64>,
        /// Write end-of-run metrics in Prometheus text format here.
        metrics_out: Option<String>,
        /// Stream the scheduling decision trace (JSONL) to this path.
        trace_out: Option<String>,
        /// Emit machine-readable JSON instead of a table.
        json: bool,
    },
    /// `woha-cli help`
    Help,
}

/// Trace export format selected by `--trace-format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceFormat {
    /// Chrome trace-event JSON (buffered; open in Perfetto).
    #[default]
    Chrome,
    /// JSON Lines, one record per line, streamed to the file as the run
    /// progresses.
    Jsonl,
}

/// A workflow file plus its release offset (`file.xml@5m`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkflowArg {
    /// Path to the XML file.
    pub path: String,
    /// Submission time.
    pub release: SimTime,
}

/// A fatal argument error, with a message for the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

fn err(msg: impl Into<String>) -> ArgError {
    ArgError(msg.into())
}

/// Usage text printed by `help` and on argument errors.
pub const USAGE: &str = "\
woha-cli — deadline-aware Map-Reduce workflow scheduling (WOHA, ICDCS 2014)

USAGE:
  woha-cli validate <workflow.xml>...
      Parse and validate workflow configuration files; print the derived
      job DAG and summary statistics.

  woha-cli plan <workflow.xml> [--slots N] [--policy hlf|lpf|mpf]
                [--cap min|full|<N>]
      Generate the client-side scheduling plan (Algorithm 1 + resource-cap
      binary search) and print its progress requirement list.

  woha-cli simulate <workflow.xml[@release]>... [OPTIONS]
      Run the workflows on a simulated Hadoop cluster.
      Releases are durations like 5m or 30s (default 0).

      --cluster NxMxR     N slaves with M map + R reduce slots (default 8x2x1)
      --scheduler NAME    woha-lpf | woha-hlf | woha-mpf | fifo | fair | edf
                          | all  (default woha-lpf)
      --index BACKEND     priority-index backend for the WOHA schedulers:
                          dsl | btree | pheap | naive  (default dsl)
      --no-batch          disable batched heartbeat processing (per-slot
                          scheduler probes, the pre-batching behaviour)
      --jitter F          task duration jitter fraction (default 0)
      --seed N            jitter/failure seed (default 0)
      --jobs N            worker threads for the --scheduler all sweep
                          (default 0 = available parallelism; results are
                          identical for any N)
      --failures P        task failure probability (default 0)
      --mtbf D            mean time between node crashes, e.g. 30m
                          (default: no node faults)
      --mttr D            mean node repair time (default 5m; needs --mtbf)
      --detect-missed N   missed heartbeats before a node is declared lost
                          (default 2; needs --mtbf)
      --blacklist-after N crashes before a node is blacklisted
                          (default 0 = never; needs --mtbf)
      --predict-failures  track a decaying per-node failure-propensity
                          score from the injected fault history and report
                          it (needs --mtbf)
      --pad-plans         inflate WOHA plan budgets by the expected rework
                          fraction (cluster MTBF x remaining work) so
                          plans front-load slack for failures
                          (needs --mtbf)
      --risk-placement    decline risky nodes for deadline-critical tasks
                          and preemptively speculate attempts running on
                          them (needs --predict-failures)
      --adaptive-blacklist T
                          blacklist a node once its propensity score
                          reaches T, replacing the fixed
                          --blacklist-after count (needs
                          --predict-failures)
      --master-mtbf D     mean time between master (JobTracker) crashes
                          (default: no master faults)
      --scripted-master-crash T
                          crash the master at time T, e.g. 90s; repeatable;
                          overrides --master-mtbf crash timing
      --master-mttr D     mean master restart time (default 1m; needs
                          --master-mtbf or --scripted-master-crash)
      --checkpoint-interval D
                          master checkpoint period (default 5m; needs a
                          master-fault flag)
      --no-wal            disable the master write-ahead log: recover from
                          the last checkpoint alone (needs a master-fault
                          flag)
      --arrivals FILE     stream the workload from a JSONL arrival file
                          (one workflow per line, as written by
                          woha_trace::to_jsonl) instead of workflow XML
                          files; lines are pulled lazily as simulated
                          time reaches their submission times
      --admission MODE    off | necessary  (default off): screen each
                          arriving workflow through the demand-bound
                          admission test; rejected workflows never run
                          and are counted per reason in the report
      --trace-out FILE    record the scheduling decision loop and write it
                          to this file (format set by --trace-format)
      --trace-format F    chrome | jsonl  (default chrome): chrome buffers
                          the run and writes Chrome trace-event JSON (open
                          at https://ui.perfetto.dev); jsonl streams one
                          record per line as the run progresses
      --metrics-out FILE  record scheduler metrics (counters, histograms,
                          sampled gauges) and write them in the Prometheus
                          text exposition format
      --obs-sample-interval D
                          gauge sampling interval for --metrics-out,
                          e.g. 5s (default 10s)
      --json              machine-readable output

  woha-cli serve --follow <path> [OPTIONS]
      Run the scheduler as a long-lived service: tail a growing JSONL
      arrival feed, admit workflows per tenant, and execute them on the
      simulated cluster in real time (--wall-clock) or as a
      deterministic replay (default).

      --follow PATH       JSONL file being appended to, or a directory
                          whose *.jsonl files are consumed in name order
                          (log-rotation convention)
      --cluster NxMxR     as for simulate (default 8x2x1)
      --scheduler NAME    as for simulate, single scheduler only
      --index BACKEND     as for simulate
      --tenants FILE      per-tenant admission config (policy, in-flight
                          caps, slot budgets, weights); workflow names
                          are namespaced as tenant/name
      --admission MODE    off | necessary  (default necessary): plain
                          demand-bound admission when no --tenants file
                          is given
      --wall-clock        pace events against real time; without it the
                          feed is replayed deterministically and the run
                          ends when the feed stops growing
      --speedup F         sim seconds per real second with --wall-clock
                          (default 1)
      --poll-interval D   wall-clock poll slice, e.g. 20ms (default);
                          bounds arrival and shutdown latency
      --buffer N          arrival buffer capacity (default 1024)
      --high N            shed arrivals at this queue depth
                          (default: buffer capacity)
      --low N             stop shedding once drained to this depth
                          (default: half of --high)
      --stop-file PATH    shut down cleanly when this file appears
                          (touch it instead of sending a signal); the
                          feed is drained before exit
      --idle-timeout D    shut down after this long without an arrival
      --max-arrivals N    shut down after N workflows have arrived
      --metrics-out FILE  write end-of-run metrics (including service
                          queue depth, lag, and shed counters) in the
                          Prometheus text format
      --trace-out FILE    stream the decision trace as JSONL
      --json              machine-readable output

  woha-cli help
      Print this text.
";

fn parse_workflow_arg(raw: &str) -> Result<WorkflowArg, ArgError> {
    match raw.rsplit_once('@') {
        Some((path, release)) if !path.is_empty() => Ok(WorkflowArg {
            path: path.to_string(),
            release: SimTime::ZERO
                + parse_duration(release)
                    .map_err(|e| err(format!("bad release in {raw:?}: {e}")))?,
        }),
        _ => Ok(WorkflowArg {
            path: raw.to_string(),
            release: SimTime::ZERO,
        }),
    }
}

fn parse_cluster(raw: &str) -> Result<ClusterConfig, ArgError> {
    let parts: Vec<&str> = raw.split('x').collect();
    if parts.len() != 3 {
        return Err(err(format!(
            "bad --cluster {raw:?}: expected NxMxR like 32x2x1"
        )));
    }
    let nums: Vec<u32> = parts
        .iter()
        .map(|p| p.parse().map_err(|_| err(format!("bad --cluster {raw:?}"))))
        .collect::<Result<_, _>>()?;
    if nums[0] == 0 || nums[1] + nums[2] == 0 {
        return Err(err(format!("bad --cluster {raw:?}: empty cluster")));
    }
    Ok(ClusterConfig::uniform(nums[0], nums[1], nums[2]))
}

fn parse_policy(raw: &str) -> Result<PriorityPolicy, ArgError> {
    match raw.to_ascii_lowercase().as_str() {
        "hlf" => Ok(PriorityPolicy::Hlf),
        "lpf" => Ok(PriorityPolicy::Lpf),
        "mpf" => Ok(PriorityPolicy::Mpf),
        _ => Err(err(format!("unknown --policy {raw:?} (hlf|lpf|mpf)"))),
    }
}

fn parse_cap(raw: &str) -> Result<CapMode, ArgError> {
    match raw.to_ascii_lowercase().as_str() {
        "min" => Ok(CapMode::MinFeasible),
        "full" => Ok(CapMode::Uncapped),
        n => n
            .parse::<u32>()
            .map(CapMode::Fixed)
            .map_err(|_| err(format!("unknown --cap {raw:?} (min|full|<N>)"))),
    }
}

const SCHEDULERS: [&str; 7] = [
    "woha-lpf", "woha-hlf", "woha-mpf", "fifo", "fair", "edf", "all",
];

/// Parses a full command line (excluding the program name).
///
/// # Errors
///
/// Returns [`ArgError`] with a user-facing message for any malformed or
/// unknown argument.
pub fn parse(args: &[String]) -> Result<Command, ArgError> {
    let Some((sub, rest)) = args.split_first() else {
        return Ok(Command::Help);
    };
    match sub.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "validate" => {
            let workflows: Vec<WorkflowArg> = rest
                .iter()
                .map(|r| parse_workflow_arg(r))
                .collect::<Result<_, _>>()?;
            if workflows.is_empty() {
                return Err(err("validate needs at least one workflow file"));
            }
            Ok(Command::Validate { workflows })
        }
        "plan" => {
            let mut workflow = None;
            let mut slots = 96u32;
            let mut policy = PriorityPolicy::Lpf;
            let mut cap = CapMode::MinFeasible;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--slots" => {
                        slots = next_value(&mut it, "--slots")?
                            .parse()
                            .map_err(|_| err("--slots needs a positive integer"))?;
                    }
                    "--policy" => policy = parse_policy(&next_value(&mut it, "--policy")?)?,
                    "--cap" => cap = parse_cap(&next_value(&mut it, "--cap")?)?,
                    other if !other.starts_with('-') && workflow.is_none() => {
                        workflow = Some(parse_workflow_arg(other)?);
                    }
                    other => return Err(err(format!("unexpected argument {other:?}"))),
                }
            }
            if slots == 0 {
                return Err(err("--slots must be positive"));
            }
            let workflow = workflow.ok_or_else(|| err("plan needs a workflow file"))?;
            Ok(Command::Plan {
                workflow,
                slots,
                policy,
                cap,
            })
        }
        "simulate" => {
            let mut workflows = Vec::new();
            let mut cluster = ClusterConfig::uniform(8, 2, 1);
            let mut scheduler = "woha-lpf".to_string();
            let mut index = QueueStrategy::Dsl;
            let mut batch = true;
            let mut jitter = 0.0f64;
            let mut seed = 0u64;
            let mut failures = 0.0f64;
            let mut json = false;
            let mut jobs = 0usize;
            let mut mtbf = None;
            let mut mttr = None;
            let mut detect_missed = None;
            let mut blacklist_after = None;
            let mut predict_failures = false;
            let mut pad_plans = false;
            let mut risk_placement = false;
            let mut adaptive_blacklist = None;
            let mut master_mtbf = None;
            let mut master_mttr = None;
            let mut checkpoint_interval = None;
            let mut scripted_crashes = Vec::new();
            let mut no_wal = false;
            let mut arrivals = None;
            let mut admission = false;
            let mut trace_out = None;
            let mut trace_format = None;
            let mut metrics_out = None;
            let mut obs_sample_interval = None;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--cluster" => cluster = parse_cluster(&next_value(&mut it, "--cluster")?)?,
                    "--scheduler" => {
                        scheduler = next_value(&mut it, "--scheduler")?.to_ascii_lowercase();
                        if !SCHEDULERS.contains(&scheduler.as_str()) {
                            return Err(err(format!(
                                "unknown --scheduler {scheduler:?} (one of {SCHEDULERS:?})"
                            )));
                        }
                    }
                    "--index" => {
                        let raw = next_value(&mut it, "--index")?.to_ascii_lowercase();
                        index = QueueStrategy::from_flag(&raw).ok_or_else(|| {
                            err(format!("unknown --index {raw:?} (dsl|btree|pheap|naive)"))
                        })?;
                    }
                    "--no-batch" => batch = false,
                    "--jitter" => {
                        jitter = next_value(&mut it, "--jitter")?
                            .parse()
                            .map_err(|_| err("--jitter needs a number"))?;
                        if !(0.0..1.0).contains(&jitter) {
                            return Err(err("--jitter must be in [0, 1)"));
                        }
                    }
                    "--seed" => {
                        seed = next_value(&mut it, "--seed")?
                            .parse()
                            .map_err(|_| err("--seed needs an integer"))?;
                    }
                    "--jobs" => {
                        jobs = next_value(&mut it, "--jobs")?
                            .parse()
                            .map_err(|_| err("--jobs needs an integer"))?;
                    }
                    "--failures" => {
                        failures = next_value(&mut it, "--failures")?
                            .parse()
                            .map_err(|_| err("--failures needs a probability"))?;
                        if !(0.0..1.0).contains(&failures) {
                            return Err(err("--failures must be in [0, 1)"));
                        }
                    }
                    "--mtbf" => mtbf = Some(parse_positive_duration(&mut it, "--mtbf")?),
                    "--mttr" => mttr = Some(parse_positive_duration(&mut it, "--mttr")?),
                    "--detect-missed" => {
                        let n: u32 = next_value(&mut it, "--detect-missed")?
                            .parse()
                            .map_err(|_| err("--detect-missed needs a positive integer"))?;
                        if n == 0 {
                            return Err(err("--detect-missed must be positive"));
                        }
                        detect_missed = Some(n);
                    }
                    "--blacklist-after" => {
                        blacklist_after = Some(
                            next_value(&mut it, "--blacklist-after")?
                                .parse::<u32>()
                                .map_err(|_| err("--blacklist-after needs an integer"))?,
                        );
                    }
                    "--predict-failures" => predict_failures = true,
                    "--pad-plans" => pad_plans = true,
                    "--risk-placement" => risk_placement = true,
                    "--adaptive-blacklist" => {
                        let raw = next_value(&mut it, "--adaptive-blacklist")?;
                        let t: f64 = raw
                            .parse()
                            .map_err(|_| err("--adaptive-blacklist needs a number"))?;
                        if !(t.is_finite() && t > 0.0) {
                            return Err(err("--adaptive-blacklist must be positive"));
                        }
                        adaptive_blacklist = Some(t);
                    }
                    "--master-mtbf" => {
                        master_mtbf = Some(parse_positive_duration(&mut it, "--master-mtbf")?);
                    }
                    "--master-mttr" => {
                        master_mttr = Some(parse_positive_duration(&mut it, "--master-mttr")?);
                    }
                    "--checkpoint-interval" => {
                        checkpoint_interval =
                            Some(parse_positive_duration(&mut it, "--checkpoint-interval")?);
                    }
                    "--scripted-master-crash" => {
                        let raw = next_value(&mut it, "--scripted-master-crash")?;
                        let d = parse_duration(&raw).map_err(|e| {
                            err(format!("bad --scripted-master-crash {raw:?}: {e}"))
                        })?;
                        scripted_crashes.push(SimTime::ZERO + d);
                    }
                    "--no-wal" => no_wal = true,
                    "--arrivals" => arrivals = Some(next_value(&mut it, "--arrivals")?),
                    "--admission" => {
                        let raw = next_value(&mut it, "--admission")?.to_ascii_lowercase();
                        admission = match raw.as_str() {
                            "off" => false,
                            "necessary" => true,
                            _ => {
                                return Err(err(format!(
                                    "unknown --admission {raw:?} (off|necessary)"
                                )))
                            }
                        };
                    }
                    "--trace-out" => trace_out = Some(next_value(&mut it, "--trace-out")?),
                    "--trace-format" => {
                        let raw = next_value(&mut it, "--trace-format")?.to_ascii_lowercase();
                        trace_format = Some(match raw.as_str() {
                            "chrome" => TraceFormat::Chrome,
                            "jsonl" => TraceFormat::Jsonl,
                            _ => {
                                return Err(err(format!(
                                    "unknown --trace-format {raw:?} (chrome|jsonl)"
                                )))
                            }
                        });
                    }
                    "--metrics-out" => metrics_out = Some(next_value(&mut it, "--metrics-out")?),
                    "--obs-sample-interval" => {
                        obs_sample_interval =
                            Some(parse_positive_duration(&mut it, "--obs-sample-interval")?);
                    }
                    "--json" => json = true,
                    other if !other.starts_with('-') => {
                        workflows.push(parse_workflow_arg(other)?);
                    }
                    other => return Err(err(format!("unexpected argument {other:?}"))),
                }
            }
            match &arrivals {
                Some(_) if !workflows.is_empty() => {
                    return Err(err(
                        "--arrivals replaces positional workflow files; pass one or the other",
                    ));
                }
                None if workflows.is_empty() => {
                    return Err(err(
                        "simulate needs at least one workflow file (or --arrivals)",
                    ));
                }
                _ => {}
            }
            let mut faults = match mtbf {
                Some(mtbf) => {
                    let mut faults =
                        FaultConfig::with_mtbf(mtbf, mttr.unwrap_or(FaultConfig::default().mttr));
                    if let Some(n) = detect_missed {
                        faults.detect_missed_heartbeats = n;
                    }
                    if let Some(n) = blacklist_after {
                        faults.blacklist_after = n;
                    }
                    faults
                }
                None if mttr.is_some() || detect_missed.is_some() || blacklist_after.is_some() => {
                    return Err(err("--mttr/--detect-missed/--blacklist-after need --mtbf"));
                }
                None if predict_failures || pad_plans => {
                    return Err(err("--predict-failures/--pad-plans need --mtbf"));
                }
                None => FaultConfig::default(),
            };
            if (risk_placement || adaptive_blacklist.is_some()) && !predict_failures {
                return Err(err(
                    "--risk-placement/--adaptive-blacklist need --predict-failures",
                ));
            }
            if adaptive_blacklist.is_some() && blacklist_after.is_some() {
                return Err(err(
                    "--adaptive-blacklist replaces --blacklist-after; pass one or the other",
                ));
            }
            if master_mtbf.is_some() || !scripted_crashes.is_empty() {
                scripted_crashes.sort();
                let defaults = MasterFaultConfig::default();
                faults.master = MasterFaultConfig {
                    mtbf: master_mtbf,
                    mttr: master_mttr.unwrap_or(defaults.mttr),
                    checkpoint_interval: checkpoint_interval
                        .unwrap_or(defaults.checkpoint_interval),
                    wal: !no_wal,
                    scripted: scripted_crashes,
                };
            } else if master_mttr.is_some() || checkpoint_interval.is_some() || no_wal {
                return Err(err(
                    "--master-mttr/--checkpoint-interval/--no-wal need --master-mtbf \
                     or --scripted-master-crash",
                ));
            }
            if faults.enabled() || faults.master.enabled() {
                cluster = cluster.with_faults(faults);
            }
            if obs_sample_interval.is_some() && metrics_out.is_none() {
                return Err(err("--obs-sample-interval needs --metrics-out"));
            }
            if trace_format.is_some() && trace_out.is_none() {
                return Err(err("--trace-format needs --trace-out"));
            }
            Ok(Command::Simulate {
                workflows,
                arrivals,
                cluster,
                scheduler,
                index,
                batch,
                jitter,
                seed,
                jobs,
                failures,
                predict_failures,
                pad_plans,
                risk_placement,
                adaptive_blacklist,
                admission,
                trace_out,
                trace_format: trace_format.unwrap_or_default(),
                metrics_out,
                obs_sample_interval,
                json,
            })
        }
        "serve" => {
            let mut follow = None;
            let mut cluster = ClusterConfig::uniform(8, 2, 1);
            let mut scheduler = "woha-lpf".to_string();
            let mut index = QueueStrategy::Dsl;
            let mut tenants = None;
            let mut admission = true;
            let mut wall_clock = false;
            let mut speedup = 1.0f64;
            let mut poll_interval = woha_model::SimDuration::from_millis(20);
            let mut buffer = 1024usize;
            let mut high = None;
            let mut low = None;
            let mut stop_file = None;
            let mut idle_timeout = None;
            let mut max_arrivals = None;
            let mut metrics_out = None;
            let mut trace_out = None;
            let mut json = false;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--follow" => follow = Some(next_value(&mut it, "--follow")?),
                    "--cluster" => cluster = parse_cluster(&next_value(&mut it, "--cluster")?)?,
                    "--scheduler" => {
                        scheduler = next_value(&mut it, "--scheduler")?.to_ascii_lowercase();
                        if scheduler == "all" || !SCHEDULERS.contains(&scheduler.as_str()) {
                            return Err(err(format!(
                                "unknown --scheduler {scheduler:?} (a single scheduler from \
                                 {SCHEDULERS:?}, not \"all\")"
                            )));
                        }
                    }
                    "--index" => {
                        let raw = next_value(&mut it, "--index")?.to_ascii_lowercase();
                        index = QueueStrategy::from_flag(&raw).ok_or_else(|| {
                            err(format!("unknown --index {raw:?} (dsl|btree|pheap|naive)"))
                        })?;
                    }
                    "--tenants" => tenants = Some(next_value(&mut it, "--tenants")?),
                    "--admission" => {
                        let raw = next_value(&mut it, "--admission")?.to_ascii_lowercase();
                        admission = match raw.as_str() {
                            "off" => false,
                            "necessary" => true,
                            _ => {
                                return Err(err(format!(
                                    "unknown --admission {raw:?} (off|necessary)"
                                )))
                            }
                        };
                    }
                    "--wall-clock" => wall_clock = true,
                    "--speedup" => {
                        speedup = next_value(&mut it, "--speedup")?
                            .parse()
                            .map_err(|_| err("--speedup needs a number"))?;
                        if !(speedup.is_finite() && speedup > 0.0) {
                            return Err(err("--speedup must be positive"));
                        }
                    }
                    "--poll-interval" => {
                        poll_interval = parse_positive_duration(&mut it, "--poll-interval")?;
                    }
                    "--buffer" => {
                        buffer = next_value(&mut it, "--buffer")?
                            .parse()
                            .map_err(|_| err("--buffer needs a positive integer"))?;
                        if buffer == 0 {
                            return Err(err("--buffer must be positive"));
                        }
                    }
                    "--high" => {
                        high = Some(
                            next_value(&mut it, "--high")?
                                .parse()
                                .map_err(|_| err("--high needs an integer"))?,
                        );
                    }
                    "--low" => {
                        low = Some(
                            next_value(&mut it, "--low")?
                                .parse()
                                .map_err(|_| err("--low needs an integer"))?,
                        );
                    }
                    "--stop-file" => stop_file = Some(next_value(&mut it, "--stop-file")?),
                    "--idle-timeout" => {
                        idle_timeout = Some(parse_positive_duration(&mut it, "--idle-timeout")?);
                    }
                    "--max-arrivals" => {
                        let n: u64 = next_value(&mut it, "--max-arrivals")?
                            .parse()
                            .map_err(|_| err("--max-arrivals needs a positive integer"))?;
                        if n == 0 {
                            return Err(err("--max-arrivals must be positive"));
                        }
                        max_arrivals = Some(n);
                    }
                    "--metrics-out" => metrics_out = Some(next_value(&mut it, "--metrics-out")?),
                    "--trace-out" => trace_out = Some(next_value(&mut it, "--trace-out")?),
                    "--json" => json = true,
                    other => return Err(err(format!("unexpected argument {other:?}"))),
                }
            }
            let follow = follow.ok_or_else(|| err("serve needs --follow <path>"))?;
            if let (Some(high), Some(low)) = (high, low) {
                if low >= high {
                    return Err(err("--low must be below --high"));
                }
            }
            if !wall_clock && (speedup != 1.0 || poll_interval.as_millis() != 20) {
                return Err(err("--speedup/--poll-interval need --wall-clock"));
            }
            Ok(Command::Serve {
                follow,
                cluster,
                scheduler,
                index,
                tenants,
                admission,
                wall_clock,
                speedup,
                poll_interval,
                buffer,
                high,
                low,
                stop_file,
                idle_timeout,
                max_arrivals,
                metrics_out,
                trace_out,
                json,
            })
        }
        other => Err(err(format!(
            "unknown command {other:?}; try `woha-cli help`"
        ))),
    }
}

fn next_value<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> Result<String, ArgError> {
    it.next()
        .cloned()
        .ok_or_else(|| err(format!("{flag} needs a value")))
}

fn parse_positive_duration(
    it: &mut std::slice::Iter<'_, String>,
    flag: &str,
) -> Result<woha_model::SimDuration, ArgError> {
    let raw = next_value(it, flag)?;
    let d = parse_duration(&raw).map_err(|e| err(format!("bad {flag} {raw:?}: {e}")))?;
    if d.is_zero() {
        return Err(err(format!("{flag} must be positive")));
    }
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use woha_model::SlotKind;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&args(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse(&args(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn unknown_command_errors() {
        assert!(parse(&args(&["frobnicate"])).is_err());
    }

    #[test]
    fn validate_needs_files() {
        assert!(parse(&args(&["validate"])).is_err());
        let cmd = parse(&args(&["validate", "a.xml", "b.xml"])).unwrap();
        match cmd {
            Command::Validate { workflows } => {
                assert_eq!(workflows.len(), 2);
                assert_eq!(workflows[0].path, "a.xml");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn plan_defaults_and_flags() {
        let cmd = parse(&args(&[
            "plan", "w.xml", "--slots", "48", "--policy", "hlf", "--cap", "12",
        ]))
        .unwrap();
        match cmd {
            Command::Plan {
                workflow,
                slots,
                policy,
                cap,
            } => {
                assert_eq!(workflow.path, "w.xml");
                assert_eq!(slots, 48);
                assert_eq!(policy, PriorityPolicy::Hlf);
                assert_eq!(cap, CapMode::Fixed(12));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&args(&["plan"])).is_err());
        assert!(parse(&args(&["plan", "w.xml", "--cap", "soon"])).is_err());
        assert!(parse(&args(&["plan", "w.xml", "--slots", "0"])).is_err());
    }

    #[test]
    fn simulate_full_line() {
        let cmd = parse(&args(&[
            "simulate",
            "a.xml",
            "b.xml@5m",
            "--cluster",
            "32x2x1",
            "--scheduler",
            "edf",
            "--jitter",
            "0.1",
            "--seed",
            "7",
            "--jobs",
            "3",
            "--failures",
            "0.05",
            "--index",
            "pheap",
            "--no-batch",
            "--json",
        ]))
        .unwrap();
        match cmd {
            Command::Simulate {
                workflows,
                arrivals,
                cluster,
                scheduler,
                index,
                batch,
                jitter,
                seed,
                jobs,
                failures,
                predict_failures,
                pad_plans,
                risk_placement,
                adaptive_blacklist,
                admission,
                trace_out,
                trace_format,
                metrics_out,
                obs_sample_interval,
                json,
            } => {
                assert_eq!(workflows.len(), 2);
                assert!(!predict_failures);
                assert!(!pad_plans);
                assert!(!risk_placement);
                assert_eq!(adaptive_blacklist, None);
                assert_eq!(workflows[1].release, SimTime::from_mins(5));
                assert_eq!(arrivals, None);
                assert_eq!(cluster.total_slots(SlotKind::Map), 64);
                assert_eq!(scheduler, "edf");
                assert_eq!(index, QueueStrategy::Pairing);
                assert!(!batch);
                assert_eq!(jitter, 0.1);
                assert_eq!(seed, 7);
                assert_eq!(jobs, 3);
                assert_eq!(failures, 0.05);
                assert!(!admission);
                assert_eq!(trace_out, None);
                assert_eq!(trace_format, TraceFormat::Chrome);
                assert_eq!(metrics_out, None);
                assert_eq!(obs_sample_interval, None);
                assert!(json);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn simulate_streaming_flags() {
        let cmd = parse(&args(&[
            "simulate",
            "--arrivals",
            "arrivals.jsonl",
            "--admission",
            "necessary",
            "--trace-out",
            "trace.jsonl",
            "--trace-format",
            "jsonl",
        ]))
        .unwrap();
        match cmd {
            Command::Simulate {
                workflows,
                arrivals,
                admission,
                trace_format,
                ..
            } => {
                assert!(workflows.is_empty());
                assert_eq!(arrivals.as_deref(), Some("arrivals.jsonl"));
                assert!(admission);
                assert_eq!(trace_format, TraceFormat::Jsonl);
            }
            other => panic!("{other:?}"),
        }
        // `--admission off` is the explicit spelling of the default.
        let cmd = parse(&args(&["simulate", "a.xml", "--admission", "off"])).unwrap();
        match cmd {
            Command::Simulate { admission, .. } => assert!(!admission),
            other => panic!("{other:?}"),
        }
        assert!(parse(&args(&["simulate", "a.xml", "--admission", "maybe"])).is_err());
        // An arrival file replaces positional workflows entirely.
        assert!(parse(&args(&["simulate", "a.xml", "--arrivals", "w.jsonl"])).is_err());
        // The trace format only matters with a trace file.
        assert!(parse(&args(&["simulate", "a.xml", "--trace-format", "jsonl"])).is_err());
        assert!(parse(&args(&[
            "simulate",
            "a.xml",
            "--trace-out",
            "t",
            "--trace-format",
            "xml"
        ]))
        .is_err());
    }

    #[test]
    fn simulate_observability_flags() {
        use woha_model::SimDuration;
        let cmd = parse(&args(&[
            "simulate",
            "a.xml",
            "--trace-out",
            "trace.json",
            "--metrics-out",
            "metrics.prom",
            "--obs-sample-interval",
            "5s",
        ]))
        .unwrap();
        match cmd {
            Command::Simulate {
                trace_out,
                metrics_out,
                obs_sample_interval,
                ..
            } => {
                assert_eq!(trace_out.as_deref(), Some("trace.json"));
                assert_eq!(metrics_out.as_deref(), Some("metrics.prom"));
                assert_eq!(obs_sample_interval, Some(SimDuration::from_secs(5)));
            }
            other => panic!("{other:?}"),
        }
        // The sampling interval only matters with metrics on.
        assert!(parse(&args(&["simulate", "a.xml", "--obs-sample-interval", "5s"])).is_err());
        assert!(parse(&args(&["simulate", "a.xml", "--obs-sample-interval", "0s"])).is_err());
        assert!(parse(&args(&["simulate", "a.xml", "--trace-out"])).is_err());
    }

    #[test]
    fn simulate_index_flag_spellings() {
        for (raw, want) in [
            ("dsl", QueueStrategy::Dsl),
            ("btree", QueueStrategy::Bst),
            ("bst", QueueStrategy::Bst),
            ("pheap", QueueStrategy::Pairing),
            ("pairing", QueueStrategy::Pairing),
            ("naive", QueueStrategy::Naive),
        ] {
            let cmd = parse(&args(&["simulate", "a.xml", "--index", raw])).unwrap();
            match cmd {
                Command::Simulate { index, batch, .. } => {
                    assert_eq!(index, want, "{raw}");
                    assert!(batch, "batching defaults on");
                }
                other => panic!("{other:?}"),
            }
        }
        assert!(parse(&args(&["simulate", "a.xml", "--index", "hash"])).is_err());
        assert!(parse(&args(&["simulate", "a.xml", "--index"])).is_err());
    }

    #[test]
    fn simulate_fault_flags_attach_config() {
        use woha_model::SimDuration;
        let cmd = parse(&args(&[
            "simulate",
            "a.xml",
            "--mtbf",
            "30m",
            "--mttr",
            "2m",
            "--detect-missed",
            "3",
            "--blacklist-after",
            "2",
            "--cluster",
            "4x2x1",
        ]))
        .unwrap();
        match cmd {
            Command::Simulate { cluster, .. } => {
                let f = cluster.faults();
                assert!(f.enabled());
                assert_eq!(f.mtbf, Some(SimDuration::from_mins(30)));
                assert_eq!(f.mttr, SimDuration::from_mins(2));
                assert_eq!(f.detect_missed_heartbeats, 3);
                assert_eq!(f.blacklist_after, 2);
            }
            other => panic!("{other:?}"),
        }
        // Defaults kick in when only --mtbf is given.
        let cmd = parse(&args(&["simulate", "a.xml", "--mtbf", "1h"])).unwrap();
        match cmd {
            Command::Simulate { cluster, .. } => {
                assert_eq!(cluster.faults().mtbf, Some(SimDuration::from_mins(60)));
                assert_eq!(cluster.faults().mttr, SimDuration::from_mins(5));
            }
            other => panic!("{other:?}"),
        }
        // No fault flags: the cluster stays fault-free.
        let cmd = parse(&args(&["simulate", "a.xml"])).unwrap();
        match cmd {
            Command::Simulate { cluster, .. } => assert!(!cluster.faults().enabled()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn simulate_master_fault_flags_attach_config() {
        use woha_model::SimDuration;
        let cmd = parse(&args(&[
            "simulate",
            "a.xml",
            "--master-mtbf",
            "2h",
            "--master-mttr",
            "45s",
            "--checkpoint-interval",
            "3m",
            "--no-wal",
        ]))
        .unwrap();
        match cmd {
            Command::Simulate { cluster, .. } => {
                let m = &cluster.faults().master;
                assert!(m.enabled());
                assert_eq!(m.mtbf, Some(SimDuration::from_mins(120)));
                assert_eq!(m.mttr, SimDuration::from_secs(45));
                assert_eq!(m.checkpoint_interval, SimDuration::from_mins(3));
                assert!(!m.wal);
                assert!(m.scripted.is_empty());
                // Master faults alone leave node faults off.
                assert!(cluster.faults().mtbf.is_none());
            }
            other => panic!("{other:?}"),
        }
        // Scripted crashes enable master faults without --master-mtbf, keep
        // WAL + defaults, and are sorted.
        let cmd = parse(&args(&[
            "simulate",
            "a.xml",
            "--scripted-master-crash",
            "10m",
            "--scripted-master-crash",
            "90s",
        ]))
        .unwrap();
        match cmd {
            Command::Simulate { cluster, .. } => {
                let m = &cluster.faults().master;
                assert!(m.enabled());
                assert_eq!(m.mtbf, None);
                assert!(m.wal);
                assert_eq!(
                    m.scripted,
                    vec![SimTime::from_secs(90), SimTime::from_mins(10)]
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn simulate_rejects_bad_master_fault_flags() {
        assert!(parse(&args(&["simulate", "a.xml", "--master-mtbf", "0s"])).is_err());
        assert!(parse(&args(&["simulate", "a.xml", "--master-mttr", "1m"])).is_err());
        assert!(parse(&args(&["simulate", "a.xml", "--checkpoint-interval", "1m"])).is_err());
        assert!(parse(&args(&["simulate", "a.xml", "--no-wal"])).is_err());
        assert!(parse(&args(&[
            "simulate",
            "a.xml",
            "--master-mtbf",
            "1h",
            "--checkpoint-interval",
            "0s"
        ]))
        .is_err());
        assert!(parse(&args(&[
            "simulate",
            "a.xml",
            "--scripted-master-crash",
            "soon"
        ]))
        .is_err());
    }

    #[test]
    fn simulate_prediction_flags() {
        let cmd = parse(&args(&[
            "simulate",
            "a.xml",
            "--mtbf",
            "8h",
            "--predict-failures",
            "--pad-plans",
            "--risk-placement",
            "--adaptive-blacklist",
            "2.5",
        ]))
        .unwrap();
        match cmd {
            Command::Simulate {
                predict_failures,
                pad_plans,
                risk_placement,
                adaptive_blacklist,
                ..
            } => {
                assert!(predict_failures);
                assert!(pad_plans);
                assert!(risk_placement);
                assert_eq!(adaptive_blacklist, Some(2.5));
            }
            other => panic!("{other:?}"),
        }
        // The prediction layer needs fault injection to learn from.
        assert!(parse(&args(&["simulate", "a.xml", "--predict-failures"])).is_err());
        assert!(parse(&args(&["simulate", "a.xml", "--pad-plans"])).is_err());
        // Risk placement and adaptive blacklisting build on the tracker.
        assert!(parse(&args(&[
            "simulate",
            "a.xml",
            "--mtbf",
            "1h",
            "--risk-placement"
        ]))
        .is_err());
        assert!(parse(&args(&[
            "simulate",
            "a.xml",
            "--mtbf",
            "1h",
            "--adaptive-blacklist",
            "2"
        ]))
        .is_err());
        // Adaptive and fixed blacklisting are mutually exclusive.
        assert!(parse(&args(&[
            "simulate",
            "a.xml",
            "--mtbf",
            "1h",
            "--predict-failures",
            "--blacklist-after",
            "2",
            "--adaptive-blacklist",
            "2"
        ]))
        .is_err());
        assert!(parse(&args(&[
            "simulate",
            "a.xml",
            "--mtbf",
            "1h",
            "--predict-failures",
            "--adaptive-blacklist",
            "0"
        ]))
        .is_err());
        assert!(parse(&args(&[
            "simulate",
            "a.xml",
            "--mtbf",
            "1h",
            "--predict-failures",
            "--adaptive-blacklist",
            "soon"
        ]))
        .is_err());
    }

    #[test]
    fn simulate_rejects_bad_fault_flags() {
        assert!(parse(&args(&["simulate", "a.xml", "--mtbf", "0s"])).is_err());
        assert!(parse(&args(&["simulate", "a.xml", "--mtbf", "soon"])).is_err());
        assert!(parse(&args(&["simulate", "a.xml", "--mttr", "2m"])).is_err());
        assert!(parse(&args(&["simulate", "a.xml", "--detect-missed", "0"])).is_err());
        assert!(parse(&args(&["simulate", "a.xml", "--blacklist-after", "2"])).is_err());
        assert!(parse(&args(&[
            "simulate",
            "a.xml",
            "--mtbf",
            "1h",
            "--detect-missed",
            "x"
        ]))
        .is_err());
    }

    #[test]
    fn simulate_rejects_bad_values() {
        assert!(parse(&args(&["simulate"])).is_err());
        assert!(parse(&args(&["simulate", "a.xml", "--cluster", "3x2"])).is_err());
        assert!(parse(&args(&["simulate", "a.xml", "--scheduler", "magic"])).is_err());
        assert!(parse(&args(&["simulate", "a.xml", "--jitter", "1.5"])).is_err());
        assert!(parse(&args(&["simulate", "a.xml", "--unknown"])).is_err());
        assert!(parse(&args(&["simulate", "a.xml@soon"])).is_err());
    }

    #[test]
    fn release_suffix_parsing() {
        let w = parse_workflow_arg("dir/w.xml@90s").unwrap();
        assert_eq!(w.path, "dir/w.xml");
        assert_eq!(w.release, SimTime::from_secs(90));
        let w = parse_workflow_arg("plain.xml").unwrap();
        assert_eq!(w.release, SimTime::ZERO);
    }

    #[test]
    fn serve_defaults_and_full_flag_set() {
        let cmd = parse(&args(&["serve", "--follow", "feed.jsonl"])).unwrap();
        let Command::Serve {
            follow,
            scheduler,
            admission,
            wall_clock,
            speedup,
            buffer,
            ..
        } = cmd
        else {
            panic!("expected serve, got {cmd:?}");
        };
        assert_eq!(follow, "feed.jsonl");
        assert_eq!(scheduler, "woha-lpf");
        assert!(admission, "a service defends itself by default");
        assert!(!wall_clock);
        assert_eq!(speedup, 1.0);
        assert_eq!(buffer, 1024);

        let cmd = parse(&args(&[
            "serve",
            "--follow",
            "feed/",
            "--cluster",
            "4x2x1",
            "--scheduler",
            "edf",
            "--tenants",
            "tenants.toml",
            "--admission",
            "off",
            "--wall-clock",
            "--speedup",
            "50",
            "--poll-interval",
            "5ms",
            "--buffer",
            "64",
            "--high",
            "48",
            "--low",
            "16",
            "--stop-file",
            "stop",
            "--idle-timeout",
            "2s",
            "--max-arrivals",
            "100",
            "--metrics-out",
            "m.prom",
            "--trace-out",
            "t.jsonl",
            "--json",
        ]))
        .unwrap();
        let Command::Serve {
            tenants,
            admission,
            wall_clock,
            speedup,
            poll_interval,
            high,
            low,
            stop_file,
            idle_timeout,
            max_arrivals,
            json,
            ..
        } = cmd
        else {
            panic!("expected serve, got {cmd:?}");
        };
        assert_eq!(tenants.as_deref(), Some("tenants.toml"));
        assert!(!admission);
        assert!(wall_clock);
        assert_eq!(speedup, 50.0);
        assert_eq!(poll_interval.as_millis(), 5);
        assert_eq!((high, low), (Some(48), Some(16)));
        assert_eq!(stop_file.as_deref(), Some("stop"));
        assert_eq!(idle_timeout.unwrap().as_millis(), 2000);
        assert_eq!(max_arrivals, Some(100));
        assert!(json);
    }

    #[test]
    fn serve_rejects_bad_combinations() {
        assert!(parse(&args(&["serve"])).is_err(), "--follow is required");
        assert!(parse(&args(&["serve", "--follow", "f", "--scheduler", "all"])).is_err());
        assert!(parse(&args(&["serve", "--follow", "f", "--speedup", "2"])).is_err());
        assert!(parse(&args(&["serve", "--follow", "f", "--speedup", "0"])).is_err());
        assert!(
            parse(&args(&[
                "serve", "--follow", "f", "--high", "8", "--low", "8"
            ]))
            .is_err(),
            "--low must be below --high"
        );
        assert!(parse(&args(&["serve", "--follow", "f", "--buffer", "0"])).is_err());
        assert!(parse(&args(&["serve", "--follow", "f", "--max-arrivals", "0"])).is_err());
        assert!(parse(&args(&["serve", "--follow", "f", "positional.xml"])).is_err());
    }
}
