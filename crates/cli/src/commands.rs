//! Command implementations for `woha-cli`. Each returns its full output
//! as a `String`, so the commands are directly unit-testable.

use crate::args::{Command, TraceFormat, WorkflowArg, USAGE};
use std::error::Error;
use std::fmt::Write as _;
use woha_bench::sweep::{available_jobs, run_sweep, CellKey};
use woha_core::{
    generate_plan, AdmissionController, EdfScheduler, FairScheduler, FifoScheduler, JobPriorities,
    PadConfig, PriorityPolicy, QueueStrategy, WohaConfig, WohaScheduler,
};
use woha_model::{SimDuration, SlotKind, WorkflowConfig, WorkflowSpec};
use woha_serve::{run_service, ClockMode, ServeConfig, ShutdownConfig, TenantsConfig};
use woha_sim::{
    try_run_simulation_streamed, try_run_simulation_streamed_observed, AdmissionGate,
    ClusterConfig, JsonlTraceSink, MemorySink, ObservabilityConfig, Observations, PredictionConfig,
    SimConfig, SimReport, WorkflowScheduler,
};
use woha_trace::{JsonlSource, VecSource, WorkloadSource};

/// Runs a parsed command, returning its stdout content.
///
/// # Errors
///
/// Returns any I/O, parse, or validation error, formatted for the user.
pub fn run(command: Command) -> Result<String, Box<dyn Error>> {
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Validate { workflows } => validate(&workflows),
        Command::Plan {
            workflow,
            slots,
            policy,
            cap,
        } => plan(&workflow, slots, policy, cap),
        Command::Simulate {
            workflows,
            arrivals,
            cluster,
            scheduler,
            index,
            batch,
            jitter,
            seed,
            jobs,
            failures,
            predict_failures,
            pad_plans,
            risk_placement,
            adaptive_blacklist,
            admission,
            trace_out,
            trace_format,
            metrics_out,
            obs_sample_interval,
            json,
        } => simulate(
            &workflows,
            arrivals.as_deref(),
            &cluster,
            &scheduler,
            index,
            batch,
            jitter,
            seed,
            jobs,
            failures,
            predict_failures.then(|| PredictionConfig {
                risk_placement,
                adaptive_blacklist,
                ..PredictionConfig::default()
            }),
            pad_plans,
            admission,
            trace_out.as_deref(),
            trace_format,
            metrics_out.as_deref(),
            obs_sample_interval,
            json,
        ),
        c @ Command::Serve { .. } => serve(c),
    }
}

fn load(arg: &WorkflowArg) -> Result<WorkflowSpec, Box<dyn Error>> {
    let text =
        std::fs::read_to_string(&arg.path).map_err(|e| format!("cannot read {}: {e}", arg.path))?;
    let config = WorkflowConfig::parse(&text).map_err(|e| format!("{}: {e}", arg.path))?;
    Ok(config
        .to_spec(arg.release)
        .map_err(|e| format!("{}: {e}", arg.path))?)
}

fn validate(workflows: &[WorkflowArg]) -> Result<String, Box<dyn Error>> {
    let mut out = String::new();
    for arg in workflows {
        let w = load(arg)?;
        writeln!(out, "{}: OK", arg.path)?;
        writeln!(
            out,
            "  {} jobs, {} tasks ({} map + {} reduce), critical path {}, total work {}",
            w.job_count(),
            w.total_tasks(),
            w.total_map_tasks(),
            w.total_reduce_tasks(),
            w.critical_path(),
            w.total_work(),
        )?;
        if w.deadline() == woha_model::SimTime::MAX {
            writeln!(out, "  no deadline")?;
        } else {
            writeln!(out, "  deadline {} after submission", w.relative_deadline())?;
        }
        for j in w.job_ids() {
            let prereqs: Vec<&str> = w
                .prerequisites(j)
                .iter()
                .map(|&p| w.job(p).name())
                .collect();
            writeln!(out, "  {} <- [{}]", w.job(j), prereqs.join(", "))?;
        }
    }
    Ok(out)
}

fn plan(
    arg: &WorkflowArg,
    slots: u32,
    policy: PriorityPolicy,
    cap: woha_core::CapMode,
) -> Result<String, Box<dyn Error>> {
    let w = load(arg)?;
    let priorities = JobPriorities::compute(&w, policy);
    let plan = generate_plan(&w, &priorities, slots, cap);
    let mut out = String::new();
    writeln!(
        out,
        "scheduling plan for {} ({policy}, cluster capacity {slots} slots)",
        w.name()
    )?;
    writeln!(
        out,
        "  resource cap {}  plan span {}  {} requirement entries  {} bytes encoded",
        plan.resource_cap(),
        plan.span(),
        plan.requirements().len(),
        plan.encoded_size_bytes(),
    )?;
    let order: Vec<&str> = plan.job_order().iter().map(|&j| w.job(j).name()).collect();
    writeln!(out, "  job order: {}", order.join(" > "))?;
    writeln!(out, "  ttd        cumulative tasks required")?;
    for r in plan.requirements() {
        writeln!(out, "  {:>9}  {}", r.ttd.to_string(), r.cumulative)?;
    }
    Ok(out)
}

fn build_scheduler(
    name: &str,
    total_slots: u32,
    queue: QueueStrategy,
    padding: Option<PadConfig>,
) -> Box<dyn WorkflowScheduler> {
    let woha = |policy| {
        Box::new(WohaScheduler::new(WohaConfig {
            queue,
            padding,
            ..WohaConfig::new(policy, total_slots)
        }))
    };
    match name {
        "fifo" => Box::new(FifoScheduler::new()),
        "fair" => Box::new(FairScheduler::new()),
        "edf" => Box::new(EdfScheduler::new()),
        "woha-hlf" => woha(PriorityPolicy::Hlf),
        "woha-mpf" => woha(PriorityPolicy::Mpf),
        _ => woha(PriorityPolicy::Lpf),
    }
}

#[allow(clippy::too_many_arguments)]
fn simulate(
    workflows: &[WorkflowArg],
    arrivals: Option<&str>,
    cluster: &ClusterConfig,
    scheduler: &str,
    index: QueueStrategy,
    batch: bool,
    jitter: f64,
    seed: u64,
    jobs: usize,
    failures: f64,
    prediction: Option<PredictionConfig>,
    pad_plans: bool,
    admission: bool,
    trace_out: Option<&str>,
    trace_format: TraceFormat,
    metrics_out: Option<&str>,
    obs_sample_interval: Option<SimDuration>,
    json: bool,
) -> Result<String, Box<dyn Error>> {
    let specs: Vec<WorkflowSpec> = workflows.iter().map(load).collect::<Result<_, _>>()?;
    let observe = trace_out.is_some() || metrics_out.is_some();
    if observe && scheduler == "all" {
        return Err(
            "--trace-out/--metrics-out need a single scheduler, not --scheduler all".into(),
        );
    }
    let config = SimConfig {
        duration_jitter: jitter,
        task_failure_prob: failures,
        seed,
        batch_heartbeats: batch,
        prediction,
        observability: ObservabilityConfig {
            trace: trace_out.is_some(),
            metrics: metrics_out.is_some(),
            sample_interval: obs_sample_interval,
            ..ObservabilityConfig::default()
        },
        ..SimConfig::default()
    };
    // Arg validation guarantees --pad-plans comes with --mtbf.
    let padding = pad_plans
        .then(|| cluster.faults().mtbf.map(PadConfig::new))
        .flatten();
    let total_slots = cluster.total_slots(SlotKind::Map) + cluster.total_slots(SlotKind::Reduce);
    let names: Vec<&str> = if scheduler == "all" {
        vec!["woha-lpf", "woha-hlf", "woha-mpf", "edf", "fifo", "fair"]
    } else {
        vec![scheduler]
    };

    // The scheduler comparison fans over the sweep orchestrator's worker
    // pool (`--jobs`, default available parallelism); a single scheduler
    // is a one-cell sweep and runs inline. Each cell consumes a fresh
    // source and (when enabled) a fresh admission controller, so compared
    // schedulers see the same world, and the orchestrator returns reports
    // in `names` order regardless of completion order or thread count.
    let jobs = if jobs == 0 { available_jobs() } else { jobs };
    let cells: Vec<(CellKey, &str)> = names
        .iter()
        .map(|&name| (CellKey::new().with("scheduler", name), name))
        .collect();
    let run_cell = |name: &str| -> Result<SimReport, String> {
        let mut s = build_scheduler(name, total_slots, index, padding);
        let mut gate = admission.then(|| AdmissionController::new(cluster));
        match arrivals {
            Some(path) => {
                let mut source =
                    JsonlSource::open(path).map_err(|e| format!("cannot read {path}: {e}"))?;
                let report = run_one(
                    &mut source,
                    s.as_mut(),
                    cluster,
                    &config,
                    gate.as_mut(),
                    trace_out,
                    trace_format,
                    metrics_out,
                )
                .map_err(|e| e.to_string())?;
                if let Some(e) = source.error() {
                    return Err(format!("{path}: {e}"));
                }
                Ok(report)
            }
            None => {
                let mut source = VecSource::new(specs.clone());
                run_one(
                    &mut source,
                    s.as_mut(),
                    cluster,
                    &config,
                    gate.as_mut(),
                    trace_out,
                    trace_format,
                    metrics_out,
                )
                .map_err(|e| e.to_string())
            }
        }
    };
    let mut reports = Vec::new();
    for (_, result) in run_sweep(&cells, jobs, |_, &name| run_cell(name)).results {
        reports.push(result?);
    }

    if json {
        return Ok(format!("{}\n", serde_json::to_string_pretty(&reports)?));
    }
    let mut out = String::new();
    for report in &reports {
        writeln!(
            out,
            "=== {} ===  misses {}/{}  max tardiness {}  utilization {:.1}%",
            report.scheduler,
            report.deadline_misses(),
            report.outcomes.len(),
            report.max_tardiness(),
            report.overall_utilization() * 100.0,
        )?;
        if cluster.faults().enabled() {
            writeln!(
                out,
                "  node failures {}  recoveries {}  blacklisted {}  tasks requeued {}  \
                 map outputs lost {}  work lost {:.1} slot-s",
                report.node_failures,
                report.node_recoveries,
                report.nodes_blacklisted,
                report.tasks_requeued,
                report.map_outputs_lost,
                report.work_lost_slot_ms as f64 / 1000.0,
            )?;
        }
        if let Some(a) = &report.admission {
            let detail: Vec<String> = a
                .rejections
                .iter()
                .map(|r| format!("{} x{}", r.reason, r.count))
                .collect();
            writeln!(
                out,
                "  admission rejected {}{}",
                a.workflows_rejected,
                if detail.is_empty() {
                    String::new()
                } else {
                    format!("  ({})", detail.join(", "))
                },
            )?;
        }
        if let Some(r) = &report.recovery {
            writeln!(
                out,
                "  master crashes {}  downtime {:.1}s  checkpoints {}  wal replayed {}  \
                 readopted {}  requeued {}  orphaned {}  resubmitted {}wf/{}job",
                r.master_crashes,
                r.master_downtime_ms as f64 / 1000.0,
                r.checkpoints_taken,
                r.wal_records_replayed,
                r.attempts_readopted,
                r.attempts_requeued,
                r.attempts_orphaned,
                r.workflows_resubmitted,
                r.jobs_resubmitted,
            )?;
        }
        if let Some(p) = &report.prediction {
            let peak = p.node_propensity.iter().copied().fold(0.0f64, f64::max);
            writeln!(
                out,
                "  prediction: plans padded {}  risk-averted placements {}  \
                 preemptive speculations {}  adaptive blacklists {}  peak propensity {:.2}",
                p.plans_padded,
                p.risk_averted_placements,
                p.preemptive_speculations,
                p.adaptive_blacklists,
                peak,
            )?;
        }
        for o in &report.outcomes {
            writeln!(
                out,
                "  {:<24} submit {:>9}  finish {:>11}  deadline {:>9}  {}",
                o.name,
                o.submitted.to_string(),
                o.finished
                    .map_or("unfinished".to_string(), |t| t.to_string()),
                deadline_str(o),
                if o.met_deadline() { "met" } else { "MISSED" },
            )?;
        }
    }
    Ok(out)
}

/// Runs the live service: tail the followed feed, gate admissions, pace
/// (or replay) the cluster, and summarize what happened.
fn serve(command: Command) -> Result<String, Box<dyn Error>> {
    let Command::Serve {
        follow,
        cluster,
        scheduler,
        index,
        tenants,
        admission,
        wall_clock,
        speedup,
        poll_interval,
        buffer,
        high,
        low,
        stop_file,
        idle_timeout,
        max_arrivals,
        metrics_out,
        trace_out,
        json,
    } = command
    else {
        unreachable!("serve() is only called with Command::Serve");
    };

    let meta = std::fs::metadata(&follow).map_err(|e| format!("cannot follow {follow}: {e}"))?;
    let source = if meta.is_dir() {
        woha_trace::FollowSource::dir(&follow)
    } else {
        woha_trace::FollowSource::file(&follow)
    };
    let stop = source.stop_handle();

    // The gate: a tenant file wins; otherwise plain demand-bound admission
    // unless explicitly turned off.
    let mut tenant_gate = match &tenants {
        Some(path) => Some(TenantsConfig::load(path)?.build_gate(&cluster)),
        None => None,
    };
    let mut plain_gate =
        (tenant_gate.is_none() && admission).then(|| AdmissionController::new(&cluster));
    let gate: Option<&mut dyn AdmissionGate> = match (&mut tenant_gate, &mut plain_gate) {
        (Some(g), _) => Some(g),
        (None, Some(g)) => Some(g),
        (None, None) => None,
    };

    let total_slots = cluster.total_slots(SlotKind::Map) + cluster.total_slots(SlotKind::Reduce);
    let mut sched = build_scheduler(&scheduler, total_slots, index, None);
    let config = SimConfig {
        observability: ObservabilityConfig {
            metrics: metrics_out.is_some(),
            trace: trace_out.is_some(),
            ..ObservabilityConfig::default()
        },
        ..SimConfig::default()
    };
    let to_real = |d: SimDuration| std::time::Duration::from_millis(d.as_millis());
    let serve_config = ServeConfig {
        clock: if wall_clock {
            ClockMode::Wall {
                speedup,
                poll: to_real(poll_interval),
            }
        } else {
            ClockMode::Sim
        },
        buffer,
        watermarks: high.map(|h| (h, low.unwrap_or(h / 2))),
        shutdown: ShutdownConfig {
            stop_file: stop_file.map(Into::into),
            idle_timeout: idle_timeout.map(to_real),
            max_arrivals,
            ..ShutdownConfig::default()
        },
    };
    // A deterministic replay must not abandon the tail of the feed when
    // the source reports "no data yet": pre-raising the stop makes the
    // FollowSource finalize and drain every written byte, then end.
    if !wall_clock {
        stop.stop();
    }

    let bad_config = |e: woha_sim::SimError| format!("bad service config: {e}");
    let outcome = match &trace_out {
        Some(path) => {
            let file =
                std::fs::File::create(path).map_err(|e| format!("cannot write {path}: {e}"))?;
            let mut sink = JsonlTraceSink::new(std::io::BufWriter::new(file));
            let outcome = run_service(
                source,
                Some(stop),
                sched.as_mut(),
                &cluster,
                &config,
                gate,
                Some(&mut sink),
                &serve_config,
            )
            .map_err(bad_config)?;
            let mut writer = sink
                .finish()
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            std::io::Write::flush(&mut writer).map_err(|e| format!("cannot write {path}: {e}"))?;
            outcome
        }
        None => run_service(
            source,
            Some(stop),
            sched.as_mut(),
            &cluster,
            &config,
            gate,
            None,
            &serve_config,
        )
        .map_err(bad_config)?,
    };
    if let Some(e) = &outcome.source_error {
        return Err(e.clone().into());
    }
    write_prometheus(metrics_out.as_deref(), outcome.metrics.as_ref())?;

    let cause = outcome
        .cause
        .map_or_else(|| "drained".to_string(), |c| c.to_string());
    if json {
        return Ok(format!(
            "{{\n  \"service\": {{\"cause\": \"{cause}\", \"arrivals\": {}, \"shed\": {}, \
             \"depth_peak\": {}, \"lag_peak_ms\": {}}},\n  \"report\": {}\n}}\n",
            outcome.arrivals,
            outcome.shed,
            outcome.depth_peak,
            outcome.lag_peak_ms,
            serde_json::to_string_pretty(&outcome.report)?,
        ));
    }
    let report = &outcome.report;
    let mut out = String::new();
    writeln!(
        out,
        "=== serve {} ===  shutdown: {cause}  arrivals {}  shed {}  \
         queue peak {}  lag peak {:.1}s",
        report.scheduler,
        outcome.arrivals,
        outcome.shed,
        outcome.depth_peak,
        outcome.lag_peak_ms as f64 / 1000.0,
    )?;
    writeln!(
        out,
        "  misses {}/{}  max tardiness {}  utilization {:.1}%",
        report.deadline_misses(),
        report.outcomes.len(),
        report.max_tardiness(),
        report.overall_utilization() * 100.0,
    )?;
    if let Some(a) = &report.admission {
        let detail: Vec<String> = a
            .rejections
            .iter()
            .map(|r| format!("{} x{}", r.reason, r.count))
            .collect();
        writeln!(
            out,
            "  admission rejected {}{}",
            a.workflows_rejected,
            if detail.is_empty() {
                String::new()
            } else {
                format!("  ({})", detail.join(", "))
            },
        )?;
    }
    for o in &report.outcomes {
        writeln!(
            out,
            "  {:<24} submit {:>9}  finish {:>11}  deadline {:>9}  {}",
            o.name,
            o.submitted.to_string(),
            o.finished
                .map_or("unfinished".to_string(), |t| t.to_string()),
            deadline_str(o),
            if o.met_deadline() { "met" } else { "MISSED" },
        )?;
    }
    Ok(out)
}

/// Runs one scheduler over one workload source, routing the trace to the
/// requested format and the metrics to their file.
#[allow(clippy::too_many_arguments)]
fn run_one(
    source: &mut dyn WorkloadSource,
    scheduler: &mut dyn WorkflowScheduler,
    cluster: &ClusterConfig,
    config: &SimConfig,
    mut gate: Option<&mut AdmissionController>,
    trace_out: Option<&str>,
    trace_format: TraceFormat,
    metrics_out: Option<&str>,
) -> Result<SimReport, Box<dyn Error>> {
    // `&mut dyn AdmissionGate` is coerced fresh inside each branch: the
    // streamed entry points tie the gate and sink to one lifetime, so the
    // coercion must happen where the (shorter-lived) sink is in scope.
    let bad_config = |e: woha_sim::SimError| format!("bad simulation config: {e}");
    if !(config.observability.trace || config.observability.metrics) {
        let gate = gate.as_deref_mut().map(|g| g as &mut dyn AdmissionGate);
        return Ok(
            try_run_simulation_streamed(source, scheduler, cluster, config, gate)
                .map_err(bad_config)?,
        );
    }
    match (trace_out, trace_format) {
        // JSONL streams each record to disk the moment it is emitted.
        (Some(path), TraceFormat::Jsonl) => {
            let file =
                std::fs::File::create(path).map_err(|e| format!("cannot write {path}: {e}"))?;
            let mut sink = JsonlTraceSink::new(std::io::BufWriter::new(file));
            let (report, metrics) = try_run_simulation_streamed_observed(
                source,
                scheduler,
                cluster,
                config,
                gate.as_deref_mut().map(|g| g as &mut dyn AdmissionGate),
                Some(&mut sink),
            )
            .map_err(bad_config)?;
            let mut writer = sink
                .finish()
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            std::io::Write::flush(&mut writer).map_err(|e| format!("cannot write {path}: {e}"))?;
            write_prometheus(metrics_out, metrics.as_ref())?;
            Ok(report)
        }
        // The Chrome format pairs task spans in a second pass, so it
        // buffers the records and writes the file at the end of the run.
        (Some(path), TraceFormat::Chrome) => {
            let mut sink = MemorySink::new();
            let (report, metrics) = try_run_simulation_streamed_observed(
                source,
                scheduler,
                cluster,
                config,
                gate.as_deref_mut().map(|g| g as &mut dyn AdmissionGate),
                Some(&mut sink),
            )
            .map_err(bad_config)?;
            let obs = Observations {
                trace: sink.into_records(),
                metrics,
                node_count: cluster.node_count(),
            };
            std::fs::write(path, obs.chrome_trace_json())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            write_prometheus(metrics_out, obs.metrics.as_ref())?;
            Ok(report)
        }
        (None, _) => {
            let (report, metrics) = try_run_simulation_streamed_observed(
                source,
                scheduler,
                cluster,
                config,
                gate.map(|g| g as &mut dyn AdmissionGate),
                None,
            )
            .map_err(bad_config)?;
            write_prometheus(metrics_out, metrics.as_ref())?;
            Ok(report)
        }
    }
}

fn write_prometheus(
    path: Option<&str>,
    metrics: Option<&woha_sim::MetricsRegistry>,
) -> Result<(), Box<dyn Error>> {
    if let (Some(path), Some(m)) = (path, metrics) {
        std::fs::write(path, m.prometheus_text())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(())
}

fn deadline_str(o: &woha_sim::WorkflowOutcome) -> String {
    if o.deadline == woha_model::SimTime::MAX {
        "none".to_string()
    } else {
        o.deadline.to_string()
    }
}

/// A report subset for JSON output is just the full report — it already
/// serializes.
#[allow(dead_code)]
fn _assert_report_serializes(r: &SimReport) -> String {
    serde_json::to_string(r).expect("SimReport serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args;

    const SAMPLE: &str = r#"
    <workflow name="cli-test" deadline="20m">
      <job name="a" mappers="4" reducers="1" map-duration="20s" reduce-duration="40s">
        <output path="/t/a"/>
      </job>
      <job name="b" mappers="2" reducers="1" map-duration="15s" reduce-duration="30s">
        <input path="/t/a"/>
        <output path="/t/b"/>
      </job>
    </workflow>"#;

    fn sample_file() -> tempfile::TempPath {
        let mut f = tempfile::NamedTempFile::new().expect("temp file");
        f.write_all(SAMPLE.as_bytes()).expect("write");
        f.into_temp_path()
    }

    // A tiny vendored tempfile substitute to avoid a dependency: write to
    // a unique path in std::env::temp_dir().
    mod tempfile {
        use std::path::PathBuf;
        use std::sync::atomic::{AtomicU64, Ordering};

        static COUNTER: AtomicU64 = AtomicU64::new(0);

        pub struct NamedTempFile {
            file: std::fs::File,
            path: PathBuf,
        }

        pub struct TempPath(PathBuf);

        impl NamedTempFile {
            pub fn new() -> std::io::Result<Self> {
                let path = std::env::temp_dir().join(format!(
                    "woha-cli-test-{}-{}.xml",
                    std::process::id(),
                    COUNTER.fetch_add(1, Ordering::Relaxed)
                ));
                Ok(NamedTempFile {
                    file: std::fs::File::create(&path)?,
                    path,
                })
            }

            pub fn write_all(&mut self, bytes: &[u8]) -> std::io::Result<()> {
                use std::io::Write;
                self.file.write_all(bytes)
            }

            pub fn into_temp_path(self) -> TempPath {
                TempPath(self.path)
            }
        }

        impl TempPath {
            pub fn to_str(&self) -> &str {
                self.0.to_str().expect("utf-8 temp path")
            }
        }

        impl Drop for TempPath {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.0);
            }
        }
    }

    fn run_line(line: &[&str]) -> Result<String, Box<dyn std::error::Error>> {
        let raw: Vec<String> = line.iter().map(|s| s.to_string()).collect();
        run(args::parse(&raw)?)
    }

    #[test]
    fn help_prints_usage() {
        let out = run_line(&["help"]).unwrap();
        assert!(out.contains("woha-cli simulate"));
    }

    #[test]
    fn validate_prints_topology() {
        let path = sample_file();
        let out = run_line(&["validate", path.to_str()]).unwrap();
        assert!(out.contains("OK"));
        assert!(out.contains("2 jobs, 8 tasks"));
        assert!(out.contains("b(2m x 15s, 1r x 30s) <- [a]"));
    }

    #[test]
    fn validate_reports_missing_file() {
        let err = run_line(&["validate", "/no/such/file.xml"]).unwrap_err();
        assert!(err.to_string().contains("cannot read"));
    }

    #[test]
    fn plan_prints_requirements() {
        let path = sample_file();
        let out = run_line(&["plan", path.to_str(), "--slots", "12"]).unwrap();
        assert!(out.contains("resource cap"), "{out}");
        assert!(out.contains("job order: a > b"), "{out}");
        assert!(out.contains("cumulative tasks required"), "{out}");
        // Final requirement covers all 8 tasks.
        assert!(out.trim_end().ends_with('8'), "{out}");
    }

    #[test]
    fn simulate_single_scheduler() {
        let path = sample_file();
        let out = run_line(&[
            "simulate",
            path.to_str(),
            "--cluster",
            "4x2x1",
            "--scheduler",
            "fifo",
        ])
        .unwrap();
        assert!(out.contains("=== FIFO ==="), "{out}");
        assert!(out.contains("met"), "{out}");
        assert!(out.contains("misses 0/1"), "{out}");
    }

    #[test]
    fn simulate_all_and_releases() {
        let path = sample_file();
        let spec = format!("{}@2m", path.to_str());
        let out = run_line(&["simulate", path.to_str(), &spec, "--scheduler", "all"]).unwrap();
        for name in ["WOHA-LPF", "WOHA-HLF", "WOHA-MPF", "EDF", "FIFO", "Fair"] {
            assert!(out.contains(&format!("=== {name} ===")), "{out}");
        }
        assert!(out.contains("submit      120s"), "{out}");
    }

    #[test]
    fn simulate_with_node_faults_reports_summary() {
        let path = sample_file();
        let out = run_line(&[
            "simulate",
            path.to_str(),
            "--scheduler",
            "fifo",
            "--mtbf",
            "5m",
            "--mttr",
            "30s",
            "--seed",
            "3",
        ])
        .unwrap();
        assert!(out.contains("node failures"), "{out}");
        assert!(out.contains("=== FIFO ==="), "{out}");
    }

    #[test]
    fn simulate_with_prediction_reports_propensity() {
        let path = sample_file();
        let out = run_line(&[
            "simulate",
            path.to_str(),
            "--scheduler",
            "woha-lpf",
            "--mtbf",
            "5m",
            "--mttr",
            "30s",
            "--seed",
            "3",
            "--predict-failures",
            "--pad-plans",
            "--risk-placement",
        ])
        .unwrap();
        assert!(out.contains("prediction: plans padded"), "{out}");
        // The JSON report carries the prediction section.
        let json = run_line(&[
            "simulate",
            path.to_str(),
            "--scheduler",
            "woha-lpf",
            "--mtbf",
            "5m",
            "--seed",
            "3",
            "--predict-failures",
            "--json",
        ])
        .unwrap();
        let parsed: Vec<SimReport> = serde_json::from_str(&json).unwrap();
        let p = parsed[0].prediction.as_ref().expect("prediction report");
        assert!(!p.node_propensity.is_empty());
        // Prediction off: the key is absent entirely.
        let json = run_line(&[
            "simulate",
            path.to_str(),
            "--scheduler",
            "woha-lpf",
            "--mtbf",
            "5m",
            "--seed",
            "3",
            "--json",
        ])
        .unwrap();
        assert!(!json.contains("\"prediction\""), "{json}");
    }

    #[test]
    fn simulate_with_master_faults_reports_recovery() {
        let path = sample_file();
        let out = run_line(&[
            "simulate",
            path.to_str(),
            "--scheduler",
            "fifo",
            "--scripted-master-crash",
            "30s",
            "--master-mttr",
            "20s",
        ])
        .unwrap();
        assert!(out.contains("master crashes 1"), "{out}");
        assert!(out.contains("downtime 20.0s"), "{out}");
        assert!(out.contains("=== FIFO ==="), "{out}");
        // Recovery counters survive the JSON round-trip too.
        let json = run_line(&[
            "simulate",
            path.to_str(),
            "--scheduler",
            "fifo",
            "--scripted-master-crash",
            "30s",
            "--json",
        ])
        .unwrap();
        let parsed: Vec<SimReport> = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed[0].recovery.as_ref().unwrap().master_crashes, 1);
    }

    #[test]
    fn simulate_writes_trace_and_metrics_files() {
        let path = sample_file();
        let trace = tempfile::NamedTempFile::new().unwrap().into_temp_path();
        let metrics = tempfile::NamedTempFile::new().unwrap().into_temp_path();
        let out = run_line(&[
            "simulate",
            path.to_str(),
            "--scheduler",
            "woha-lpf",
            "--trace-out",
            trace.to_str(),
            "--metrics-out",
            metrics.to_str(),
            "--obs-sample-interval",
            "30s",
        ])
        .unwrap();
        assert!(out.contains("=== WOHA-LPF ==="), "{out}");
        let trace_json = std::fs::read_to_string(trace.to_str()).unwrap();
        assert!(trace_json.contains("\"traceEvents\""), "{trace_json}");
        assert!(trace_json.contains("\"scheduler\""), "{trace_json}");
        let prom = std::fs::read_to_string(metrics.to_str()).unwrap();
        assert!(
            prom.contains("# TYPE woha_heartbeats_total counter"),
            "{prom}"
        );
        assert!(prom.contains("woha_pending_workflows"), "{prom}");
    }

    #[test]
    fn simulate_observability_rejects_all_schedulers() {
        let path = sample_file();
        let err = run_line(&[
            "simulate",
            path.to_str(),
            "--scheduler",
            "all",
            "--trace-out",
            "/tmp/unused-trace.json",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("single scheduler"), "{err}");
    }

    #[test]
    fn simulate_observability_leaves_report_unchanged() {
        let path = sample_file();
        let plain = run_line(&["simulate", path.to_str(), "--json"]).unwrap();
        let metrics = tempfile::NamedTempFile::new().unwrap().into_temp_path();
        let observed = run_line(&[
            "simulate",
            path.to_str(),
            "--metrics-out",
            metrics.to_str(),
            "--json",
        ])
        .unwrap();
        let strip = |s: &str| {
            let mut v: Vec<SimReport> = serde_json::from_str(s).unwrap();
            for r in &mut v {
                r.scheduler_nanos = 0;
            }
            serde_json::to_string(&v).unwrap()
        };
        assert_eq!(strip(&plain), strip(&observed));
    }

    /// Writes `text` to a fresh temp file and returns its path handle.
    fn temp_file_with(text: &str) -> tempfile::TempPath {
        let mut f = tempfile::NamedTempFile::new().expect("temp file");
        f.write_all(text.as_bytes()).expect("write");
        f.into_temp_path()
    }

    #[test]
    fn simulate_from_arrivals_matches_files() {
        let path = sample_file();
        let from_files = run_line(&["simulate", path.to_str(), "--json"]).unwrap();

        let text = std::fs::read_to_string(path.to_str()).unwrap();
        let spec = woha_model::WorkflowConfig::parse(&text)
            .unwrap()
            .to_spec(woha_model::SimTime::ZERO)
            .unwrap();
        let jsonl = temp_file_with(&woha_trace::to_jsonl(&[spec]).unwrap());
        let from_arrivals =
            run_line(&["simulate", "--arrivals", jsonl.to_str(), "--json"]).unwrap();

        let strip = |s: &str| {
            let mut v: Vec<SimReport> = serde_json::from_str(s).unwrap();
            for r in &mut v {
                r.scheduler_nanos = 0;
            }
            serde_json::to_string(&v).unwrap()
        };
        assert_eq!(strip(&from_files), strip(&from_arrivals));
    }

    #[test]
    fn simulate_arrivals_reports_malformed_lines() {
        let jsonl = temp_file_with("this is not json\n");
        let err = run_line(&["simulate", "--arrivals", jsonl.to_str(), "--json"]).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn simulate_admission_counts_rejections() {
        // A 10-minute single map against a 1-minute deadline: its critical
        // path alone proves the deadline unreachable.
        let hopeless = temp_file_with(
            r#"
            <workflow name="hopeless" deadline="1m">
              <job name="j" mappers="1" reducers="0" map-duration="10m" reduce-duration="0s">
                <output path="/t/j"/>
              </job>
            </workflow>"#,
        );
        let feasible = sample_file();
        let out = run_line(&[
            "simulate",
            feasible.to_str(),
            hopeless.to_str(),
            "--admission",
            "necessary",
            "--json",
        ])
        .unwrap();
        let parsed: Vec<SimReport> = serde_json::from_str(&out).unwrap();
        let admission = parsed[0].admission.as_ref().expect("admission report");
        assert_eq!(admission.workflows_rejected, 1);
        assert_eq!(
            admission.rejections[0].reason,
            "critical_path_exceeds_deadline"
        );
        assert_eq!(parsed[0].outcomes.len(), 1, "rejected workflow never ran");

        // The human-readable table surfaces the same counters.
        let text = run_line(&[
            "simulate",
            feasible.to_str(),
            hopeless.to_str(),
            "--admission",
            "necessary",
        ])
        .unwrap();
        assert!(
            text.contains("admission rejected 1  (critical_path_exceeds_deadline x1)"),
            "{text}"
        );
    }

    #[test]
    fn simulate_writes_jsonl_trace() {
        let path = sample_file();
        let trace = tempfile::NamedTempFile::new().unwrap().into_temp_path();
        run_line(&[
            "simulate",
            path.to_str(),
            "--scheduler",
            "woha-lpf",
            "--trace-out",
            trace.to_str(),
            "--trace-format",
            "jsonl",
        ])
        .unwrap();
        let text = std::fs::read_to_string(trace.to_str()).unwrap();
        assert!(!text.contains("traceEvents"), "jsonl, not chrome: {text}");
        let mut lines = 0;
        for line in text.lines() {
            assert!(line.starts_with("{\"at_ms\":"), "{line}");
            assert!(line.contains("\"event\":"), "{line}");
            assert!(line.ends_with('}'), "{line}");
            lines += 1;
        }
        assert!(lines > 0, "trace has records");
    }

    #[test]
    fn simulate_json_is_machine_readable() {
        let path = sample_file();
        let out = run_line(&["simulate", path.to_str(), "--json"]).unwrap();
        let parsed: Vec<SimReport> = serde_json::from_str(&out).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].deadline_misses(), 0);
    }

    /// A JSONL arrival feed of tiny namespaced workflows, as a temp file.
    fn arrivals_feed(entries: &[(&str, u64)]) -> tempfile::TempPath {
        use woha_model::{JobSpec, SimTime, WorkflowBuilder};
        let specs: Vec<WorkflowSpec> = entries
            .iter()
            .map(|&(name, submit_s)| {
                let mut b = WorkflowBuilder::new(name);
                b.add_job(JobSpec::new(
                    "j",
                    2,
                    1,
                    SimDuration::from_secs(20),
                    SimDuration::from_secs(30),
                ));
                b.relative_deadline(SimDuration::from_mins(30));
                b.build().unwrap().reissued(
                    name.to_string(),
                    SimTime::from_secs(submit_s),
                    SimTime::from_secs(submit_s) + SimDuration::from_mins(30),
                )
            })
            .collect();
        temp_file_with(&woha_trace::to_jsonl(&specs).unwrap())
    }

    #[test]
    fn serve_replays_a_finite_feed_and_matches_simulate() {
        let feed = arrivals_feed(&[("ads/a", 0), ("etl/b", 60)]);
        let batch = run_line(&[
            "simulate",
            "--arrivals",
            feed.to_str(),
            "--admission",
            "necessary",
            "--json",
        ])
        .unwrap();
        let served = run_line(&["serve", "--follow", feed.to_str(), "--json"]).unwrap();
        // The serve JSON wraps the identical report in a service object.
        use serde::Deserialize as _;
        let wrapped: serde::Value = serde_json::from_str(&served).unwrap();
        let field = |v: &serde::Value, name: &str| {
            v.as_object()
                .unwrap()
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("missing {name} in {served}"))
        };
        let mut report = SimReport::from_value(&field(&wrapped, "report")).unwrap();
        let mut batch: Vec<SimReport> = serde_json::from_str(&batch).unwrap();
        report.scheduler_nanos = 0;
        batch[0].scheduler_nanos = 0;
        assert_eq!(
            serde_json::to_string(&report).unwrap(),
            serde_json::to_string(&batch[0]).unwrap()
        );
        let service = field(&wrapped, "service");
        let cause = field(&service, "cause");
        assert_eq!(cause.as_str(), Some("drained"));
        assert!(served.contains("\"arrivals\": 2"), "{served}");
        assert!(served.contains("\"shed\": 0"), "{served}");
    }

    #[test]
    fn serve_tenant_file_gates_admission_with_tenant_labels() {
        let feed = arrivals_feed(&[("ads/a", 0), ("ads/b", 10), ("etl/c", 20)]);
        let tenants = temp_file_with(
            "policy = \"necessity\"\n\
             [tenant.ads]\nmax_in_flight = 1\n\
             [tenant.etl]\nmax_in_flight = 4\n",
        );
        let out = run_line(&[
            "serve",
            "--follow",
            feed.to_str(),
            "--tenants",
            tenants.to_str(),
        ])
        .unwrap();
        assert!(out.contains("=== serve"), "{out}");
        assert!(
            out.contains("admission rejected 1  (tenant_cap_exceeded:ads x1)"),
            "{out}"
        );
        assert!(out.contains("etl/c"), "{out}");
    }

    #[test]
    fn serve_rejects_unknown_tenants_without_a_fallback() {
        let feed = arrivals_feed(&[("mystery/w", 0)]);
        let tenants = temp_file_with("[tenant.ads]\nmax_in_flight = 1\n");
        let out = run_line(&[
            "serve",
            "--follow",
            feed.to_str(),
            "--tenants",
            tenants.to_str(),
        ])
        .unwrap();
        assert!(out.contains("unknown_tenant:mystery x1"), "{out}");
    }

    #[test]
    fn serve_wall_clock_drains_and_reports_idle_shutdown() {
        let feed = arrivals_feed(&[("live/a", 0), ("live/b", 5)]);
        let metrics = tempfile::NamedTempFile::new().unwrap().into_temp_path();
        let out = run_line(&[
            "serve",
            "--follow",
            feed.to_str(),
            "--wall-clock",
            "--speedup",
            "4000",
            "--poll-interval",
            "1ms",
            "--idle-timeout",
            "300ms",
            "--admission",
            "off",
            "--metrics-out",
            metrics.to_str(),
        ])
        .unwrap();
        assert!(out.contains("shutdown: idle-timeout"), "{out}");
        assert!(out.contains("arrivals 2"), "{out}");
        assert!(out.contains("misses 0/2"), "{out}");
        let prom = std::fs::read_to_string(metrics.to_str()).unwrap();
        assert!(prom.contains("woha_arrivals_total 2"), "{prom}");
        assert!(prom.contains("woha_arrivals_shed_total 0"), "{prom}");
        assert!(prom.contains("woha_arrival_queue_depth"), "{prom}");
        assert!(prom.contains("woha_arrival_lag_seconds"), "{prom}");
    }

    #[test]
    fn serve_surfaces_feed_errors_with_the_file_name() {
        let feed = temp_file_with("not json at all\n");
        let err = run_line(&["serve", "--follow", feed.to_str()]).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }
}
