//! `woha-cli` — validate workflow XML files, generate scheduling plans,
//! and simulate workloads on a virtual Hadoop cluster.
//!
//! ```text
//! woha-cli validate my-workflow.xml
//! woha-cli plan my-workflow.xml --slots 96 --policy lpf
//! woha-cli simulate a.xml b.xml@5m --cluster 32x2x1 --scheduler all
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let command = match args::parse(&raw) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::USAGE);
            return ExitCode::from(2);
        }
    };
    match commands::run(command) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
