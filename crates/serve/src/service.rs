//! The service loop: source → backpressure → admission → clocked driver.
//!
//! [`run_service`] assembles the live pipeline and runs it to completion:
//!
//! ```text
//! FollowSource/ChannelSource ──▶ ArrivalBuffer ──▶ driver(Clock, gate)
//!         ▲                            │ stats            │
//!         └── SourceStop ◀── ShutdownSignal ◀── Watcher ◀─┘
//! ```
//!
//! The same function serves two modes. Under [`ClockMode::Wall`] it is a
//! real service: the driver paces events against the wall clock, the
//! source blocks on fresh input, and the watcher thread converts stop
//! files / idle timeouts / arrival budgets into a drain-and-exit. Under
//! [`ClockMode::Sim`] it is a deterministic replay of the identical
//! pipeline — every clock answer is the identity, a `Pending` source ends
//! the run, and the output is byte-identical to the batch simulator —
//! which is what makes the live configuration testable.

use crate::shutdown::{ShutdownCause, ShutdownConfig, ShutdownSignal, Watcher};
use std::time::Duration;
use woha_sim::{
    try_run_simulation_clocked, AdmissionGate, ArrivalBuffer, ClusterConfig, MetricsRegistry,
    SimClock, SimConfig, SimError, SimReport, TraceSink, WallClock, WorkflowScheduler,
};
use woha_trace::{ChannelSource, FollowSource, JsonlSource, SourceStop, VecSource, WorkloadSource};

/// How the driver experiences time.
#[derive(Debug, Clone, Copy, Default)]
pub enum ClockMode {
    /// Deterministic replay: never waits, identical to the batch driver.
    #[default]
    Sim,
    /// Live execution paced against real time.
    Wall {
        /// Sim-time-per-real-time factor (1.0 = real time).
        speedup: f64,
        /// Sleep slice while waiting; bounds arrival and shutdown latency.
        poll: Duration,
    },
}

/// Knobs for one [`run_service`] invocation.
#[derive(Debug, Clone, Default)]
pub struct ServeConfig {
    /// Clock mode; defaults to deterministic replay.
    pub clock: ClockMode,
    /// Arrival buffer capacity (0 is treated as the 1024 default).
    pub buffer: usize,
    /// Optional shedding watermarks as `(high, low)`; defaults to the
    /// buffer's own (shed at full, resume at half).
    pub watermarks: Option<(usize, usize)>,
    /// Shutdown conditions the watcher thread polls.
    pub shutdown: ShutdownConfig,
}

impl ServeConfig {
    fn capacity(&self) -> usize {
        if self.buffer == 0 {
            1024
        } else {
            self.buffer
        }
    }
}

/// Everything a finished service run reports.
#[derive(Debug)]
pub struct ServiceOutcome {
    /// The simulation report (outcomes, admission, recovery).
    pub report: SimReport,
    /// The metrics registry with service stats folded in, when enabled.
    pub metrics: Option<MetricsRegistry>,
    /// Workflows accepted into the arrival buffer.
    pub arrivals: u64,
    /// Workflows dropped by backpressure shedding.
    pub shed: u64,
    /// Highest arrival-buffer depth observed.
    pub depth_peak: u64,
    /// Largest ingest lag observed, in sim milliseconds.
    pub lag_peak_ms: u64,
    /// Why shutdown began; `None` means the source drained on its own.
    pub cause: Option<ShutdownCause>,
    /// A source-side failure (e.g. a malformed trace line), if any.
    pub source_error: Option<String>,
}

/// Source-specific health reporting the service surfaces after a run.
///
/// Sources that can fail mid-stream (parse errors in a followed file)
/// override [`source_error`](SourceDiagnostics::source_error); in-memory
/// sources keep the `None` default.
pub trait SourceDiagnostics {
    /// The error that ended the source early, if any.
    fn source_error(&self) -> Option<String> {
        None
    }
}

impl SourceDiagnostics for FollowSource {
    fn source_error(&self) -> Option<String> {
        self.error().map(String::from)
    }
}

impl<R: std::io::BufRead> SourceDiagnostics for JsonlSource<R> {
    fn source_error(&self) -> Option<String> {
        self.error().map(String::from)
    }
}

impl SourceDiagnostics for ChannelSource {}
impl SourceDiagnostics for VecSource {}

/// Runs the service pipeline to completion and reports what happened.
///
/// `stop` is the source's own stop handle (e.g.
/// [`FollowSource::stop_handle`]); linking it into the internal
/// [`ShutdownSignal`] is what makes a watcher-triggered shutdown drain the
/// source cleanly instead of abandoning buffered work. Pass `None` for
/// sources that end on their own (a channel whose sender hangs up).
#[allow(clippy::too_many_arguments)]
pub fn run_service<S: WorkloadSource + SourceDiagnostics>(
    source: S,
    stop: Option<SourceStop>,
    scheduler: &mut dyn WorkflowScheduler,
    cluster: &ClusterConfig,
    config: &SimConfig,
    gate: Option<&mut dyn AdmissionGate>,
    sink: Option<&mut dyn TraceSink>,
    serve: &ServeConfig,
) -> Result<ServiceOutcome, SimError> {
    let signal = ShutdownSignal::new();
    if let Some(stop) = stop {
        signal.link_source(stop);
    }
    let mut buffer = ArrivalBuffer::new(source, serve.capacity());
    if let Some((high, low)) = serve.watermarks {
        buffer = buffer.with_watermarks(high, low);
    }
    let stats = buffer.stats();
    let watcher = Watcher::spawn(serve.shutdown.clone(), stats.clone(), signal.clone());

    // The clocked entry point ties gate, sink, and clock to one lifetime,
    // so each arm reborrows them fresh alongside its own clock.
    let result = match serve.clock {
        ClockMode::Sim => {
            let mut clock = SimClock;
            try_run_simulation_clocked(
                &mut buffer,
                scheduler,
                cluster,
                config,
                gate.map(|g| &mut *g as &mut dyn AdmissionGate),
                sink.map(|s| &mut *s as &mut dyn TraceSink),
                &mut clock,
            )
        }
        ClockMode::Wall { speedup, poll } => {
            let mut clock = WallClock::with_speedup(speedup).with_poll_interval(poll);
            signal.link_flag(clock.stop_flag());
            try_run_simulation_clocked(
                &mut buffer,
                scheduler,
                cluster,
                config,
                gate.map(|g| &mut *g as &mut dyn AdmissionGate),
                sink.map(|s| &mut *s as &mut dyn TraceSink),
                &mut clock,
            )
        }
    };
    watcher.finish();
    let (report, mut metrics) = result?;
    if let Some(m) = metrics.as_mut() {
        stats.export_into(m);
    }
    Ok(ServiceOutcome {
        report,
        metrics,
        arrivals: stats.arrivals(),
        shed: stats.shed(),
        depth_peak: stats.depth_peak(),
        lag_peak_ms: stats.lag_peak_ms(),
        cause: signal.cause(),
        source_error: buffer.inner().source_error(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenants::TenantsConfig;
    use woha_model::{JobSpec, SimDuration, SimTime, WorkflowBuilder, WorkflowSpec};
    use woha_sim::SubmitOrderScheduler;

    fn spec(name: &str, submit_s: u64, deadline_mins: u64) -> WorkflowSpec {
        let mut b = WorkflowBuilder::new(name);
        b.add_job(JobSpec::new(
            "j0",
            2,
            1,
            SimDuration::from_secs(20),
            SimDuration::from_secs(30),
        ));
        b.relative_deadline(SimDuration::from_mins(deadline_mins));
        b.build().unwrap().reissued(
            name.to_string(),
            SimTime::from_secs(submit_s),
            SimTime::from_secs(submit_s) + SimDuration::from_mins(deadline_mins),
        )
    }

    fn cluster() -> ClusterConfig {
        ClusterConfig::uniform(4, 2, 1)
    }

    #[test]
    fn sim_mode_run_matches_batch_simulation() {
        let specs: Vec<WorkflowSpec> = (0..4).map(|i| spec(&format!("w{i}"), i * 30, 20)).collect();
        let mut batch = woha_sim::run_simulation(
            &specs,
            &mut SubmitOrderScheduler::new(),
            &cluster(),
            &SimConfig::default(),
        );
        let mut outcome = run_service(
            VecSource::new(specs),
            None,
            &mut SubmitOrderScheduler::new(),
            &cluster(),
            &SimConfig::default(),
            None,
            None,
            &ServeConfig::default(),
        )
        .unwrap();
        // scheduler_nanos is measured wall time, the one legitimately
        // nondeterministic field; everything else must match bytewise.
        batch.scheduler_nanos = 0;
        outcome.report.scheduler_nanos = 0;
        assert_eq!(
            serde_json::to_string(&outcome.report).unwrap(),
            serde_json::to_string(&batch).unwrap()
        );
        assert_eq!(outcome.arrivals, 4);
        assert_eq!(outcome.shed, 0);
        assert_eq!(outcome.cause, None);
        assert_eq!(outcome.source_error, None);
    }

    #[test]
    fn wall_mode_drains_a_channel_and_reports_idle_shutdown() {
        let (tx, source) = ChannelSource::pair();
        for i in 0..3 {
            tx.send(spec(&format!("live/w{i}"), i * 5, 30)).unwrap();
        }
        // Sender stays alive: only the idle timeout can end this run.
        let outcome = run_service(
            source,
            None,
            &mut SubmitOrderScheduler::new(),
            &cluster(),
            &SimConfig::default(),
            None,
            None,
            &ServeConfig {
                clock: ClockMode::Wall {
                    speedup: 4000.0,
                    poll: Duration::from_millis(1),
                },
                shutdown: ShutdownConfig {
                    idle_timeout: Some(Duration::from_millis(150)),
                    poll: Duration::from_millis(5),
                    ..ShutdownConfig::default()
                },
                ..ServeConfig::default()
            },
        )
        .unwrap();
        drop(tx);
        assert_eq!(outcome.arrivals, 3);
        assert_eq!(outcome.report.outcomes.len(), 3);
        assert!(outcome.report.completed, "drained run completes all work");
        assert_eq!(outcome.cause, Some(ShutdownCause::IdleTimeout));
    }

    #[test]
    fn tenant_gate_rejections_reach_the_report_with_tenant_labels() {
        let tenants =
            TenantsConfig::parse("policy = \"necessity\"\n[tenant.ads]\nmax_in_flight = 1\n")
                .unwrap();
        let mut gate = tenants.build_gate(&cluster());
        // Two overlapping ads workflows: the second exceeds the in-flight
        // cap of 1 and must be rejected with a tenant-qualified label.
        let specs = vec![spec("ads/a", 0, 30), spec("ads/b", 1, 30)];
        let outcome = run_service(
            VecSource::new(specs),
            None,
            &mut SubmitOrderScheduler::new(),
            &cluster(),
            &SimConfig::default(),
            Some(&mut gate),
            None,
            &ServeConfig::default(),
        )
        .unwrap();
        let admission = outcome.report.admission.expect("gate produces a report");
        assert_eq!(admission.workflows_rejected, 1);
        assert_eq!(admission.rejections[0].reason, "tenant_cap_exceeded:ads");
    }

    #[test]
    fn metrics_export_includes_service_stats() {
        let specs: Vec<WorkflowSpec> = (0..6).map(|i| spec(&format!("w{i}"), i, 20)).collect();
        let config = SimConfig {
            observability: woha_sim::ObservabilityConfig {
                metrics: true,
                ..woha_sim::ObservabilityConfig::default()
            },
            ..SimConfig::default()
        };
        let outcome = run_service(
            VecSource::new(specs),
            None,
            &mut SubmitOrderScheduler::new(),
            &cluster(),
            &config,
            None,
            None,
            &ServeConfig {
                buffer: 3,
                watermarks: Some((3, 1)),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let text = outcome.metrics.expect("metrics enabled").prometheus_text();
        assert!(text.contains("woha_arrivals_total"), "{text}");
        assert!(text.contains("woha_arrivals_shed_total"), "{text}");
        assert!(text.contains("woha_arrival_queue_depth"), "{text}");
        assert!(text.contains("woha_arrival_lag_seconds"), "{text}");
        assert_eq!(outcome.arrivals + outcome.shed, 6);
    }

    #[test]
    fn follow_source_parse_error_is_surfaced_not_swallowed() {
        let dir = std::env::temp_dir().join(format!("woha-serve-err-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("bad.jsonl");
        std::fs::write(&path, "this is not json\n").expect("write");
        let source = FollowSource::file(&path);
        let stop = source.stop_handle();
        stop.stop();
        let outcome = run_service(
            source,
            Some(stop),
            &mut SubmitOrderScheduler::new(),
            &cluster(),
            &SimConfig::default(),
            None,
            None,
            &ServeConfig::default(),
        )
        .unwrap();
        let err = outcome.source_error.expect("parse error surfaces");
        assert!(err.contains("bad.jsonl"), "{err}");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
