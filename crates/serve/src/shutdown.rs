//! Cooperative shutdown without OS signal handlers.
//!
//! The workspace builds fully offline with no libc-binding crates, so the
//! service cannot install a SIGTERM handler. Instead shutdown is a shared
//! [`ShutdownSignal`] that a background [`Watcher`] thread raises when an
//! operator-visible condition holds:
//!
//! - a **stop file** appears (`touch stop && rm stop` is the offline
//!   equivalent of `kill -TERM`),
//! - the service has been **idle** — no new arrivals — for a configured
//!   timeout, or
//! - a **maximum arrival count** has been reached (smoke tests, benches).
//!
//! Raising the signal propagates to every linked [`SourceStop`] (so
//! blocking sources finish their drain and report
//! [`Exhausted`](woha_trace::SourcePoll::Exhausted)) and every linked
//! clock stop flag (so [`WallClock`](woha_sim::WallClock) stops pacing and
//! the remaining event queue drains at full speed). The event loop itself
//! never checks the signal: it simply observes its source ending, which is
//! exactly the drain-on-stop contract the sources implement.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use woha_sim::ServiceStats;
use woha_trace::SourceStop;

/// Why the service began shutting down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownCause {
    /// The configured stop file appeared on disk.
    StopFile,
    /// No arrivals were observed for the configured idle window.
    IdleTimeout,
    /// The configured arrival budget was consumed.
    MaxArrivals,
}

impl std::fmt::Display for ShutdownCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ShutdownCause::StopFile => "stop-file",
            ShutdownCause::IdleTimeout => "idle-timeout",
            ShutdownCause::MaxArrivals => "max-arrivals",
        })
    }
}

#[derive(Default)]
struct SignalInner {
    fired: AtomicBool,
    cause: Mutex<Option<ShutdownCause>>,
    flags: Mutex<Vec<Arc<AtomicBool>>>,
    sources: Mutex<Vec<SourceStop>>,
}

/// A broadcast stop request shared between the watcher thread, the live
/// clock, and every blocking source. Cloning shares the same signal.
#[derive(Clone, Default)]
pub struct ShutdownSignal(Arc<SignalInner>);

impl ShutdownSignal {
    /// A fresh, un-raised signal.
    pub fn new() -> Self {
        ShutdownSignal::default()
    }

    /// Registers a clock stop flag to raise when the signal fires. If the
    /// signal already fired the flag is raised immediately, so link order
    /// never races the trigger.
    pub fn link_flag(&self, flag: Arc<AtomicBool>) {
        if self.is_triggered() {
            flag.store(true, Ordering::SeqCst);
        }
        self.0.flags.lock().expect("signal lock").push(flag);
    }

    /// Registers a source stop handle to raise when the signal fires.
    pub fn link_source(&self, stop: SourceStop) {
        if self.is_triggered() {
            stop.stop();
        }
        self.0.sources.lock().expect("signal lock").push(stop);
    }

    /// Raises the signal. The first cause wins; later triggers are no-ops.
    pub fn trigger(&self, cause: ShutdownCause) {
        if self.0.fired.swap(true, Ordering::SeqCst) {
            return;
        }
        *self.0.cause.lock().expect("signal lock") = Some(cause);
        for flag in self.0.flags.lock().expect("signal lock").iter() {
            flag.store(true, Ordering::SeqCst);
        }
        for stop in self.0.sources.lock().expect("signal lock").iter() {
            stop.stop();
        }
    }

    /// Whether the signal has been raised.
    pub fn is_triggered(&self) -> bool {
        self.0.fired.load(Ordering::SeqCst)
    }

    /// The recorded cause, once raised.
    pub fn cause(&self) -> Option<ShutdownCause> {
        *self.0.cause.lock().expect("signal lock")
    }
}

/// Conditions the [`Watcher`] polls for. All default to disabled; a
/// service with every condition disabled only stops when its source ends.
#[derive(Debug, Clone)]
pub struct ShutdownConfig {
    /// Stop when this file exists.
    pub stop_file: Option<PathBuf>,
    /// Stop after this long without a new arrival.
    pub idle_timeout: Option<Duration>,
    /// Stop once this many workflows have arrived.
    pub max_arrivals: Option<u64>,
    /// Watcher poll interval (clamped to at least 1ms).
    pub poll: Duration,
}

impl Default for ShutdownConfig {
    fn default() -> Self {
        ShutdownConfig {
            stop_file: None,
            idle_timeout: None,
            max_arrivals: None,
            poll: Duration::from_millis(25),
        }
    }
}

impl ShutdownConfig {
    fn armed(&self) -> bool {
        self.stop_file.is_some() || self.idle_timeout.is_some() || self.max_arrivals.is_some()
    }
}

/// Background thread that raises a [`ShutdownSignal`] when a
/// [`ShutdownConfig`] condition holds. Detached from the event loop: the
/// loop blocks inside the simulation driver, so shutdown conditions must
/// be observed from outside it.
pub struct Watcher {
    done: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Watcher {
    /// Spawns the watcher. With no condition armed, no thread is spawned
    /// and [`finish`](Watcher::finish) returns immediately.
    pub fn spawn(config: ShutdownConfig, stats: ServiceStats, signal: ShutdownSignal) -> Watcher {
        let done = Arc::new(AtomicBool::new(false));
        if !config.armed() {
            return Watcher { done, handle: None };
        }
        let exit = Arc::clone(&done);
        let poll = config.poll.max(Duration::from_millis(1));
        let handle = std::thread::spawn(move || {
            let mut last_count = stats.arrivals();
            let mut last_change = Instant::now();
            loop {
                if exit.load(Ordering::SeqCst) || signal.is_triggered() {
                    return;
                }
                if let Some(path) = &config.stop_file {
                    if path.exists() {
                        signal.trigger(ShutdownCause::StopFile);
                        return;
                    }
                }
                if let Some(budget) = config.max_arrivals {
                    if stats.arrivals() >= budget {
                        signal.trigger(ShutdownCause::MaxArrivals);
                        return;
                    }
                }
                if let Some(window) = config.idle_timeout {
                    let count = stats.arrivals();
                    if count != last_count {
                        last_count = count;
                        last_change = Instant::now();
                    } else if last_change.elapsed() >= window {
                        signal.trigger(ShutdownCause::IdleTimeout);
                        return;
                    }
                }
                std::thread::sleep(poll);
            }
        });
        Watcher {
            done,
            handle: Some(handle),
        }
    }

    /// Stops the watcher thread and waits for it to exit.
    pub fn finish(mut self) {
        self.done.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Watcher {
    fn drop(&mut self) {
        self.done.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_cause_wins_and_links_propagate() {
        let signal = ShutdownSignal::new();
        let flag = Arc::new(AtomicBool::new(false));
        let stop = SourceStop::new();
        signal.link_flag(Arc::clone(&flag));
        signal.link_source(stop.clone());
        assert!(!signal.is_triggered());
        signal.trigger(ShutdownCause::StopFile);
        signal.trigger(ShutdownCause::IdleTimeout);
        assert_eq!(signal.cause(), Some(ShutdownCause::StopFile));
        assert!(flag.load(Ordering::SeqCst));
        assert!(stop.is_stopped());
    }

    #[test]
    fn late_links_see_an_already_raised_signal() {
        let signal = ShutdownSignal::new();
        signal.trigger(ShutdownCause::MaxArrivals);
        let flag = Arc::new(AtomicBool::new(false));
        let stop = SourceStop::new();
        signal.link_flag(Arc::clone(&flag));
        signal.link_source(stop.clone());
        assert!(flag.load(Ordering::SeqCst));
        assert!(stop.is_stopped());
    }

    #[test]
    fn watcher_fires_on_stop_file() {
        let dir = std::env::temp_dir().join(format!("woha-shutdown-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let stop_path = dir.join("stop");
        let _ = std::fs::remove_file(&stop_path);
        let signal = ShutdownSignal::new();
        let watcher = Watcher::spawn(
            ShutdownConfig {
                stop_file: Some(stop_path.clone()),
                poll: Duration::from_millis(2),
                ..ShutdownConfig::default()
            },
            ServiceStats::default(),
            signal.clone(),
        );
        std::fs::write(&stop_path, b"").expect("touch stop file");
        let deadline = Instant::now() + Duration::from_secs(5);
        while !signal.is_triggered() {
            assert!(Instant::now() < deadline, "watcher never fired");
            std::thread::sleep(Duration::from_millis(2));
        }
        watcher.finish();
        assert_eq!(signal.cause(), Some(ShutdownCause::StopFile));
        let _ = std::fs::remove_file(&stop_path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn watcher_fires_on_idle_timeout_but_not_while_arrivals_flow() {
        let stats = ServiceStats::default();
        let signal = ShutdownSignal::new();
        let watcher = Watcher::spawn(
            ShutdownConfig {
                idle_timeout: Some(Duration::from_millis(60)),
                poll: Duration::from_millis(5),
                ..ShutdownConfig::default()
            },
            stats.clone(),
            signal.clone(),
        );
        // Keep arrivals flowing for a while: the watcher must stay quiet.
        for i in 1..=4u64 {
            stats.record_arrivals(1);
            std::thread::sleep(Duration::from_millis(20));
            assert!(!signal.is_triggered(), "fired during active period {i}");
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while !signal.is_triggered() {
            assert!(Instant::now() < deadline, "idle timeout never fired");
            std::thread::sleep(Duration::from_millis(5));
        }
        watcher.finish();
        assert_eq!(signal.cause(), Some(ShutdownCause::IdleTimeout));
    }

    #[test]
    fn watcher_fires_on_max_arrivals() {
        let stats = ServiceStats::default();
        stats.record_arrivals(3);
        let signal = ShutdownSignal::new();
        let watcher = Watcher::spawn(
            ShutdownConfig {
                max_arrivals: Some(3),
                poll: Duration::from_millis(2),
                ..ShutdownConfig::default()
            },
            stats,
            signal.clone(),
        );
        let deadline = Instant::now() + Duration::from_secs(5);
        while !signal.is_triggered() {
            assert!(Instant::now() < deadline, "max-arrivals never fired");
            std::thread::sleep(Duration::from_millis(2));
        }
        watcher.finish();
        assert_eq!(signal.cause(), Some(ShutdownCause::MaxArrivals));
    }
}
