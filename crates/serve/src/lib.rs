//! Long-running scheduler service for the WOHA framework.
//!
//! The batch simulator answers "how would this trace have gone"; this
//! crate answers "run the scheduler *now*, against work that keeps
//! arriving". It composes pieces the rest of the workspace provides into a
//! service process:
//!
//! - **blocking sources** ([`woha_trace::FollowSource`],
//!   [`woha_trace::ChannelSource`]) that report
//!   [`Pending`](woha_trace::SourcePoll::Pending) instead of ending at
//!   EOF,
//! - a **wall clock** ([`woha_sim::WallClock`]) that paces the driver's
//!   event loop against real time,
//! - **backpressure** ([`woha_sim::ArrivalBuffer`]) bounding how far the
//!   master can fall behind the arrival stream, and
//! - **multi-tenant admission** ([`woha_core::MultiTenantGate`]) read
//!   from a [`TenantsConfig`] file.
//!
//! plus the glue only a service needs: cooperative [`shutdown`] (no OS
//! signals — a stop file, an idle timeout, or an arrival budget raise a
//! shared [`ShutdownSignal`] that drains every source before the run
//! ends) and the [`run_service`] loop that wires it all together and
//! reports a [`ServiceOutcome`].
//!
//! `woha serve --follow <path> --wall-clock` is the CLI front end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod service;
pub mod shutdown;
pub mod tenants;

pub use service::{run_service, ClockMode, ServeConfig, ServiceOutcome, SourceDiagnostics};
pub use shutdown::{ShutdownCause, ShutdownConfig, ShutdownSignal, Watcher};
pub use tenants::TenantsConfig;
