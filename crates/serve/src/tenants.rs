//! Tenant configuration files for the live service.
//!
//! The service reads per-tenant admission policy from a small TOML-subset
//! file (the vendored serde derive has no field-attribute support, and the
//! workspace has no TOML crate, so the format is parsed by hand — it
//! accepts the natural TOML spelling of exactly the shapes we need):
//!
//! ```toml
//! # Overload arbitration: necessity | value-density | weighted-fair
//! policy = "weighted-fair"
//!
//! [tenant.ads]
//! max_in_flight = 4          # concurrent admitted workflows
//! max_slot_ms = 3600000      # optional total slot-time budget
//! weight = 2.0               # optional weighted-fair share
//!
//! [tenant.etl]
//! max_in_flight = 2
//!
//! # Optional: admit tenants not listed above under this fallback spec.
//! [unknown]
//! max_in_flight = 1
//! ```
//!
//! Comments (`#`), blank lines, and quoted or bare scalar values are
//! supported; nothing else is. Unknown keys and malformed lines are
//! errors, not silent defaults — a typo in an admission policy should
//! never relax it.

use std::path::Path;
use woha_core::{MultiTenantGate, OverloadPolicy, TenantSpec};
use woha_sim::ClusterConfig;

/// Parsed tenant configuration: an overload policy plus one
/// [`TenantSpec`] per `[tenant.NAME]` section and an optional `[unknown]`
/// fallback.
#[derive(Debug, Clone, Default)]
pub struct TenantsConfig {
    /// How aggregate overload is arbitrated across tenants.
    pub policy: OverloadPolicy,
    /// Per-tenant admission limits, in file order.
    pub tenants: Vec<TenantSpec>,
    /// Fallback spec for tenants without a section; `None` rejects them.
    pub unknown: Option<TenantSpec>,
}

/// One section being accumulated while parsing.
#[derive(Debug, Default)]
struct RawSpec {
    max_in_flight: Option<usize>,
    max_slot_ms: Option<u128>,
    weight: Option<f64>,
}

impl RawSpec {
    fn build(self, name: &str) -> TenantSpec {
        let mut spec = TenantSpec::new(name, self.max_in_flight.unwrap_or(1));
        if let Some(budget) = self.max_slot_ms {
            spec = spec.with_slot_budget(budget);
        }
        if let Some(weight) = self.weight {
            spec = spec.with_weight(weight);
        }
        spec
    }
}

#[derive(Debug)]
enum Section {
    Top,
    Tenant(String),
    Unknown,
}

impl TenantsConfig {
    /// Parses the TOML-subset text. Errors carry the 1-based line number.
    pub fn parse(text: &str) -> Result<TenantsConfig, String> {
        let mut config = TenantsConfig::default();
        let mut section = Section::Top;
        let mut raw = RawSpec::default();

        let close =
            |section: &Section, raw: RawSpec, config: &mut TenantsConfig| -> Result<(), String> {
                match section {
                    Section::Top => {}
                    Section::Tenant(name) => {
                        if config.tenants.iter().any(|t| t.name == *name) {
                            return Err(format!("duplicate tenant section {name:?}"));
                        }
                        config.tenants.push(raw.build(name));
                    }
                    Section::Unknown => {
                        if config.unknown.is_some() {
                            return Err("duplicate [unknown] section".to_string());
                        }
                        config.unknown = Some(raw.build("unknown"));
                    }
                }
                Ok(())
            };

        for (idx, line) in text.lines().enumerate() {
            let at = |msg: String| format!("line {}: {msg}", idx + 1);
            let line = strip_comment(line).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let header = header
                    .strip_suffix(']')
                    .ok_or_else(|| at(format!("unterminated section header {line:?}")))?
                    .trim();
                close(&section, std::mem::take(&mut raw), &mut config).map_err(at)?;
                section = match header.strip_prefix("tenant.") {
                    Some(name) if !name.trim().is_empty() => {
                        Section::Tenant(name.trim().to_string())
                    }
                    Some(_) => return Err(at("empty tenant name".to_string())),
                    None if header == "unknown" => Section::Unknown,
                    None => return Err(at(format!("unknown section [{header}]"))),
                };
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| at(format!("expected key = value, got {line:?}")))?;
            let (key, value) = (key.trim(), unquote(value.trim()));
            match (&section, key) {
                (Section::Top, "policy") => {
                    config.policy = parse_policy(value).map_err(at)?;
                }
                (Section::Top, _) => {
                    return Err(at(format!("unknown top-level key {key:?}")));
                }
                (_, "max_in_flight") => {
                    raw.max_in_flight =
                        Some(value.parse().map_err(|e| at(format!("bad {key}: {e}")))?);
                }
                (_, "max_slot_ms") => {
                    raw.max_slot_ms =
                        Some(value.parse().map_err(|e| at(format!("bad {key}: {e}")))?);
                }
                (_, "weight") => {
                    let w: f64 = value.parse().map_err(|e| at(format!("bad {key}: {e}")))?;
                    if !(w.is_finite() && w > 0.0) {
                        return Err(at(format!("weight must be positive, got {value}")));
                    }
                    raw.weight = Some(w);
                }
                (_, _) => return Err(at(format!("unknown tenant key {key:?}"))),
            }
        }
        close(&section, raw, &mut config)?;
        Ok(config)
    }

    /// Reads and parses a tenant file.
    pub fn load(path: impl AsRef<Path>) -> Result<TenantsConfig, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        TenantsConfig::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Builds the admission gate this config describes, sized for
    /// `cluster`.
    pub fn build_gate(&self, cluster: &ClusterConfig) -> MultiTenantGate {
        let mut gate = MultiTenantGate::new(cluster).with_policy(self.policy);
        for spec in &self.tenants {
            gate.add_tenant(spec.clone());
        }
        if let Some(fallback) = &self.unknown {
            gate = gate.allow_unknown(fallback.clone());
        }
        gate
    }
}

fn parse_policy(value: &str) -> Result<OverloadPolicy, String> {
    match value {
        "necessity" => Ok(OverloadPolicy::Necessity),
        "value-density" => Ok(OverloadPolicy::ValueDensity),
        "weighted-fair" => Ok(OverloadPolicy::WeightedFair),
        other => Err(format!(
            "unknown policy {other:?} (expected necessity, value-density, or weighted-fair)"
        )),
    }
}

/// Drops everything from the first `#` that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_quotes = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_quotes = !in_quotes,
            '#' if !in_quotes => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Strips one matching pair of surrounding double quotes, if present.
fn unquote(value: &str) -> &str {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .unwrap_or(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# service admission config
policy = "weighted-fair"

[tenant.ads]
max_in_flight = 4
max_slot_ms = 3600000   # one slot-hour
weight = 2.0

[tenant.etl]
max_in_flight = 2

[unknown]
max_in_flight = 1
weight = 0.5
"#;

    #[test]
    fn parses_the_documented_shape() {
        let c = TenantsConfig::parse(SAMPLE).unwrap();
        assert_eq!(c.policy, OverloadPolicy::WeightedFair);
        assert_eq!(c.tenants.len(), 2);
        assert_eq!(c.tenants[0].name, "ads");
        assert_eq!(c.tenants[0].max_in_flight, 4);
        assert_eq!(c.tenants[0].max_slot_ms, Some(3_600_000));
        assert_eq!(c.tenants[0].weight, 2.0);
        assert_eq!(c.tenants[1].name, "etl");
        assert_eq!(c.tenants[1].max_in_flight, 2);
        assert_eq!(c.tenants[1].max_slot_ms, None);
        let fallback = c.unknown.as_ref().unwrap();
        assert_eq!(fallback.max_in_flight, 1);
        assert_eq!(fallback.weight, 0.5);
    }

    #[test]
    fn builds_a_gate_that_enforces_the_file() {
        let c = TenantsConfig::parse(SAMPLE).unwrap();
        let gate = c.build_gate(&ClusterConfig::uniform(4, 2, 1));
        let names: Vec<&str> = gate.tenants().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["ads", "etl"]);
    }

    #[test]
    fn rejects_typos_rather_than_defaulting() {
        for (text, needle) in [
            ("policy = \"fastest\"", "unknown policy"),
            ("[tenant.ads]\nmax_inflight = 3", "unknown tenant key"),
            ("[group.ads]\nmax_in_flight = 3", "unknown section"),
            ("max_in_flight = 3", "unknown top-level key"),
            ("[tenant.ads]\nmax_in_flight three", "expected key = value"),
            ("[tenant.ads]\nweight = -1", "weight must be positive"),
            ("[tenant.ads]\n[tenant.ads]", "duplicate tenant section"),
            ("[unknown]\n[unknown]", "duplicate [unknown] section"),
            ("[tenant.]", "empty tenant name"),
            ("[tenant.ads", "unterminated section header"),
        ] {
            let err = TenantsConfig::parse(text).unwrap_err();
            assert!(err.contains(needle), "{text:?} -> {err:?}");
        }
    }

    #[test]
    fn comments_and_quotes_interact_correctly() {
        let c = TenantsConfig::parse("policy = \"value-density\" # not \"necessity\"").unwrap();
        assert_eq!(c.policy, OverloadPolicy::ValueDensity);
        assert_eq!(strip_comment(r#"x = "a#b" # tail"#), r#"x = "a#b" "#);
    }

    #[test]
    fn empty_file_is_a_valid_default() {
        let c = TenantsConfig::parse("").unwrap();
        assert_eq!(c.policy, OverloadPolicy::Necessity);
        assert!(c.tenants.is_empty());
        assert!(c.unknown.is_none());
    }
}
