//! Static description of one Map-Reduce job inside a workflow.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Static description of a Map-Reduce job (`J_i^j` in the paper): how many
/// map and reduce tasks it runs and how long each is estimated to take.
///
/// The duration fields are the *estimates* (`M_i^j`, `R_i^j`) that the
/// client-side Scheduling Plan Generator works from; the simulator may run
/// the actual tasks with jitter around them, exactly as real executions
/// deviate from history-based estimates.
///
/// # Examples
///
/// ```
/// use woha_model::{JobSpec, SimDuration};
/// let job = JobSpec::new("aggregate", 40, 4,
///     SimDuration::from_secs(30), SimDuration::from_secs(120));
/// assert_eq!(job.total_tasks(), 44);
/// assert_eq!(job.length(), SimDuration::from_secs(150));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JobSpec {
    name: String,
    map_tasks: u32,
    reduce_tasks: u32,
    map_duration: SimDuration,
    reduce_duration: SimDuration,
}

impl JobSpec {
    /// Creates a job spec.
    ///
    /// `map_tasks` is the number of mappers (`m_i^j`), `reduce_tasks` the
    /// number of reducers (`r_i^j`, may be zero for map-only jobs), and the
    /// two durations are the per-task execution time estimates.
    pub fn new(
        name: impl Into<String>,
        map_tasks: u32,
        reduce_tasks: u32,
        map_duration: SimDuration,
        reduce_duration: SimDuration,
    ) -> Self {
        JobSpec {
            name: name.into(),
            map_tasks,
            reduce_tasks,
            map_duration,
            reduce_duration,
        }
    }

    /// The job's human-readable name (unique within its workflow).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of map tasks (`m_i^j`).
    pub fn map_tasks(&self) -> u32 {
        self.map_tasks
    }

    /// Number of reduce tasks (`r_i^j`).
    pub fn reduce_tasks(&self) -> u32 {
        self.reduce_tasks
    }

    /// Estimated duration of one map task (`M_i^j`).
    pub fn map_duration(&self) -> SimDuration {
        self.map_duration
    }

    /// Estimated duration of one reduce task (`R_i^j`).
    pub fn reduce_duration(&self) -> SimDuration {
        self.reduce_duration
    }

    /// Total number of tasks, `m_i^j + r_i^j`.
    pub fn total_tasks(&self) -> u32 {
        self.map_tasks + self.reduce_tasks
    }

    /// The job "length" used by Longest Path First: the sum of the estimated
    /// map task duration and (for jobs that have reducers) the estimated
    /// reduce task duration — one wave of each phase.
    pub fn length(&self) -> SimDuration {
        if self.is_map_only() {
            self.map_duration
        } else {
            self.map_duration.saturating_add(self.reduce_duration)
        }
    }

    /// Whether this is a map-only job (no reducers).
    pub fn is_map_only(&self) -> bool {
        self.reduce_tasks == 0
    }

    /// A lower bound on the job's makespan given unlimited slots: one map
    /// wave plus (if any reducers) one reduce wave.
    pub fn min_makespan(&self) -> SimDuration {
        if self.is_map_only() {
            self.map_duration
        } else {
            self.map_duration.saturating_add(self.reduce_duration)
        }
    }

    /// Total slot-time this job consumes:
    /// `m_i^j * M_i^j + r_i^j * R_i^j`.
    pub fn total_work(&self) -> SimDuration {
        (self.map_duration * u64::from(self.map_tasks))
            .saturating_add(self.reduce_duration * u64::from(self.reduce_tasks))
    }
}

impl fmt::Display for JobSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({}m x {}, {}r x {})",
            self.name, self.map_tasks, self.map_duration, self.reduce_tasks, self.reduce_duration
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobSpec {
        JobSpec::new(
            "j",
            10,
            2,
            SimDuration::from_secs(30),
            SimDuration::from_secs(100),
        )
    }

    #[test]
    fn accessors() {
        let j = sample();
        assert_eq!(j.name(), "j");
        assert_eq!(j.map_tasks(), 10);
        assert_eq!(j.reduce_tasks(), 2);
        assert_eq!(j.map_duration(), SimDuration::from_secs(30));
        assert_eq!(j.reduce_duration(), SimDuration::from_secs(100));
    }

    #[test]
    fn totals() {
        let j = sample();
        assert_eq!(j.total_tasks(), 12);
        assert_eq!(j.length(), SimDuration::from_secs(130));
        assert_eq!(j.min_makespan(), SimDuration::from_secs(130));
        assert_eq!(j.total_work(), SimDuration::from_secs(10 * 30 + 2 * 100));
    }

    #[test]
    fn map_only_job() {
        let j = JobSpec::new("m", 4, 0, SimDuration::from_secs(10), SimDuration::ZERO);
        assert!(j.is_map_only());
        assert_eq!(j.min_makespan(), SimDuration::from_secs(10));
        assert_eq!(j.total_work(), SimDuration::from_secs(40));
    }

    #[test]
    fn display_mentions_counts() {
        let s = sample().to_string();
        assert!(s.contains("10m"));
        assert!(s.contains("2r"));
    }

    #[test]
    fn serde_roundtrip() {
        let j = sample();
        let json = serde_json::to_string(&j).unwrap();
        let back: JobSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(j, back);
    }
}
