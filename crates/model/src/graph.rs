//! Directed acyclic graph utilities shared by the workflow model and the
//! scheduling algorithms.
//!
//! Nodes are dense `usize` indices `0..n`; edges point from a **predecessor**
//! (a job that must finish first) to its **successor**. The workflow layer
//! maps [`JobId`](crate::JobId)s onto these indices.

use std::collections::VecDeque;

/// A directed graph over nodes `0..node_count`, stored as forward and
/// backward adjacency lists.
///
/// `Dag` does not enforce acyclicity on insertion — cycle detection is a
/// query ([`Dag::topo_sort`]) so that validation code can report *which*
/// node participates in a cycle.
///
/// # Examples
///
/// ```
/// use woha_model::graph::Dag;
/// let mut g = Dag::new(3);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// assert_eq!(g.topo_sort().unwrap(), vec![0, 1, 2]);
/// assert_eq!(g.sources(), vec![0]);
/// assert_eq!(g.sinks(), vec![2]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dag {
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
    edge_count: usize,
}

impl Dag {
    /// Creates a graph with `node_count` nodes and no edges.
    pub fn new(node_count: usize) -> Self {
        Dag {
            succs: vec![Vec::new(); node_count],
            preds: vec![Vec::new(); node_count],
            edge_count: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.succs.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds the edge `from -> to` (duplicate edges are ignored).
    ///
    /// # Panics
    ///
    /// Panics if `from` or `to` is out of range or if `from == to`.
    pub fn add_edge(&mut self, from: usize, to: usize) {
        assert!(from < self.node_count(), "edge source {from} out of range");
        assert!(to < self.node_count(), "edge target {to} out of range");
        assert_ne!(from, to, "self-loops are not allowed");
        if self.succs[from].contains(&to) {
            return;
        }
        self.succs[from].push(to);
        self.preds[to].push(from);
        self.edge_count += 1;
    }

    /// Successors (direct dependents) of `node`.
    pub fn successors(&self, node: usize) -> &[usize] {
        &self.succs[node]
    }

    /// Predecessors (direct prerequisites) of `node`.
    pub fn predecessors(&self, node: usize) -> &[usize] {
        &self.preds[node]
    }

    /// Nodes with no predecessors, in index order.
    pub fn sources(&self) -> Vec<usize> {
        (0..self.node_count())
            .filter(|&v| self.preds[v].is_empty())
            .collect()
    }

    /// Nodes with no successors, in index order.
    pub fn sinks(&self) -> Vec<usize> {
        (0..self.node_count())
            .filter(|&v| self.succs[v].is_empty())
            .collect()
    }

    /// Kahn topological sort. Ties are broken by smallest node index, so the
    /// order is deterministic.
    ///
    /// # Errors
    ///
    /// Returns `Err(node)` with some node on a cycle if the graph is cyclic.
    pub fn topo_sort(&self) -> Result<Vec<usize>, usize> {
        let n = self.node_count();
        let mut indegree: Vec<usize> = (0..n).map(|v| self.preds[v].len()).collect();
        // A BinaryHeap of Reverse would also work; n is small enough that a
        // sorted frontier kept as a Vec with binary-search insertion is fine
        // and keeps the ordering obviously deterministic.
        let mut frontier: Vec<usize> = (0..n).filter(|&v| indegree[v] == 0).collect();
        frontier.sort_unstable();
        let mut order = Vec::with_capacity(n);
        let mut queue: VecDeque<usize> = frontier.into();
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut newly_ready: Vec<usize> = Vec::new();
            for &s in &self.succs[v] {
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    newly_ready.push(s);
                }
            }
            newly_ready.sort_unstable();
            queue.extend(newly_ready);
        }
        if order.len() == n {
            Ok(order)
        } else {
            // Some node still has positive indegree: it lies on or below a cycle.
            let stuck = (0..n).find(|&v| indegree[v] > 0).expect("cycle exists");
            Err(stuck)
        }
    }

    /// Whether the graph has no directed cycles.
    pub fn is_acyclic(&self) -> bool {
        self.topo_sort().is_ok()
    }

    /// Level of every node counted **from the sinks**, as defined by the
    /// paper's Highest Level First policy: jobs with no dependents are level
    /// 0, and a job's level is one more than the maximum level among its
    /// dependents.
    ///
    /// # Errors
    ///
    /// Returns `Err(node)` if the graph is cyclic.
    pub fn levels_from_sinks(&self) -> Result<Vec<usize>, usize> {
        let order = self.topo_sort()?;
        let mut level = vec![0usize; self.node_count()];
        for &v in order.iter().rev() {
            level[v] = self.succs[v]
                .iter()
                .map(|&s| level[s] + 1)
                .max()
                .unwrap_or(0);
        }
        Ok(level)
    }

    /// Level of every node counted from the sources: nodes with no
    /// prerequisites are level 0.
    ///
    /// # Errors
    ///
    /// Returns `Err(node)` if the graph is cyclic.
    pub fn levels_from_sources(&self) -> Result<Vec<usize>, usize> {
        let order = self.topo_sort()?;
        let mut level = vec![0usize; self.node_count()];
        for &v in &order {
            level[v] = self.preds[v]
                .iter()
                .map(|&p| level[p] + 1)
                .max()
                .unwrap_or(0);
        }
        Ok(level)
    }

    /// For every node, the maximum total `weight` along any path that starts
    /// at the node and proceeds through successors to a sink, **including**
    /// the node's own weight. This is the quantity ranked by the paper's
    /// Longest Path First policy when `weight[j]` is job `j`'s length.
    ///
    /// # Errors
    ///
    /// Returns `Err(node)` if the graph is cyclic.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != self.node_count()`.
    pub fn longest_path_to_sink(&self, weights: &[u64]) -> Result<Vec<u64>, usize> {
        assert_eq!(weights.len(), self.node_count(), "one weight per node");
        let order = self.topo_sort()?;
        let mut best = vec![0u64; self.node_count()];
        for &v in order.iter().rev() {
            let tail = self.succs[v].iter().map(|&s| best[s]).max().unwrap_or(0);
            best[v] = weights[v] + tail;
        }
        Ok(best)
    }

    /// The weight of the heaviest source-to-sink path in the graph (the
    /// critical path), or 0 for an empty graph.
    ///
    /// # Errors
    ///
    /// Returns `Err(node)` if the graph is cyclic.
    pub fn critical_path_weight(&self, weights: &[u64]) -> Result<u64, usize> {
        Ok(self
            .longest_path_to_sink(weights)?
            .into_iter()
            .max()
            .unwrap_or(0))
    }

    /// All nodes reachable from `start` by following successor edges,
    /// excluding `start` itself, in ascending index order.
    pub fn reachable_from(&self, start: usize) -> Vec<usize> {
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![start];
        while let Some(v) = stack.pop() {
            for &s in &self.succs[v] {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        (0..self.node_count()).filter(|&v| seen[v]).collect()
    }

    /// Number of direct dependents of every node (out-degree). This is the
    /// quantity ranked by the paper's Maximum Parallelism First policy.
    pub fn out_degrees(&self) -> Vec<usize> {
        self.succs.iter().map(Vec::len).collect()
    }

    /// Number of direct prerequisites of every node (in-degree).
    pub fn in_degrees(&self) -> Vec<usize> {
        self.preds.iter().map(Vec::len).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The diamond: 0 -> {1, 2} -> 3.
    fn diamond() -> Dag {
        let mut g = Dag::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn empty_graph() {
        let g = Dag::new(0);
        assert_eq!(g.topo_sort().unwrap(), Vec::<usize>::new());
        assert_eq!(g.critical_path_weight(&[]).unwrap(), 0);
    }

    #[test]
    fn add_edge_dedups() {
        let mut g = Dag::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.successors(0), &[1]);
        assert_eq!(g.predecessors(1), &[0]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        Dag::new(1).add_edge(0, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        Dag::new(1).add_edge(0, 5);
    }

    #[test]
    fn topo_sort_diamond() {
        let order = diamond().topo_sort().unwrap();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn cycle_detected() {
        let mut g = Dag::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        assert!(g.topo_sort().is_err());
        assert!(!g.is_acyclic());
        assert!(g.levels_from_sinks().is_err());
        assert!(g.longest_path_to_sink(&[1, 1, 1]).is_err());
    }

    #[test]
    fn partial_cycle_reports_cyclic_node() {
        // 0 -> 1, and 2 <-> 3 is a cycle; topo_sort must fail and report a
        // node actually stuck on the cycle.
        let mut g = Dag::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        g.add_edge(3, 2);
        let stuck = g.topo_sort().unwrap_err();
        assert!(stuck == 2 || stuck == 3);
    }

    #[test]
    fn levels_from_sinks_match_hlf_definition() {
        let levels = diamond().levels_from_sinks().unwrap();
        assert_eq!(levels, vec![2, 1, 1, 0]);
    }

    #[test]
    fn levels_from_sources() {
        let levels = diamond().levels_from_sources().unwrap();
        assert_eq!(levels, vec![0, 1, 1, 2]);
    }

    #[test]
    fn longest_path_weighted() {
        // 0 -> 1 -> 3 and 0 -> 2 -> 3 with asymmetric weights.
        let g = diamond();
        let w = [10, 1, 100, 5];
        let best = g.longest_path_to_sink(&w).unwrap();
        assert_eq!(best[3], 5);
        assert_eq!(best[1], 6);
        assert_eq!(best[2], 105);
        assert_eq!(best[0], 115);
        assert_eq!(g.critical_path_weight(&w).unwrap(), 115);
    }

    #[test]
    fn sources_and_sinks() {
        let g = diamond();
        assert_eq!(g.sources(), vec![0]);
        assert_eq!(g.sinks(), vec![3]);
    }

    #[test]
    fn reachability() {
        let g = diamond();
        assert_eq!(g.reachable_from(0), vec![1, 2, 3]);
        assert_eq!(g.reachable_from(1), vec![3]);
        assert_eq!(g.reachable_from(3), Vec::<usize>::new());
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.out_degrees(), vec![2, 1, 1, 0]);
        assert_eq!(g.in_degrees(), vec![0, 1, 1, 2]);
    }

    #[test]
    fn disconnected_nodes_are_both_source_and_sink() {
        let g = Dag::new(2);
        assert_eq!(g.sources(), vec![0, 1]);
        assert_eq!(g.sinks(), vec![0, 1]);
        assert_eq!(g.levels_from_sinks().unwrap(), vec![0, 0]);
    }
}
