//! Simulated time: instants ([`SimTime`]) and spans ([`SimDuration`]).
//!
//! The simulator measures time in integer **milliseconds** from the start of
//! the simulation. Integer time keeps the discrete-event simulation exactly
//! reproducible (no floating-point drift) and matches the heartbeat
//! granularity of Hadoop-1.
//!
//! The arithmetic follows `std::time`: `SimTime - SimTime = SimDuration`,
//! `SimTime + SimDuration = SimTime`, and durations add and scale.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, in milliseconds since simulation start.
///
/// # Examples
///
/// ```
/// use woha_model::{SimDuration, SimTime};
/// let t = SimTime::from_secs(5) + SimDuration::from_millis(250);
/// assert_eq!(t.as_millis(), 5_250);
/// assert_eq!(t - SimTime::from_secs(5), SimDuration::from_millis(250));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in milliseconds.
///
/// # Examples
///
/// ```
/// use woha_model::SimDuration;
/// let d = SimDuration::from_secs(90);
/// assert_eq!(d.as_millis(), 90_000);
/// assert_eq!(d * 2, SimDuration::from_mins(3));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// A time later than any time a simulation will reach; usable as an
    /// "infinite" sentinel (e.g. a deadline that can never be missed).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `millis` milliseconds after simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis)
    }

    /// Creates an instant `secs` seconds after simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000)
    }

    /// Creates an instant `mins` minutes after simulation start.
    pub const fn from_mins(mins: u64) -> Self {
        SimTime(mins * 60_000)
    }

    /// Milliseconds since simulation start.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since simulation start (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start as a float (for plotting/metrics).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration from `earlier` to `self`, or zero if `earlier` is later.
    ///
    /// This is the "time to deadline" operation used throughout WOHA: it
    /// never underflows, so a deadline already in the past yields zero.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The duration from `earlier` to `self`, or `None` if `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Subtracts a duration, saturating at [`SimTime::ZERO`].
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A duration longer than any simulation; an "infinite" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000)
    }

    /// Creates a duration of `mins` minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000)
    }

    /// Creates a duration from a float number of seconds, rounding to the
    /// nearest millisecond and clamping negatives to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 || !secs.is_finite() {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1_000.0).round() as u64)
    }

    /// The duration in milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// The duration in whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Whether this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: `self - other`, or zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Multiplies the duration by a float factor (for jitter), rounding to
    /// the nearest millisecond; negative or non-finite factors yield zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        if factor <= 0.0 || !factor.is_finite() {
            return SimDuration::ZERO;
        }
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a.saturating_add(b))
    }
}

fn fmt_millis(ms: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ms == u64::MAX {
        return f.write_str("inf");
    }
    if ms.is_multiple_of(1_000) {
        write!(f, "{}s", ms / 1_000)
    } else {
        write!(f, "{}.{:03}s", ms / 1_000, ms % 1_000)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_millis(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_millis(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_mins(2), SimTime::from_secs(120));
        assert_eq!(SimDuration::from_mins(1), SimDuration::from_secs(60));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(3);
        assert_eq!((t + d).as_secs(), 13);
        assert_eq!((t - d).as_secs(), 7);
        assert_eq!(t - SimTime::from_secs(4), SimDuration::from_secs(6));
        assert_eq!(d + d, SimDuration::from_secs(6));
        assert_eq!(d * 4, SimDuration::from_secs(12));
        assert_eq!(SimDuration::from_secs(12) / 4, d);
    }

    #[test]
    fn saturating_ops_never_panic() {
        assert_eq!(
            SimTime::ZERO.saturating_since(SimTime::from_secs(5)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::from_secs(5).checked_since(SimTime::from_secs(6)),
            None
        );
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimTime::ZERO.saturating_sub(SimDuration::from_secs(1)),
            SimTime::ZERO
        );
        assert_eq!(
            SimDuration::ZERO.saturating_sub(SimDuration::from_secs(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn float_conversions() {
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1_500);
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert!((SimTime::from_millis(2_500).as_secs_f64() - 2.5).abs() < 1e-9);
        assert_eq!(SimDuration::from_secs(10).mul_f64(1.5).as_secs(), 15);
        assert_eq!(SimDuration::from_secs(10).mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(5).to_string(), "5s");
        assert_eq!(SimTime::from_millis(5_042).to_string(), "5.042s");
        assert_eq!(SimDuration::MAX.to_string(), "inf");
    }

    #[test]
    fn sum_saturates() {
        let total: SimDuration = [SimDuration::MAX, SimDuration::from_secs(1)]
            .into_iter()
            .sum();
        assert_eq!(total, SimDuration::MAX);
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let da = SimDuration::from_secs(1);
        let db = SimDuration::from_secs(2);
        assert_eq!(da.max(db), db);
        assert_eq!(da.min(db), da);
    }
}
