//! Identifier newtypes for workflows, jobs, tasks, and cluster nodes.
//!
//! All identifiers are small `Copy` newtypes ([C-NEWTYPE]) so that a
//! `WorkflowId` can never be confused with a `JobId` at a call site. They
//! order and hash like their underlying integers, which makes them usable as
//! keys in `BTreeMap`/`HashMap` and as stable tie-breakers in priority
//! queues.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a workflow (`W_i` in the paper), unique within a cluster.
///
/// # Examples
///
/// ```
/// use woha_model::WorkflowId;
/// let w = WorkflowId::new(7);
/// assert_eq!(w.as_u64(), 7);
/// assert_eq!(w.to_string(), "W7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WorkflowId(u64);

impl WorkflowId {
    /// Creates a workflow id from its raw integer value.
    pub const fn new(id: u64) -> Self {
        WorkflowId(id)
    }

    /// Returns the raw integer value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for WorkflowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "W{}", self.0)
    }
}

impl From<u64> for WorkflowId {
    fn from(id: u64) -> Self {
        WorkflowId(id)
    }
}

/// Identifier of a job within a workflow (`J_i^j` in the paper).
///
/// Job ids are indices into the owning [`WorkflowSpec`]'s job list; they are
/// only meaningful relative to one workflow.
///
/// # Examples
///
/// ```
/// use woha_model::JobId;
/// let j = JobId::new(3);
/// assert_eq!(j.index(), 3);
/// assert_eq!(j.to_string(), "J3");
/// ```
///
/// [`WorkflowSpec`]: crate::WorkflowSpec
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(u32);

impl JobId {
    /// Creates a job id from its index in the workflow's job list.
    pub const fn new(index: u32) -> Self {
        JobId(index)
    }

    /// Returns the index of this job in the owning workflow's job list.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "J{}", self.0)
    }
}

impl From<u32> for JobId {
    fn from(index: u32) -> Self {
        JobId(index)
    }
}

/// Identifier of a worker node (TaskTracker) in the cluster.
///
/// # Examples
///
/// ```
/// use woha_model::NodeId;
/// assert_eq!(NodeId::new(12).to_string(), "node12");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from its raw integer value.
    pub const fn new(id: u32) -> Self {
        NodeId(id)
    }

    /// Returns the index of this node in the cluster's node list.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(id: u32) -> Self {
        NodeId(id)
    }
}

/// The two kinds of Hadoop-1 slots: map slots and reduce slots.
///
/// A Hadoop-1 TaskTracker is configured with a fixed number of slots of each
/// kind; a map task may only occupy a map slot and a reduce task a reduce
/// slot.
///
/// # Examples
///
/// ```
/// use woha_model::SlotKind;
/// assert_eq!(SlotKind::Map.opposite(), SlotKind::Reduce);
/// assert_eq!(SlotKind::Map.to_string(), "map");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SlotKind {
    /// A slot that runs map tasks.
    Map,
    /// A slot that runs reduce tasks.
    Reduce,
}

impl SlotKind {
    /// Returns the other slot kind.
    pub const fn opposite(self) -> Self {
        match self {
            SlotKind::Map => SlotKind::Reduce,
            SlotKind::Reduce => SlotKind::Map,
        }
    }

    /// Both slot kinds, in `[Map, Reduce]` order.
    pub const ALL: [SlotKind; 2] = [SlotKind::Map, SlotKind::Reduce];
}

impl fmt::Display for SlotKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlotKind::Map => f.write_str("map"),
            SlotKind::Reduce => f.write_str("reduce"),
        }
    }
}

/// Fully-qualified identifier of a single task attempt.
///
/// A task is one mapper or one reducer of one job of one workflow; `index`
/// distinguishes tasks of the same kind within the job.
///
/// # Examples
///
/// ```
/// use woha_model::{JobId, SlotKind, TaskId, WorkflowId};
/// let t = TaskId::new(WorkflowId::new(1), JobId::new(2), SlotKind::Map, 5);
/// assert_eq!(t.to_string(), "W1/J2/map5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId {
    /// The workflow this task belongs to.
    pub workflow: WorkflowId,
    /// The job (within the workflow) this task belongs to.
    pub job: JobId,
    /// Whether this is a map task or a reduce task.
    pub kind: SlotKind,
    /// Index of the task among its job's tasks of the same kind.
    pub index: u32,
}

impl TaskId {
    /// Creates a task id.
    pub const fn new(workflow: WorkflowId, job: JobId, kind: SlotKind, index: u32) -> Self {
        TaskId {
            workflow,
            job,
            kind,
            index,
        }
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/{}{}",
            self.workflow, self.job, self.kind, self.index
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn workflow_id_roundtrip() {
        let w = WorkflowId::new(42);
        assert_eq!(w.as_u64(), 42);
        assert_eq!(WorkflowId::from(42u64), w);
        assert_eq!(format!("{w}"), "W42");
    }

    #[test]
    fn job_id_index() {
        let j = JobId::new(9);
        assert_eq!(j.index(), 9);
        assert_eq!(j.as_u32(), 9);
        assert_eq!(JobId::from(9u32), j);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId::new(3).to_string(), "node3");
        assert_eq!(NodeId::from(3u32).index(), 3);
    }

    #[test]
    fn slot_kind_opposite_is_involution() {
        for kind in SlotKind::ALL {
            assert_eq!(kind.opposite().opposite(), kind);
        }
        assert_ne!(SlotKind::Map, SlotKind::Reduce);
    }

    #[test]
    fn ids_order_like_integers() {
        let ids: BTreeSet<WorkflowId> = [3u64, 1, 2].into_iter().map(WorkflowId::new).collect();
        let sorted: Vec<u64> = ids.into_iter().map(WorkflowId::as_u64).collect();
        assert_eq!(sorted, vec![1, 2, 3]);
    }

    #[test]
    fn task_id_orders_by_fields() {
        let a = TaskId::new(WorkflowId::new(1), JobId::new(0), SlotKind::Map, 0);
        let b = TaskId::new(WorkflowId::new(1), JobId::new(0), SlotKind::Map, 1);
        let c = TaskId::new(WorkflowId::new(2), JobId::new(0), SlotKind::Map, 0);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn serde_roundtrip() {
        let t = TaskId::new(WorkflowId::new(1), JobId::new(2), SlotKind::Reduce, 7);
        let json = serde_json::to_string(&t).unwrap();
        let back: TaskId = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
