//! Workflow XML configuration files.
//!
//! This is the file format a user hands to `hadoop dag /path/to/W_i.xml`
//! (paper §III-B). A configuration lists every wjob with its jar file, main
//! class, input and output dataset paths, task counts, and per-task duration
//! estimates, plus the workflow deadline. Like WOHA's Configuration
//! Validator, [`WorkflowConfig::parse`] checks the file's internal
//! consistency and derives the prerequisite set `P_i` from matching
//! input/output paths (a job that reads a path another job writes depends on
//! that job); explicit `<depends on="..."/>` edges may be added on top.
//!
//! # Example document
//!
//! ```xml
//! <workflow name="user-log-stats" deadline="80m">
//!   <job name="extract" mappers="8" reducers="2"
//!        map-duration="30s" reduce-duration="120s"
//!        jar="udf.jar" main-class="com.example.Extract">
//!     <input path="/logs/raw"/>
//!     <output path="/tmp/extracted"/>
//!   </job>
//!   <job name="report" mappers="4" reducers="1"
//!        map-duration="20s" reduce-duration="300s">
//!     <input path="/tmp/extracted"/>
//!     <output path="/reports/daily"/>
//!     <depends on="extract"/>
//!   </job>
//! </workflow>
//! ```

use crate::error::ModelError;
use crate::job::JobSpec;
use crate::time::{SimDuration, SimTime};
use crate::workflow::{WorkflowBuilder, WorkflowSpec};
use crate::xml::{self, Element};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One `<job>` entry of a workflow configuration file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobConfig {
    /// Job name, unique within the workflow.
    pub name: String,
    /// Number of map tasks.
    pub mappers: u32,
    /// Number of reduce tasks.
    pub reducers: u32,
    /// Estimated duration of one map task.
    pub map_duration: SimDuration,
    /// Estimated duration of one reduce task.
    pub reduce_duration: SimDuration,
    /// Path of the user jar file (informational in the simulator).
    pub jar: Option<String>,
    /// Main class inside the jar (informational in the simulator).
    pub main_class: Option<String>,
    /// Input dataset paths.
    pub inputs: Vec<String>,
    /// Output dataset paths.
    pub outputs: Vec<String>,
    /// Explicit prerequisites by job name (in addition to path-derived ones).
    pub depends_on: Vec<String>,
}

/// A parsed workflow configuration file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkflowConfig {
    /// Workflow name.
    pub name: String,
    /// Relative deadline (`D_i - S_i`); `None` means no deadline.
    pub relative_deadline: Option<SimDuration>,
    /// The job entries in document order.
    pub jobs: Vec<JobConfig>,
}

impl WorkflowConfig {
    /// Parses a workflow configuration from XML text.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the XML is malformed, a required attribute
    /// is missing or non-numeric, a duration does not parse, a job name is
    /// duplicated, or a `<depends on>` references an unknown job.
    pub fn parse(text: &str) -> Result<Self, ModelError> {
        let root = xml::parse(text)?;
        if root.name != "workflow" {
            return Err(ModelError::Schema(format!(
                "root element is <{}>, expected <workflow>",
                root.name
            )));
        }
        let name = require_attr(&root, "name")?.to_string();
        let relative_deadline = match root.attr("deadline") {
            Some(raw) => Some(parse_duration(raw)?),
            None => None,
        };
        let mut jobs = Vec::new();
        for child in root.elements() {
            if child.name != "job" {
                return Err(ModelError::Schema(format!(
                    "unexpected element <{}> under <workflow>",
                    child.name
                )));
            }
            jobs.push(parse_job(child)?);
        }
        let config = WorkflowConfig {
            name,
            relative_deadline,
            jobs,
        };
        config.check_names()?;
        Ok(config)
    }

    fn check_names(&self) -> Result<(), ModelError> {
        let mut seen: HashMap<&str, ()> = HashMap::new();
        for job in &self.jobs {
            if seen.insert(job.name.as_str(), ()).is_some() {
                return Err(ModelError::DuplicateJobName(job.name.clone()));
            }
        }
        for job in &self.jobs {
            for dep in &job.depends_on {
                if !seen.contains_key(dep.as_str()) {
                    return Err(ModelError::Schema(format!(
                        "job {:?} depends on unknown job {:?}",
                        job.name, dep
                    )));
                }
            }
        }
        Ok(())
    }

    /// Builds the validated [`WorkflowSpec`], submitted at `submit_time`.
    ///
    /// Prerequisites are the union of path-derived edges (job B reads a path
    /// job A writes ⇒ A is a prerequisite of B) and explicit
    /// `<depends on="..."/>` edges, exactly as the paper's Configuration
    /// Validator "constructs prerequisite set P_i based on inputs and
    /// outputs of each wjob".
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the derived relation is cyclic or any
    /// workflow invariant fails (see [`WorkflowBuilder::build`]).
    pub fn to_spec(&self, submit_time: SimTime) -> Result<WorkflowSpec, ModelError> {
        let mut builder = WorkflowBuilder::new(self.name.clone());
        let mut ids = HashMap::new();
        let mut producers: HashMap<&str, usize> = HashMap::new();
        for (index, job) in self.jobs.iter().enumerate() {
            let id = builder.add_job(JobSpec::new(
                job.name.clone(),
                job.mappers,
                job.reducers,
                job.map_duration,
                job.reduce_duration,
            ));
            ids.insert(job.name.as_str(), id);
            for out in &job.outputs {
                producers.insert(out.as_str(), index);
            }
        }
        for job in &self.jobs {
            let succ = ids[job.name.as_str()];
            for input in &job.inputs {
                if let Some(&producer) = producers.get(input.as_str()) {
                    let pred = ids[self.jobs[producer].name.as_str()];
                    if pred != succ {
                        builder.add_dependency(pred, succ);
                    }
                }
            }
            for dep in &job.depends_on {
                builder.add_dependency(ids[dep.as_str()], succ);
            }
        }
        builder.submit_at(submit_time);
        if let Some(rel) = self.relative_deadline {
            builder.relative_deadline(rel);
        }
        builder.build()
    }

    /// Renders the configuration back to XML.
    pub fn to_xml(&self) -> String {
        let mut root = Element::new("workflow").with_attr("name", self.name.clone());
        if let Some(rel) = self.relative_deadline {
            root = root.with_attr("deadline", format_duration(rel));
        }
        for job in &self.jobs {
            let mut e = Element::new("job")
                .with_attr("name", job.name.clone())
                .with_attr("mappers", job.mappers.to_string())
                .with_attr("reducers", job.reducers.to_string())
                .with_attr("map-duration", format_duration(job.map_duration))
                .with_attr("reduce-duration", format_duration(job.reduce_duration));
            if let Some(jar) = &job.jar {
                e = e.with_attr("jar", jar.clone());
            }
            if let Some(class) = &job.main_class {
                e = e.with_attr("main-class", class.clone());
            }
            for path in &job.inputs {
                e = e.with_child(Element::new("input").with_attr("path", path.clone()));
            }
            for path in &job.outputs {
                e = e.with_child(Element::new("output").with_attr("path", path.clone()));
            }
            for dep in &job.depends_on {
                e = e.with_child(Element::new("depends").with_attr("on", dep.clone()));
            }
            root = root.with_child(e);
        }
        root.to_string()
    }
}

/// Builds a [`WorkflowConfig`] with explicit `depends_on` edges from a
/// [`WorkflowSpec`] (the inverse of [`WorkflowConfig::to_spec`] up to
/// path-derived edges, which become explicit).
impl From<&WorkflowSpec> for WorkflowConfig {
    fn from(spec: &WorkflowSpec) -> Self {
        let jobs = spec
            .job_ids()
            .map(|id| {
                let j = spec.job(id);
                JobConfig {
                    name: j.name().to_string(),
                    mappers: j.map_tasks(),
                    reducers: j.reduce_tasks(),
                    map_duration: j.map_duration(),
                    reduce_duration: j.reduce_duration(),
                    jar: None,
                    main_class: None,
                    inputs: Vec::new(),
                    outputs: Vec::new(),
                    depends_on: spec
                        .prerequisites(id)
                        .iter()
                        .map(|&p| spec.job(p).name().to_string())
                        .collect(),
                }
            })
            .collect();
        WorkflowConfig {
            name: spec.name().to_string(),
            relative_deadline: if spec.deadline() == SimTime::MAX {
                None
            } else {
                Some(spec.relative_deadline())
            },
            jobs,
        }
    }
}

fn parse_job(e: &Element) -> Result<JobConfig, ModelError> {
    let name = require_attr(e, "name")?.to_string();
    let mappers = parse_u32(e, "mappers")?;
    let reducers = match e.attr("reducers") {
        Some(_) => parse_u32(e, "reducers")?,
        None => 0,
    };
    let map_duration = parse_duration(require_attr(e, "map-duration")?)?;
    let reduce_duration = match e.attr("reduce-duration") {
        Some(raw) => parse_duration(raw)?,
        None => SimDuration::ZERO,
    };
    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    let mut depends_on = Vec::new();
    for child in e.elements() {
        match child.name.as_str() {
            "input" => inputs.push(require_attr(child, "path")?.to_string()),
            "output" => outputs.push(require_attr(child, "path")?.to_string()),
            "depends" => depends_on.push(require_attr(child, "on")?.to_string()),
            other => {
                return Err(ModelError::Schema(format!(
                    "unexpected element <{other}> under <job>"
                )))
            }
        }
    }
    Ok(JobConfig {
        name,
        mappers,
        reducers,
        map_duration,
        reduce_duration,
        jar: e.attr("jar").map(str::to_string),
        main_class: e.attr("main-class").map(str::to_string),
        inputs,
        outputs,
        depends_on,
    })
}

fn require_attr<'a>(e: &'a Element, attribute: &str) -> Result<&'a str, ModelError> {
    e.attr(attribute)
        .ok_or_else(|| ModelError::MissingAttribute {
            element: e.name.clone(),
            attribute: attribute.to_string(),
        })
}

fn parse_u32(e: &Element, attribute: &str) -> Result<u32, ModelError> {
    let raw = require_attr(e, attribute)?;
    raw.parse().map_err(|_| ModelError::InvalidNumber {
        attribute: attribute.to_string(),
        value: raw.to_string(),
    })
}

/// Parses a human-friendly duration: `"1500ms"`, `"30s"`, `"80m"`, `"2h"`,
/// or a bare integer meaning milliseconds.
///
/// # Errors
///
/// Returns [`ModelError::InvalidDuration`] for anything else.
///
/// # Examples
///
/// ```
/// use woha_model::{config::parse_duration, SimDuration};
/// assert_eq!(parse_duration("80m").unwrap(), SimDuration::from_mins(80));
/// assert_eq!(parse_duration("250").unwrap(), SimDuration::from_millis(250));
/// assert!(parse_duration("fast").is_err());
/// ```
pub fn parse_duration(raw: &str) -> Result<SimDuration, ModelError> {
    let raw = raw.trim();
    let bad = || ModelError::InvalidDuration(raw.to_string());
    let (digits, unit) = match raw.find(|c: char| !c.is_ascii_digit()) {
        Some(0) => return Err(bad()),
        Some(split) => raw.split_at(split),
        None => (raw, ""),
    };
    let value: u64 = digits.parse().map_err(|_| bad())?;
    match unit {
        "" | "ms" => Ok(SimDuration::from_millis(value)),
        "s" => Ok(SimDuration::from_secs(value)),
        "m" | "min" => Ok(SimDuration::from_mins(value)),
        "h" => Ok(SimDuration::from_mins(value * 60)),
        _ => Err(bad()),
    }
}

/// Formats a duration in the most compact unit that is exact, the inverse of
/// [`parse_duration`].
pub fn format_duration(d: SimDuration) -> String {
    let ms = d.as_millis();
    if ms == 0 {
        return "0s".to_string();
    }
    if ms.is_multiple_of(3_600_000) {
        format!("{}h", ms / 3_600_000)
    } else if ms.is_multiple_of(60_000) {
        format!("{}m", ms / 60_000)
    } else if ms.is_multiple_of(1_000) {
        format!("{}s", ms / 1_000)
    } else {
        format!("{ms}ms")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
    <workflow name="user-log-stats" deadline="80m">
      <job name="extract" mappers="8" reducers="2"
           map-duration="30s" reduce-duration="120s"
           jar="udf.jar" main-class="com.example.Extract">
        <input path="/logs/raw"/>
        <output path="/tmp/extracted"/>
      </job>
      <job name="report" mappers="4" reducers="1"
           map-duration="20s" reduce-duration="300s">
        <input path="/tmp/extracted"/>
        <output path="/reports/daily"/>
      </job>
      <job name="archive" mappers="2" map-duration="10s">
        <input path="/logs/raw"/>
        <output path="/archive/raw"/>
        <depends on="report"/>
      </job>
    </workflow>"#;

    #[test]
    fn parses_full_document() {
        let cfg = WorkflowConfig::parse(SAMPLE).unwrap();
        assert_eq!(cfg.name, "user-log-stats");
        assert_eq!(cfg.relative_deadline, Some(SimDuration::from_mins(80)));
        assert_eq!(cfg.jobs.len(), 3);
        assert_eq!(cfg.jobs[0].jar.as_deref(), Some("udf.jar"));
        assert_eq!(cfg.jobs[2].reducers, 0);
        assert_eq!(cfg.jobs[2].reduce_duration, SimDuration::ZERO);
    }

    #[test]
    fn derives_prerequisites_from_paths_and_depends() {
        let cfg = WorkflowConfig::parse(SAMPLE).unwrap();
        let spec = cfg.to_spec(SimTime::ZERO).unwrap();
        let extract = spec.job_by_name("extract").unwrap();
        let report = spec.job_by_name("report").unwrap();
        let archive = spec.job_by_name("archive").unwrap();
        // report reads what extract writes.
        assert_eq!(spec.prerequisites(report), &[extract]);
        // archive has only the explicit edge (its input /logs/raw is a
        // primary dataset nobody produces).
        assert_eq!(spec.prerequisites(archive), &[report]);
        assert_eq!(spec.initially_ready(), vec![extract]);
        assert_eq!(spec.deadline(), SimTime::from_mins(80));
    }

    #[test]
    fn submit_time_offsets_deadline() {
        let cfg = WorkflowConfig::parse(SAMPLE).unwrap();
        let spec = cfg.to_spec(SimTime::from_mins(10)).unwrap();
        assert_eq!(spec.deadline(), SimTime::from_mins(90));
    }

    #[test]
    fn missing_deadline_is_none() {
        let cfg = WorkflowConfig::parse(
            r#"<workflow name="w"><job name="a" mappers="1" map-duration="5s"/></workflow>"#,
        )
        .unwrap();
        assert_eq!(cfg.relative_deadline, None);
        let spec = cfg.to_spec(SimTime::ZERO).unwrap();
        assert_eq!(spec.deadline(), SimTime::MAX);
    }

    #[test]
    fn rejects_wrong_root() {
        assert!(matches!(
            WorkflowConfig::parse("<jobs/>").unwrap_err(),
            ModelError::Schema(_)
        ));
    }

    #[test]
    fn rejects_duplicate_job_names() {
        let doc = r#"<workflow name="w">
            <job name="a" mappers="1" map-duration="5s"/>
            <job name="a" mappers="1" map-duration="5s"/>
        </workflow>"#;
        assert_eq!(
            WorkflowConfig::parse(doc).unwrap_err(),
            ModelError::DuplicateJobName("a".into())
        );
    }

    #[test]
    fn rejects_unknown_depends() {
        let doc = r#"<workflow name="w">
            <job name="a" mappers="1" map-duration="5s"><depends on="ghost"/></job>
        </workflow>"#;
        assert!(matches!(
            WorkflowConfig::parse(doc).unwrap_err(),
            ModelError::Schema(_)
        ));
    }

    #[test]
    fn rejects_missing_and_bad_attributes() {
        assert!(matches!(
            WorkflowConfig::parse(
                r#"<workflow><job name="a" mappers="1" map-duration="5s"/></workflow>"#
            )
            .unwrap_err(),
            ModelError::MissingAttribute { .. }
        ));
        assert!(matches!(
            WorkflowConfig::parse(
                r#"<workflow name="w"><job name="a" mappers="lots" map-duration="5s"/></workflow>"#
            )
            .unwrap_err(),
            ModelError::InvalidNumber { .. }
        ));
        assert!(matches!(
            WorkflowConfig::parse(
                r#"<workflow name="w"><job name="a" mappers="1" map-duration="soon"/></workflow>"#
            )
            .unwrap_err(),
            ModelError::InvalidDuration(_)
        ));
    }

    #[test]
    fn duration_parsing() {
        assert_eq!(
            parse_duration("250ms").unwrap(),
            SimDuration::from_millis(250)
        );
        assert_eq!(parse_duration("30s").unwrap(), SimDuration::from_secs(30));
        assert_eq!(parse_duration("80m").unwrap(), SimDuration::from_mins(80));
        assert_eq!(parse_duration("2h").unwrap(), SimDuration::from_mins(120));
        assert_eq!(parse_duration("42").unwrap(), SimDuration::from_millis(42));
        assert_eq!(parse_duration(" 5s ").unwrap(), SimDuration::from_secs(5));
        assert!(parse_duration("s").is_err());
        assert!(parse_duration("5 weeks").is_err());
        assert!(parse_duration("").is_err());
    }

    #[test]
    fn duration_formatting_roundtrips() {
        for d in [
            SimDuration::ZERO,
            SimDuration::from_millis(1),
            SimDuration::from_millis(1500),
            SimDuration::from_secs(30),
            SimDuration::from_mins(80),
            SimDuration::from_mins(120),
        ] {
            assert_eq!(parse_duration(&format_duration(d)).unwrap(), d);
        }
        assert_eq!(format_duration(SimDuration::from_mins(120)), "2h");
    }

    #[test]
    fn xml_roundtrip_through_config() {
        let cfg = WorkflowConfig::parse(SAMPLE).unwrap();
        let rendered = cfg.to_xml();
        let reparsed = WorkflowConfig::parse(&rendered).unwrap();
        assert_eq!(cfg, reparsed);
    }

    #[test]
    fn spec_to_config_roundtrip() {
        let cfg = WorkflowConfig::parse(SAMPLE).unwrap();
        let spec = cfg.to_spec(SimTime::ZERO).unwrap();
        let cfg2 = WorkflowConfig::from(&spec);
        let spec2 = cfg2.to_spec(SimTime::ZERO).unwrap();
        assert_eq!(spec, spec2);
    }
}
