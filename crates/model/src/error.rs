//! Error types for the workflow model.

use crate::ids::JobId;
use std::error::Error as StdError;
use std::fmt;

/// Errors produced while building, validating, or parsing workflow models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// The workflow's prerequisite relation contains a cycle.
    Cycle {
        /// A job known to participate in the cycle.
        job: JobId,
    },
    /// A dependency referenced a job id that does not exist in the workflow.
    UnknownJob {
        /// The offending job id.
        job: JobId,
        /// Number of jobs actually in the workflow.
        job_count: usize,
    },
    /// A job name appeared more than once in a workflow configuration.
    DuplicateJobName(String),
    /// A dependency edge was declared from a job to itself.
    SelfDependency(JobId),
    /// The workflow contains no jobs.
    EmptyWorkflow,
    /// A job was declared with zero map tasks.
    ///
    /// Every Hadoop job runs at least one mapper; reduce-less (map-only)
    /// jobs are allowed, mapper-less jobs are not.
    NoMapTasks(JobId),
    /// The deadline is not later than the submission time.
    DeadlineBeforeSubmit,
    /// A duration string (e.g. `"80m"`) could not be parsed.
    InvalidDuration(String),
    /// An integer attribute could not be parsed.
    InvalidNumber {
        /// Attribute name.
        attribute: String,
        /// Offending value.
        value: String,
    },
    /// A required XML attribute was missing.
    MissingAttribute {
        /// Element name.
        element: String,
        /// Attribute name.
        attribute: String,
    },
    /// The XML document was malformed.
    Xml(XmlError),
    /// The XML was well-formed but did not match the workflow schema.
    Schema(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Cycle { job } => {
                write!(
                    f,
                    "workflow prerequisite relation contains a cycle through {job}"
                )
            }
            ModelError::UnknownJob { job, job_count } => write!(
                f,
                "dependency references {job} but the workflow has only {job_count} jobs"
            ),
            ModelError::DuplicateJobName(name) => {
                write!(f, "duplicate job name {name:?} in workflow configuration")
            }
            ModelError::SelfDependency(job) => {
                write!(f, "job {job} declares a dependency on itself")
            }
            ModelError::EmptyWorkflow => f.write_str("workflow contains no jobs"),
            ModelError::NoMapTasks(job) => {
                write!(f, "job {job} declares zero map tasks")
            }
            ModelError::DeadlineBeforeSubmit => {
                f.write_str("workflow deadline is not later than its submission time")
            }
            ModelError::InvalidDuration(s) => write!(f, "invalid duration {s:?}"),
            ModelError::InvalidNumber { attribute, value } => {
                write!(f, "attribute {attribute:?} has non-numeric value {value:?}")
            }
            ModelError::MissingAttribute { element, attribute } => {
                write!(
                    f,
                    "element <{element}> is missing required attribute {attribute:?}"
                )
            }
            ModelError::Xml(e) => write!(f, "malformed workflow XML: {e}"),
            ModelError::Schema(msg) => write!(f, "workflow XML does not match schema: {msg}"),
        }
    }
}

impl StdError for ModelError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            ModelError::Xml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<XmlError> for ModelError {
    fn from(e: XmlError) -> Self {
        ModelError::Xml(e)
    }
}

/// Errors produced by the minimal XML parser.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum XmlError {
    /// Input ended in the middle of a construct.
    UnexpectedEof {
        /// What the parser was in the middle of reading.
        context: &'static str,
    },
    /// A closing tag did not match the innermost open tag.
    MismatchedTag {
        /// The tag that was open.
        expected: String,
        /// The closing tag actually found.
        found: String,
    },
    /// A character that cannot start the expected construct.
    UnexpectedChar {
        /// The offending character.
        found: char,
        /// Byte offset in the input.
        offset: usize,
        /// What the parser expected.
        expected: &'static str,
    },
    /// An unknown entity reference such as `&xyz;`.
    UnknownEntity(String),
    /// The document contains no root element.
    NoRootElement,
    /// Non-whitespace content after the root element closed.
    TrailingContent {
        /// Byte offset where the trailing content starts.
        offset: usize,
    },
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while reading {context}")
            }
            XmlError::MismatchedTag { expected, found } => {
                write!(
                    f,
                    "closing tag </{found}> does not match open tag <{expected}>"
                )
            }
            XmlError::UnexpectedChar {
                found,
                offset,
                expected,
            } => write!(
                f,
                "unexpected character {found:?} at byte {offset}, expected {expected}"
            ),
            XmlError::UnknownEntity(name) => write!(f, "unknown entity reference &{name};"),
            XmlError::NoRootElement => f.write_str("document contains no root element"),
            XmlError::TrailingContent { offset } => {
                write!(f, "unexpected content after root element at byte {offset}")
            }
        }
    }
}

impl StdError for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn errors_are_send_sync() {
        assert_send_sync::<ModelError>();
        assert_send_sync::<XmlError>();
    }

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let samples: Vec<ModelError> = vec![
            ModelError::Cycle { job: JobId::new(1) },
            ModelError::UnknownJob {
                job: JobId::new(9),
                job_count: 3,
            },
            ModelError::DuplicateJobName("extract".into()),
            ModelError::SelfDependency(JobId::new(0)),
            ModelError::EmptyWorkflow,
            ModelError::NoMapTasks(JobId::new(2)),
            ModelError::DeadlineBeforeSubmit,
            ModelError::InvalidDuration("80x".into()),
            ModelError::Xml(XmlError::NoRootElement),
            ModelError::Schema("bad".into()),
        ];
        for e in samples {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'), "no trailing punctuation: {msg}");
        }
    }

    #[test]
    fn xml_error_is_source() {
        use std::error::Error;
        let e = ModelError::from(XmlError::NoRootElement);
        assert!(e.source().is_some());
    }
}
