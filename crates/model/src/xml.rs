//! A minimal, dependency-free XML subset parser and writer.
//!
//! WOHA workflows are submitted as XML configuration files (the paper's
//! `hadoop dag /path/to/W_i.xml`). This module implements exactly the subset
//! those files need: elements, attributes, text content, comments, an
//! optional `<?xml ...?>` declaration, and the five predefined entities.
//! It does not implement namespaces, DTDs, processing instructions beyond
//! the declaration, or CDATA.
//!
//! # Examples
//!
//! ```
//! use woha_model::xml::{Element, parse};
//!
//! # fn main() -> Result<(), woha_model::XmlError> {
//! let doc = parse(r#"<workflow name="w"><job name="a"/></workflow>"#)?;
//! assert_eq!(doc.name, "workflow");
//! assert_eq!(doc.attr("name"), Some("w"));
//! assert_eq!(doc.children.len(), 1);
//! # Ok(())
//! # }
//! ```

use crate::error::XmlError;
use std::fmt;

/// An XML element: name, attributes in document order, and child nodes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in document order, unescaped.
    pub attributes: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

/// A node in the parsed document tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// Unescaped character data (whitespace-only runs are dropped).
    Text(String),
}

impl Element {
    /// Creates an element with no attributes or children.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Adds an attribute (builder-style).
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push((name.into(), value.into()));
        self
    }

    /// Adds a child element (builder-style).
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Adds a text child (builder-style).
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// The value of the first attribute named `name`, if any.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Child elements (skipping text nodes).
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        })
    }

    /// Child elements with tag `name`.
    pub fn elements_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> {
        self.elements().filter(move |e| e.name == name)
    }

    /// The first child element with tag `name`.
    pub fn first_named(&self, name: &str) -> Option<&Element> {
        self.elements().find(|e| e.name == name)
    }

    /// Concatenated text content of the element's direct text children,
    /// trimmed.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for node in &self.children {
            if let Node::Text(t) = node {
                out.push_str(t);
            }
        }
        out.trim().to_string()
    }
}

impl fmt::Display for Element {
    /// Serializes the element as indented XML (two-space indent).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_element(f, self, 0)
    }
}

fn write_element(f: &mut fmt::Formatter<'_>, e: &Element, depth: usize) -> fmt::Result {
    for _ in 0..depth {
        f.write_str("  ")?;
    }
    write!(f, "<{}", e.name)?;
    for (name, value) in &e.attributes {
        write!(f, " {}=\"{}\"", name, escape(value))?;
    }
    if e.children.is_empty() {
        return f.write_str("/>\n");
    }
    let only_text = e.children.iter().all(|n| matches!(n, Node::Text(_)));
    if only_text {
        f.write_str(">")?;
        for node in &e.children {
            if let Node::Text(t) = node {
                f.write_str(&escape(t))?;
            }
        }
        return writeln!(f, "</{}>", e.name);
    }
    f.write_str(">\n")?;
    for node in &e.children {
        match node {
            Node::Element(child) => write_element(f, child, depth + 1)?,
            Node::Text(t) => {
                let t = t.trim();
                if !t.is_empty() {
                    for _ in 0..=depth {
                        f.write_str("  ")?;
                    }
                    writeln!(f, "{}", escape(t))?;
                }
            }
        }
    }
    for _ in 0..depth {
        f.write_str("  ")?;
    }
    writeln!(f, "</{}>", e.name)
}

/// Escapes the five predefined XML entities in `text`.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

/// Parses an XML document and returns its root element.
///
/// # Errors
///
/// Returns [`XmlError`] on malformed input: mismatched tags, truncated
/// constructs, unknown entities, a missing root, or trailing content.
pub fn parse(input: &str) -> Result<Element, XmlError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_prolog()?;
    let root = match p.parse_node()? {
        Some(Node::Element(e)) => e,
        _ => return Err(XmlError::NoRootElement),
    };
    p.skip_misc();
    if p.pos < p.bytes.len() {
        return Err(XmlError::TrailingContent { offset: p.pos });
    }
    Ok(root)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skips whitespace and comments; returns whether anything was skipped.
    fn skip_misc(&mut self) {
        loop {
            self.skip_whitespace();
            if self.starts_with("<!--") {
                match find(self.bytes, self.pos + 4, "-->") {
                    Some(end) => self.pos = end + 3,
                    None => {
                        self.pos = self.bytes.len();
                        return;
                    }
                }
            } else {
                return;
            }
        }
    }

    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        self.skip_misc();
        if self.starts_with("<?xml") {
            match find(self.bytes, self.pos, "?>") {
                Some(end) => self.pos = end + 2,
                None => {
                    return Err(XmlError::UnexpectedEof {
                        context: "XML declaration",
                    })
                }
            }
        }
        self.skip_misc();
        Ok(())
    }

    fn read_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(match self.peek() {
                Some(c) => XmlError::UnexpectedChar {
                    found: c as char,
                    offset: self.pos,
                    expected: "a tag or attribute name",
                },
                None => XmlError::UnexpectedEof { context: "a name" },
            });
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn expect(&mut self, c: u8, expected: &'static str) -> Result<(), XmlError> {
        match self.peek() {
            Some(found) if found == c => {
                self.pos += 1;
                Ok(())
            }
            Some(found) => Err(XmlError::UnexpectedChar {
                found: found as char,
                offset: self.pos,
                expected,
            }),
            None => Err(XmlError::UnexpectedEof { context: expected }),
        }
    }

    fn unescape_into(&self, raw: &str) -> Result<String, XmlError> {
        if !raw.contains('&') {
            return Ok(raw.to_string());
        }
        let mut out = String::with_capacity(raw.len());
        let mut rest = raw;
        while let Some(amp) = rest.find('&') {
            out.push_str(&rest[..amp]);
            rest = &rest[amp + 1..];
            let semi = rest.find(';').ok_or(XmlError::UnexpectedEof {
                context: "an entity reference",
            })?;
            let name = &rest[..semi];
            match name {
                "amp" => out.push('&'),
                "lt" => out.push('<'),
                "gt" => out.push('>'),
                "quot" => out.push('"'),
                "apos" => out.push('\''),
                _ => return Err(XmlError::UnknownEntity(name.to_string())),
            }
            rest = &rest[semi + 1..];
        }
        out.push_str(rest);
        Ok(out)
    }

    fn parse_attributes(&mut self, element: &mut Element) -> Result<(), XmlError> {
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'/') | Some(b'>') => return Ok(()),
                Some(_) => {}
                None => {
                    return Err(XmlError::UnexpectedEof {
                        context: "attributes",
                    })
                }
            }
            let name = self.read_name()?;
            self.skip_whitespace();
            self.expect(b'=', "'=' after attribute name")?;
            self.skip_whitespace();
            let quote = match self.peek() {
                Some(q @ (b'"' | b'\'')) => {
                    self.pos += 1;
                    q
                }
                Some(found) => {
                    return Err(XmlError::UnexpectedChar {
                        found: found as char,
                        offset: self.pos,
                        expected: "a quoted attribute value",
                    })
                }
                None => {
                    return Err(XmlError::UnexpectedEof {
                        context: "an attribute value",
                    })
                }
            };
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == quote {
                    break;
                }
                self.pos += 1;
            }
            if self.peek().is_none() {
                return Err(XmlError::UnexpectedEof {
                    context: "an attribute value",
                });
            }
            let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
            self.pos += 1; // closing quote
            element.attributes.push((name, self.unescape_into(&raw)?));
        }
    }

    /// Parses the next node; `None` at a closing tag or end of input.
    fn parse_node(&mut self) -> Result<Option<Node>, XmlError> {
        self.skip_misc();
        match self.peek() {
            None => Ok(None),
            Some(b'<') => {
                if self.starts_with("</") {
                    return Ok(None);
                }
                self.pos += 1;
                let mut element = Element::new(self.read_name()?);
                self.parse_attributes(&mut element)?;
                if self.peek() == Some(b'/') {
                    self.pos += 1;
                    self.expect(b'>', "'>' closing a self-closing tag")?;
                    return Ok(Some(Node::Element(element)));
                }
                self.expect(b'>', "'>' closing an open tag")?;
                while let Some(child) = self.parse_node()? {
                    element.children.push(child);
                }
                if !self.starts_with("</") {
                    return Err(XmlError::UnexpectedEof {
                        context: "a closing tag",
                    });
                }
                self.pos += 2;
                let closing = self.read_name()?;
                if closing != element.name {
                    return Err(XmlError::MismatchedTag {
                        expected: element.name,
                        found: closing,
                    });
                }
                self.skip_whitespace();
                self.expect(b'>', "'>' after a closing tag name")?;
                Ok(Some(Node::Element(element)))
            }
            Some(_) => {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == b'<' {
                        break;
                    }
                    self.pos += 1;
                }
                let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                let text = self.unescape_into(&raw)?;
                if text.trim().is_empty() {
                    self.parse_node()
                } else {
                    Ok(Some(Node::Text(text)))
                }
            }
        }
    }
}

fn find(bytes: &[u8], from: usize, needle: &str) -> Option<usize> {
    let needle = needle.as_bytes();
    if from >= bytes.len() {
        return None;
    }
    bytes[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|i| from + i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_elements() {
        let doc = parse(
            r#"<?xml version="1.0"?>
            <!-- a workflow -->
            <workflow name="w1" deadline="80m">
              <job name="extract" mappers="8"><input path="/a"/></job>
              <job name="load" mappers="2"/>
            </workflow>"#,
        )
        .unwrap();
        assert_eq!(doc.name, "workflow");
        assert_eq!(doc.attr("deadline"), Some("80m"));
        let jobs: Vec<&Element> = doc.elements_named("job").collect();
        assert_eq!(jobs.len(), 2);
        assert_eq!(
            jobs[0].first_named("input").unwrap().attr("path"),
            Some("/a")
        );
    }

    #[test]
    fn parses_text_content() {
        let doc = parse("<a><name>hello world</name></a>").unwrap();
        assert_eq!(doc.first_named("name").unwrap().text(), "hello world");
    }

    #[test]
    fn unescapes_entities() {
        let doc = parse(r#"<a v="x &amp; y">&lt;tag&gt; &quot;q&quot; &apos;a&apos;</a>"#).unwrap();
        assert_eq!(doc.attr("v"), Some("x & y"));
        assert_eq!(doc.text(), "<tag> \"q\" 'a'");
    }

    #[test]
    fn rejects_unknown_entity() {
        assert_eq!(
            parse("<a>&nbsp;</a>").unwrap_err(),
            XmlError::UnknownEntity("nbsp".into())
        );
    }

    #[test]
    fn rejects_mismatched_tags() {
        assert!(matches!(
            parse("<a><b></a></b>").unwrap_err(),
            XmlError::MismatchedTag { .. }
        ));
    }

    #[test]
    fn rejects_truncated_input() {
        assert!(matches!(
            parse("<a><b>").unwrap_err(),
            XmlError::UnexpectedEof { .. }
        ));
        assert!(matches!(
            parse("<a attr=").unwrap_err(),
            XmlError::UnexpectedEof { .. }
        ));
    }

    #[test]
    fn rejects_empty_and_trailing() {
        assert_eq!(parse("   ").unwrap_err(), XmlError::NoRootElement);
        assert!(matches!(
            parse("<a/><b/>").unwrap_err(),
            XmlError::TrailingContent { .. }
        ));
    }

    #[test]
    fn trailing_comment_is_fine() {
        assert!(parse("<a/> <!-- done -->").is_ok());
    }

    #[test]
    fn writer_roundtrips() {
        let doc = Element::new("workflow")
            .with_attr("name", "w \"quoted\" & more")
            .with_child(Element::new("job").with_attr("name", "a"))
            .with_child(Element::new("note").with_text("x < y"));
        let rendered = doc.to_string();
        let reparsed = parse(&rendered).unwrap();
        assert_eq!(reparsed, doc);
    }

    #[test]
    fn single_quoted_attributes() {
        let doc = parse("<a v='hello'/>").unwrap();
        assert_eq!(doc.attr("v"), Some("hello"));
    }

    #[test]
    fn attr_returns_first_match_and_none() {
        let doc = parse(r#"<a v="1"/>"#).unwrap();
        assert_eq!(doc.attr("v"), Some("1"));
        assert_eq!(doc.attr("missing"), None);
    }

    #[test]
    fn escape_covers_all_entities() {
        assert_eq!(escape(r#"<&>"'"#), "&lt;&amp;&gt;&quot;&apos;");
    }
}
