//! Compatibility adapter for Apache Oozie `workflow-app` definitions.
//!
//! The paper positions WOHA as the deadline-aware replacement for the
//! Oozie + Hadoop split (§I, §VII). Shops migrating to WOHA have existing
//! Oozie workflow definitions, so this module translates the commonly-used
//! subset of the Oozie hPDL schema into a [`WorkflowConfig`]:
//!
//! - `<start to="..."/>`, `<end name="..."/>`, `<kill>`;
//! - `<action name="..."> <map-reduce>...</map-reduce> <ok to="..."/>
//!   <error to="..."/> </action>`;
//! - `<fork>`/`<join>` pairs for parallel sections.
//!
//! The control-flow graph (`start`/`ok`/`fork`/`join` transitions) becomes
//! the prerequisite relation: action B depends on action A when B is
//! reachable from A's `ok` transition through control nodes without
//! passing another action. Task counts and duration estimates are not part
//! of hPDL; they are supplied per action through a
//! [`JobSizing`] callback (in production they would come from history
//! logs, exactly as the paper assumes).

use crate::config::{JobConfig, WorkflowConfig};
use crate::error::ModelError;
use crate::time::SimDuration;
use crate::xml::{self, Element};
use std::collections::HashMap;

/// Sizing information for one Oozie action, supplied by the caller (hPDL
/// carries no task counts or duration estimates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSizing {
    /// Number of map tasks.
    pub mappers: u32,
    /// Number of reduce tasks.
    pub reducers: u32,
    /// Estimated duration of one map task.
    pub map_duration: SimDuration,
    /// Estimated duration of one reduce task.
    pub reduce_duration: SimDuration,
}

impl Default for JobSizing {
    fn default() -> Self {
        JobSizing {
            mappers: 8,
            reducers: 1,
            map_duration: SimDuration::from_secs(60),
            reduce_duration: SimDuration::from_secs(120),
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Start { to: String },
    Action { ok_to: String },
    Fork { paths: Vec<String> },
    Join { to: String },
    End,
    Kill,
}

/// Parses an Oozie `workflow-app` document into a [`WorkflowConfig`],
/// sizing each action's Map-Reduce job via `sizing(action_name)`.
///
/// # Errors
///
/// Returns [`ModelError`] if the XML is malformed, the root is not
/// `workflow-app`, a transition targets an unknown node, there is no
/// `<start>`, or the control graph is cyclic.
///
/// # Examples
///
/// ```
/// use woha_model::oozie::{from_oozie_xml, JobSizing};
///
/// # fn main() -> Result<(), woha_model::ModelError> {
/// let hpdl = r#"
/// <workflow-app name="demo">
///   <start to="extract"/>
///   <action name="extract">
///     <map-reduce/>
///     <ok to="end"/>
///     <error to="fail"/>
///   </action>
///   <kill name="fail"><message>boom</message></kill>
///   <end name="end"/>
/// </workflow-app>"#;
/// let config = from_oozie_xml(hpdl, |_| JobSizing::default())?;
/// assert_eq!(config.name, "demo");
/// assert_eq!(config.jobs.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn from_oozie_xml(
    text: &str,
    mut sizing: impl FnMut(&str) -> JobSizing,
) -> Result<WorkflowConfig, ModelError> {
    let root = xml::parse(text)?;
    if root.name != "workflow-app" {
        return Err(ModelError::Schema(format!(
            "root element is <{}>, expected <workflow-app>",
            root.name
        )));
    }
    let name = root
        .attr("name")
        .ok_or_else(|| ModelError::MissingAttribute {
            element: "workflow-app".into(),
            attribute: "name".into(),
        })?
        .to_string();

    let mut nodes: HashMap<String, Node> = HashMap::new();
    let mut start_to: Option<String> = None;
    let mut action_order: Vec<String> = Vec::new();
    for child in root.elements() {
        match child.name.as_str() {
            "start" => {
                let to = require(child, "to")?;
                start_to = Some(to.clone());
                nodes.insert("::start".into(), Node::Start { to });
            }
            "end" => {
                nodes.insert(require(child, "name")?, Node::End);
            }
            "kill" => {
                nodes.insert(require(child, "name")?, Node::Kill);
            }
            "action" => {
                let action_name = require(child, "name")?;
                let ok = child.first_named("ok").ok_or_else(|| {
                    ModelError::Schema(format!("action {action_name:?} has no <ok> transition"))
                })?;
                let ok_to = ok.attr("to").ok_or_else(|| ModelError::MissingAttribute {
                    element: "ok".into(),
                    attribute: "to".into(),
                })?;
                if child.first_named("map-reduce").is_none() {
                    return Err(ModelError::Schema(format!(
                        "action {action_name:?} is not a <map-reduce> action; only \
                         map-reduce actions are supported"
                    )));
                }
                action_order.push(action_name.clone());
                nodes.insert(
                    action_name,
                    Node::Action {
                        ok_to: ok_to.to_string(),
                    },
                );
            }
            "fork" => {
                let fork_name = require(child, "name")?;
                let paths: Vec<String> = child
                    .elements_named("path")
                    .map(|p| {
                        p.attr("start").map(str::to_string).ok_or_else(|| {
                            ModelError::MissingAttribute {
                                element: "path".into(),
                                attribute: "start".into(),
                            }
                        })
                    })
                    .collect::<Result<_, _>>()?;
                if paths.is_empty() {
                    return Err(ModelError::Schema(format!(
                        "fork {fork_name:?} has no <path> children"
                    )));
                }
                nodes.insert(fork_name, Node::Fork { paths });
            }
            "join" => {
                nodes.insert(
                    require(child, "name")?,
                    Node::Join {
                        to: require(child, "to")?,
                    },
                );
            }
            // Oozie metadata we can safely ignore.
            "global" | "parameters" | "credentials" | "sla:info" => {}
            other => {
                return Err(ModelError::Schema(format!(
                    "unsupported element <{other}> under <workflow-app>"
                )))
            }
        }
    }
    let start_to = start_to.ok_or_else(|| ModelError::Schema("missing <start>".into()))?;

    // Resolve, from each transition target, the set of *actions* reachable
    // without passing through another action.
    let mut memo: HashMap<String, Vec<String>> = HashMap::new();
    fn actions_reached(
        target: &str,
        nodes: &HashMap<String, Node>,
        memo: &mut HashMap<String, Vec<String>>,
        depth: usize,
    ) -> Result<Vec<String>, ModelError> {
        if depth > nodes.len() + 1 {
            return Err(ModelError::Schema(
                "control-flow cycle through fork/join nodes".into(),
            ));
        }
        if let Some(cached) = memo.get(target) {
            return Ok(cached.clone());
        }
        let node = nodes.get(target).ok_or_else(|| {
            ModelError::Schema(format!("transition targets unknown node {target:?}"))
        })?;
        let result = match node {
            Node::Action { .. } => vec![target.to_string()],
            Node::End | Node::Kill => Vec::new(),
            Node::Start { to } | Node::Join { to } => actions_reached(to, nodes, memo, depth + 1)?,
            Node::Fork { paths } => {
                let mut all = Vec::new();
                for p in paths {
                    all.extend(actions_reached(p, nodes, memo, depth + 1)?);
                }
                all
            }
        };
        memo.insert(target.to_string(), result.clone());
        Ok(result)
    }

    // Build dependency edges: each action's ok-transition reaches its
    // dependents.
    let mut depends_on: HashMap<String, Vec<String>> = HashMap::new();
    for action in &action_order {
        let Node::Action { ok_to } = &nodes[action] else {
            unreachable!("action_order only holds actions");
        };
        for dependent in actions_reached(ok_to, &nodes, &mut memo, 0)? {
            depends_on
                .entry(dependent)
                .or_default()
                .push(action.clone());
        }
    }
    // Verify the start transition reaches at least one action.
    let initial = actions_reached(&start_to, &nodes, &mut memo, 0)?;
    if initial.is_empty() && !action_order.is_empty() {
        return Err(ModelError::Schema(
            "<start> transition reaches no action".into(),
        ));
    }

    let jobs = action_order
        .iter()
        .map(|action| {
            let size = sizing(action);
            JobConfig {
                name: action.clone(),
                mappers: size.mappers,
                reducers: size.reducers,
                map_duration: size.map_duration,
                reduce_duration: size.reduce_duration,
                jar: None,
                main_class: None,
                inputs: Vec::new(),
                outputs: Vec::new(),
                depends_on: depends_on.get(action).cloned().unwrap_or_default(),
            }
        })
        .collect();
    Ok(WorkflowConfig {
        name,
        relative_deadline: None,
        jobs,
    })
}

fn require(e: &Element, attribute: &str) -> Result<String, ModelError> {
    e.attr(attribute)
        .map(str::to_string)
        .ok_or_else(|| ModelError::MissingAttribute {
            element: e.name.clone(),
            attribute: attribute.to_string(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimTime;

    const FORK_JOIN: &str = r#"
    <workflow-app name="fork-join-demo">
      <start to="prepare"/>
      <action name="prepare">
        <map-reduce/>
        <ok to="split"/>
        <error to="fail"/>
      </action>
      <fork name="split">
        <path start="stats"/>
        <path start="index"/>
      </fork>
      <action name="stats">
        <map-reduce/>
        <ok to="merge"/>
        <error to="fail"/>
      </action>
      <action name="index">
        <map-reduce/>
        <ok to="merge"/>
        <error to="fail"/>
      </action>
      <join name="merge" to="publish"/>
      <action name="publish">
        <map-reduce/>
        <ok to="done"/>
        <error to="fail"/>
      </action>
      <kill name="fail"><message>failed</message></kill>
      <end name="done"/>
    </workflow-app>"#;

    #[test]
    fn fork_join_becomes_diamond() {
        let config = from_oozie_xml(FORK_JOIN, |_| JobSizing::default()).unwrap();
        assert_eq!(config.name, "fork-join-demo");
        assert_eq!(config.jobs.len(), 4);
        let spec = config.to_spec(SimTime::ZERO).unwrap();
        let prepare = spec.job_by_name("prepare").unwrap();
        let stats = spec.job_by_name("stats").unwrap();
        let index = spec.job_by_name("index").unwrap();
        let publish = spec.job_by_name("publish").unwrap();
        assert_eq!(spec.prerequisites(stats), &[prepare]);
        assert_eq!(spec.prerequisites(index), &[prepare]);
        assert_eq!(spec.prerequisites(publish), &[stats, index]);
        assert_eq!(spec.initially_ready(), vec![prepare]);
        // HLF levels: diamond shape.
        assert_eq!(spec.levels(), vec![2, 1, 1, 0]);
    }

    #[test]
    fn sizing_callback_is_applied_per_action() {
        let config = from_oozie_xml(FORK_JOIN, |name| JobSizing {
            mappers: if name == "prepare" { 32 } else { 4 },
            ..JobSizing::default()
        })
        .unwrap();
        assert_eq!(config.jobs[0].mappers, 32);
        assert_eq!(config.jobs[1].mappers, 4);
    }

    #[test]
    fn rejects_wrong_root_and_missing_start() {
        assert!(matches!(
            from_oozie_xml("<coordinator-app name=\"x\"/>", |_| JobSizing::default()),
            Err(ModelError::Schema(_))
        ));
        assert!(matches!(
            from_oozie_xml(
                "<workflow-app name=\"x\"><end name=\"done\"/></workflow-app>",
                |_| JobSizing::default()
            ),
            Err(ModelError::Schema(_))
        ));
    }

    #[test]
    fn rejects_unknown_transition_target() {
        let doc = r#"
        <workflow-app name="x">
          <start to="ghost"/>
          <end name="done"/>
        </workflow-app>"#;
        let err = from_oozie_xml(doc, |_| JobSizing::default()).unwrap_err();
        assert!(err.to_string().contains("ghost"), "{err}");
    }

    #[test]
    fn rejects_non_mapreduce_action() {
        let doc = r#"
        <workflow-app name="x">
          <start to="a"/>
          <action name="a">
            <shell/>
            <ok to="done"/>
            <error to="done"/>
          </action>
          <end name="done"/>
        </workflow-app>"#;
        assert!(matches!(
            from_oozie_xml(doc, |_| JobSizing::default()),
            Err(ModelError::Schema(_))
        ));
    }

    #[test]
    fn rejects_control_cycle() {
        let doc = r#"
        <workflow-app name="x">
          <start to="f1"/>
          <fork name="f1"><path start="f2"/></fork>
          <fork name="f2"><path start="f1"/></fork>
          <end name="done"/>
        </workflow-app>"#;
        let err = from_oozie_xml(doc, |_| JobSizing::default()).unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
    }

    #[test]
    fn chain_of_actions() {
        let doc = r#"
        <workflow-app name="chain">
          <start to="a"/>
          <action name="a"><map-reduce/><ok to="b"/><error to="k"/></action>
          <action name="b"><map-reduce/><ok to="c"/><error to="k"/></action>
          <action name="c"><map-reduce/><ok to="end"/><error to="k"/></action>
          <kill name="k"><message>x</message></kill>
          <end name="end"/>
        </workflow-app>"#;
        let spec = from_oozie_xml(doc, |_| JobSizing::default())
            .unwrap()
            .to_spec(SimTime::ZERO)
            .unwrap();
        assert_eq!(spec.levels(), vec![2, 1, 0]);
        assert_eq!(spec.critical_path(), SimDuration::from_secs(3 * 180));
    }

    #[test]
    fn ignores_metadata_elements() {
        let doc = r#"
        <workflow-app name="meta">
          <parameters/>
          <global/>
          <start to="a"/>
          <action name="a"><map-reduce/><ok to="end"/><error to="end"/></action>
          <end name="end"/>
        </workflow-app>"#;
        assert!(from_oozie_xml(doc, |_| JobSizing::default()).is_ok());
    }
}
