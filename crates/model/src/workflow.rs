//! The workflow model: a DAG of Map-Reduce jobs with a submission time and a
//! deadline (`W_i = {J_i, P_i, S_i, D_i}` in the paper).

use crate::error::ModelError;
use crate::graph::Dag;
use crate::ids::JobId;
use crate::job::JobSpec;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A validated workflow: jobs, their prerequisite relation, a submission
/// time, and a deadline.
///
/// A `WorkflowSpec` can only be obtained from a [`WorkflowBuilder`] (or by
/// parsing a configuration file), which guarantees the invariants that every
/// algorithm in this workspace relies on:
///
/// - at least one job, and every job has at least one map task;
/// - prerequisite edges reference existing jobs, contain no self-loops, and
///   form a DAG;
/// - the deadline is strictly after the submission time.
///
/// # Examples
///
/// ```
/// use woha_model::{JobSpec, SimDuration, SimTime, WorkflowBuilder};
///
/// # fn main() -> Result<(), woha_model::ModelError> {
/// let mut b = WorkflowBuilder::new("etl");
/// let extract = b.add_job(JobSpec::new("extract", 8, 0,
///     SimDuration::from_secs(20), SimDuration::ZERO));
/// let load = b.add_job(JobSpec::new("load", 4, 2,
///     SimDuration::from_secs(30), SimDuration::from_secs(60)));
/// b.add_dependency(extract, load);
/// let w = b
///     .submit_at(SimTime::ZERO)
///     .deadline_at(SimTime::from_mins(30))
///     .build()?;
/// assert_eq!(w.job_count(), 2);
/// assert_eq!(w.prerequisites(load), &[extract]);
/// assert_eq!(w.initially_ready(), vec![extract]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkflowSpec {
    name: String,
    jobs: Vec<JobSpec>,
    prereqs: Vec<Vec<JobId>>,
    dependents: Vec<Vec<JobId>>,
    submit_time: SimTime,
    deadline: SimTime,
}

impl WorkflowSpec {
    /// The workflow's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of jobs (`n_i`).
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// All job ids, in index order.
    pub fn job_ids(&self) -> impl Iterator<Item = JobId> + '_ {
        (0..self.jobs.len() as u32).map(JobId::new)
    }

    /// The jobs, indexable by [`JobId::index`].
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// The spec of one job.
    ///
    /// # Panics
    ///
    /// Panics if `job` is out of range for this workflow.
    pub fn job(&self, job: JobId) -> &JobSpec {
        &self.jobs[job.index()]
    }

    /// Looks a job up by name.
    pub fn job_by_name(&self, name: &str) -> Option<JobId> {
        self.jobs
            .iter()
            .position(|j| j.name() == name)
            .map(|i| JobId::new(i as u32))
    }

    /// The prerequisite set `P_i^j`: jobs that must finish before `job` may
    /// start. Sorted by job id.
    pub fn prerequisites(&self, job: JobId) -> &[JobId] {
        &self.prereqs[job.index()]
    }

    /// The dependent set `D_i^j`: jobs that list `job` as a prerequisite.
    /// Sorted by job id.
    pub fn dependents(&self, job: JobId) -> &[JobId] {
        &self.dependents[job.index()]
    }

    /// Submission time `S_i`.
    pub fn submit_time(&self) -> SimTime {
        self.submit_time
    }

    /// Absolute deadline `D_i`.
    pub fn deadline(&self) -> SimTime {
        self.deadline
    }

    /// The relative deadline `D_i - S_i`.
    pub fn relative_deadline(&self) -> SimDuration {
        self.deadline - self.submit_time
    }

    /// Jobs with no prerequisites, ready as soon as the workflow is
    /// submitted. Sorted by job id.
    pub fn initially_ready(&self) -> Vec<JobId> {
        self.job_ids()
            .filter(|&j| self.prereqs[j.index()].is_empty())
            .collect()
    }

    /// Total number of tasks across all jobs, `Σ_j (m_i^j + r_i^j)`.
    pub fn total_tasks(&self) -> u64 {
        self.jobs.iter().map(|j| u64::from(j.total_tasks())).sum()
    }

    /// Total number of map tasks across all jobs.
    pub fn total_map_tasks(&self) -> u64 {
        self.jobs.iter().map(|j| u64::from(j.map_tasks())).sum()
    }

    /// Total number of reduce tasks across all jobs.
    pub fn total_reduce_tasks(&self) -> u64 {
        self.jobs.iter().map(|j| u64::from(j.reduce_tasks())).sum()
    }

    /// Total slot-time consumed by the workflow.
    pub fn total_work(&self) -> SimDuration {
        self.jobs.iter().map(JobSpec::total_work).sum()
    }

    /// Whether the workflow consists of a single job (the paper removes
    /// these from the Yahoo! workload because they carry no topology).
    pub fn is_single_job(&self) -> bool {
        self.jobs.len() == 1
    }

    /// The prerequisite relation as a [`Dag`] whose node `j` is job `j`,
    /// with edges from each prerequisite to its dependent.
    pub fn to_dag(&self) -> Dag {
        let mut dag = Dag::new(self.jobs.len());
        for (succ, preds) in self.prereqs.iter().enumerate() {
            for p in preds {
                dag.add_edge(p.index(), succ);
            }
        }
        dag
    }

    /// HLF levels: jobs with no dependents are level 0 and a job's level is
    /// one more than the highest level among its dependents.
    pub fn levels(&self) -> Vec<usize> {
        self.to_dag()
            .levels_from_sinks()
            .expect("WorkflowSpec invariant: acyclic")
    }

    /// For each job, the length of the longest chain (weighted by
    /// [`JobSpec::length`], in milliseconds) starting at that job. Used by
    /// Longest Path First.
    pub fn longest_paths_millis(&self) -> Vec<u64> {
        let weights: Vec<u64> = self.jobs.iter().map(|j| j.length().as_millis()).collect();
        self.to_dag()
            .longest_path_to_sink(&weights)
            .expect("WorkflowSpec invariant: acyclic")
    }

    /// The critical-path length of the workflow: the heaviest chain of job
    /// lengths. A lower bound on the workflow's makespan on any cluster.
    pub fn critical_path(&self) -> SimDuration {
        SimDuration::from_millis(self.longest_paths_millis().into_iter().max().unwrap_or(0))
    }

    /// A copy of this workflow with a new name, submission time, and
    /// deadline — the topology and job specs are shared unchanged. This is
    /// how recurring workflows (e.g. the paper's "3 recurrences" experiment)
    /// are instantiated from one template.
    pub fn reissued(&self, name: impl Into<String>, submit: SimTime, deadline: SimTime) -> Self {
        let mut copy = self.clone();
        copy.name = name.into();
        copy.submit_time = submit;
        copy.deadline = deadline;
        copy
    }
}

impl fmt::Display for WorkflowSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "workflow {} ({} jobs, {} tasks, submit {}, deadline {})",
            self.name,
            self.jobs.len(),
            self.total_tasks(),
            self.submit_time,
            self.deadline
        )
    }
}

/// Incremental builder for [`WorkflowSpec`] ([C-BUILDER]).
///
/// See [`WorkflowSpec`] for an end-to-end example.
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html#c-builder
#[derive(Debug, Clone)]
pub struct WorkflowBuilder {
    name: String,
    jobs: Vec<JobSpec>,
    edges: Vec<(JobId, JobId)>,
    submit_time: SimTime,
    deadline: Option<SimTime>,
    relative_deadline: Option<SimDuration>,
}

impl WorkflowBuilder {
    /// Starts a workflow named `name`, submitted at time zero by default.
    pub fn new(name: impl Into<String>) -> Self {
        WorkflowBuilder {
            name: name.into(),
            jobs: Vec::new(),
            edges: Vec::new(),
            submit_time: SimTime::ZERO,
            deadline: None,
            relative_deadline: None,
        }
    }

    /// Adds a job and returns its id.
    pub fn add_job(&mut self, job: JobSpec) -> JobId {
        let id = JobId::new(self.jobs.len() as u32);
        self.jobs.push(job);
        id
    }

    /// Declares that `prerequisite` must finish before `dependent` starts.
    /// Duplicate declarations are allowed and collapse to one edge.
    pub fn add_dependency(&mut self, prerequisite: JobId, dependent: JobId) -> &mut Self {
        self.edges.push((prerequisite, dependent));
        self
    }

    /// Sets the submission time `S_i` (default: time zero).
    pub fn submit_at(&mut self, time: SimTime) -> &mut Self {
        self.submit_time = time;
        self
    }

    /// Sets the absolute deadline `D_i`. Overrides any relative deadline.
    pub fn deadline_at(&mut self, deadline: SimTime) -> &mut Self {
        self.deadline = Some(deadline);
        self.relative_deadline = None;
        self
    }

    /// Sets the deadline relative to the submission time,
    /// `D_i = S_i + rel`. Overrides any absolute deadline.
    pub fn relative_deadline(&mut self, rel: SimDuration) -> &mut Self {
        self.relative_deadline = Some(rel);
        self.deadline = None;
        self
    }

    /// Validates and builds the workflow.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the workflow is empty, any job has zero map
    /// tasks, a dependency references an unknown job or itself, the relation
    /// is cyclic, or the deadline is not after the submission time. A
    /// missing deadline defaults to [`SimTime::MAX`] (no deadline).
    pub fn build(&self) -> Result<WorkflowSpec, ModelError> {
        if self.jobs.is_empty() {
            return Err(ModelError::EmptyWorkflow);
        }
        let n = self.jobs.len();
        for (i, job) in self.jobs.iter().enumerate() {
            if job.map_tasks() == 0 {
                return Err(ModelError::NoMapTasks(JobId::new(i as u32)));
            }
        }
        let mut prereqs: Vec<Vec<JobId>> = vec![Vec::new(); n];
        let mut dependents: Vec<Vec<JobId>> = vec![Vec::new(); n];
        for &(pred, succ) in &self.edges {
            for job in [pred, succ] {
                if job.index() >= n {
                    return Err(ModelError::UnknownJob { job, job_count: n });
                }
            }
            if pred == succ {
                return Err(ModelError::SelfDependency(pred));
            }
            if !prereqs[succ.index()].contains(&pred) {
                prereqs[succ.index()].push(pred);
                dependents[pred.index()].push(succ);
            }
        }
        for list in prereqs.iter_mut().chain(dependents.iter_mut()) {
            list.sort_unstable();
        }
        // Cycle check through the shared DAG machinery.
        let mut dag = Dag::new(n);
        for (succ, preds) in prereqs.iter().enumerate() {
            for p in preds {
                dag.add_edge(p.index(), succ);
            }
        }
        if let Err(node) = dag.topo_sort() {
            return Err(ModelError::Cycle {
                job: JobId::new(node as u32),
            });
        }
        let deadline = match (self.deadline, self.relative_deadline) {
            (Some(d), _) => d,
            (None, Some(rel)) => self.submit_time.saturating_add(rel),
            (None, None) => SimTime::MAX,
        };
        if deadline <= self.submit_time {
            return Err(ModelError::DeadlineBeforeSubmit);
        }
        Ok(WorkflowSpec {
            name: self.name.clone(),
            jobs: self.jobs.clone(),
            prereqs,
            dependents,
            submit_time: self.submit_time,
            deadline,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(name: &str, maps: u32, reduces: u32) -> JobSpec {
        JobSpec::new(
            name,
            maps,
            reduces,
            SimDuration::from_secs(10),
            SimDuration::from_secs(20),
        )
    }

    /// 0 -> {1,2} -> 3 diamond with a deadline.
    fn diamond() -> WorkflowSpec {
        let mut b = WorkflowBuilder::new("diamond");
        let a = b.add_job(job("a", 4, 1));
        let l = b.add_job(job("l", 2, 1));
        let r = b.add_job(job("r", 2, 1));
        let z = b.add_job(job("z", 1, 1));
        b.add_dependency(a, l);
        b.add_dependency(a, r);
        b.add_dependency(l, z);
        b.add_dependency(r, z);
        b.relative_deadline(SimDuration::from_mins(60));
        b.build().unwrap()
    }

    #[test]
    fn builds_and_exposes_topology() {
        let w = diamond();
        assert_eq!(w.name(), "diamond");
        assert_eq!(w.job_count(), 4);
        assert_eq!(
            w.prerequisites(JobId::new(3)),
            &[JobId::new(1), JobId::new(2)]
        );
        assert_eq!(w.dependents(JobId::new(0)), &[JobId::new(1), JobId::new(2)]);
        assert_eq!(w.initially_ready(), vec![JobId::new(0)]);
        assert_eq!(w.job_by_name("r"), Some(JobId::new(2)));
        assert_eq!(w.job_by_name("missing"), None);
    }

    #[test]
    fn totals_and_levels() {
        let w = diamond();
        assert_eq!(w.total_tasks(), 4 + 1 + 2 + 1 + 2 + 1 + 1 + 1);
        assert_eq!(w.total_map_tasks(), 9);
        assert_eq!(w.total_reduce_tasks(), 4);
        assert_eq!(w.levels(), vec![2, 1, 1, 0]);
        // Critical path: three jobs of length 30s each.
        assert_eq!(w.critical_path(), SimDuration::from_secs(90));
        assert!(!w.is_single_job());
    }

    #[test]
    fn deadline_bookkeeping() {
        let w = diamond();
        assert_eq!(w.submit_time(), SimTime::ZERO);
        assert_eq!(w.deadline(), SimTime::from_mins(60));
        assert_eq!(w.relative_deadline(), SimDuration::from_mins(60));
    }

    #[test]
    fn missing_deadline_defaults_to_never() {
        let mut b = WorkflowBuilder::new("no-deadline");
        b.add_job(job("only", 1, 0));
        let w = b.build().unwrap();
        assert_eq!(w.deadline(), SimTime::MAX);
        assert!(w.is_single_job());
    }

    #[test]
    fn absolute_deadline_wins_over_later_relative() {
        let mut b = WorkflowBuilder::new("abs");
        b.add_job(job("only", 1, 0));
        b.relative_deadline(SimDuration::from_mins(5));
        b.deadline_at(SimTime::from_mins(7));
        assert_eq!(b.build().unwrap().deadline(), SimTime::from_mins(7));
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            WorkflowBuilder::new("e").build().unwrap_err(),
            ModelError::EmptyWorkflow
        );
    }

    #[test]
    fn rejects_zero_mappers() {
        let mut b = WorkflowBuilder::new("z");
        b.add_job(job("bad", 0, 3));
        assert!(matches!(b.build().unwrap_err(), ModelError::NoMapTasks(_)));
    }

    #[test]
    fn rejects_unknown_job_in_edge() {
        let mut b = WorkflowBuilder::new("u");
        let a = b.add_job(job("a", 1, 0));
        b.add_dependency(a, JobId::new(9));
        assert!(matches!(
            b.build().unwrap_err(),
            ModelError::UnknownJob { .. }
        ));
    }

    #[test]
    fn rejects_self_dependency() {
        let mut b = WorkflowBuilder::new("s");
        let a = b.add_job(job("a", 1, 0));
        b.add_dependency(a, a);
        assert_eq!(b.build().unwrap_err(), ModelError::SelfDependency(a));
    }

    #[test]
    fn rejects_cycle() {
        let mut b = WorkflowBuilder::new("c");
        let a = b.add_job(job("a", 1, 0));
        let c = b.add_job(job("b", 1, 0));
        b.add_dependency(a, c);
        b.add_dependency(c, a);
        assert!(matches!(b.build().unwrap_err(), ModelError::Cycle { .. }));
    }

    #[test]
    fn rejects_deadline_at_submit() {
        let mut b = WorkflowBuilder::new("d");
        b.add_job(job("a", 1, 0));
        b.submit_at(SimTime::from_secs(10));
        b.deadline_at(SimTime::from_secs(10));
        assert_eq!(b.build().unwrap_err(), ModelError::DeadlineBeforeSubmit);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let mut b = WorkflowBuilder::new("dup");
        let a = b.add_job(job("a", 1, 0));
        let c = b.add_job(job("b", 1, 0));
        b.add_dependency(a, c);
        b.add_dependency(a, c);
        let w = b.build().unwrap();
        assert_eq!(w.prerequisites(c), &[a]);
        assert_eq!(w.to_dag().edge_count(), 1);
    }

    #[test]
    fn reissued_keeps_topology() {
        let w = diamond();
        let w2 = w.reissued("diamond-2", SimTime::from_mins(5), SimTime::from_mins(75));
        assert_eq!(w2.name(), "diamond-2");
        assert_eq!(w2.submit_time(), SimTime::from_mins(5));
        assert_eq!(w2.deadline(), SimTime::from_mins(75));
        assert_eq!(w2.jobs(), w.jobs());
        assert_eq!(w2.relative_deadline(), SimDuration::from_mins(70));
    }

    #[test]
    fn serde_roundtrip() {
        let w = diamond();
        let json = serde_json::to_string(&w).unwrap();
        let back: WorkflowSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(w, back);
    }

    #[test]
    fn display_summarizes() {
        let s = diamond().to_string();
        assert!(s.contains("diamond"));
        assert!(s.contains("4 jobs"));
    }
}
