//! Workflow model for the WOHA reproduction.
//!
//! This crate defines the static vocabulary shared by every other crate in
//! the workspace: identifiers, simulated time, Map-Reduce job specs,
//! validated workflow DAGs (`W_i = {J_i, P_i, S_i, D_i}` from the paper),
//! generic DAG utilities, and the XML workflow configuration format that
//! users submit through `hadoop dag`.
//!
//! # Quick example
//!
//! ```
//! use woha_model::{JobSpec, SimDuration, SimTime, WorkflowBuilder};
//!
//! # fn main() -> Result<(), woha_model::ModelError> {
//! let mut b = WorkflowBuilder::new("nightly-report");
//! let clean = b.add_job(JobSpec::new("clean", 16, 4,
//!     SimDuration::from_secs(40), SimDuration::from_secs(90)));
//! let report = b.add_job(JobSpec::new("report", 4, 1,
//!     SimDuration::from_secs(25), SimDuration::from_secs(300)));
//! b.add_dependency(clean, report);
//! let workflow = b.relative_deadline(SimDuration::from_mins(60)).build()?;
//! assert_eq!(workflow.total_tasks(), 25);
//! assert_eq!(workflow.critical_path(), SimDuration::from_millis(455_000));
//! # Ok(())
//! # }
//! ```
//!
//! # Modules
//!
//! - [`ids`] — `WorkflowId`, `JobId`, `TaskId`, `NodeId`, `SlotKind`.
//! - [`time`] — [`SimTime`] instants and [`SimDuration`] spans.
//! - [`job`] — [`JobSpec`], the static description of one Map-Reduce job.
//! - [`workflow`] — [`WorkflowSpec`]/[`WorkflowBuilder`], the validated DAG.
//! - [`graph`] — reusable DAG algorithms (topo-sort, levels, longest path).
//! - [`xml`] — the minimal XML parser/writer used by [`config`].
//! - [`config`] — the `<workflow>` XML schema and duration syntax.
//! - [`oozie`] — adapter for Apache Oozie `workflow-app` definitions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod graph;
pub mod ids;
pub mod job;
pub mod oozie;
pub mod time;
pub mod workflow;
pub mod xml;

pub use config::{JobConfig, WorkflowConfig};
pub use error::{ModelError, XmlError};
pub use ids::{JobId, NodeId, SlotKind, TaskId, WorkflowId};
pub use job::JobSpec;
pub use time::{SimDuration, SimTime};
pub use workflow::{WorkflowBuilder, WorkflowSpec};
