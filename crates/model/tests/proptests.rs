//! Property-based tests for the workflow model.

use proptest::collection::vec;
use proptest::prelude::*;
use woha_model::config::{format_duration, parse_duration};
use woha_model::graph::Dag;
use woha_model::{
    JobId, JobSpec, SimDuration, SimTime, WorkflowBuilder, WorkflowConfig, WorkflowSpec,
};

/// A random DAG built by only adding forward edges (i < j), which is acyclic
/// by construction.
fn forward_dag(n: usize, edges: &[(usize, usize)]) -> Dag {
    let mut g = Dag::new(n);
    for &(a, b) in edges {
        let (a, b) = (a % n, b % n);
        if a < b {
            g.add_edge(a, b);
        } else if b < a {
            g.add_edge(b, a);
        }
    }
    g
}

fn arb_forward_edges(n: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    vec((0..n, 0..n), 0..(n * 2))
}

proptest! {
    /// Forward-edge graphs are always acyclic, and topo order respects edges.
    #[test]
    fn topo_sort_respects_edges(edges in arb_forward_edges(12)) {
        let g = forward_dag(12, &edges);
        let order = g.topo_sort().expect("forward DAG is acyclic");
        prop_assert_eq!(order.len(), 12);
        let pos: Vec<usize> = {
            let mut pos = vec![0; 12];
            for (i, &v) in order.iter().enumerate() { pos[v] = i; }
            pos
        };
        for v in 0..12 {
            for &s in g.successors(v) {
                prop_assert!(pos[v] < pos[s], "edge {}->{} violated", v, s);
            }
        }
    }

    /// Adding a back edge along an existing path always creates a cycle.
    #[test]
    fn back_edge_creates_cycle(edges in arb_forward_edges(10)) {
        let mut g = forward_dag(10, &edges);
        // Find any existing edge and reverse it; if none, make a 2-cycle.
        let found = (0..10).find_map(|v| g.successors(v).first().map(|&s| (v, s)));
        if let Some((v, s)) = found {
            g.add_edge(s, v);
            prop_assert!(!g.is_acyclic());
        }
    }

    /// HLF levels: every node's level is exactly one more than its highest
    /// dependent, and sinks are level 0.
    #[test]
    fn levels_are_consistent(edges in arb_forward_edges(12)) {
        let g = forward_dag(12, &edges);
        let levels = g.levels_from_sinks().unwrap();
        for v in 0..12 {
            let expect = g.successors(v).iter().map(|&s| levels[s] + 1).max().unwrap_or(0);
            prop_assert_eq!(levels[v], expect);
        }
    }

    /// The critical path weight is at least the heaviest single node and at
    /// most the total weight.
    #[test]
    fn critical_path_bounds(edges in arb_forward_edges(10),
                            weights in vec(0u64..1_000, 10)) {
        let g = forward_dag(10, &edges);
        let cp = g.critical_path_weight(&weights).unwrap();
        let max_node = *weights.iter().max().unwrap();
        let total: u64 = weights.iter().sum();
        prop_assert!(cp >= max_node);
        prop_assert!(cp <= total);
    }

    /// Duration strings round-trip through format/parse.
    #[test]
    fn duration_roundtrip(ms in 0u64..10_000_000_000) {
        let d = SimDuration::from_millis(ms);
        prop_assert_eq!(parse_duration(&format_duration(d)).unwrap(), d);
    }

    /// SimTime arithmetic: (t + d) - d == t and (t + d) - t == d.
    #[test]
    fn time_arithmetic_inverts(t in 0u64..u32::MAX as u64, d in 0u64..u32::MAX as u64) {
        let t = SimTime::from_millis(t);
        let d = SimDuration::from_millis(d);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!((t + d) - t, d);
    }
}

fn arb_workflow() -> impl Strategy<Value = WorkflowSpec> {
    (
        2usize..12,
        proptest::collection::vec((0usize..12, 0usize..12), 0..20),
        1u64..100,
    )
        .prop_map(|(n, raw_edges, deadline_mins)| {
            let mut b = WorkflowBuilder::new("prop");
            let ids: Vec<JobId> = (0..n)
                .map(|i| {
                    b.add_job(JobSpec::new(
                        format!("j{i}"),
                        (i as u32 % 7) + 1,
                        i as u32 % 4,
                        SimDuration::from_secs(10 + i as u64),
                        SimDuration::from_secs(20 + i as u64),
                    ))
                })
                .collect();
            for (a, z) in raw_edges {
                let (a, z) = (a % n, z % n);
                if a < z {
                    b.add_dependency(ids[a], ids[z]);
                }
            }
            b.relative_deadline(SimDuration::from_mins(deadline_mins));
            b.build().expect("forward edges are acyclic")
        })
}

proptest! {
    /// Dependents and prerequisites are mutually consistent.
    #[test]
    fn dependents_invert_prerequisites(w in arb_workflow()) {
        for j in w.job_ids() {
            for &p in w.prerequisites(j) {
                prop_assert!(w.dependents(p).contains(&j));
            }
            for &d in w.dependents(j) {
                prop_assert!(w.prerequisites(d).contains(&j));
            }
        }
    }

    /// Every workflow has at least one initially-ready job, and none of them
    /// have prerequisites.
    #[test]
    fn initially_ready_nonempty(w in arb_workflow()) {
        let ready = w.initially_ready();
        prop_assert!(!ready.is_empty());
        for j in ready {
            prop_assert!(w.prerequisites(j).is_empty());
        }
    }

    /// Critical path is bounded by total work and at least the longest job.
    #[test]
    fn workflow_critical_path_bounds(w in arb_workflow()) {
        let cp = w.critical_path();
        let longest = w.jobs().iter().map(JobSpec::length).max().unwrap();
        prop_assert!(cp >= longest);
        let serial: SimDuration = w.jobs().iter().map(JobSpec::length).sum();
        prop_assert!(cp <= serial);
    }

    /// WorkflowSpec -> WorkflowConfig -> XML -> WorkflowConfig -> WorkflowSpec
    /// is the identity.
    #[test]
    fn workflow_xml_roundtrip(w in arb_workflow()) {
        let cfg = WorkflowConfig::from(&w);
        let xml = cfg.to_xml();
        let cfg2 = WorkflowConfig::parse(&xml).unwrap();
        prop_assert_eq!(&cfg, &cfg2);
        let w2 = cfg2.to_spec(w.submit_time()).unwrap();
        prop_assert_eq!(w, w2);
    }

    /// Arbitrary text survives XML attribute escaping.
    #[test]
    fn xml_escape_roundtrip(s in "[ -~]{0,60}") {
        let doc = woha_model::xml::Element::new("a").with_attr("v", s.clone());
        let parsed = woha_model::xml::parse(&doc.to_string()).unwrap();
        prop_assert_eq!(parsed.attr("v"), Some(s.as_str()));
    }

    /// Text nodes survive escaping too (trimmed, nonempty).
    #[test]
    fn xml_text_roundtrip(s in "[!-~][ -~]{0,58}[!-~]") {
        let doc = woha_model::xml::Element::new("a").with_text(s.clone());
        let parsed = woha_model::xml::parse(&doc.to_string()).unwrap();
        prop_assert_eq!(parsed.text(), s.trim());
    }

    /// The XML parser never panics on arbitrary input — it returns a
    /// document or a structured error.
    #[test]
    fn xml_parser_total_on_garbage(s in ".{0,200}") {
        let _ = woha_model::xml::parse(&s);
    }

    /// Nor does it panic on plausible-but-broken markup.
    #[test]
    fn xml_parser_total_on_markupish(s in "[<>=/a-z \"&;!-]{0,120}") {
        let _ = woha_model::xml::parse(&s);
    }

    /// WorkflowConfig::parse is equally total.
    #[test]
    fn config_parser_total(s in "[<>=/a-z0-9 \"-]{0,150}") {
        let _ = woha_model::WorkflowConfig::parse(&s);
    }
}
