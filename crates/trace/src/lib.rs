//! Synthetic workload and trace generation for the WOHA reproduction.
//!
//! The paper's evaluation mixes a hand-built demonstration topology (Fig 7)
//! with a proprietary Yahoo! WebScope trace. This crate regenerates both:
//! deterministic, seedable distributions calibrated to the published trace
//! statistics, topology generators, and workload assembly (release times
//! and deadline rules).
//!
//! # Quick example
//!
//! ```
//! use woha_trace::{Rng, yahoo::{yahoo_workflows, YahooTraceConfig}};
//! use woha_trace::workload::{DeadlineRule, ReleasePattern, Workload};
//! use woha_model::SimDuration;
//!
//! let mut rng = Rng::new(42);
//! let flows = yahoo_workflows(&YahooTraceConfig::default(), &mut rng);
//! let workload = Workload::assign(
//!     &flows,
//!     ReleasePattern::UniformWindow(SimDuration::from_mins(10)),
//!     DeadlineRule::Stretch { min: 1.5, max: 3.0, reference_slots: 240 },
//!     &mut rng,
//! ).without_single_jobs();
//! assert_eq!(workload.len(), 46);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod rng;
pub mod source;
pub mod stats;
pub mod topology;
pub mod workload;
pub mod yahoo;

pub use dist::{
    BoundedPareto, Clamped, Discrete, Distribution, Exponential, LogNormal, Mixture, Uniform,
};
pub use rng::Rng;
pub use source::{
    drain, to_jsonl, ChannelSource, FollowSource, GeneratorSource, JsonlSource, SourcePoll,
    SourceStop, VecSource, WorkloadSource,
};
pub use workload::{DeadlineRule, ReleasePattern, Workload};
pub use yahoo::YahooTraceConfig;
