//! A small deterministic PRNG for workload generation.
//!
//! Every experiment in this workspace must be exactly reproducible from a
//! seed, across platforms and across runs, so workload generation uses this
//! self-contained generator (splitmix64-seeded xoshiro256**) rather than a
//! thread-local or OS-seeded source. The `rand` crate is only used in
//! benches and tests where reproducibility does not matter.

/// A seedable, deterministic random number generator (xoshiro256**).
///
/// # Examples
///
/// ```
/// use woha_trace::Rng;
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.range_f64(0.0, 1.0);
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: [u64; 4],
}

impl Rng {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        // splitmix64 expansion of the seed into the xoshiro state, per the
        // reference implementation's seeding recommendation.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng {
            state: [next(), next(), next(), next()],
        }
    }

    /// Derives an independent generator for a named substream. Forking lets
    /// one experiment seed draw independent streams for, say, topology shape
    /// and task durations, so adding draws to one stream does not perturb
    /// the other.
    pub fn fork(&self, stream: u64) -> Rng {
        let mut child = Rng::new(self.state[0] ^ stream.wrapping_mul(0xA076_1D64_78BD_642F));
        // Decorrelate from the parent further by mixing in the rest of the state.
        child.state[1] ^= self.state[1];
        child.state[2] ^= self.state[2].rotate_left(17);
        child.state[3] ^= self.state[3].rotate_left(43);
        child
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits → uniform in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Multiply-shift rejection-free mapping is fine here: workload
        // generation does not need perfectly unbiased sampling, but we use
        // Lemire-style widening multiply to keep bias below 2^-64 anyway.
        let wide = (self.next_u64() as u128) * (span as u128);
        lo + (wide >> 64) as u64
    }

    /// A uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// A uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad range");
        lo + (hi - lo) * self.next_f64()
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A standard normal variate (Box–Muller).
    pub fn next_standard_normal(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = (self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Uniformly shuffles a slice (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_usize(0, i + 1);
            items.swap(i, j);
        }
    }

    /// A uniformly chosen element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.range_usize(0, items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng::new(0);
        let values: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(values.iter().any(|&v| v != 0));
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let root = Rng::new(99);
        let mut a1 = root.fork(1);
        let mut a2 = root.fork(1);
        let mut b = root.fork(2);
        assert_eq!(a1.next_u64(), a2.next_u64());
        assert_ne!(a1.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = Rng::new(5);
        for _ in 0..10_000 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
        for _ in 0..1_000 {
            let v = r.range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut r = Rng::new(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.range_usize(0, 10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::new(0).range_u64(5, 5);
    }

    #[test]
    fn gen_bool_frequency() {
        let mut r = Rng::new(13);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = Rng::new(17);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| r.next_standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(19);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, (0..50).collect::<Vec<u32>>(), "astronomically unlikely");
    }

    #[test]
    fn choose_returns_member() {
        let mut r = Rng::new(23);
        let items = [1, 2, 3];
        for _ in 0..100 {
            assert!(items.contains(r.choose(&items)));
        }
    }
}
