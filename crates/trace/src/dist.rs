//! Sampling distributions for synthetic workload generation.
//!
//! The Yahoo! trace statistics the paper publishes (Fig 5 and Fig 6) are
//! heavy-tailed: task durations span three decades and task counts four.
//! [`LogNormal`] and [`BoundedPareto`] reproduce those shapes;
//! [`Discrete`] draws from explicit weighted choices.

use crate::rng::Rng;

/// A distribution over `f64` that can be sampled with a [`Rng`].
pub trait Distribution {
    /// Draws one sample.
    fn sample(&self, rng: &mut Rng) -> f64;

    /// Draws `n` samples into a vector.
    fn sample_n(&self, rng: &mut Rng, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// The uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad range");
        Uniform { lo, hi }
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut Rng) -> f64 {
        rng.range_f64(self.lo, self.hi)
    }
}

/// A log-normal distribution, parameterized by the **median** and the
/// shape `sigma` (standard deviation of the underlying normal).
///
/// `median = e^mu`, so `LogNormal::from_median(60.0, 1.0)` produces samples
/// whose logarithms are normal around `ln 60`. This parameterization maps
/// directly onto "most mappers finish between 10 s and 100 s".
///
/// # Examples
///
/// ```
/// use woha_trace::{Distribution, LogNormal, Rng};
/// let d = LogNormal::from_median(60.0, 0.8);
/// let x = d.sample(&mut Rng::new(1));
/// assert!(x > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with the given `mu`/`sigma` of the underlying
    /// normal.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            sigma >= 0.0 && mu.is_finite() && sigma.is_finite(),
            "bad parameters"
        );
        LogNormal { mu, sigma }
    }

    /// Creates a log-normal with the given median (`e^mu`) and shape.
    ///
    /// # Panics
    ///
    /// Panics if `median <= 0` or `sigma < 0`.
    pub fn from_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "median must be positive");
        Self::new(median.ln(), sigma)
    }

    /// The distribution's median.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut Rng) -> f64 {
        (self.mu + self.sigma * rng.next_standard_normal()).exp()
    }
}

/// A Pareto (power-law) distribution truncated to `[lo, hi]`, sampled by
/// inverse transform. Smaller `alpha` means a heavier tail.
///
/// Used for task counts: "about 30 % of jobs have more than 100 mappers"
/// while the median job is small — a classic bounded power law.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    lo: f64,
    hi: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto on `[lo, hi]` with tail index `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `lo <= 0`, `lo >= hi`, or `alpha <= 0`.
    pub fn new(lo: f64, hi: f64, alpha: f64) -> Self {
        assert!(lo > 0.0 && lo < hi && alpha > 0.0, "bad parameters");
        BoundedPareto { lo, hi, alpha }
    }
}

impl Distribution for BoundedPareto {
    fn sample(&self, rng: &mut Rng) -> f64 {
        // Inverse CDF of the bounded Pareto.
        let u = rng.next_f64();
        let la = self.lo.powf(self.alpha);
        let ha = self.hi.powf(self.alpha);
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / self.alpha)
    }
}

/// The exponential distribution with the given mean, sampled by inverse
/// transform. The memoryless workhorse for failure models: node
/// time-to-failure (mean = MTBF) and time-to-repair (mean = MTTR) in the
/// simulator's fault injector follow this shape.
///
/// # Examples
///
/// ```
/// use woha_trace::{Distribution, Exponential, Rng};
/// let d = Exponential::new(3_600.0); // MTBF of one hour, in seconds
/// let x = d.sample(&mut Rng::new(1));
/// assert!(x > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn new(mean: f64) -> Self {
        assert!(mean > 0.0 && mean.is_finite(), "mean must be positive");
        Exponential { mean }
    }

    /// The distribution's mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut Rng) -> f64 {
        // Inverse CDF; `1 - u` keeps ln() away from zero since u ∈ [0, 1).
        -self.mean * (1.0 - rng.next_f64()).ln()
    }
}

/// A discrete distribution over weighted `f64` values.
///
/// # Examples
///
/// ```
/// use woha_trace::{Discrete, Distribution, Rng};
/// // 1 reducer 70% of the time, 10 reducers 30%.
/// let d = Discrete::new(vec![(1.0, 0.7), (10.0, 0.3)]);
/// let x = d.sample(&mut Rng::new(1));
/// assert!(x == 1.0 || x == 10.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Discrete {
    values: Vec<f64>,
    cumulative: Vec<f64>,
}

impl Discrete {
    /// Creates a discrete distribution from `(value, weight)` pairs.
    /// Weights need not sum to 1; they are normalized.
    ///
    /// # Panics
    ///
    /// Panics if `choices` is empty, any weight is negative, or all weights
    /// are zero.
    pub fn new(choices: Vec<(f64, f64)>) -> Self {
        assert!(!choices.is_empty(), "no choices");
        let total: f64 = choices.iter().map(|&(_, w)| w).sum();
        assert!(
            total > 0.0 && choices.iter().all(|&(_, w)| w >= 0.0),
            "weights must be non-negative and not all zero"
        );
        let mut values = Vec::with_capacity(choices.len());
        let mut cumulative = Vec::with_capacity(choices.len());
        let mut acc = 0.0;
        for (v, w) in choices {
            acc += w / total;
            values.push(v);
            cumulative.push(acc);
        }
        // Guard against floating-point undersum.
        *cumulative.last_mut().expect("non-empty") = 1.0;
        Discrete { values, cumulative }
    }
}

impl Distribution for Discrete {
    fn sample(&self, rng: &mut Rng) -> f64 {
        let u = rng.next_f64();
        let idx = self
            .cumulative
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.values.len() - 1);
        self.values[idx]
    }
}

/// A mixture of two distributions: draw from `first` with probability `p`,
/// otherwise from `second`. Used to compose "body + heavy tail" shapes.
#[derive(Debug, Clone)]
pub struct Mixture<A, B> {
    first: A,
    second: B,
    p: f64,
}

impl<A: Distribution, B: Distribution> Mixture<A, B> {
    /// Creates a mixture drawing from `first` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn new(first: A, second: B, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        Mixture { first, second, p }
    }
}

impl<A: Distribution, B: Distribution> Distribution for Mixture<A, B> {
    fn sample(&self, rng: &mut Rng) -> f64 {
        if rng.gen_bool(self.p) {
            self.first.sample(rng)
        } else {
            self.second.sample(rng)
        }
    }
}

/// Clamps another distribution's samples into `[lo, hi]`.
#[derive(Debug, Clone)]
pub struct Clamped<D> {
    inner: D,
    lo: f64,
    hi: f64,
}

impl<D: Distribution> Clamped<D> {
    /// Wraps `inner`, clamping samples to `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(inner: D, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "lo must not exceed hi");
        Clamped { inner, lo, hi }
    }
}

impl<D: Distribution> Distribution for Clamped<D> {
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.inner.sample(rng).clamp(self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn percentile(sorted: &[f64], p: f64) -> f64 {
        let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted[idx]
    }

    fn sorted_samples<D: Distribution>(d: &D, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng::new(seed);
        let mut s = d.sample_n(&mut rng, n);
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        s
    }

    #[test]
    fn uniform_moments() {
        let s = sorted_samples(&Uniform::new(10.0, 20.0), 50_000, 1);
        assert!(s[0] >= 10.0 && *s.last().unwrap() < 20.0);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        assert!((mean - 15.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn lognormal_median_matches() {
        let d = LogNormal::from_median(60.0, 1.0);
        assert!((d.median() - 60.0).abs() < 1e-9);
        let s = sorted_samples(&d, 50_000, 2);
        let med = percentile(&s, 0.5);
        assert!((med - 60.0).abs() / 60.0 < 0.05, "median {med}");
        assert!(s[0] > 0.0);
    }

    #[test]
    fn lognormal_zero_sigma_is_constant() {
        let d = LogNormal::from_median(42.0, 0.0);
        let s = sorted_samples(&d, 100, 3);
        for x in s {
            assert!((x - 42.0).abs() < 1e-9);
        }
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let d = BoundedPareto::new(1.0, 3_000.0, 0.6);
        let s = sorted_samples(&d, 50_000, 4);
        assert!(s[0] >= 1.0);
        assert!(*s.last().unwrap() <= 3_000.0);
        // Heavy tail: the 99th percentile should be far above the median.
        let med = percentile(&s, 0.5);
        let p99 = percentile(&s, 0.99);
        assert!(p99 / med > 20.0, "median {med}, p99 {p99}");
    }

    #[test]
    fn pareto_alpha_controls_tail() {
        let light = sorted_samples(&BoundedPareto::new(1.0, 1_000.0, 2.0), 50_000, 5);
        let heavy = sorted_samples(&BoundedPareto::new(1.0, 1_000.0, 0.3), 50_000, 5);
        assert!(percentile(&heavy, 0.9) > percentile(&light, 0.9));
    }

    #[test]
    fn exponential_mean_and_memorylessness() {
        let d = Exponential::new(100.0);
        assert_eq!(d.mean(), 100.0);
        let s = sorted_samples(&d, 50_000, 9);
        assert!(s[0] >= 0.0);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        assert!((mean - 100.0).abs() / 100.0 < 0.03, "mean {mean}");
        // Median of Exp(λ) is mean·ln 2.
        let med = percentile(&s, 0.5);
        assert!((med - 100.0 * 2f64.ln()).abs() / med < 0.05, "median {med}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_mean() {
        Exponential::new(0.0);
    }

    #[test]
    fn discrete_frequencies() {
        let d = Discrete::new(vec![(1.0, 3.0), (2.0, 1.0)]);
        let s = sorted_samples(&d, 40_000, 6);
        let ones = s.iter().filter(|&&x| x == 1.0).count();
        assert!((28_000..32_000).contains(&ones), "ones {ones}");
        assert!(s.iter().all(|&x| x == 1.0 || x == 2.0));
    }

    #[test]
    #[should_panic(expected = "no choices")]
    fn discrete_empty_panics() {
        Discrete::new(vec![]);
    }

    #[test]
    fn mixture_blends() {
        let d = Mixture::new(Uniform::new(0.0, 1.0), Uniform::new(10.0, 11.0), 0.5);
        let s = sorted_samples(&d, 20_000, 7);
        let low = s.iter().filter(|&&x| x < 5.0).count();
        assert!((9_000..11_000).contains(&low), "low {low}");
    }

    #[test]
    fn clamped_respects_bounds() {
        let d = Clamped::new(LogNormal::from_median(50.0, 2.0), 10.0, 100.0);
        let s = sorted_samples(&d, 10_000, 8);
        assert!(s[0] >= 10.0);
        assert!(*s.last().unwrap() <= 100.0);
    }
}
