//! Workflow topology generators.
//!
//! These produce [`WorkflowBuilder`]s (so callers still choose submission
//! times and deadlines) for the standard shapes used in the paper's
//! evaluation and in tests: chains, fork-joins, diamonds, the 33-job demo
//! topology of Fig 7, and random layered DAGs for the Yahoo-like workload.

use crate::rng::Rng;
use woha_model::{JobId, JobSpec, SimDuration, WorkflowBuilder};

/// A linear chain `j0 -> j1 -> ... -> j(n-1)`.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use woha_trace::topology::chain;
/// use woha_model::{JobSpec, SimDuration};
/// let b = chain("c", 3, |i| JobSpec::new(format!("j{i}"), 2, 1,
///     SimDuration::from_secs(10), SimDuration::from_secs(20)));
/// let w = b.build().unwrap();
/// assert_eq!(w.job_count(), 3);
/// assert_eq!(w.levels(), vec![2, 1, 0]);
/// ```
pub fn chain(
    name: impl Into<String>,
    n: usize,
    mut make_job: impl FnMut(usize) -> JobSpec,
) -> WorkflowBuilder {
    assert!(n > 0, "chain needs at least one job");
    let mut b = WorkflowBuilder::new(name);
    let mut prev: Option<JobId> = None;
    for i in 0..n {
        let id = b.add_job(make_job(i));
        if let Some(p) = prev {
            b.add_dependency(p, id);
        }
        prev = Some(id);
    }
    b
}

/// A fork-join: one source, `width` parallel middle jobs, one sink.
///
/// # Panics
///
/// Panics if `width == 0`. Job indices passed to `make_job` are `0` for the
/// source, `1..=width` for the middle jobs, and `width + 1` for the sink.
pub fn fork_join(
    name: impl Into<String>,
    width: usize,
    mut make_job: impl FnMut(usize) -> JobSpec,
) -> WorkflowBuilder {
    assert!(width > 0, "fork-join needs at least one middle job");
    let mut b = WorkflowBuilder::new(name);
    let source = b.add_job(make_job(0));
    let middles: Vec<JobId> = (0..width).map(|i| b.add_job(make_job(i + 1))).collect();
    let sink = b.add_job(make_job(width + 1));
    for &m in &middles {
        b.add_dependency(source, m);
        b.add_dependency(m, sink);
    }
    b
}

/// The four-job diamond `a -> {b, c} -> d`.
pub fn diamond(
    name: impl Into<String>,
    mut make_job: impl FnMut(usize) -> JobSpec,
) -> WorkflowBuilder {
    fork_join(name, 2, &mut make_job)
}

/// A layered DAG: `widths[l]` jobs on layer `l`, every job on layer `l > 0`
/// depending on 1–2 jobs of layer `l-1` chosen by a deterministic spread, so
/// the DAG is connected and reproducible.
///
/// # Panics
///
/// Panics if `widths` is empty or contains a zero.
pub fn layered(
    name: impl Into<String>,
    widths: &[usize],
    mut make_job: impl FnMut(usize, usize, usize) -> JobSpec,
) -> WorkflowBuilder {
    assert!(!widths.is_empty(), "need at least one layer");
    assert!(
        widths.iter().all(|&w| w > 0),
        "layer widths must be positive"
    );
    let mut b = WorkflowBuilder::new(name);
    let mut index = 0usize;
    let mut prev_layer: Vec<JobId> = Vec::new();
    for (layer, &width) in widths.iter().enumerate() {
        let mut this_layer = Vec::with_capacity(width);
        for slot in 0..width {
            let id = b.add_job(make_job(index, layer, slot));
            index += 1;
            if layer > 0 {
                let prev_width = prev_layer.len();
                // Spread dependencies evenly across the previous layer.
                let primary = slot * prev_width / width;
                b.add_dependency(prev_layer[primary], id);
                // A second edge when the shapes allow, to create joins.
                let secondary = (primary + 1) % prev_width;
                if secondary != primary && (slot + layer) % 2 == 0 {
                    b.add_dependency(prev_layer[secondary], id);
                }
            }
            this_layer.push(id);
        }
        prev_layer = this_layer;
    }
    b
}

/// The per-level job templates of the Fig 7 demo topology.
///
/// The paper shows a 33-job tree-like DAG without publishing task counts;
/// these templates are calibrated so that one workflow alone on the paper's
/// 32-slave cluster (64 map + 32 reduce slots) finishes comfortably within
/// the tightest 60-minute relative deadline, while three concurrent
/// instances under fair sharing do not — the regime Figs 11–19 exercise.
fn fig7_job(level: usize, slot: usize) -> JobSpec {
    let name = format!("L{level}-{slot}");
    match level {
        // A wide ingestion job: needs many slots at once early.
        0 => JobSpec::new(
            name,
            48,
            20,
            SimDuration::from_secs(150),
            SimDuration::from_secs(300),
        ),
        // Fan-out extraction jobs.
        1 => JobSpec::new(
            name,
            24,
            6,
            SimDuration::from_secs(120),
            SimDuration::from_secs(240),
        ),
        // Wide middle layers of modest jobs: the bulk of the workflow's
        // work, with real reduce phases contending for the scarce reduce
        // slots (1 per slave).
        2 | 3 => JobSpec::new(
            name,
            18,
            6,
            SimDuration::from_secs(100),
            SimDuration::from_secs(200),
        ),
        // Narrowing aggregation.
        4 => JobSpec::new(
            name,
            12,
            4,
            SimDuration::from_secs(100),
            SimDuration::from_secs(250),
        ),
        // Small jobs that unlock the tail.
        5 => JobSpec::new(
            name,
            4,
            2,
            SimDuration::from_secs(80),
            SimDuration::from_secs(220),
        ),
        // Final long-running report jobs: little parallelism, long chain.
        _ => JobSpec::new(
            name,
            3,
            1,
            SimDuration::from_secs(150),
            SimDuration::from_secs(450),
        ),
    }
}

/// The 33-job demonstration workflow topology of the paper's Fig 7.
///
/// Layer widths `[1, 3, 6, 9, 8, 4, 2]` (33 jobs) connected as a layered
/// DAG. Callers set the submission time and deadline, matching the Fig 11
/// scenario of three instances released 5 minutes apart.
///
/// # Examples
///
/// ```
/// use woha_trace::topology::paper_fig7;
/// use woha_model::{SimDuration, SimTime};
/// let w = paper_fig7("W-1")
///     .submit_at(SimTime::ZERO)
///     .relative_deadline(SimDuration::from_mins(80))
///     .build()
///     .unwrap();
/// assert_eq!(w.job_count(), 33);
/// ```
pub fn paper_fig7(name: impl Into<String>) -> WorkflowBuilder {
    layered(name, &[1, 3, 6, 9, 8, 4, 2], |_, level, slot| {
        fig7_job(level, slot)
    })
}

/// A random layered DAG with `job_count` jobs, for the Yahoo-like workload.
///
/// The layer structure is drawn from `rng`: the workflow gets between 2 and
/// `max(2, job_count)` layers with random widths summing to `job_count`.
/// Jobs are produced by `make_job(index)`.
///
/// # Panics
///
/// Panics if `job_count < 2` (single-job workflows carry no topology; build
/// those directly).
pub fn random_layered(
    name: impl Into<String>,
    job_count: usize,
    rng: &mut Rng,
    mut make_job: impl FnMut(usize) -> JobSpec,
) -> WorkflowBuilder {
    assert!(job_count >= 2, "random_layered needs at least two jobs");
    // Choose the number of layers: between 2 and job_count, biased small.
    let max_layers = job_count.min(6);
    let layers = rng.range_usize(2, max_layers + 1);
    // Distribute jobs over layers: start with one per layer, then scatter
    // the remainder.
    let mut widths = vec![1usize; layers];
    for _ in 0..(job_count - layers) {
        let l = rng.range_usize(0, layers);
        widths[l] += 1;
    }
    layered(name, &widths, |index, _, _| make_job(index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use woha_model::SimTime;

    fn tiny_job(i: usize) -> JobSpec {
        JobSpec::new(
            format!("j{i}"),
            1 + (i as u32 % 3),
            i as u32 % 2,
            SimDuration::from_secs(10),
            SimDuration::from_secs(20),
        )
    }

    #[test]
    fn chain_structure() {
        let w = chain("c", 5, tiny_job).build().unwrap();
        assert_eq!(w.job_count(), 5);
        assert_eq!(w.initially_ready(), vec![JobId::new(0)]);
        assert_eq!(w.levels(), vec![4, 3, 2, 1, 0]);
        for i in 1..5 {
            assert_eq!(w.prerequisites(JobId::new(i)), &[JobId::new(i - 1)]);
        }
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn chain_rejects_zero() {
        chain("c", 0, tiny_job);
    }

    #[test]
    fn fork_join_structure() {
        let w = fork_join("f", 4, tiny_job).build().unwrap();
        assert_eq!(w.job_count(), 6);
        let sink = JobId::new(5);
        assert_eq!(w.prerequisites(sink).len(), 4);
        assert_eq!(w.dependents(JobId::new(0)).len(), 4);
        assert_eq!(w.levels()[0], 2);
    }

    #[test]
    fn diamond_is_fork_join_2() {
        let w = diamond("d", tiny_job).build().unwrap();
        assert_eq!(w.job_count(), 4);
        assert_eq!(w.levels(), vec![2, 1, 1, 0]);
    }

    #[test]
    fn layered_is_connected_and_acyclic() {
        let w = layered("l", &[2, 3, 2], |i, _, _| tiny_job(i))
            .build()
            .unwrap();
        assert_eq!(w.job_count(), 7);
        // Every non-source job has at least one prerequisite.
        let sources = w.initially_ready();
        for j in w.job_ids() {
            if !sources.contains(&j) {
                assert!(!w.prerequisites(j).is_empty());
            }
        }
        // Sources are exactly layer 0.
        assert_eq!(sources, vec![JobId::new(0), JobId::new(1)]);
    }

    #[test]
    fn fig7_shape() {
        let w = paper_fig7("w")
            .submit_at(SimTime::ZERO)
            .relative_deadline(SimDuration::from_mins(80))
            .build()
            .unwrap();
        assert_eq!(w.job_count(), 33);
        assert_eq!(w.initially_ready().len(), 1);
        // Level structure has 7 layers (HLF level of the source is 6).
        assert_eq!(w.levels()[0], 6);
        // The workflow is non-trivial but executable well within 60 min on
        // a dedicated 64-map/32-reduce cluster: its critical path must be
        // far below the tightest deadline.
        assert!(w.critical_path() < SimDuration::from_mins(45));
        // But it must carry real work: more than 30 cluster-minutes total.
        assert!(w.total_work() > SimDuration::from_mins(30));
    }

    #[test]
    fn fig7_instances_are_identical_topologies() {
        let a = paper_fig7("a").build().unwrap();
        let b = paper_fig7("b").build().unwrap();
        assert_eq!(a.jobs(), b.jobs());
        assert_eq!(a.to_dag(), b.to_dag());
    }

    #[test]
    fn random_layered_deterministic_per_seed() {
        let mut r1 = Rng::new(5);
        let mut r2 = Rng::new(5);
        let a = random_layered("a", 8, &mut r1, tiny_job).build().unwrap();
        let b = random_layered("b", 8, &mut r2, tiny_job).build().unwrap();
        assert_eq!(a.to_dag(), b.to_dag());
        assert_eq!(a.job_count(), 8);
    }

    #[test]
    fn random_layered_respects_job_count() {
        let mut rng = Rng::new(9);
        for n in 2..20 {
            let w = random_layered("w", n, &mut rng, tiny_job).build().unwrap();
            assert_eq!(w.job_count(), n);
            assert!(w.to_dag().is_acyclic());
        }
    }
}
