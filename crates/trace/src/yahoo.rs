//! Synthetic Yahoo!-like job and workflow traces.
//!
//! The paper evaluates WOHA with a proprietary Yahoo! WebScope trace
//! ("detailed information of more than 4000 jobs on 2012 March 7th",
//! arranged into 61 workflows of 180 jobs). That trace is not available, so
//! this module generates synthetic traces calibrated to every statistic the
//! paper publishes about it:
//!
//! - Fig 5(a): most mappers finish between 10 s and 100 s; more than half of
//!   the reducers take over 100 s and about 10 % take over 1000 s.
//! - Fig 5(b): reducers usually take longer than mappers in the same job.
//! - Fig 6(a): about 30 % of jobs have more than 100 mappers; more than 60 %
//!   of jobs have fewer than 10 reducers.
//! - Fig 6(b): mappers usually outnumber reducers in the same job.
//! - §VI-A: 61 workflows totalling 180 jobs, 15 of them single-job, the
//!   largest containing 12 jobs.

use crate::dist::{BoundedPareto, Clamped, Distribution, LogNormal};
use crate::rng::Rng;
use crate::topology::random_layered;
use woha_model::{JobSpec, WorkflowSpec};

/// Parameters of the synthetic Yahoo-like trace.
///
/// The defaults reproduce the paper's published statistics; tests in this
/// module assert that they do.
#[derive(Debug, Clone, PartialEq)]
pub struct YahooTraceConfig {
    /// Median of the per-job map task duration distribution, seconds.
    pub map_duration_median_secs: f64,
    /// Log-normal shape of map task durations.
    pub map_duration_sigma: f64,
    /// Median of the per-job reduce task duration distribution, seconds.
    pub reduce_duration_median_secs: f64,
    /// Log-normal shape of reduce task durations.
    pub reduce_duration_sigma: f64,
    /// Pareto tail index for mapper counts (smaller = heavier tail).
    pub map_count_alpha: f64,
    /// Largest mapper count.
    pub map_count_max: u32,
    /// Pareto tail index for reducer counts.
    pub reduce_count_alpha: f64,
    /// Largest reducer count.
    pub reduce_count_max: u32,
}

impl Default for YahooTraceConfig {
    fn default() -> Self {
        YahooTraceConfig {
            map_duration_median_secs: 35.0,
            map_duration_sigma: 0.75,
            reduce_duration_median_secs: 140.0,
            reduce_duration_sigma: 1.4,
            map_count_alpha: 0.12,
            map_count_max: 3_000,
            reduce_count_alpha: 0.42,
            reduce_count_max: 400,
        }
    }
}

impl YahooTraceConfig {
    /// Draws one job from the trace distributions.
    pub fn sample_job(&self, name: impl Into<String>, rng: &mut Rng) -> JobSpec {
        let map_dur = Clamped::new(
            LogNormal::from_median(self.map_duration_median_secs, self.map_duration_sigma),
            2.0,
            3_000.0,
        );
        let red_dur = Clamped::new(
            LogNormal::from_median(self.reduce_duration_median_secs, self.reduce_duration_sigma),
            5.0,
            10_000.0,
        );
        let map_count =
            BoundedPareto::new(1.0, f64::from(self.map_count_max), self.map_count_alpha);
        let red_count = BoundedPareto::new(
            1.0,
            f64::from(self.reduce_count_max),
            self.reduce_count_alpha,
        );

        let mappers = map_count.sample(rng).round().max(1.0) as u32;
        let mut reducers = red_count.sample(rng).round() as u32;
        // "mappers usually outnumber reducers": cap reducers near the mapper
        // count so the count ratio distribution (Fig 6b) sits mostly above 1.
        if reducers > mappers && rng.gen_bool(0.8) {
            reducers = (mappers / 2).max(1);
        }
        // A tail of map-only jobs exists in production traces.
        if rng.gen_bool(0.08) {
            reducers = 0;
        }
        // Durations are rounded to whole seconds: execution-time estimates
        // come from coarse history logs, and this keeps progress-requirement
        // change instants at second granularity (cf. Fig 3).
        let map_secs = map_dur.sample(rng).round().max(2.0);
        // Reduce duration keeps its own heavy tail ("about 10% of reducers
        // even take more than 1000s") with a floor tied to the job's map
        // duration so reducers are usually the slower phase (Fig 5b).
        let red_secs = (red_dur.sample(rng).max(map_secs * 1.2)).round().max(5.0);
        JobSpec::new(
            name,
            mappers,
            reducers,
            woha_model::SimDuration::from_secs_f64(map_secs),
            woha_model::SimDuration::from_secs_f64(red_secs),
        )
    }

    /// Generates `count` independent jobs (the paper's "more than 4000 jobs"
    /// trace is `generate_jobs(&mut rng, 4000)`).
    pub fn generate_jobs(&self, rng: &mut Rng, count: usize) -> Vec<JobSpec> {
        (0..count)
            .map(|i| self.sample_job(format!("job-{i}"), rng))
            .collect()
    }
}

/// The workflow-size multiset of the paper's Yahoo workload: 61 workflows,
/// 180 jobs, 15 single-job workflows, largest workflow 12 jobs.
pub fn yahoo_workflow_sizes() -> Vec<usize> {
    let mut sizes = vec![12, 10, 8, 7, 6, 6, 5, 5, 5, 4, 4, 4, 4, 4];
    sizes.extend(std::iter::repeat_n(3, 17));
    sizes.extend(std::iter::repeat_n(2, 15));
    sizes.extend(std::iter::repeat_n(1, 15));
    sizes
}

/// Generates the 61-workflow Yahoo-like workload.
///
/// Workflows are returned with submission time zero and no deadline;
/// [`crate::workload`] assigns releases and deadlines. Multi-job workflows
/// get random layered topologies; single-job workflows a lone job.
///
/// # Examples
///
/// ```
/// use woha_trace::{yahoo::{yahoo_workflows, YahooTraceConfig}, Rng};
/// let flows = yahoo_workflows(&YahooTraceConfig::default(), &mut Rng::new(7));
/// assert_eq!(flows.len(), 61);
/// let total: usize = flows.iter().map(|w| w.job_count()).sum();
/// assert_eq!(total, 180);
/// ```
pub fn yahoo_workflows(config: &YahooTraceConfig, rng: &mut Rng) -> Vec<WorkflowSpec> {
    let mut topo_rng = rng.fork(1);
    let mut job_rng = rng.fork(2);
    yahoo_workflow_sizes()
        .into_iter()
        .enumerate()
        .map(|(i, size)| {
            let name = format!("yahoo-w{i:02}");
            if size == 1 {
                let mut b = woha_model::WorkflowBuilder::new(name.clone());
                b.add_job(config.sample_job(format!("{name}-j0"), &mut job_rng));
                b.build().expect("single job workflow is valid")
            } else {
                random_layered(name.clone(), size, &mut topo_rng, |j| {
                    config.sample_job(format!("{name}-j{j}"), &mut job_rng)
                })
                .build()
                .expect("layered workflow is valid")
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Cdf;

    fn big_trace() -> Vec<JobSpec> {
        YahooTraceConfig::default().generate_jobs(&mut Rng::new(2024), 4_000)
    }

    #[test]
    fn fig5a_map_durations_mostly_10_to_100s() {
        let jobs = big_trace();
        let cdf = Cdf::from_samples(jobs.iter().map(|j| j.map_duration().as_secs_f64()));
        let in_band = cdf.fraction_at_or_below(100.0) - cdf.fraction_at_or_below(10.0);
        assert!(in_band > 0.6, "only {in_band:.2} of mappers in 10-100s");
    }

    #[test]
    fn fig5a_reduce_durations_have_heavy_tail() {
        let jobs = big_trace();
        let with_reducers: Vec<f64> = jobs
            .iter()
            .filter(|j| !j.is_map_only())
            .map(|j| j.reduce_duration().as_secs_f64())
            .collect();
        let cdf = Cdf::from_samples(with_reducers);
        let over_100 = 1.0 - cdf.fraction_at_or_below(100.0);
        let over_1000 = 1.0 - cdf.fraction_at_or_below(1_000.0);
        assert!(over_100 > 0.5, "only {over_100:.2} of reducers over 100s");
        assert!(
            (0.04..0.2).contains(&over_1000),
            "{over_1000:.2} of reducers over 1000s"
        );
    }

    #[test]
    fn fig5b_reducers_usually_slower_than_mappers() {
        let jobs = big_trace();
        let slower = jobs
            .iter()
            .filter(|j| !j.is_map_only())
            .filter(|j| j.reduce_duration() > j.map_duration())
            .count();
        let total = jobs.iter().filter(|j| !j.is_map_only()).count();
        assert!(
            slower as f64 / total as f64 > 0.7,
            "only {slower}/{total} jobs have slower reducers"
        );
    }

    #[test]
    fn fig6a_mapper_counts_heavy_tail() {
        let jobs = big_trace();
        let over_100 =
            jobs.iter().filter(|j| j.map_tasks() > 100).count() as f64 / jobs.len() as f64;
        assert!(
            (0.2..0.45).contains(&over_100),
            "{over_100:.2} of jobs have >100 mappers"
        );
    }

    #[test]
    fn fig6a_reducer_counts_mostly_small() {
        let jobs = big_trace();
        let under_10 =
            jobs.iter().filter(|j| j.reduce_tasks() < 10).count() as f64 / jobs.len() as f64;
        assert!(under_10 > 0.6, "{under_10:.2} of jobs have <10 reducers");
    }

    #[test]
    fn fig6b_mappers_usually_outnumber_reducers() {
        let jobs = big_trace();
        let more_maps = jobs
            .iter()
            .filter(|j| j.map_tasks() >= j.reduce_tasks())
            .count() as f64
            / jobs.len() as f64;
        assert!(more_maps > 0.7, "{more_maps:.2}");
    }

    #[test]
    fn workload_shape_matches_paper() {
        let sizes = yahoo_workflow_sizes();
        assert_eq!(sizes.len(), 61, "61 workflows");
        assert_eq!(sizes.iter().sum::<usize>(), 180, "180 jobs");
        assert_eq!(
            sizes.iter().filter(|&&s| s == 1).count(),
            15,
            "15 singletons"
        );
        assert_eq!(*sizes.iter().max().unwrap(), 12, "largest has 12 jobs");
    }

    #[test]
    fn workflows_are_valid_and_deterministic() {
        let cfg = YahooTraceConfig::default();
        let a = yahoo_workflows(&cfg, &mut Rng::new(3));
        let b = yahoo_workflows(&cfg, &mut Rng::new(3));
        assert_eq!(a, b);
        for w in &a {
            assert!(w.to_dag().is_acyclic());
            assert!(w.total_tasks() > 0);
        }
        let multi = a.iter().filter(|w| !w.is_single_job()).count();
        assert_eq!(multi, 46);
    }
}
