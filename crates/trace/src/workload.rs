//! Workloads: sets of workflows with release times and deadlines.
//!
//! Topology generators ([`crate::topology`], [`crate::yahoo`]) produce
//! workflows at submit time zero with no deadline; this module turns them
//! into a scheduling workload by assigning a release pattern and a deadline
//! rule, the two knobs the paper's evaluation varies.

use crate::rng::Rng;
use woha_model::{SimDuration, SimTime, WorkflowSpec};

/// How workflow release (submission) times are assigned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReleasePattern {
    /// Every workflow is submitted at time zero.
    AllAtZero,
    /// Workflow `k` is submitted at `k * interval` in the given order.
    EvenlySpaced(SimDuration),
    /// Release times drawn uniformly at random in `[0, window)`.
    UniformWindow(SimDuration),
}

/// How deadlines are assigned from a workflow's own shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeadlineRule {
    /// No deadline ([`SimTime::MAX`]).
    None,
    /// `deadline = release + stretch * lower_bound`, with `stretch` drawn
    /// uniformly from the given range per workflow.
    ///
    /// The lower bound is `max(critical path, total work / capacity)` for
    /// the given reference capacity in slots — the tightest deadline any
    /// scheduler could conceivably meet on a cluster of that size. Stretch
    /// values near 1 make deadlines nearly impossible; large values make
    /// them trivial. The paper's interesting regime ("less than adequate
    /// but more than scarce" resources) corresponds to modest stretches.
    Stretch {
        /// Minimum stretch factor (inclusive).
        min: f64,
        /// Maximum stretch factor (exclusive).
        max: f64,
        /// Reference cluster capacity in slots used for the work term.
        reference_slots: u32,
    },
    /// A fixed relative deadline for every workflow.
    FixedRelative(SimDuration),
    /// An SLA-style deadline drawn uniformly from `[min, max)`,
    /// independent of the workflow's size, but floored at
    /// `floor_stretch × lower_bound(reference_slots)` so no deadline is
    /// outright impossible. This models business deadlines ("the report is
    /// due at 9am") that correlate only weakly with workflow length.
    UniformRelative {
        /// Smallest relative deadline (inclusive).
        min: SimDuration,
        /// Largest relative deadline (exclusive).
        max: SimDuration,
        /// Feasibility floor multiplier.
        floor_stretch: f64,
        /// Reference capacity for the feasibility floor.
        reference_slots: u32,
    },
}

/// A set of workflows ready to submit to a simulated cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    workflows: Vec<WorkflowSpec>,
}

impl Workload {
    /// Wraps already-finalized workflows.
    pub fn new(workflows: Vec<WorkflowSpec>) -> Self {
        Workload { workflows }
    }

    /// Builds a workload from template workflows by assigning release times
    /// and deadlines. Templates' own submit times/deadlines are discarded.
    pub fn assign(
        templates: &[WorkflowSpec],
        release: ReleasePattern,
        deadline: DeadlineRule,
        rng: &mut Rng,
    ) -> Self {
        let workflows = templates
            .iter()
            .enumerate()
            .map(|(k, w)| {
                let release_time = match release {
                    ReleasePattern::AllAtZero => SimTime::ZERO,
                    ReleasePattern::EvenlySpaced(interval) => SimTime::ZERO + interval * (k as u64),
                    ReleasePattern::UniformWindow(window) => {
                        SimTime::from_millis(rng.range_u64(0, window.as_millis().max(1)))
                    }
                };
                let deadline_time = match deadline {
                    DeadlineRule::None => SimTime::MAX,
                    DeadlineRule::FixedRelative(rel) => release_time.saturating_add(rel),
                    DeadlineRule::UniformRelative {
                        min,
                        max,
                        floor_stretch,
                        reference_slots,
                    } => {
                        let drawn =
                            SimDuration::from_millis(rng.range_u64(
                                min.as_millis(),
                                max.as_millis().max(min.as_millis() + 1),
                            ));
                        let floor = lower_bound(w, reference_slots).mul_f64(floor_stretch);
                        release_time.saturating_add(drawn.max(floor))
                    }
                    DeadlineRule::Stretch {
                        min,
                        max,
                        reference_slots,
                    } => {
                        let stretch = if max > min {
                            rng.range_f64(min, max)
                        } else {
                            min
                        };
                        let bound = lower_bound(w, reference_slots);
                        release_time.saturating_add(bound.mul_f64(stretch))
                    }
                };
                w.reissued(w.name().to_string(), release_time, deadline_time)
            })
            .collect();
        Workload { workflows }
    }

    /// The workflows, sorted as assigned.
    pub fn workflows(&self) -> &[WorkflowSpec] {
        &self.workflows
    }

    /// Consumes the workload, returning its workflows.
    #[deprecated(
        since = "0.1.0",
        note = "use `into_source()` and the streaming driver entry points"
    )]
    pub fn into_workflows(self) -> Vec<WorkflowSpec> {
        self.workflows
    }

    /// Consumes the workload into a streaming [`crate::VecSource`].
    pub fn into_source(self) -> crate::VecSource {
        crate::VecSource::new(self.workflows)
    }

    /// A streaming [`crate::VecSource`] over a clone of the workflows.
    pub fn source(&self) -> crate::VecSource {
        crate::VecSource::new(self.workflows.clone())
    }

    /// Number of workflows.
    pub fn len(&self) -> usize {
        self.workflows.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.workflows.is_empty()
    }

    /// Total number of jobs across all workflows.
    pub fn total_jobs(&self) -> usize {
        self.workflows.iter().map(WorkflowSpec::job_count).sum()
    }

    /// Total number of tasks across all workflows.
    pub fn total_tasks(&self) -> u64 {
        self.workflows.iter().map(WorkflowSpec::total_tasks).sum()
    }

    /// Removes single-job workflows, as the paper does for the Yahoo
    /// workload ("we remove workflows containing only single job").
    pub fn without_single_jobs(mut self) -> Self {
        self.workflows.retain(|w| !w.is_single_job());
        self
    }
}

/// The tightest conceivable makespan for `w` on a cluster with
/// `reference_slots` slots: the larger of its critical path and its total
/// work divided by the slot count.
pub fn lower_bound(w: &WorkflowSpec, reference_slots: u32) -> SimDuration {
    let cp = w.critical_path();
    let work_ms = w.total_work().as_millis();
    let spread = SimDuration::from_millis(work_ms / u64::from(reference_slots.max(1)));
    cp.max(spread)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::chain;
    use woha_model::JobSpec;

    fn templates(n: usize) -> Vec<WorkflowSpec> {
        (0..n)
            .map(|i| {
                chain(format!("w{i}"), 3, |j| {
                    JobSpec::new(
                        format!("j{j}"),
                        4,
                        1,
                        SimDuration::from_secs(30),
                        SimDuration::from_secs(60),
                    )
                })
                .build()
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn all_at_zero() {
        let w = Workload::assign(
            &templates(3),
            ReleasePattern::AllAtZero,
            DeadlineRule::None,
            &mut Rng::new(1),
        );
        assert_eq!(w.len(), 3);
        assert!(w
            .workflows()
            .iter()
            .all(|x| x.submit_time() == SimTime::ZERO));
        assert!(w.workflows().iter().all(|x| x.deadline() == SimTime::MAX));
    }

    #[test]
    fn evenly_spaced_releases() {
        let w = Workload::assign(
            &templates(3),
            ReleasePattern::EvenlySpaced(SimDuration::from_mins(5)),
            DeadlineRule::FixedRelative(SimDuration::from_mins(60)),
            &mut Rng::new(1),
        );
        let times: Vec<SimTime> = w.workflows().iter().map(|x| x.submit_time()).collect();
        assert_eq!(
            times,
            vec![SimTime::ZERO, SimTime::from_mins(5), SimTime::from_mins(10)]
        );
        assert_eq!(w.workflows()[2].deadline(), SimTime::from_mins(70));
    }

    #[test]
    fn uniform_window_within_bounds() {
        let w = Workload::assign(
            &templates(50),
            ReleasePattern::UniformWindow(SimDuration::from_mins(10)),
            DeadlineRule::None,
            &mut Rng::new(7),
        );
        assert!(w
            .workflows()
            .iter()
            .all(|x| x.submit_time() < SimTime::from_mins(10)));
        // Releases actually spread out.
        let distinct: std::collections::BTreeSet<u64> = w
            .workflows()
            .iter()
            .map(|x| x.submit_time().as_millis())
            .collect();
        assert!(distinct.len() > 40);
    }

    #[test]
    fn stretch_deadline_scales_with_lower_bound() {
        let tpl = templates(1);
        let bound = lower_bound(&tpl[0], 100);
        // Chain of 3 jobs x 90s length: critical path 270s dominates.
        assert_eq!(bound, SimDuration::from_secs(270));
        let w = Workload::assign(
            &tpl,
            ReleasePattern::AllAtZero,
            DeadlineRule::Stretch {
                min: 2.0,
                max: 2.0 + 1e-9,
                reference_slots: 100,
            },
            &mut Rng::new(1),
        );
        let rel = w.workflows()[0].relative_deadline();
        assert!((rel.as_secs_f64() - 540.0).abs() < 1.0, "rel = {rel}");
    }

    #[test]
    fn lower_bound_uses_work_when_cluster_small() {
        let tpl = &templates(1)[0];
        // total work = 3 jobs * (4*30 + 1*60) = 540s; on 1 slot that
        // dominates the 270s critical path.
        assert_eq!(lower_bound(tpl, 1), SimDuration::from_secs(540));
    }

    #[test]
    fn without_single_jobs_filters() {
        let mut ws = templates(2);
        let mut b = woha_model::WorkflowBuilder::new("single");
        b.add_job(JobSpec::new(
            "only",
            1,
            0,
            SimDuration::from_secs(5),
            SimDuration::ZERO,
        ));
        ws.push(b.build().unwrap());
        let w = Workload::new(ws).without_single_jobs();
        assert_eq!(w.len(), 2);
        assert_eq!(w.total_jobs(), 6);
        assert!(!w.is_empty());
    }

    #[test]
    fn totals() {
        let w = Workload::new(templates(2));
        assert_eq!(w.total_jobs(), 6);
        assert_eq!(w.total_tasks(), 2 * 3 * 5);
        #[allow(deprecated)]
        let v = w.clone().into_workflows();
        assert_eq!(v.len(), 2);
        assert_eq!(w.source().remaining().len(), 2);
        assert_eq!(w.into_source().remaining().len(), 2);
    }
}
