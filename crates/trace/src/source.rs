//! Streaming workload sources: pull-based arrival streams for the driver.
//!
//! The simulator originally took a fully materialized `Vec<WorkflowSpec>`
//! up front. A serving deployment instead sees an *arrival stream*: an
//! Oozie-style submitter trickling workflows into a long-lived JobTracker.
//! [`WorkloadSource`] models that stream as a pull-based iterator of
//! timestamped arrivals, so the driver can ingest workflows as sim-time
//! advances and run in memory bounded by the in-flight set, not the trace
//! length.
//!
//! # Source contract
//!
//! - [`peek_time`](WorkloadSource::peek_time) returns the submit time of
//!   the next arrival without consuming it; [`next_workflow`]
//!   (WorkloadSource::next_workflow) consumes and returns it. After
//!   `peek_time` returns `Some(t)`, the next `next_workflow` call must
//!   return a spec whose submit time is exactly `t`.
//! - Arrival times must be **nondecreasing**: once a source has yielded an
//!   arrival at time `t`, every later arrival is at `>= t`. The driver
//!   relies on this to interleave source pulls with the event heap without
//!   time travel. [`JsonlSource`] enforces it by clamping out-of-order
//!   lines up to the running maximum; [`VecSource`] by sorting; and
//!   [`GeneratorSource`] by construction.
//! - A *finite* source is exhausted when `peek_time` returns `None`; it
//!   must keep returning `None` afterwards.
//! - A *live* source ([`FollowSource`], [`ChannelSource`]) may be merely
//!   *waiting* for a writer when no arrival is buffered. Live sources are
//!   driven through [`poll_time`](WorkloadSource::poll_time), which
//!   distinguishes [`SourcePoll::Pending`] ("no data yet, more may come")
//!   from [`SourcePoll::Exhausted`] ("the stream has ended for good").
//!   Their `peek_time` reports only what is ready *right now* (`None`
//!   covers both pending and exhausted), so finite-only consumers keep
//!   working unchanged.

use crate::rng::Rng;
use crate::topology::random_layered;
use crate::yahoo::YahooTraceConfig;
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::Arc;
use woha_model::{SimDuration, SimTime, WorkflowSpec};

/// The result of a non-blocking poll for the next arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourcePoll {
    /// The next arrival is buffered and will be submitted at this time.
    Ready(SimTime),
    /// No arrival is available *yet*, but the stream has not ended — a
    /// live writer may still append. Poll again later.
    Pending,
    /// The stream has ended; no further arrival will ever appear.
    Exhausted,
}

/// A pull-based stream of timestamped workflow arrivals.
///
/// See the [module docs](self) for the timing contract.
pub trait WorkloadSource {
    /// Submit time of the next arrival, or `None` when no arrival is
    /// currently available. Takes `&mut self` because file- and
    /// generator-backed sources materialize the next record to learn its
    /// time. For finite sources `None` means exhausted; live sources
    /// additionally return `None` while waiting for a writer — use
    /// [`poll_time`](Self::poll_time) to tell the two apart.
    fn peek_time(&mut self) -> Option<SimTime>;

    /// Consumes and returns the next arrival, or `None` when none is
    /// available (exhausted, or pending for live sources).
    fn next_workflow(&mut self) -> Option<WorkflowSpec>;

    /// Non-blocking poll distinguishing "no data yet" from "stream ended".
    ///
    /// The default maps `peek_time` onto `Ready`/`Exhausted`, which is
    /// correct for every finite source; live sources override it to report
    /// [`SourcePoll::Pending`] while a writer may still append. After
    /// `Ready(t)`, the next [`next_workflow`](Self::next_workflow) call
    /// must return a spec submitted at exactly `t`.
    fn poll_time(&mut self) -> SourcePoll {
        match self.peek_time() {
            Some(t) => SourcePoll::Ready(t),
            None => SourcePoll::Exhausted,
        }
    }
}

/// Drains `source` to exhaustion, materializing every remaining workflow
/// in pull order — the batch view of a streaming source, for callers
/// (benchmarks, tests, sweep runners) that genuinely need the whole
/// workload at once.
pub fn drain(source: &mut dyn WorkloadSource) -> Vec<WorkflowSpec> {
    let mut out = Vec::new();
    while let Some(w) = source.next_workflow() {
        out.push(w);
    }
    out
}

/// A [`WorkloadSource`] over an in-memory `Vec<WorkflowSpec>`.
///
/// Yields workflows sorted by `(submit_time, original index)` — exactly
/// the order the batch driver used to pop simultaneous arrivals from its
/// event heap, so wrapping a vector in a `VecSource` is behaviorally
/// identical to the old batch entry points.
#[derive(Debug, Clone)]
pub struct VecSource {
    /// Workflows sorted by (submit time, original index), reversed so
    /// `pop` yields them in order without a cursor.
    sorted: Vec<WorkflowSpec>,
    next: usize,
}

impl VecSource {
    /// Wraps `workflows`, sorting them stably by submit time.
    pub fn new(mut workflows: Vec<WorkflowSpec>) -> Self {
        workflows.sort_by_key(WorkflowSpec::submit_time);
        VecSource {
            sorted: workflows,
            next: 0,
        }
    }

    /// Workflows not yet yielded, in yield order.
    pub fn remaining(&self) -> &[WorkflowSpec] {
        &self.sorted[self.next..]
    }
}

impl WorkloadSource for VecSource {
    fn peek_time(&mut self) -> Option<SimTime> {
        self.sorted.get(self.next).map(WorkflowSpec::submit_time)
    }

    fn next_workflow(&mut self) -> Option<WorkflowSpec> {
        let w = self.sorted.get(self.next).cloned()?;
        self.next += 1;
        Some(w)
    }
}

/// A [`WorkloadSource`] reading one JSON-encoded [`WorkflowSpec`] per line
/// from a reader — the arrival-file format a long-running process tails
/// into the simulator.
///
/// Records are parsed lazily, one line per pull, so memory stays bounded
/// by a single spec regardless of file length. Lines whose submit time
/// runs backwards are clamped up to the running maximum (the stream
/// contract requires nondecreasing arrivals); a sorted file passes through
/// untouched, which is what the byte-identity tests against [`VecSource`]
/// rely on. Blank lines are skipped. The first malformed line stops the
/// stream and is reported via [`error`](JsonlSource::error).
///
/// # EOF semantics and mid-append writers
///
/// A writer appending to the file may be caught mid-line, so hitting EOF is
/// *not* treated as proof the stream ended: an unterminated final line is
/// buffered, never parsed early, and retried on the next poll (file-backed
/// readers return fresh bytes once the writer catches up). Through the
/// finite `peek_time`/`next_workflow` interface, EOF still ends the stream
/// — the buffered partial line is then parsed as the (newline-less) final
/// record, as complete files commonly end. Through
/// [`poll_time`](WorkloadSource::poll_time), EOF with a buffered partial
/// line reports [`SourcePoll::Pending`] so a tailing consumer retries it
/// instead of surfacing a sticky parse error; construct the source with
/// [`follow`](JsonlSource::follow) to also report `Pending` at a clean EOF.
pub struct JsonlSource<R: BufRead> {
    reader: R,
    pending: Option<WorkflowSpec>,
    /// Running maximum submit time; later arrivals are clamped up to it.
    watermark: SimTime,
    line_no: u64,
    error: Option<String>,
    /// Bytes of an unterminated final line, awaiting either the rest of
    /// the line or the finite-interface EOF flush.
    partial: String,
    /// The last read hit EOF (possibly transiently, if a writer appends).
    at_eof: bool,
    /// The stream has ended for good (finite EOF flush, or an error).
    done: bool,
    /// Live mode: a clean EOF polls as `Pending`, not `Exhausted`.
    live: bool,
}

impl JsonlSource<std::io::BufReader<std::fs::File>> {
    /// Opens a JSONL arrival file.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be opened.
    pub fn open(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(JsonlSource::from_reader(std::io::BufReader::new(
            std::fs::File::open(path)?,
        )))
    }
}

impl<R: BufRead> JsonlSource<R> {
    /// Wraps any buffered reader producing one spec JSON per line.
    pub fn from_reader(reader: R) -> Self {
        JsonlSource {
            reader,
            pending: None,
            watermark: SimTime::ZERO,
            line_no: 0,
            error: None,
            partial: String::new(),
            at_eof: false,
            done: false,
            live: false,
        }
    }

    /// Wraps a reader in *live* mode: through
    /// [`poll_time`](WorkloadSource::poll_time), a clean EOF reports
    /// [`SourcePoll::Pending`] instead of `Exhausted`, because a writer may
    /// still append. Call [`end`](Self::end) once the writer is known to be
    /// finished so the stream can terminate.
    pub fn follow(reader: R) -> Self {
        let mut s = JsonlSource::from_reader(reader);
        s.live = true;
        s
    }

    /// The parse or I/O error that terminated the stream early, if any.
    pub fn error(&self) -> Option<&str> {
        self.error.as_deref()
    }

    /// Declares the writer finished: the next EOF ends the stream, and a
    /// buffered unterminated final line is parsed as the last record.
    pub fn end(&mut self) {
        self.live = false;
    }

    /// Clamps `w`'s submit time up to the running watermark and stages it.
    fn stage(&mut self, w: WorkflowSpec) {
        let submit = w.submit_time().max(self.watermark);
        self.watermark = submit;
        self.pending = Some(if submit == w.submit_time() {
            w
        } else {
            w.reissued(w.name().to_string(), submit, w.deadline())
        });
    }

    fn parse_line(&mut self, line: &str) {
        self.line_no += 1;
        if line.trim().is_empty() {
            return;
        }
        match serde_json::from_str::<WorkflowSpec>(line.trim()) {
            Ok(w) => self.stage(w),
            Err(e) => {
                self.error = Some(format!("line {}: {e:?}", self.line_no));
                self.done = true;
            }
        }
    }

    /// Reads ahead until a record is pending, input runs dry (EOF — maybe
    /// transiently), the stream ends, or a line fails to parse. A final
    /// line without its newline is buffered in `partial`, never parsed
    /// early: a mid-append writer will deliver the rest of it later.
    fn fill(&mut self) {
        while self.pending.is_none() && !self.done {
            let mut chunk = String::new();
            match self.reader.read_line(&mut chunk) {
                Ok(0) => {
                    self.at_eof = true;
                    return;
                }
                Ok(_) => {
                    self.at_eof = false;
                    self.partial.push_str(&chunk);
                    if !self.partial.ends_with('\n') {
                        // Unterminated: the writer may be mid-append.
                        // Keep reading (the very next read returns 0 at a
                        // true EOF) rather than parsing a truncated line.
                        continue;
                    }
                    let line = std::mem::take(&mut self.partial);
                    self.parse_line(&line);
                }
                Err(e) => {
                    self.error = Some(format!("line {}: {e}", self.line_no + 1));
                    self.done = true;
                }
            }
        }
    }

    /// Finite-interface EOF: the stream is over, so a buffered partial
    /// line is the file's (newline-less) final record — parse it now.
    fn flush_at_eof(&mut self) {
        if self.at_eof && !self.done {
            if !self.partial.is_empty() {
                let line = std::mem::take(&mut self.partial);
                self.parse_line(&line);
            }
            if self.partial.is_empty() && self.pending.is_none() {
                self.done = true;
            }
        }
    }
}

impl<R: BufRead> WorkloadSource for JsonlSource<R> {
    fn peek_time(&mut self) -> Option<SimTime> {
        self.fill();
        self.flush_at_eof();
        self.pending.as_ref().map(WorkflowSpec::submit_time)
    }

    fn next_workflow(&mut self) -> Option<WorkflowSpec> {
        self.fill();
        self.flush_at_eof();
        self.pending.take()
    }

    fn poll_time(&mut self) -> SourcePoll {
        self.fill();
        match &self.pending {
            Some(w) => SourcePoll::Ready(w.submit_time()),
            None if self.done => SourcePoll::Exhausted,
            // A live stream at EOF — whether clean or with half a line
            // buffered (the writer is mid-append) — is "no data yet":
            // retry later instead of parsing a truncated record. Once the
            // stream is declared over ([`end`](Self::end)) or was finite
            // to begin with, EOF is final and the buffered tail flushes.
            None if self.live => SourcePoll::Pending,
            None => {
                self.flush_at_eof();
                match &self.pending {
                    Some(w) => SourcePoll::Ready(w.submit_time()),
                    None => SourcePoll::Exhausted,
                }
            }
        }
    }
}

/// Writes `workflows` in the JSONL arrival format read by [`JsonlSource`]:
/// one spec JSON per line, in the given order.
///
/// # Errors
///
/// Propagates serialization failures (which the vendored serde shim never
/// produces for [`WorkflowSpec`]).
pub fn to_jsonl(workflows: &[WorkflowSpec]) -> Result<String, serde_json::Error> {
    let mut out = String::new();
    for w in workflows {
        out.push_str(&serde_json::to_string(w)?);
        out.push('\n');
    }
    Ok(out)
}

/// A cloneable stop flag shared between a live source and whoever decides
/// the stream is over (a service shutdown path, a test's writer thread).
///
/// Stopping does not discard data: a stopped [`FollowSource`] first drains
/// everything already written — including a buffered final line — and only
/// then reports [`SourcePoll::Exhausted`].
#[derive(Debug, Clone, Default)]
pub struct SourceStop(Arc<AtomicBool>);

impl SourceStop {
    /// A fresh, un-stopped flag.
    pub fn new() -> Self {
        SourceStop::default()
    }

    /// Signals the source that no more data will be written.
    pub fn stop(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether [`stop`](Self::stop) has been called.
    pub fn is_stopped(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// What a [`FollowSource`] tails: one growing file, or a watched directory.
#[derive(Debug, Clone)]
enum FollowTarget {
    File(PathBuf),
    Dir(PathBuf),
}

/// A live [`WorkloadSource`] that tails a growing JSONL arrival file — or a
/// watched directory of them — the way `tail -F` follows a log.
///
/// In **file mode** the source polls one path: a missing file, a clean
/// EOF, and a half-appended final line all report [`SourcePoll::Pending`]
/// (via [`JsonlSource`]'s mid-append-safe EOF handling), so a writer can
/// keep appending indefinitely. In **directory mode** the source reads
/// `*.jsonl` files in lexicographic name order — the log-rotation
/// convention: writers append to the newest file and start a later-named
/// file to rotate. The current file is finalized (its unterminated tail,
/// if any, parsed as its last record) as soon as a later-named file
/// appears.
///
/// The stream ends when the shared [`SourceStop`] flag is raised: the
/// source drains everything already on disk, then reports
/// [`SourcePoll::Exhausted`]. Submit times are clamped to be nondecreasing
/// across the whole stream (and across files), like [`JsonlSource`] clamps
/// within one file. The first malformed line stops the stream with a
/// sticky [`error`](FollowSource::error).
pub struct FollowSource {
    target: FollowTarget,
    stop: SourceStop,
    inner: Option<JsonlSource<std::io::BufReader<std::fs::File>>>,
    /// Path of the currently open file (directory mode bookkeeping).
    current: Option<PathBuf>,
    /// Running maximum submit time across all files.
    watermark: SimTime,
    error: Option<String>,
    done: bool,
}

impl FollowSource {
    /// Tails one JSONL file. The file may not exist yet; the source stays
    /// [`SourcePoll::Pending`] until it appears or the stop flag is raised.
    pub fn file(path: impl Into<PathBuf>) -> Self {
        FollowSource::new(FollowTarget::File(path.into()))
    }

    /// Tails a directory of `*.jsonl` files in lexicographic name order.
    pub fn dir(path: impl Into<PathBuf>) -> Self {
        FollowSource::new(FollowTarget::Dir(path.into()))
    }

    fn new(target: FollowTarget) -> Self {
        FollowSource {
            target,
            stop: SourceStop::new(),
            inner: None,
            current: None,
            watermark: SimTime::ZERO,
            error: None,
            done: false,
        }
    }

    /// The stop flag ending this stream; clone it into the writer (or the
    /// shutdown path) and call [`SourceStop::stop`] when writing is done.
    pub fn stop_handle(&self) -> SourceStop {
        self.stop.clone()
    }

    /// Shares an externally owned stop flag instead of the internal one.
    pub fn with_stop(mut self, stop: SourceStop) -> Self {
        self.stop = stop;
        self
    }

    /// The parse or I/O error that terminated the stream early, if any.
    pub fn error(&self) -> Option<&str> {
        self.error.as_deref()
    }

    /// `*.jsonl` entries of `dir` strictly after `after`, sorted by name.
    fn files_after(dir: &Path, after: Option<&PathBuf>) -> Vec<PathBuf> {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return Vec::new();
        };
        let mut files: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
            .filter(|p| after.is_none_or(|a| p > a))
            .collect();
        files.sort();
        files
    }

    /// Opens the next file to read, if one is available.
    fn open_next(&mut self) -> bool {
        let next = match &self.target {
            FollowTarget::File(path) => self.current.is_none().then(|| path.clone()),
            FollowTarget::Dir(dir) => Self::files_after(dir, self.current.as_ref())
                .into_iter()
                .next(),
        };
        let Some(path) = next else { return false };
        match std::fs::File::open(&path) {
            Ok(f) => {
                self.inner = Some(JsonlSource::follow(std::io::BufReader::new(f)));
                self.current = Some(path);
                true
            }
            // Not-yet-created file (file mode) or a race with the writer:
            // stay pending and retry on the next poll.
            Err(_) => false,
        }
    }

    /// Whether a later-named file has appeared (directory mode): the
    /// current file is then complete by the rotation convention.
    fn rotated(&self) -> bool {
        match &self.target {
            FollowTarget::File(_) => false,
            FollowTarget::Dir(dir) => !Self::files_after(dir, self.current.as_ref()).is_empty(),
        }
    }

    /// Drives the tail state machine one step at a time until it can give
    /// a definitive answer for the current poll.
    fn poll(&mut self) -> SourcePoll {
        loop {
            if self.done {
                return SourcePoll::Exhausted;
            }
            if self.inner.is_none() && !self.open_next() {
                if self.stop.is_stopped() {
                    self.done = true;
                    return SourcePoll::Exhausted;
                }
                return SourcePoll::Pending;
            }
            match self.inner.as_mut().expect("file is open").poll_time() {
                SourcePoll::Ready(t) => return SourcePoll::Ready(t.max(self.watermark)),
                SourcePoll::Exhausted => {
                    let inner = self.inner.as_ref().expect("file is open");
                    if let Some(e) = inner.error() {
                        let file = self.current.as_ref().expect("file is open");
                        self.error = Some(format!("{}: {e}", file.display()));
                        self.done = true;
                        return SourcePoll::Exhausted;
                    }
                    // This file is fully consumed; move on (or finish).
                    self.inner = None;
                    if matches!(self.target, FollowTarget::File(_)) {
                        self.done = true;
                        return SourcePoll::Exhausted;
                    }
                }
                SourcePoll::Pending => {
                    if self.stop.is_stopped() || self.rotated() {
                        // The writer is finished with this file: flush its
                        // buffered tail and re-poll for the finite answer.
                        self.inner.as_mut().expect("file is open").end();
                        continue;
                    }
                    return SourcePoll::Pending;
                }
            }
        }
    }
}

impl WorkloadSource for FollowSource {
    fn peek_time(&mut self) -> Option<SimTime> {
        match self.poll() {
            SourcePoll::Ready(t) => Some(t),
            _ => None,
        }
    }

    fn next_workflow(&mut self) -> Option<WorkflowSpec> {
        match self.poll() {
            SourcePoll::Ready(_) => {
                let w = self.inner.as_mut()?.next_workflow()?;
                let submit = w.submit_time().max(self.watermark);
                self.watermark = submit;
                Some(if submit == w.submit_time() {
                    w
                } else {
                    w.reissued(w.name().to_string(), submit, w.deadline())
                })
            }
            _ => None,
        }
    }

    fn poll_time(&mut self) -> SourcePoll {
        self.poll()
    }
}

/// A live [`WorkloadSource`] over an in-process channel — the seam where a
/// socket listener, RPC handler, or test harness plugs submissions into
/// the scheduler service.
///
/// Polls [`SourcePoll::Pending`] while the channel is empty but some
/// [`Sender`] is still alive, and [`SourcePoll::Exhausted`] once every
/// sender has been dropped and the buffered backlog is drained. Submit
/// times are clamped up to the running maximum, like every other source.
pub struct ChannelSource {
    rx: Receiver<WorkflowSpec>,
    pending: Option<WorkflowSpec>,
    watermark: SimTime,
    disconnected: bool,
}

impl ChannelSource {
    /// Wraps an existing receiver.
    pub fn new(rx: Receiver<WorkflowSpec>) -> Self {
        ChannelSource {
            rx,
            pending: None,
            watermark: SimTime::ZERO,
            disconnected: false,
        }
    }

    /// A connected `(submitter, source)` pair. Clone the sender freely;
    /// the stream ends when the last clone is dropped.
    pub fn pair() -> (Sender<WorkflowSpec>, ChannelSource) {
        let (tx, rx) = std::sync::mpsc::channel();
        (tx, ChannelSource::new(rx))
    }

    fn fill(&mut self) {
        if self.pending.is_some() || self.disconnected {
            return;
        }
        match self.rx.try_recv() {
            Ok(w) => {
                let submit = w.submit_time().max(self.watermark);
                self.watermark = submit;
                self.pending = Some(if submit == w.submit_time() {
                    w
                } else {
                    w.reissued(w.name().to_string(), submit, w.deadline())
                });
            }
            Err(TryRecvError::Empty) => {}
            Err(TryRecvError::Disconnected) => self.disconnected = true,
        }
    }
}

impl WorkloadSource for ChannelSource {
    fn peek_time(&mut self) -> Option<SimTime> {
        self.fill();
        self.pending.as_ref().map(WorkflowSpec::submit_time)
    }

    fn next_workflow(&mut self) -> Option<WorkflowSpec> {
        self.fill();
        self.pending.take()
    }

    fn poll_time(&mut self) -> SourcePoll {
        self.fill();
        match &self.pending {
            Some(w) => SourcePoll::Ready(w.submit_time()),
            None if self.disconnected => SourcePoll::Exhausted,
            None => SourcePoll::Pending,
        }
    }
}

/// A [`WorkloadSource`] that materializes Yahoo-trace-style workflows
/// lazily, one per pull, instead of building the whole workload up front.
///
/// Each workflow is drawn from the [`YahooTraceConfig`] distributions with
/// a layered topology of 2–12 jobs (the paper's multi-job size range),
/// released at `index * interarrival` (monotone by construction) with a
/// deadline of `submit + stretch * critical_path`. Memory stays O(1) in
/// the workflow count, which is the point: the `ingest_throughput` bench
/// sweeps this source against a pre-materialized [`VecSource`] at 10³–10⁵
/// workflows.
#[derive(Debug, Clone)]
pub struct GeneratorSource {
    config: YahooTraceConfig,
    topo_rng: Rng,
    job_rng: Rng,
    size_rng: Rng,
    interarrival: SimDuration,
    deadline_stretch: f64,
    remaining: usize,
    next_index: u64,
    pending: Option<WorkflowSpec>,
}

impl GeneratorSource {
    /// A lazy stream of `count` workflows from `config`'s distributions,
    /// seeded deterministically: two sources with the same arguments yield
    /// identical streams.
    pub fn new(
        config: YahooTraceConfig,
        seed: u64,
        count: usize,
        interarrival: SimDuration,
        deadline_stretch: f64,
    ) -> Self {
        let rng = Rng::new(seed);
        GeneratorSource {
            config,
            topo_rng: rng.fork(1),
            job_rng: rng.fork(2),
            size_rng: rng.fork(3),
            interarrival,
            deadline_stretch,
            remaining: count,
            next_index: 0,
            pending: None,
        }
    }

    fn generate(&mut self) {
        if self.pending.is_some() || self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        let i = self.next_index;
        self.next_index += 1;
        let name = format!("gen-w{i:05}");
        let size = self.size_rng.range_u64(2, 13) as usize;
        let config = self.config.clone();
        let job_rng = &mut self.job_rng;
        let spec = random_layered(name.clone(), size, &mut self.topo_rng, |j| {
            config.sample_job(format!("{name}-j{j}"), job_rng)
        })
        .build()
        .expect("layered workflow is valid");
        let submit = SimTime::ZERO + self.interarrival * i;
        let deadline = submit.saturating_add(spec.critical_path().mul_f64(self.deadline_stretch));
        self.pending = Some(spec.reissued(name, submit, deadline));
    }
}

impl WorkloadSource for GeneratorSource {
    fn peek_time(&mut self) -> Option<SimTime> {
        self.generate();
        self.pending.as_ref().map(WorkflowSpec::submit_time)
    }

    fn next_workflow(&mut self) -> Option<WorkflowSpec> {
        self.generate();
        self.pending.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::chain;
    use woha_model::JobSpec;

    fn spec(name: &str, submit_s: u64) -> WorkflowSpec {
        let w = chain(name, 2, |j| {
            JobSpec::new(
                format!("j{j}"),
                2,
                1,
                SimDuration::from_secs(10),
                SimDuration::from_secs(20),
            )
        })
        .build()
        .unwrap();
        w.reissued(
            name.to_string(),
            SimTime::from_secs(submit_s),
            SimTime::from_secs(submit_s + 600),
        )
    }

    #[test]
    fn vec_source_yields_in_time_order_with_stable_ties() {
        let mut src = VecSource::new(vec![
            spec("b", 20),
            spec("tie-first", 10),
            spec("tie-second", 10),
            spec("a", 0),
        ]);
        assert_eq!(src.peek_time(), Some(SimTime::ZERO));
        let order: Vec<String> = std::iter::from_fn(|| src.next_workflow())
            .map(|w| w.name().to_string())
            .collect();
        // Ties keep original relative order (stable sort), matching the
        // batch event heap's FIFO tie-break over input indices.
        assert_eq!(order, vec!["a", "tie-first", "tie-second", "b"]);
        assert_eq!(src.peek_time(), None);
        assert_eq!(src.next_workflow(), None);
    }

    #[test]
    fn jsonl_source_round_trips_vec_source() {
        let workflows = vec![spec("a", 0), spec("b", 30), spec("c", 90)];
        let text = to_jsonl(&workflows).unwrap();
        let mut jsonl = JsonlSource::from_reader(std::io::Cursor::new(text));
        let mut vec_src = VecSource::new(workflows);
        loop {
            assert_eq!(jsonl.peek_time(), vec_src.peek_time());
            match (jsonl.next_workflow(), vec_src.next_workflow()) {
                (Some(a), Some(b)) => assert_eq!(a, b),
                (None, None) => break,
                other => panic!("length mismatch: {other:?}"),
            }
        }
        assert_eq!(jsonl.error(), None);
    }

    #[test]
    fn jsonl_source_clamps_out_of_order_lines() {
        let text = to_jsonl(&[spec("late", 60), spec("early", 10)]).unwrap();
        let mut src = JsonlSource::from_reader(std::io::Cursor::new(text));
        let a = src.next_workflow().unwrap();
        let b = src.next_workflow().unwrap();
        assert_eq!(a.submit_time(), SimTime::from_secs(60));
        // Clamped up to the watermark; the absolute deadline is kept.
        assert_eq!(b.submit_time(), SimTime::from_secs(60));
        assert_eq!(b.deadline(), SimTime::from_secs(10 + 600));
        assert_eq!(src.error(), None);
    }

    #[test]
    fn jsonl_source_skips_blanks_and_stops_on_garbage() {
        let good = serde_json::to_string(&spec("ok", 5)).unwrap();
        let text = format!("\n{good}\n\nnot json\n{good}\n");
        let mut src = JsonlSource::from_reader(std::io::Cursor::new(text));
        assert_eq!(src.next_workflow().unwrap().name(), "ok");
        assert_eq!(src.next_workflow(), None);
        assert!(src.error().unwrap().contains("line 4"), "{:?}", src.error());
        // Exhausted stays exhausted.
        assert_eq!(src.peek_time(), None);
    }

    #[test]
    fn generator_source_is_deterministic_lazy_and_monotone() {
        let make = || {
            GeneratorSource::new(
                YahooTraceConfig::default(),
                42,
                20,
                SimDuration::from_secs(30),
                3.0,
            )
        };
        let mut a = make();
        let mut b = make();
        let mut last = SimTime::ZERO;
        let mut count = 0usize;
        while let Some(w) = a.next_workflow() {
            assert_eq!(Some(w.clone()), b.next_workflow());
            assert!(w.submit_time() >= last, "arrivals must be monotone");
            assert_eq!(
                w.submit_time(),
                SimTime::ZERO + SimDuration::from_secs(30) * count as u64
            );
            assert!(w.deadline() > w.submit_time());
            assert!((2..=12).contains(&w.job_count()));
            last = w.submit_time();
            count += 1;
        }
        assert_eq!(count, 20);
        assert_eq!(b.next_workflow(), None);
    }

    #[test]
    fn workflow_spec_survives_json_round_trip() {
        let w = spec("roundtrip", 77);
        let json = serde_json::to_string(&w).unwrap();
        let back: WorkflowSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, w);
    }

    /// A reader over a shared growable buffer, standing in for a file that
    /// another thread is appending to.
    struct SharedReader {
        buf: std::sync::Arc<std::sync::Mutex<Vec<u8>>>,
        pos: usize,
    }

    impl std::io::Read for SharedReader {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            let buf = self.buf.lock().unwrap();
            let n = (buf.len() - self.pos).min(out.len());
            out[..n].copy_from_slice(&buf[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn shared_follow() -> (
        std::sync::Arc<std::sync::Mutex<Vec<u8>>>,
        JsonlSource<std::io::BufReader<SharedReader>>,
    ) {
        let buf = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let reader = SharedReader {
            buf: std::sync::Arc::clone(&buf),
            pos: 0,
        };
        (buf, JsonlSource::follow(std::io::BufReader::new(reader)))
    }

    #[test]
    fn default_poll_time_maps_peek() {
        let mut src = VecSource::new(vec![spec("a", 5)]);
        assert!(matches!(
            src.poll_time(),
            SourcePoll::Ready(t) if t == SimTime::from_secs(5)
        ));
        src.next_workflow().unwrap();
        assert!(matches!(src.poll_time(), SourcePoll::Exhausted));
    }

    #[test]
    fn follow_jsonl_retries_truncated_line_until_writer_completes_it() {
        let line = serde_json::to_string(&spec("a", 10)).unwrap();
        let (buf, mut src) = shared_follow();

        // Nothing written yet: no data, but not the end of the stream.
        assert!(matches!(src.poll_time(), SourcePoll::Pending));

        // A half-appended line is not a parse error — just not ready yet.
        let (head, tail) = line.split_at(line.len() / 2);
        buf.lock().unwrap().extend_from_slice(head.as_bytes());
        assert!(matches!(src.poll_time(), SourcePoll::Pending));
        assert_eq!(src.error(), None);

        // Completing the line (newline-terminated) makes it ready.
        buf.lock().unwrap().extend_from_slice(tail.as_bytes());
        buf.lock().unwrap().extend_from_slice(b"\n");
        assert!(matches!(
            src.poll_time(),
            SourcePoll::Ready(t) if t == SimTime::from_secs(10)
        ));
        assert_eq!(src.next_workflow().unwrap().name(), "a");

        // Clean EOF in follow mode still waits for more data...
        assert!(matches!(src.poll_time(), SourcePoll::Pending));

        // ...until the stream is declared over, which flushes any buffered
        // final line (here: an unterminated complete record).
        let last = serde_json::to_string(&spec("b", 20)).unwrap();
        buf.lock().unwrap().extend_from_slice(last.as_bytes());
        src.end();
        assert!(matches!(src.poll_time(), SourcePoll::Ready(_)));
        assert_eq!(src.next_workflow().unwrap().name(), "b");
        assert!(matches!(src.poll_time(), SourcePoll::Exhausted));
        assert_eq!(src.error(), None);
    }

    #[test]
    fn finite_jsonl_parses_unterminated_final_line() {
        let mut text = to_jsonl(&[spec("a", 0)]).unwrap();
        text.push_str(&serde_json::to_string(&spec("b", 30)).unwrap());
        assert!(!text.ends_with('\n'));
        let mut src = JsonlSource::from_reader(std::io::Cursor::new(text));
        let names: Vec<String> = std::iter::from_fn(|| src.next_workflow())
            .map(|w| w.name().to_string())
            .collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(src.error(), None);
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("woha-trace-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn follow_source_tails_file_and_drains_on_stop() {
        use std::io::Write;
        let dir = tmp_dir("file");
        let path = dir.join("arrivals.jsonl");

        // The file does not exist yet: pending, not an error.
        let mut src = FollowSource::file(&path);
        let stop = src.stop_handle();
        assert!(matches!(src.poll_time(), SourcePoll::Pending));

        let mut f = std::fs::File::create(&path).unwrap();
        write!(f, "{}", to_jsonl(&[spec("a", 10)]).unwrap()).unwrap();
        // Plus a truncated tail the writer has not finished appending.
        let tail = serde_json::to_string(&spec("b", 40)).unwrap();
        write!(f, "{}", &tail[..tail.len() / 2]).unwrap();
        f.flush().unwrap();

        assert_eq!(src.peek_time(), Some(SimTime::from_secs(10)));
        assert_eq!(src.next_workflow().unwrap().name(), "a");
        assert!(matches!(src.poll_time(), SourcePoll::Pending));

        // Writer completes the record, then the stream is stopped: the
        // already-written record must drain before exhaustion.
        writeln!(f, "{}", &tail[tail.len() / 2..]).unwrap();
        f.flush().unwrap();
        stop.stop();
        assert_eq!(src.next_workflow().unwrap().name(), "b");
        assert!(matches!(src.poll_time(), SourcePoll::Exhausted));
        assert_eq!(src.error(), None);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn follow_source_advances_across_rotated_files_with_monotone_times() {
        use std::io::Write;
        let dir = tmp_dir("dir");
        let mut src = FollowSource::dir(&dir);
        let stop = src.stop_handle();
        assert!(matches!(src.poll_time(), SourcePoll::Pending));

        // First file: one record plus an unterminated tail record.
        let mut a = std::fs::File::create(dir.join("000.jsonl")).unwrap();
        write!(a, "{}", to_jsonl(&[spec("a", 20)]).unwrap()).unwrap();
        write!(a, "{}", serde_json::to_string(&spec("a-tail", 5)).unwrap()).unwrap();
        a.flush().unwrap();
        assert_eq!(src.next_workflow().unwrap().name(), "a");
        assert!(matches!(src.poll_time(), SourcePoll::Pending));

        // A later-named file appearing rotates the first: its buffered tail
        // becomes its final record (clamped up to the watermark).
        let mut b = std::fs::File::create(dir.join("001.jsonl")).unwrap();
        write!(b, "{}", to_jsonl(&[spec("b", 1)]).unwrap()).unwrap();
        b.flush().unwrap();
        let tail = src.next_workflow().unwrap();
        assert_eq!(tail.name(), "a-tail");
        assert_eq!(tail.submit_time(), SimTime::from_secs(20));

        // Cross-file clamp: the next file's earlier submit time is lifted.
        let wb = src.next_workflow().unwrap();
        assert_eq!(wb.name(), "b");
        assert_eq!(wb.submit_time(), SimTime::from_secs(20));

        assert!(matches!(src.poll_time(), SourcePoll::Pending));
        stop.stop();
        assert!(matches!(src.poll_time(), SourcePoll::Exhausted));
        assert_eq!(src.error(), None);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn follow_source_surfaces_parse_error_with_file_name() {
        use std::io::Write;
        let dir = tmp_dir("err");
        let path = dir.join("bad.jsonl");
        let mut f = std::fs::File::create(&path).unwrap();
        writeln!(f, "{}not json", to_jsonl(&[spec("a", 0)]).unwrap()).unwrap();
        f.flush().unwrap();

        let mut src = FollowSource::file(&path);
        assert_eq!(src.next_workflow().unwrap().name(), "a");
        assert!(matches!(src.poll_time(), SourcePoll::Exhausted));
        let err = src.error().unwrap();
        assert!(
            err.contains("bad.jsonl"),
            "error should name the file: {err}"
        );
        assert!(err.contains("line 2"), "error should cite the line: {err}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn channel_source_polls_pending_then_drains_after_disconnect() {
        let (tx, mut src) = ChannelSource::pair();
        assert!(matches!(src.poll_time(), SourcePoll::Pending));
        assert_eq!(src.peek_time(), None);

        tx.send(spec("a", 30)).unwrap();
        assert!(matches!(
            src.poll_time(),
            SourcePoll::Ready(t) if t == SimTime::from_secs(30)
        ));
        assert_eq!(src.next_workflow().unwrap().name(), "a");

        // Out-of-order submission is clamped up to the watermark.
        tx.send(spec("late", 10)).unwrap();
        tx.send(spec("b", 60)).unwrap();
        drop(tx);
        let w = src.next_workflow().unwrap();
        assert_eq!(w.name(), "late");
        assert_eq!(w.submit_time(), SimTime::from_secs(30));
        assert_eq!(src.next_workflow().unwrap().name(), "b");
        assert!(matches!(src.poll_time(), SourcePoll::Exhausted));
        assert_eq!(src.next_workflow(), None);
    }
}
