//! Streaming workload sources: pull-based arrival streams for the driver.
//!
//! The simulator originally took a fully materialized `Vec<WorkflowSpec>`
//! up front. A serving deployment instead sees an *arrival stream*: an
//! Oozie-style submitter trickling workflows into a long-lived JobTracker.
//! [`WorkloadSource`] models that stream as a pull-based iterator of
//! timestamped arrivals, so the driver can ingest workflows as sim-time
//! advances and run in memory bounded by the in-flight set, not the trace
//! length.
//!
//! # Source contract
//!
//! - [`peek_time`](WorkloadSource::peek_time) returns the submit time of
//!   the next arrival without consuming it; [`next_workflow`]
//!   (WorkloadSource::next_workflow) consumes and returns it. After
//!   `peek_time` returns `Some(t)`, the next `next_workflow` call must
//!   return a spec whose submit time is exactly `t`.
//! - Arrival times must be **nondecreasing**: once a source has yielded an
//!   arrival at time `t`, every later arrival is at `>= t`. The driver
//!   relies on this to interleave source pulls with the event heap without
//!   time travel. [`JsonlSource`] enforces it by clamping out-of-order
//!   lines up to the running maximum; [`VecSource`] by sorting; and
//!   [`GeneratorSource`] by construction.
//! - A source is exhausted when `peek_time` returns `None`; it must keep
//!   returning `None` afterwards.

use crate::rng::Rng;
use crate::topology::random_layered;
use crate::yahoo::YahooTraceConfig;
use std::io::BufRead;
use woha_model::{SimDuration, SimTime, WorkflowSpec};

/// A pull-based stream of timestamped workflow arrivals.
///
/// See the [module docs](self) for the timing contract.
pub trait WorkloadSource {
    /// Submit time of the next arrival, or `None` when the stream is
    /// exhausted. Takes `&mut self` because file- and generator-backed
    /// sources materialize the next record to learn its time.
    fn peek_time(&mut self) -> Option<SimTime>;

    /// Consumes and returns the next arrival, or `None` when exhausted.
    fn next_workflow(&mut self) -> Option<WorkflowSpec>;
}

/// Drains `source` to exhaustion, materializing every remaining workflow
/// in pull order — the batch view of a streaming source, for callers
/// (benchmarks, tests, sweep runners) that genuinely need the whole
/// workload at once.
pub fn drain(source: &mut dyn WorkloadSource) -> Vec<WorkflowSpec> {
    let mut out = Vec::new();
    while let Some(w) = source.next_workflow() {
        out.push(w);
    }
    out
}

/// A [`WorkloadSource`] over an in-memory `Vec<WorkflowSpec>`.
///
/// Yields workflows sorted by `(submit_time, original index)` — exactly
/// the order the batch driver used to pop simultaneous arrivals from its
/// event heap, so wrapping a vector in a `VecSource` is behaviorally
/// identical to the old batch entry points.
#[derive(Debug, Clone)]
pub struct VecSource {
    /// Workflows sorted by (submit time, original index), reversed so
    /// `pop` yields them in order without a cursor.
    sorted: Vec<WorkflowSpec>,
    next: usize,
}

impl VecSource {
    /// Wraps `workflows`, sorting them stably by submit time.
    pub fn new(mut workflows: Vec<WorkflowSpec>) -> Self {
        workflows.sort_by_key(WorkflowSpec::submit_time);
        VecSource {
            sorted: workflows,
            next: 0,
        }
    }

    /// Workflows not yet yielded, in yield order.
    pub fn remaining(&self) -> &[WorkflowSpec] {
        &self.sorted[self.next..]
    }
}

impl WorkloadSource for VecSource {
    fn peek_time(&mut self) -> Option<SimTime> {
        self.sorted.get(self.next).map(WorkflowSpec::submit_time)
    }

    fn next_workflow(&mut self) -> Option<WorkflowSpec> {
        let w = self.sorted.get(self.next).cloned()?;
        self.next += 1;
        Some(w)
    }
}

/// A [`WorkloadSource`] reading one JSON-encoded [`WorkflowSpec`] per line
/// from a reader — the arrival-file format a long-running process tails
/// into the simulator.
///
/// Records are parsed lazily, one line per pull, so memory stays bounded
/// by a single spec regardless of file length. Lines whose submit time
/// runs backwards are clamped up to the running maximum (the stream
/// contract requires nondecreasing arrivals); a sorted file passes through
/// untouched, which is what the byte-identity tests against [`VecSource`]
/// rely on. Blank lines are skipped. The first malformed line stops the
/// stream and is reported via [`error`](JsonlSource::error).
pub struct JsonlSource<R: BufRead> {
    reader: R,
    pending: Option<WorkflowSpec>,
    /// Running maximum submit time; later arrivals are clamped up to it.
    watermark: SimTime,
    line_no: u64,
    error: Option<String>,
    done: bool,
}

impl JsonlSource<std::io::BufReader<std::fs::File>> {
    /// Opens a JSONL arrival file.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be opened.
    pub fn open(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(JsonlSource::from_reader(std::io::BufReader::new(
            std::fs::File::open(path)?,
        )))
    }
}

impl<R: BufRead> JsonlSource<R> {
    /// Wraps any buffered reader producing one spec JSON per line.
    pub fn from_reader(reader: R) -> Self {
        JsonlSource {
            reader,
            pending: None,
            watermark: SimTime::ZERO,
            line_no: 0,
            error: None,
            done: false,
        }
    }

    /// The parse or I/O error that terminated the stream early, if any.
    pub fn error(&self) -> Option<&str> {
        self.error.as_deref()
    }

    /// Reads ahead until a record is pending, the stream ends, or a line
    /// fails to parse.
    fn fill(&mut self) {
        while self.pending.is_none() && !self.done {
            let mut line = String::new();
            match self.reader.read_line(&mut line) {
                Ok(0) => self.done = true,
                Ok(_) => {
                    self.line_no += 1;
                    if line.trim().is_empty() {
                        continue;
                    }
                    match serde_json::from_str::<WorkflowSpec>(line.trim()) {
                        Ok(w) => {
                            let submit = w.submit_time().max(self.watermark);
                            self.watermark = submit;
                            self.pending = Some(if submit == w.submit_time() {
                                w
                            } else {
                                w.reissued(w.name().to_string(), submit, w.deadline())
                            });
                        }
                        Err(e) => {
                            self.error = Some(format!("line {}: {e:?}", self.line_no));
                            self.done = true;
                        }
                    }
                }
                Err(e) => {
                    self.error = Some(format!("line {}: {e}", self.line_no + 1));
                    self.done = true;
                }
            }
        }
    }
}

impl<R: BufRead> WorkloadSource for JsonlSource<R> {
    fn peek_time(&mut self) -> Option<SimTime> {
        self.fill();
        self.pending.as_ref().map(WorkflowSpec::submit_time)
    }

    fn next_workflow(&mut self) -> Option<WorkflowSpec> {
        self.fill();
        self.pending.take()
    }
}

/// Writes `workflows` in the JSONL arrival format read by [`JsonlSource`]:
/// one spec JSON per line, in the given order.
///
/// # Errors
///
/// Propagates serialization failures (which the vendored serde shim never
/// produces for [`WorkflowSpec`]).
pub fn to_jsonl(workflows: &[WorkflowSpec]) -> Result<String, serde_json::Error> {
    let mut out = String::new();
    for w in workflows {
        out.push_str(&serde_json::to_string(w)?);
        out.push('\n');
    }
    Ok(out)
}

/// A [`WorkloadSource`] that materializes Yahoo-trace-style workflows
/// lazily, one per pull, instead of building the whole workload up front.
///
/// Each workflow is drawn from the [`YahooTraceConfig`] distributions with
/// a layered topology of 2–12 jobs (the paper's multi-job size range),
/// released at `index * interarrival` (monotone by construction) with a
/// deadline of `submit + stretch * critical_path`. Memory stays O(1) in
/// the workflow count, which is the point: the `ingest_throughput` bench
/// sweeps this source against a pre-materialized [`VecSource`] at 10³–10⁵
/// workflows.
#[derive(Debug, Clone)]
pub struct GeneratorSource {
    config: YahooTraceConfig,
    topo_rng: Rng,
    job_rng: Rng,
    size_rng: Rng,
    interarrival: SimDuration,
    deadline_stretch: f64,
    remaining: usize,
    next_index: u64,
    pending: Option<WorkflowSpec>,
}

impl GeneratorSource {
    /// A lazy stream of `count` workflows from `config`'s distributions,
    /// seeded deterministically: two sources with the same arguments yield
    /// identical streams.
    pub fn new(
        config: YahooTraceConfig,
        seed: u64,
        count: usize,
        interarrival: SimDuration,
        deadline_stretch: f64,
    ) -> Self {
        let rng = Rng::new(seed);
        GeneratorSource {
            config,
            topo_rng: rng.fork(1),
            job_rng: rng.fork(2),
            size_rng: rng.fork(3),
            interarrival,
            deadline_stretch,
            remaining: count,
            next_index: 0,
            pending: None,
        }
    }

    fn generate(&mut self) {
        if self.pending.is_some() || self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        let i = self.next_index;
        self.next_index += 1;
        let name = format!("gen-w{i:05}");
        let size = self.size_rng.range_u64(2, 13) as usize;
        let config = self.config.clone();
        let job_rng = &mut self.job_rng;
        let spec = random_layered(name.clone(), size, &mut self.topo_rng, |j| {
            config.sample_job(format!("{name}-j{j}"), job_rng)
        })
        .build()
        .expect("layered workflow is valid");
        let submit = SimTime::ZERO + self.interarrival * i;
        let deadline = submit.saturating_add(spec.critical_path().mul_f64(self.deadline_stretch));
        self.pending = Some(spec.reissued(name, submit, deadline));
    }
}

impl WorkloadSource for GeneratorSource {
    fn peek_time(&mut self) -> Option<SimTime> {
        self.generate();
        self.pending.as_ref().map(WorkflowSpec::submit_time)
    }

    fn next_workflow(&mut self) -> Option<WorkflowSpec> {
        self.generate();
        self.pending.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::chain;
    use woha_model::JobSpec;

    fn spec(name: &str, submit_s: u64) -> WorkflowSpec {
        let w = chain(name, 2, |j| {
            JobSpec::new(
                format!("j{j}"),
                2,
                1,
                SimDuration::from_secs(10),
                SimDuration::from_secs(20),
            )
        })
        .build()
        .unwrap();
        w.reissued(
            name.to_string(),
            SimTime::from_secs(submit_s),
            SimTime::from_secs(submit_s + 600),
        )
    }

    #[test]
    fn vec_source_yields_in_time_order_with_stable_ties() {
        let mut src = VecSource::new(vec![
            spec("b", 20),
            spec("tie-first", 10),
            spec("tie-second", 10),
            spec("a", 0),
        ]);
        assert_eq!(src.peek_time(), Some(SimTime::ZERO));
        let order: Vec<String> = std::iter::from_fn(|| src.next_workflow())
            .map(|w| w.name().to_string())
            .collect();
        // Ties keep original relative order (stable sort), matching the
        // batch event heap's FIFO tie-break over input indices.
        assert_eq!(order, vec!["a", "tie-first", "tie-second", "b"]);
        assert_eq!(src.peek_time(), None);
        assert_eq!(src.next_workflow(), None);
    }

    #[test]
    fn jsonl_source_round_trips_vec_source() {
        let workflows = vec![spec("a", 0), spec("b", 30), spec("c", 90)];
        let text = to_jsonl(&workflows).unwrap();
        let mut jsonl = JsonlSource::from_reader(std::io::Cursor::new(text));
        let mut vec_src = VecSource::new(workflows);
        loop {
            assert_eq!(jsonl.peek_time(), vec_src.peek_time());
            match (jsonl.next_workflow(), vec_src.next_workflow()) {
                (Some(a), Some(b)) => assert_eq!(a, b),
                (None, None) => break,
                other => panic!("length mismatch: {other:?}"),
            }
        }
        assert_eq!(jsonl.error(), None);
    }

    #[test]
    fn jsonl_source_clamps_out_of_order_lines() {
        let text = to_jsonl(&[spec("late", 60), spec("early", 10)]).unwrap();
        let mut src = JsonlSource::from_reader(std::io::Cursor::new(text));
        let a = src.next_workflow().unwrap();
        let b = src.next_workflow().unwrap();
        assert_eq!(a.submit_time(), SimTime::from_secs(60));
        // Clamped up to the watermark; the absolute deadline is kept.
        assert_eq!(b.submit_time(), SimTime::from_secs(60));
        assert_eq!(b.deadline(), SimTime::from_secs(10 + 600));
        assert_eq!(src.error(), None);
    }

    #[test]
    fn jsonl_source_skips_blanks_and_stops_on_garbage() {
        let good = serde_json::to_string(&spec("ok", 5)).unwrap();
        let text = format!("\n{good}\n\nnot json\n{good}\n");
        let mut src = JsonlSource::from_reader(std::io::Cursor::new(text));
        assert_eq!(src.next_workflow().unwrap().name(), "ok");
        assert_eq!(src.next_workflow(), None);
        assert!(src.error().unwrap().contains("line 4"), "{:?}", src.error());
        // Exhausted stays exhausted.
        assert_eq!(src.peek_time(), None);
    }

    #[test]
    fn generator_source_is_deterministic_lazy_and_monotone() {
        let make = || {
            GeneratorSource::new(
                YahooTraceConfig::default(),
                42,
                20,
                SimDuration::from_secs(30),
                3.0,
            )
        };
        let mut a = make();
        let mut b = make();
        let mut last = SimTime::ZERO;
        let mut count = 0usize;
        while let Some(w) = a.next_workflow() {
            assert_eq!(Some(w.clone()), b.next_workflow());
            assert!(w.submit_time() >= last, "arrivals must be monotone");
            assert_eq!(
                w.submit_time(),
                SimTime::ZERO + SimDuration::from_secs(30) * count as u64
            );
            assert!(w.deadline() > w.submit_time());
            assert!((2..=12).contains(&w.job_count()));
            last = w.submit_time();
            count += 1;
        }
        assert_eq!(count, 20);
        assert_eq!(b.next_workflow(), None);
    }

    #[test]
    fn workflow_spec_survives_json_round_trip() {
        let w = spec("roundtrip", 77);
        let json = serde_json::to_string(&w).unwrap();
        let back: WorkflowSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, w);
    }
}
