//! Empirical statistics: CDFs, log-scale histograms, and summaries.
//!
//! The paper reports its trace characterization (Figs 3, 5, 6) as CDFs and
//! decade histograms; this module computes the same artifacts from samples
//! so the bench binaries can print them side by side with the paper's
//! reference points.

use std::fmt;

/// An empirical cumulative distribution function over `f64` samples.
///
/// # Examples
///
/// ```
/// use woha_trace::stats::Cdf;
/// let cdf = Cdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cdf.fraction_at_or_below(2.0), 0.5);
/// assert_eq!(cdf.percentile(0.5), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples; non-finite values are dropped.
    ///
    /// # Panics
    ///
    /// Panics if no finite samples remain.
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|x| x.is_finite()).collect();
        assert!(!sorted.is_empty(), "CDF needs at least one finite sample");
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF is empty (never true by construction; kept for the
    /// `len`/`is_empty` pairing convention).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x`, in `[0, 1]`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `p`-th percentile (nearest-rank), `p` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
        let n = self.sorted.len();
        let idx = ((n as f64 * p).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// The smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// The largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// The sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// `(x, F(x))` pairs at `points` evenly spaced quantiles, for plotting.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least two points");
        (0..points)
            .map(|i| {
                let p = i as f64 / (points - 1) as f64;
                (self.percentile(p.max(1e-9)), p)
            })
            .collect()
    }
}

/// A histogram over powers-of-ten buckets: `[10^k, 10^(k+1))`.
///
/// Mirrors Fig 3's x-axis (`<10^1 ms`, `<10^2 ms`, ... `<10^6 ms`).
///
/// # Examples
///
/// ```
/// use woha_trace::stats::DecadeHistogram;
/// let mut h = DecadeHistogram::new();
/// h.record(5.0);     // 10^0 decade
/// h.record(50.0);    // 10^1 decade
/// h.record(55.0);    // 10^1 decade
/// assert_eq!(h.count_in_decade(1), 2);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DecadeHistogram {
    /// counts[k] counts samples in [10^(k-1), 10^k) shifted so that
    /// decade index 0 covers [1, 10). Samples below 1 land in decade 0.
    counts: Vec<u64>,
}

impl DecadeHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        DecadeHistogram::default()
    }

    /// Records one sample; negatives and non-finite values count as decade 0.
    pub fn record(&mut self, x: f64) {
        let decade = if x.is_finite() && x >= 1.0 {
            x.log10().floor() as usize
        } else {
            0
        };
        if self.counts.len() <= decade {
            self.counts.resize(decade + 1, 0);
        }
        self.counts[decade] += 1;
    }

    /// Count of samples in `[10^decade, 10^(decade+1))`.
    pub fn count_in_decade(&self, decade: usize) -> u64 {
        self.counts.get(decade).copied().unwrap_or(0)
    }

    /// Count of samples `< 10^decade` (the paper's "&lt;10^k" buckets).
    pub fn count_below_power(&self, decade: usize) -> u64 {
        self.counts.iter().take(decade).sum()
    }

    /// Total sample count.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of samples `>= 10^decade`.
    pub fn fraction_at_or_above_power(&self, decade: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (total - self.count_below_power(decade)) as f64 / total as f64
    }

    /// Highest non-empty decade index, or `None` when empty.
    pub fn max_decade(&self) -> Option<usize> {
        self.counts.iter().rposition(|&c| c > 0)
    }

    /// `(decade, count)` for every decade up to the maximum, including
    /// empty ones.
    pub fn buckets(&self) -> Vec<(usize, u64)> {
        self.counts.iter().copied().enumerate().collect()
    }
}

impl fmt::Display for DecadeHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (decade, count) in self.buckets() {
            writeln!(f, "[1e{decade}, 1e{}): {count}", decade + 1)?;
        }
        Ok(())
    }
}

/// Five-number summary plus mean, for one metric column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample count.
    pub count: usize,
}

impl Summary {
    /// Summarizes samples.
    ///
    /// # Panics
    ///
    /// Panics if there are no finite samples.
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Self {
        let cdf = Cdf::from_samples(samples);
        Summary {
            min: cdf.min(),
            p25: cdf.percentile(0.25),
            median: cdf.percentile(0.5),
            p75: cdf.percentile(0.75),
            max: cdf.max(),
            mean: cdf.mean(),
            count: cdf.len(),
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={:.2} p25={:.2} median={:.2} p75={:.2} max={:.2} mean={:.2}",
            self.count, self.min, self.p25, self.median, self.p75, self.max, self.mean
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_fractions() {
        let cdf = Cdf::from_samples([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.fraction_at_or_below(0.5), 0.0);
        assert_eq!(cdf.fraction_at_or_below(2.0), 0.5);
        assert_eq!(cdf.fraction_at_or_below(100.0), 1.0);
        assert_eq!(cdf.len(), 4);
        assert!(!cdf.is_empty());
    }

    #[test]
    fn cdf_percentiles() {
        let cdf = Cdf::from_samples((1..=100).map(f64::from));
        assert_eq!(cdf.percentile(0.0), 1.0);
        assert_eq!(cdf.percentile(0.5), 50.0);
        assert_eq!(cdf.percentile(1.0), 100.0);
        assert_eq!(cdf.min(), 1.0);
        assert_eq!(cdf.max(), 100.0);
        assert!((cdf.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn cdf_drops_non_finite() {
        let cdf = Cdf::from_samples([1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one finite sample")]
    fn cdf_rejects_empty() {
        Cdf::from_samples(std::iter::empty());
    }

    #[test]
    fn cdf_curve_is_monotone() {
        let cdf = Cdf::from_samples((1..=1000).map(|i| (i as f64).powf(1.3)));
        let curve = cdf.curve(20);
        assert_eq!(curve.len(), 20);
        for w in curve.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn histogram_decades() {
        let mut h = DecadeHistogram::new();
        for x in [0.5, 3.0, 30.0, 40.0, 500.0, 20_000.0] {
            h.record(x);
        }
        assert_eq!(h.count_in_decade(0), 2); // 0.5 and 3.0
        assert_eq!(h.count_in_decade(1), 2);
        assert_eq!(h.count_in_decade(2), 1);
        assert_eq!(h.count_in_decade(3), 0);
        assert_eq!(h.count_in_decade(4), 1);
        assert_eq!(h.total(), 6);
        assert_eq!(h.count_below_power(2), 4);
        assert_eq!(h.max_decade(), Some(4));
        assert!((h.fraction_at_or_above_power(2) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_empty() {
        let h = DecadeHistogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.max_decade(), None);
        assert_eq!(h.fraction_at_or_above_power(3), 0.0);
    }

    #[test]
    fn histogram_display_lists_buckets() {
        let mut h = DecadeHistogram::new();
        h.record(5.0);
        let text = h.to_string();
        assert!(text.contains("[1e0, 1e1): 1"));
    }

    #[test]
    fn summary_quartiles() {
        let s = Summary::from_samples((1..=100).map(f64::from));
        assert_eq!(s.min, 1.0);
        assert_eq!(s.p25, 25.0);
        assert_eq!(s.median, 50.0);
        assert_eq!(s.p75, 75.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.count, 100);
        let text = s.to_string();
        assert!(text.contains("median=50.00"));
    }
}
