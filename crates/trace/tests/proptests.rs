//! Property-based tests for the workload-generation crate.

use proptest::prelude::*;
use woha_model::{JobSpec, SimDuration, SimTime};
use woha_trace::stats::{Cdf, DecadeHistogram};
use woha_trace::topology::{chain, fork_join, layered, random_layered};
use woha_trace::workload::{lower_bound, DeadlineRule, ReleasePattern, Workload};
use woha_trace::yahoo::{yahoo_workflows, YahooTraceConfig};
use woha_trace::{BoundedPareto, Clamped, Distribution, LogNormal, Rng, Uniform};

fn tiny_job(i: usize) -> JobSpec {
    JobSpec::new(
        format!("j{i}"),
        1 + (i as u32 % 4),
        i as u32 % 3,
        SimDuration::from_secs(5 + i as u64),
        SimDuration::from_secs(10 + i as u64),
    )
}

proptest! {
    /// The PRNG's fork streams never collide with the parent stream in the
    /// first draws, and identical seeds replay identically.
    #[test]
    fn rng_fork_and_replay(seed in 0u64..1_000_000, stream in 1u64..64) {
        let root = Rng::new(seed);
        let mut a = root.fork(stream);
        let mut b = root.fork(stream);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut parent = Rng::new(seed);
        let mut child = Rng::new(seed).fork(stream);
        let collisions = (0..16)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        prop_assert!(collisions <= 1);
    }

    /// range_u64 stays within bounds for arbitrary ranges.
    #[test]
    fn rng_range_bounds(seed in 0u64..1_000, lo in 0u64..1_000, span in 1u64..1_000) {
        let mut rng = Rng::new(seed);
        for _ in 0..64 {
            let v = rng.range_u64(lo, lo + span);
            prop_assert!((lo..lo + span).contains(&v));
        }
    }

    /// Distribution samplers respect their support.
    #[test]
    fn distribution_supports(seed in 0u64..10_000) {
        let mut rng = Rng::new(seed);
        let u = Uniform::new(3.0, 9.0);
        let p = BoundedPareto::new(2.0, 500.0, 0.7);
        let c = Clamped::new(LogNormal::from_median(50.0, 2.0), 10.0, 90.0);
        for _ in 0..64 {
            let x = u.sample(&mut rng);
            prop_assert!((3.0..9.0).contains(&x));
            let y = p.sample(&mut rng);
            prop_assert!((2.0..=500.0).contains(&y));
            let z = c.sample(&mut rng);
            prop_assert!((10.0..=90.0).contains(&z));
        }
    }

    /// Empirical CDFs are monotone and hit 0/1 at the extremes.
    #[test]
    fn cdf_is_monotone(samples in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let cdf = Cdf::from_samples(samples.clone());
        prop_assert_eq!(cdf.len(), samples.len());
        let mut last = 0.0;
        for probe in 0..20 {
            let x = 1e6 * probe as f64 / 19.0;
            let f = cdf.fraction_at_or_below(x);
            prop_assert!(f >= last - 1e-12);
            prop_assert!((0.0..=1.0).contains(&f));
            last = f;
        }
        prop_assert_eq!(cdf.fraction_at_or_below(1e7), 1.0);
        prop_assert_eq!(cdf.fraction_at_or_below(-1.0), 0.0);
    }

    /// The decade histogram conserves counts.
    #[test]
    fn histogram_conserves(samples in proptest::collection::vec(0.1f64..1e7, 0..100)) {
        let mut h = DecadeHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.total(), samples.len() as u64);
        prop_assert_eq!(h.count_below_power(10), samples.len() as u64);
    }

    /// Every generated topology is a valid DAG with the requested size.
    #[test]
    fn topologies_are_valid(seed in 0u64..10_000, n in 2usize..20) {
        let mut rng = Rng::new(seed);
        let w = random_layered("w", n, &mut rng, tiny_job).build().unwrap();
        prop_assert_eq!(w.job_count(), n);
        prop_assert!(w.to_dag().is_acyclic());
        prop_assert!(!w.initially_ready().is_empty());

        let c = chain("c", n, tiny_job).build().unwrap();
        prop_assert_eq!(c.to_dag().edge_count(), n - 1);
        let f = fork_join("f", n, tiny_job).build().unwrap();
        prop_assert_eq!(f.job_count(), n + 2);
        let l = layered("l", &[1, n, 1], |i, _, _| tiny_job(i)).build().unwrap();
        prop_assert_eq!(l.job_count(), n + 2);
    }

    /// Workload assignment: releases in window, deadlines above the floor,
    /// and reissue preserves topology.
    #[test]
    fn workload_assignment_laws(seed in 0u64..10_000) {
        let mut rng = Rng::new(seed);
        let flows = yahoo_workflows(&YahooTraceConfig::default(), &mut rng);
        let window = SimDuration::from_mins(30);
        let workload = Workload::assign(
            &flows,
            ReleasePattern::UniformWindow(window),
            DeadlineRule::UniformRelative {
                min: SimDuration::from_mins(5),
                max: SimDuration::from_mins(20),
                floor_stretch: 1.5,
                reference_slots: 100,
            },
            &mut rng,
        );
        prop_assert_eq!(workload.len(), flows.len());
        for (assigned, template) in workload.workflows().iter().zip(&flows) {
            prop_assert!(assigned.submit_time() < SimTime::ZERO + window);
            let floor = lower_bound(template, 100).mul_f64(1.5);
            prop_assert!(assigned.relative_deadline() >= floor.min(SimDuration::from_mins(5)));
            prop_assert!(assigned.relative_deadline() >= SimDuration::from_mins(5).min(floor));
            prop_assert_eq!(assigned.jobs(), template.jobs());
            prop_assert_eq!(assigned.to_dag(), template.to_dag());
        }
    }

    /// The Yahoo workload keeps the paper's shape for every seed.
    #[test]
    fn yahoo_shape_for_all_seeds(seed in 0u64..2_000) {
        let flows = yahoo_workflows(&YahooTraceConfig::default(), &mut Rng::new(seed));
        prop_assert_eq!(flows.len(), 61);
        prop_assert_eq!(flows.iter().map(|w| w.job_count()).sum::<usize>(), 180);
        prop_assert_eq!(flows.iter().filter(|w| w.is_single_job()).count(), 15);
        prop_assert_eq!(flows.iter().map(|w| w.job_count()).max(), Some(12));
    }
}
