//! Simulator edge cases: degenerate clusters, extreme configurations, and
//! lifecycle corners.

use woha_model::{JobSpec, SimDuration, SimTime, SlotKind, WorkflowBuilder, WorkflowSpec};
use woha_sim::{run_simulation, ClusterConfig, SimConfig, SubmitOrderScheduler};

fn one_job(name: &str, maps: u32, reduces: u32, submit_s: u64) -> WorkflowSpec {
    let mut b = WorkflowBuilder::new(name);
    b.add_job(JobSpec::new(
        "j",
        maps,
        reduces,
        SimDuration::from_secs(10),
        SimDuration::from_secs(20),
    ));
    b.submit_at(SimTime::from_secs(submit_s));
    b.relative_deadline(SimDuration::from_mins(30));
    b.build().unwrap()
}

#[test]
fn empty_workload_finishes_immediately() {
    let report = run_simulation(
        &[],
        &mut SubmitOrderScheduler::new(),
        &ClusterConfig::uniform(2, 2, 1),
        &SimConfig::default(),
    );
    assert!(report.completed);
    assert!(report.outcomes.is_empty());
    assert_eq!(report.tasks_executed, 0);
    assert_eq!(report.events_processed, 0);
}

#[test]
fn reduce_job_on_map_only_cluster_truncates() {
    // No reduce slots anywhere: the job can never finish; the run must hit
    // the cutoff and report the workflow unfinished rather than spin.
    let config = SimConfig {
        max_sim_time: SimTime::from_mins(5),
        ..SimConfig::default()
    };
    let report = run_simulation(
        &[one_job("w", 2, 1, 0)],
        &mut SubmitOrderScheduler::new(),
        &ClusterConfig::uniform(2, 2, 0),
        &config,
    );
    assert!(!report.completed);
    assert_eq!(report.outcomes[0].finished, None);
    // The two maps did run.
    assert_eq!(report.tasks_executed, 2);
}

#[test]
fn map_only_workflow_on_map_only_cluster_completes() {
    let report = run_simulation(
        &[one_job("w", 6, 0, 0)],
        &mut SubmitOrderScheduler::new(),
        &ClusterConfig::uniform(2, 2, 0),
        &SimConfig::default(),
    );
    assert!(report.completed);
    assert_eq!(report.deadline_misses(), 0);
    assert_eq!(report.utilization(SlotKind::Reduce), 0.0);
}

#[test]
fn single_slot_cluster_serializes_everything() {
    let report = run_simulation(
        &[one_job("a", 3, 0, 0), one_job("b", 3, 0, 0)],
        &mut SubmitOrderScheduler::new(),
        &ClusterConfig::uniform(1, 1, 0),
        &SimConfig::default(),
    );
    assert!(report.completed);
    // 6 map tasks x 10s serialized: at least 60s of simulated time.
    assert!(report.end_time >= SimTime::from_secs(60));
    // One slot: busy time equals the sum of task durations.
    assert_eq!(report.busy_slot_ms[0], 6 * 10_000);
}

#[test]
fn late_arrival_after_everything_finished() {
    // The second workflow arrives long after the first completes; the
    // heartbeat machinery must still be alive to serve it.
    let report = run_simulation(
        &[one_job("early", 2, 1, 0), one_job("late", 2, 1, 1_800)],
        &mut SubmitOrderScheduler::new(),
        &ClusterConfig::uniform(2, 2, 1),
        &SimConfig::default(),
    );
    assert!(report.completed);
    let late = report.outcome_by_name("late").unwrap();
    assert!(late.finished.unwrap() > SimTime::from_secs(1_800));
    assert!(late.met_deadline());
}

#[test]
fn coarse_heartbeats_still_complete() {
    // Heartbeat interval far longer than every task duration.
    let cluster = ClusterConfig::uniform(2, 2, 1).with_heartbeat(SimDuration::from_mins(2));
    let report = run_simulation(
        &[one_job("w", 4, 2, 0)],
        &mut SubmitOrderScheduler::new(),
        &cluster,
        &SimConfig::default(),
    );
    assert!(report.completed);
    // Completion-triggered assignment keeps latency bounded even with
    // coarse heartbeats, but the first wave waits for the first heartbeat.
    assert!(report.outcomes[0].finished.unwrap() <= SimTime::from_mins(10));
}

#[test]
fn huge_submit_latency_defers_everything() {
    let config = SimConfig {
        submit_latency: SimDuration::from_mins(10),
        ..SimConfig::default()
    };
    let report = run_simulation(
        &[one_job("w", 1, 0, 0)],
        &mut SubmitOrderScheduler::new(),
        &ClusterConfig::uniform(1, 1, 1),
        &config,
    );
    assert!(report.completed);
    assert!(report.outcomes[0].finished.unwrap() >= SimTime::from_mins(10));
}

#[test]
fn no_deadline_workflow_always_meets() {
    let mut b = WorkflowBuilder::new("lazy");
    b.add_job(JobSpec::new(
        "j",
        2,
        1,
        SimDuration::from_secs(10),
        SimDuration::from_secs(10),
    ));
    let w = b.build().unwrap();
    let report = run_simulation(
        &[w],
        &mut SubmitOrderScheduler::new(),
        &ClusterConfig::uniform(1, 2, 1),
        &SimConfig::default(),
    );
    assert!(report.completed);
    assert_eq!(report.deadline_misses(), 0);
    assert_eq!(report.max_tardiness(), SimDuration::ZERO);
}

#[test]
fn many_tiny_workflows_drain() {
    let workflows: Vec<WorkflowSpec> = (0..200)
        .map(|i| one_job(&format!("w{i}"), 1, 0, i / 4))
        .collect();
    let report = run_simulation(
        &workflows,
        &mut SubmitOrderScheduler::new(),
        &ClusterConfig::uniform(4, 2, 0),
        &SimConfig::default(),
    );
    assert!(report.completed);
    assert_eq!(report.tasks_executed, 200);
    assert_eq!(report.outcomes.len(), 200);
}

#[test]
fn asymmetric_nodes_from_totals() {
    // with_totals(7, 3) builds uneven nodes; slots must be fully usable.
    let cluster = ClusterConfig::with_totals(7, 3);
    let report = run_simulation(
        &[one_job("w", 14, 3, 0)],
        &mut SubmitOrderScheduler::new(),
        &cluster,
        &SimConfig::default(),
    );
    assert!(report.completed);
    // Two full map waves of 7.
    assert!(report.end_time >= SimTime::from_secs(40));
}

#[test]
fn timeline_tracking_of_empty_workload() {
    let config = SimConfig {
        track_timelines: true,
        ..SimConfig::default()
    };
    let report = run_simulation(
        &[],
        &mut SubmitOrderScheduler::new(),
        &ClusterConfig::uniform(1, 1, 1),
        &config,
    );
    let tl = report.timelines.unwrap();
    assert_eq!(tl.workflow_count(), 0);
}
