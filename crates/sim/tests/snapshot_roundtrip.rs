//! Property tests for the master-failover snapshot subsystem: a
//! [`WorkflowPool`] driven through an arbitrary legal prefix of its
//! lifecycle survives serialize→restore bit-for-bit, the enclosing
//! [`MasterSnapshot`] round-trips through its encoding, and a scripted
//! master crash preserves the simulator's global invariants.

use proptest::collection::vec;
use proptest::prelude::*;
use woha_model::{JobId, JobSpec, SimDuration, SimTime, SlotKind, WorkflowBuilder, WorkflowSpec};
use woha_sim::snapshot::{FaultSnapshot, SnapshotCounters};
use woha_sim::{
    run_simulation, ClusterConfig, FaultConfig, JobPhase, MasterFaultConfig, MasterSnapshot,
    SimConfig, SubmitOrderScheduler, WorkflowPool,
};

/// An arbitrary small workflow: forward-edge layered DAG, 2–6 jobs.
fn arb_workflow() -> impl Strategy<Value = WorkflowSpec> {
    (
        2usize..6,
        vec((0usize..6, 0usize..6), 0..8),
        vec((1u32..5, 0u32..3, 5u64..40, 5u64..80), 6),
        30u64..120,
    )
        .prop_map(|(n, edges, jobs, deadline_mins)| {
            let mut b = WorkflowBuilder::new("prop");
            let ids: Vec<_> = (0..n)
                .map(|i| {
                    let (m, r, md, rd) = jobs[i];
                    b.add_job(JobSpec::new(
                        format!("j{i}"),
                        m,
                        r,
                        SimDuration::from_secs(md),
                        SimDuration::from_secs(rd),
                    ))
                })
                .collect();
            for (a, z) in edges {
                let (a, z) = (a % n, z % n);
                if a < z {
                    b.add_dependency(ids[a], ids[z]);
                }
            }
            b.relative_deadline(SimDuration::from_mins(deadline_mins));
            b.build().expect("forward edges are acyclic")
        })
}

/// Completing a job unblocks its dependents, exactly as the driver does.
fn complete_job(pool: &mut WorkflowPool, wf: usize, job: JobId) {
    let id = pool.workflows()[wf].id();
    let deps: Vec<JobId> = pool.workflow(id).spec().dependents(job).to_vec();
    for dep in deps {
        if pool.workflow_mut(id).satisfy_prereq(dep) {
            pool.workflow_mut(id).begin_submitting(dep);
        }
    }
}

/// Applies one lifecycle step chosen by `(wf, job, action)` codes; a no-op
/// when the step is illegal in the current phase. Mirrors the driver's
/// phase machine so every reachable state is a state a checkpoint could
/// capture.
fn apply_op(pool: &mut WorkflowPool, wf_code: usize, job_code: usize, action: u8, now: SimTime) {
    let wf = wf_code % pool.len();
    let id = pool.workflows()[wf].id();
    let jobs: Vec<JobId> = pool.workflow(id).spec().job_ids().collect();
    let job = jobs[job_code % jobs.len()];
    let phase = pool.workflow(id).job(job).phase();
    let kind = if action.is_multiple_of(2) {
        SlotKind::Map
    } else {
        SlotKind::Reduce
    };
    match action {
        0 | 1 => {
            // Submit the workflow's roots (prerequisite-free jobs).
            for &j in &jobs {
                let w = pool.workflow_mut(id);
                if w.job(j).phase() == JobPhase::Blocked && w.spec().prerequisites(j).is_empty() {
                    w.begin_submitting(j);
                }
            }
        }
        2 | 3 => {
            if phase == JobPhase::Submitting {
                pool.workflow_mut(id).activate(job, now);
            }
        }
        4 | 5 => {
            if phase == JobPhase::Active && pool.workflow(id).job(job).eligible_tasks(kind) > 0 {
                pool.workflow_mut(id).start_task(job, kind);
            }
        }
        6 | 7 => {
            let j = pool.workflow(id).job(job);
            let running = match kind {
                SlotKind::Map => j.running_maps(),
                SlotKind::Reduce => j.running_reduces(),
            };
            if running > 0 && pool.workflow_mut(id).finish_task(job, kind, now) {
                complete_job(pool, wf, job);
            }
        }
        _ => {
            let j = pool.workflow(id).job(job);
            let running = match kind {
                SlotKind::Map => j.running_maps(),
                SlotKind::Reduce => j.running_reduces(),
            };
            if running > 0 {
                pool.workflow_mut(id).fail_task(job, kind);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any reachable pool state survives snapshot→serialize→restore: the
    /// JSON round-trip reproduces the pool exactly, and the enclosing
    /// master snapshot decodes back to an equal value.
    #[test]
    fn pool_roundtrips_through_snapshot(
        workflows in vec(arb_workflow(), 1..3),
        ops in vec((0usize..4, 0usize..8, 0u8..10), 0..40),
    ) {
        let mut pool = WorkflowPool::new();
        for w in &workflows {
            pool.register(w.clone());
        }
        let mut now = SimTime::ZERO;
        for (wf, job, action) in ops {
            now = now.saturating_add(SimDuration::from_secs(1));
            apply_op(&mut pool, wf, job, action, now);
        }

        // The pool itself is serde-stable.
        let json = serde_json::to_string(&pool).expect("pool serializes");
        let back: WorkflowPool = serde_json::from_str(&json).expect("pool deserializes");
        prop_assert_eq!(&pool, &back);

        // So is the full master snapshot wrapping it.
        let arrived = vec![true; pool.len()];
        let snap = MasterSnapshot {
            taken_at: now,
            pool,
            source_cursor: arrived.len() as u64,
            arrived,
            attempts: Vec::new(),
            groups: Vec::new(),
            next_attempt: 17,
            next_group: 3,
            pending_map_ids: Vec::new(),
            delay_skips: Vec::new(),
            map_output_hosts: Vec::new(),
            node_slots: Vec::new(),
            busy_count: [2, 1],
            completion_seq: 41,
            counters: SnapshotCounters::default(),
            fault: FaultSnapshot::default(),
            scheduler: woha_sim::scheduler::SchedulerState::snapshot_state(
                &SubmitOrderScheduler::new(),
            ),
            health: None,
        };
        let decoded = MasterSnapshot::decode(&snap.encode()).expect("snapshot decodes");
        prop_assert_eq!(snap, decoded);
    }

    /// A scripted master crash (with or without the WAL) never breaks the
    /// global simulator invariants: the run completes, work is conserved,
    /// lossless recovery loses no attempts, and the run is reproducible.
    #[test]
    fn master_crash_preserves_invariants(
        workflows in vec(arb_workflow(), 1..3),
        seed in 0u64..3,
        crash_s in 5u64..90,
        interval_s in 10u64..120,
        wal_bit in 0u8..2,
    ) {
        let wal = wal_bit == 1;
        let cluster = ClusterConfig::uniform(3, 2, 1).with_faults(FaultConfig {
            master: MasterFaultConfig {
                mtbf: None,
                mttr: SimDuration::from_secs(30),
                checkpoint_interval: SimDuration::from_secs(interval_s),
                wal,
                scripted: vec![SimTime::from_secs(crash_s)],
            },
            ..FaultConfig::default()
        });
        let config = SimConfig { seed, ..SimConfig::default() };
        let expected: u64 = workflows.iter().map(|w| w.total_tasks()).sum();
        let report = run_simulation(
            &workflows,
            &mut SubmitOrderScheduler::new(),
            &cluster,
            &config,
        );
        prop_assert!(report.completed);
        prop_assert_eq!(report.invalid_assignments, 0);
        prop_assert_eq!(
            report.tasks_executed,
            expected + report.tasks_requeued + report.map_outputs_lost
        );
        let rec = report.recovery.as_ref().expect("master mode reports");
        // The crash may fall after the workload drains; at most one fires.
        prop_assert!(rec.master_crashes <= 1);
        if wal {
            prop_assert_eq!(rec.attempts_requeued + rec.attempts_orphaned, 0);
        }
        let again = run_simulation(
            &workflows,
            &mut SubmitOrderScheduler::new(),
            &cluster,
            &config,
        );
        prop_assert_eq!(report, again);
    }
}
