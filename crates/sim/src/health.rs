//! Per-node failure-propensity tracking for failure-aware scheduling.
//!
//! The simulator already records every node fault it injects (crashes,
//! blacklist events, killed attempts). This module folds that history into
//! a decaying per-node **propensity score**: each incident bumps the node's
//! score by a configured weight, and the score halves every
//! [`PredictionConfig::half_life`] of fault-free operation. A node whose
//! score is at or above [`PredictionConfig::risk_threshold`] is considered
//! *risky* and is avoided for deadline-critical placements, targeted for
//! preemptive speculation, and (optionally) blacklisted adaptively.
//!
//! Scores start at exactly `0.0` and only ever move on recorded fault
//! events, so the whole layer is provably inert when fault injection is
//! off: with no crashes the scores stay zero forever and every placement
//! decision is byte-identical to a run without prediction. Because the
//! fault history itself is driven by the seeded [`crate::FaultStream`],
//! the score trajectory is a deterministic function of `(config, seed)` —
//! the "seeded" propensity the ATLAS-style predictor needs for replays.

use serde::{Deserialize, Serialize};
use woha_model::{NodeId, SimDuration, SimTime};

/// Configuration for the failure-prediction layer (`--predict-failures`).
///
/// Attached to [`crate::SimConfig::prediction`]; `None` (the default)
/// disables the layer entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionConfig {
    /// Fault-free time after which a node's propensity score halves.
    pub half_life: SimDuration,
    /// Score added when a node crashes.
    pub crash_weight: f64,
    /// Score added per attempt killed by a crash (a crash that takes many
    /// running attempts down with it is stronger evidence than an idle
    /// blip).
    pub kill_weight: f64,
    /// Steer deadline-critical attempts away from risky nodes and
    /// preemptively speculate attempts already running on them
    /// (`--risk-placement`).
    pub risk_placement: bool,
    /// Propensity score at or above which a node counts as risky.
    pub risk_threshold: f64,
    /// Slack fraction below which an attempt counts as deadline-critical
    /// (see [`crate::WorkflowScheduler::slack_fraction`]).
    pub slack_threshold: f64,
    /// Blacklist a node once its propensity score reaches this threshold,
    /// replacing the fixed `blacklist_after` crash count
    /// (`--adaptive-blacklist`). `None` keeps the fixed policy.
    pub adaptive_blacklist: Option<f64>,
}

impl Default for PredictionConfig {
    fn default() -> Self {
        PredictionConfig {
            half_life: SimDuration::from_mins(4 * 60),
            crash_weight: 1.0,
            kill_weight: 0.25,
            risk_placement: false,
            risk_threshold: 1.5,
            slack_threshold: 0.35,
            adaptive_blacklist: None,
        }
    }
}

/// Serializable propensity state, checkpointed inside
/// [`crate::MasterSnapshot`] so WAL recovery replays prediction decisions
/// deterministically.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HealthRecord {
    /// Per-node score as of the matching `anchor` entry.
    pub score: Vec<f64>,
    /// Per-node time of the last score update.
    pub anchor: Vec<SimTime>,
    /// Placements declined because the picked node was risky.
    pub risk_averted: u64,
    /// Speculative duplicates launched because the original attempt was
    /// running on a risky node (rather than because it was overdue).
    pub preemptive_speculations: u64,
    /// Nodes blacklisted by the propensity-threshold policy.
    pub adaptive_blacklists: u64,
}

/// The live propensity tracker owned by the simulator.
///
/// Scores decay lazily: each node stores its score as of its last fault
/// event, and [`NodeHealth::score`] applies the exponential decay for the
/// elapsed fault-free time on read. This keeps updates O(1) per fault and
/// reads O(1) per query with no periodic decay events that could perturb
/// the event stream.
#[derive(Debug, Clone)]
pub struct NodeHealth {
    half_life_ms: f64,
    /// Score as of `anchor[i]`.
    score: Vec<f64>,
    anchor: Vec<SimTime>,
    /// Placements declined because the picked node was risky.
    pub risk_averted: u64,
    /// Duplicates launched off risky nodes before they failed.
    pub preemptive_speculations: u64,
    /// Nodes blacklisted by the propensity-threshold policy.
    pub adaptive_blacklists: u64,
}

impl NodeHealth {
    /// Creates a tracker with all scores at zero.
    pub fn new(config: &PredictionConfig, node_count: usize) -> Self {
        NodeHealth {
            half_life_ms: config.half_life.as_millis().max(1) as f64,
            score: vec![0.0; node_count],
            anchor: vec![SimTime::ZERO; node_count],
            risk_averted: 0,
            preemptive_speculations: 0,
            adaptive_blacklists: 0,
        }
    }

    /// The node's propensity score at `now`, with decay applied.
    pub fn score(&self, node: NodeId, now: SimTime) -> f64 {
        let i = node.index();
        let stored = self.score[i];
        if stored == 0.0 {
            // Fast path, and the inertness guarantee: an untouched node
            // never pays the decay computation.
            return 0.0;
        }
        let dt = now.saturating_since(self.anchor[i]).as_millis() as f64;
        stored * (-dt / self.half_life_ms).exp2()
    }

    /// Adds `weight` to the node's score at `now` (decaying the previous
    /// score first) and re-anchors it.
    pub fn bump(&mut self, node: NodeId, now: SimTime, weight: f64) {
        let decayed = self.score(node, now);
        let i = node.index();
        self.score[i] = decayed + weight;
        self.anchor[i] = now;
    }

    /// Whether the node's score at `now` is at or above `threshold`.
    pub fn risky(&self, node: NodeId, now: SimTime, threshold: f64) -> bool {
        self.score(node, now) >= threshold
    }

    /// All node scores at `now`, for the end-of-run report.
    pub fn scores_at(&self, now: SimTime) -> Vec<f64> {
        (0..self.score.len())
            .map(|i| self.score(NodeId::new(i as u32), now))
            .collect()
    }

    /// Snapshot of the full tracker state for checkpointing.
    pub fn to_record(&self) -> HealthRecord {
        HealthRecord {
            score: self.score.clone(),
            anchor: self.anchor.clone(),
            risk_averted: self.risk_averted,
            preemptive_speculations: self.preemptive_speculations,
            adaptive_blacklists: self.adaptive_blacklists,
        }
    }

    /// Restores the tracker from a checkpoint; WAL replay then re-applies
    /// the post-checkpoint fault events deterministically.
    pub fn restore(&mut self, rec: &HealthRecord) {
        self.score = rec.score.clone();
        self.anchor = rec.anchor.clone();
        self.risk_averted = rec.risk_averted;
        self.preemptive_speculations = rec.preemptive_speculations;
        self.adaptive_blacklists = rec.adaptive_blacklists;
    }
}

/// Prediction-layer section of [`crate::SimReport`], present only when
/// `--predict-failures` is on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionReport {
    /// Per-node propensity score at the end of the run.
    pub node_propensity: Vec<f64>,
    /// Plans generated with proactive failure padding applied.
    pub plans_padded: u64,
    /// Placements declined because the picked node was risky.
    pub risk_averted_placements: u64,
    /// Speculative duplicates launched off risky nodes.
    pub preemptive_speculations: u64,
    /// Nodes blacklisted by the propensity-threshold policy.
    pub adaptive_blacklists: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PredictionConfig {
        PredictionConfig {
            half_life: SimDuration::from_mins(10),
            ..PredictionConfig::default()
        }
    }

    #[test]
    fn scores_start_and_stay_zero_without_faults() {
        let h = NodeHealth::new(&cfg(), 4);
        for i in 0..4 {
            assert_eq!(h.score(NodeId::new(i), SimTime::from_mins(90)), 0.0);
        }
        assert_eq!(h.scores_at(SimTime::MAX), vec![0.0; 4]);
    }

    #[test]
    fn bump_and_half_life_decay() {
        let mut h = NodeHealth::new(&cfg(), 2);
        let t0 = SimTime::from_mins(5);
        h.bump(NodeId::new(0), t0, 1.0);
        assert_eq!(h.score(NodeId::new(0), t0), 1.0);
        // One half-life later the score has halved; untouched nodes stay 0.
        let later = t0 + SimDuration::from_mins(10);
        assert!((h.score(NodeId::new(0), later) - 0.5).abs() < 1e-12);
        assert_eq!(h.score(NodeId::new(1), later), 0.0);
        // A second bump accumulates on the decayed score.
        h.bump(NodeId::new(0), later, 1.0);
        assert!((h.score(NodeId::new(0), later) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn risky_threshold() {
        let mut h = NodeHealth::new(&cfg(), 1);
        let t = SimTime::from_secs(1);
        assert!(!h.risky(NodeId::new(0), t, 1.5));
        h.bump(NodeId::new(0), t, 1.0);
        h.bump(NodeId::new(0), t, 1.0);
        assert!(h.risky(NodeId::new(0), t, 1.5));
    }

    #[test]
    fn record_roundtrip_preserves_state() {
        let mut h = NodeHealth::new(&cfg(), 3);
        h.bump(NodeId::new(1), SimTime::from_secs(30), 2.0);
        h.risk_averted = 4;
        h.preemptive_speculations = 2;
        h.adaptive_blacklists = 1;
        let rec = h.to_record();
        let mut fresh = NodeHealth::new(&cfg(), 3);
        fresh.restore(&rec);
        let t = SimTime::from_mins(7);
        for i in 0..3 {
            assert_eq!(fresh.score(NodeId::new(i), t), h.score(NodeId::new(i), t));
        }
        assert_eq!(fresh.risk_averted, 4);
        assert_eq!(fresh.preemptive_speculations, 2);
        assert_eq!(fresh.adaptive_blacklists, 1);
    }
}
