//! Clock abstraction: one event loop for replay and live execution.
//!
//! The driver's event loop is clock-agnostic: it asks the clock whether the
//! head event is due yet ([`Clock::ready_for`]), what to do when the
//! workload source has no data *yet* ([`Clock::source_pending`]), and how
//! to stamp an arrival whose nominal submit time has already passed
//! ([`Clock::stamp`]).
//!
//! [`SimClock`] answers those three questions so that the loop is exactly
//! the pre-clock discrete-event simulation — every answer is a constant or
//! the identity, so batch and streamed replays stay byte-identical.
//! [`WallClock`] maps sim time onto real elapsed time (with an optional
//! speedup), sleeping in short poll slices so a live source can inject
//! work between events; this is what `woha serve --wall-clock` runs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use woha_model::SimTime;

/// What the event loop should do when the workload source reports
/// [`woha_trace::SourcePoll::Pending`] — data may arrive later, but there
/// is nothing to pull right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceWait {
    /// Poll the source again immediately (the clock has already waited).
    Retry,
    /// Stop polling for now and process the next due event; the source
    /// will be polled again afterwards.
    EventDue,
    /// Treat the source as ended: drain remaining events and finish.
    Ended,
}

/// The driver's notion of time. See the [module docs](self) for the
/// contract each method participates in.
pub trait Clock {
    /// Whether the event at sim time `t` may be processed now.
    ///
    /// Returning `false` means "not yet" — the loop re-polls the source
    /// (live arrivals may sort before `t`) and asks again. Implementations
    /// that return `false` must make progress toward eventually returning
    /// `true` (e.g. by sleeping a poll slice).
    fn ready_for(&mut self, t: SimTime) -> bool {
        let _ = t;
        true
    }

    /// Policy for a source with no data available right now.
    ///
    /// `next_event` is the sim time of the earliest queued event, if any.
    fn source_pending(&mut self, next_event: Option<SimTime>) -> SourceWait;

    /// The effective submit time for an arrival nominally due at `at` when
    /// the loop's current sim time is already `now`.
    ///
    /// Replay clocks return `at` unchanged (the event heap's arrival lane
    /// guarantees `at >= now` for finite sources). A live clock clamps to
    /// `now`: a workflow submitted while the master was busy arrives when
    /// the master reads it, never in the past.
    fn stamp(&self, at: SimTime, now: SimTime) -> SimTime {
        let _ = now;
        at
    }
}

/// Discrete-event simulation clock: never waits, never re-stamps.
///
/// All three hooks are identities, so a driver run with `SimClock` is
/// byte-identical to the pre-clock driver — pinned by the E2E identity
/// tests across batch, streamed, and clocked entry points.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimClock;

impl Clock for SimClock {
    fn source_pending(&mut self, _next_event: Option<SimTime>) -> SourceWait {
        // A finite source never reports Pending, so this answer only
        // matters for a live source driven without a wall clock: treat
        // "no data yet" as end-of-stream and finish deterministically.
        SourceWait::Ended
    }
}

/// Wall-clock execution: sim time `t` maps to real instant
/// `origin + t / speedup`, and the loop sleeps (in poll slices) until
/// events are due or the source produces work.
///
/// The poll slice bounds two latencies: how quickly a newly appended
/// arrival is noticed while idle, and how quickly a shutdown request
/// interrupts a sleep. After [`stop`](WallClock::stop_flag) is raised the
/// clock stops pacing entirely so draining the remaining events is
/// instantaneous.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
    speedup: f64,
    poll: Duration,
    stop: Arc<AtomicBool>,
}

impl WallClock {
    /// A wall clock starting "now", running sim time at real time.
    pub fn new() -> Self {
        WallClock::with_speedup(1.0)
    }

    /// A wall clock running sim time `speedup` times faster than real
    /// time (values below 1 slow the simulation down). Useful for smoke
    /// tests and benches that exercise the live path without waiting out
    /// real heartbeat intervals.
    pub fn with_speedup(speedup: f64) -> Self {
        WallClock {
            origin: Instant::now(),
            speedup: if speedup > 0.0 { speedup } else { 1.0 },
            poll: Duration::from_millis(20),
            stop: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Sets the poll slice (clamped to at least 1ms).
    pub fn with_poll_interval(mut self, poll: Duration) -> Self {
        self.poll = poll.max(Duration::from_millis(1));
        self
    }

    /// The shared stop flag: raising it makes the clock stop pacing (so
    /// the drain runs at full speed) and tells [`source_pending`] callers
    /// the stream is over.
    ///
    /// [`source_pending`]: Clock::source_pending
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Real duration until sim time `t` is due, if it is in the future.
    fn until(&self, t: SimTime) -> Option<Duration> {
        let due = Duration::from_millis(t.as_millis()).div_f64(self.speedup);
        due.checked_sub(self.origin.elapsed())
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn ready_for(&mut self, t: SimTime) -> bool {
        if self.stopped() {
            return true;
        }
        match self.until(t) {
            None => true,
            Some(remaining) => {
                // Sleep one slice, then report "not yet": the loop re-polls
                // the source so fresher arrivals can beat the queued event.
                std::thread::sleep(remaining.min(self.poll));
                self.until(t).is_none()
            }
        }
    }

    fn source_pending(&mut self, next_event: Option<SimTime>) -> SourceWait {
        if self.stopped() {
            return SourceWait::Ended;
        }
        if next_event.is_some() {
            // Let the loop pace toward the due event; it re-polls the
            // source on every not-ready slice.
            return SourceWait::EventDue;
        }
        // Fully idle: nothing queued, nothing arriving. Sleep a slice and
        // re-poll.
        std::thread::sleep(self.poll);
        SourceWait::Retry
    }

    fn stamp(&self, at: SimTime, now: SimTime) -> SimTime {
        at.max(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_is_the_identity() {
        let mut c = SimClock;
        assert!(c.ready_for(SimTime::from_secs(99)));
        assert_eq!(
            c.stamp(SimTime::from_secs(1), SimTime::from_secs(5)),
            SimTime::from_secs(1)
        );
        assert_eq!(c.source_pending(None), SourceWait::Ended);
        assert_eq!(c.source_pending(Some(SimTime::ZERO)), SourceWait::Ended);
    }

    #[test]
    fn wall_clock_stamps_late_arrivals_to_now() {
        let c = WallClock::with_speedup(1000.0);
        assert_eq!(
            c.stamp(SimTime::from_secs(1), SimTime::from_secs(5)),
            SimTime::from_secs(5)
        );
        assert_eq!(
            c.stamp(SimTime::from_secs(9), SimTime::from_secs(5)),
            SimTime::from_secs(9)
        );
    }

    #[test]
    fn wall_clock_paces_until_due_and_drains_after_stop() {
        let mut c = WallClock::with_speedup(100.0).with_poll_interval(Duration::from_millis(2));
        // 200ms of sim time = 2ms real at 100x: not ready instantly, ready
        // after a few slices.
        let t = SimTime::from_millis(200);
        let mut spins = 0;
        while !c.ready_for(t) {
            spins += 1;
            assert!(spins < 100, "clock never became ready");
        }
        // A far-future event becomes ready immediately once stopped.
        let far = SimTime::from_secs(3600);
        c.stop_flag().store(true, Ordering::SeqCst);
        assert!(c.ready_for(far));
        assert_eq!(c.source_pending(None), SourceWait::Ended);
    }

    #[test]
    fn wall_clock_prefers_due_events_while_source_is_quiet() {
        let mut c = WallClock::with_speedup(1000.0);
        assert_eq!(
            c.source_pending(Some(SimTime::from_secs(1))),
            SourceWait::EventDue
        );
        let mut idle = WallClock::with_speedup(1000.0).with_poll_interval(Duration::from_millis(1));
        assert_eq!(idle.source_pending(None), SourceWait::Retry);
    }
}
