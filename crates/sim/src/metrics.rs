//! Simulation outputs: per-workflow outcomes, cluster utilization, and
//! per-workflow slot-allocation timelines (the raw material of Figs 8–19).

use crate::health::PredictionReport;
use serde::{Deserialize, Serialize, Value};
use woha_model::{SimDuration, SimTime, SlotKind, WorkflowId};

/// What happened to one workflow.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkflowOutcome {
    /// The workflow's id.
    pub id: WorkflowId,
    /// The workflow's name.
    pub name: String,
    /// Submission time `S_i`.
    pub submitted: SimTime,
    /// Absolute deadline `D_i`.
    pub deadline: SimTime,
    /// Completion time, or `None` if the simulation was cut off first.
    pub finished: Option<SimTime>,
}

impl WorkflowOutcome {
    /// The workspan `finish - submit` (the paper's Fig 11 metric), using
    /// `censor` as the finish time for unfinished workflows.
    pub fn workspan(&self, censor: SimTime) -> SimDuration {
        self.finished
            .unwrap_or(censor)
            .saturating_since(self.submitted)
    }

    /// Tardiness `max(0, finish - deadline)`, censored like
    /// [`workspan`](Self::workspan). Zero when the deadline was met.
    pub fn tardiness(&self, censor: SimTime) -> SimDuration {
        self.finished
            .unwrap_or(censor)
            .saturating_since(self.deadline)
    }

    /// Whether the workflow finished by its deadline. An unfinished
    /// workflow never meets its deadline.
    pub fn met_deadline(&self) -> bool {
        matches!(self.finished, Some(f) if f <= self.deadline)
    }
}

/// Per-workflow slot-occupancy time series, sampled on a fixed grid —
/// exactly the data plotted in the paper's Figs 14–19.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timelines {
    interval: SimDuration,
    /// `series[wf][kind][sample]` = slots of `kind` occupied by workflow
    /// `wf` at sample instant.
    series: Vec<[Vec<u32>; 2]>,
    /// Cluster slots (both kinds) offline at each sample instant because
    /// their node was down — all zeros when fault injection is disabled.
    down_slots: Vec<u32>,
}

impl Timelines {
    /// Sampling interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Number of samples per series.
    pub fn sample_count(&self) -> usize {
        self.series.first().map_or(0, |s| s[0].len())
    }

    /// Occupied slots of `kind` for workflow `wf` at each sample instant
    /// (`t = i * interval`).
    ///
    /// # Panics
    ///
    /// Panics if `wf` is out of range.
    pub fn series(&self, wf: WorkflowId, kind: SlotKind) -> &[u32] {
        let k = match kind {
            SlotKind::Map => 0,
            SlotKind::Reduce => 1,
        };
        &self.series[wf.as_u64() as usize][k]
    }

    /// Number of workflows tracked.
    pub fn workflow_count(&self) -> usize {
        self.series.len()
    }

    /// Cluster slots offline (node down) at each sample instant.
    pub fn down_slots(&self) -> &[u32] {
        &self.down_slots
    }
}

/// Records slot-occupancy step changes during a run and resolves them into
/// [`Timelines`] afterwards.
#[derive(Debug, Default)]
pub(crate) struct TimelineRecorder {
    /// (time, workflow index, kind index, +1/-1)
    deltas: Vec<(SimTime, u32, u8, i8)>,
    /// (time, signed change in offline slot count)
    down_deltas: Vec<(SimTime, i32)>,
}

impl TimelineRecorder {
    pub(crate) fn record(&mut self, time: SimTime, wf: WorkflowId, kind: SlotKind, delta: i8) {
        let k = match kind {
            SlotKind::Map => 0,
            SlotKind::Reduce => 1,
        };
        self.deltas.push((time, wf.as_u64() as u32, k, delta));
    }

    /// Records `delta` slots going offline (positive, node crash) or coming
    /// back (negative, node repair) at `time`.
    pub(crate) fn record_down(&mut self, time: SimTime, delta: i32) {
        self.down_deltas.push((time, delta));
    }

    pub(crate) fn finish(
        mut self,
        workflow_count: usize,
        horizon: SimTime,
        interval: SimDuration,
    ) -> Timelines {
        assert!(!interval.is_zero(), "sampling interval must be positive");
        self.deltas.sort_by_key(|&(t, ..)| t);
        self.down_deltas.sort_by_key(|&(t, _)| t);
        let samples = (horizon.as_millis() / interval.as_millis()) as usize + 1;
        let mut series = vec![[vec![0u32; samples], vec![0u32; samples]]; workflow_count];
        let mut down_slots = vec![0u32; samples];
        let mut current = vec![[0i32; 2]; workflow_count];
        let mut down_now = 0i32;
        let mut next_delta = 0usize;
        let mut next_down = 0usize;
        for s in 0..samples {
            let t = SimTime::from_millis(s as u64 * interval.as_millis());
            while next_delta < self.deltas.len() && self.deltas[next_delta].0 <= t {
                let (_, wf, k, d) = self.deltas[next_delta];
                current[wf as usize][k as usize] += i32::from(d);
                next_delta += 1;
            }
            while next_down < self.down_deltas.len() && self.down_deltas[next_down].0 <= t {
                down_now += self.down_deltas[next_down].1;
                next_down += 1;
            }
            for (wf, counts) in current.iter().enumerate() {
                for k in 0..2 {
                    debug_assert!(counts[k] >= 0, "negative occupancy");
                    series[wf][k][s] = counts[k].max(0) as u32;
                }
            }
            debug_assert!(down_now >= 0, "negative offline slot count");
            down_slots[s] = down_now.max(0) as u32;
        }
        Timelines {
            interval,
            series,
            down_slots,
        }
    }
}

/// What master failover cost a run: outage counts, recovery work, and the
/// fate of every task attempt that was in flight when the master died.
/// Attached to [`SimReport::recovery`] only when master faults are
/// enabled, so fault-free reports stay byte-identical.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Master (JobTracker) crashes injected.
    pub master_crashes: u64,
    /// Total simulated milliseconds the master was down (recovery
    /// wall-time summed over outages).
    pub master_downtime_ms: u64,
    /// Full state checkpoints taken (periodic + post-recovery).
    pub checkpoints_taken: u64,
    /// Write-ahead-log records replayed across all recoveries.
    pub wal_records_replayed: u64,
    /// Running attempts on live nodes that the recovered master re-adopted
    /// at TaskTracker re-registration.
    pub attempts_readopted: u64,
    /// Attempts the recovered master knew of but whose completion fell in
    /// the lost WAL suffix (or whose node died meanwhile): killed and
    /// requeued, Hadoop-1 style.
    pub attempts_requeued: u64,
    /// Attempts launched after the last durable record — invisible to the
    /// recovered master and orphaned (their slots are reclaimed and the
    /// tasks rerun from the pending queue).
    pub attempts_orphaned: u64,
    /// Workflow submissions lost with the master's volatile state and
    /// re-submitted by their clients at recovery.
    pub workflows_resubmitted: u64,
    /// Job activations re-issued at recovery for jobs the restored state
    /// shows mid-submission with no surviving activation event.
    pub jobs_resubmitted: u64,
}

/// Rejections attributed to one stable admission-gate reason label.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RejectCount {
    /// Stable, snake_case reason label produced by the gate (e.g.
    /// `"critical_path_exceeds_deadline"`).
    pub reason: String,
    /// Workflows rejected for this reason.
    pub count: u64,
}

/// What the admission gate at the driver's front door did over a run.
/// Attached to [`SimReport::admission`] only when a gate was supplied, so
/// ungated reports stay byte-identical.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionReport {
    /// Workflows turned away at submission. Rejected workflows never enter
    /// the cluster and produce no [`WorkflowOutcome`].
    pub workflows_rejected: u64,
    /// Per-reason rejection counts, sorted by reason label.
    pub rejections: Vec<RejectCount>,
}

/// The full result of one simulation run.
///
/// Equality compares the *simulation outcome* (everything except
/// [`scheduler_nanos`](Self::scheduler_nanos), which is wall-clock
/// measurement noise): two runs of the same scenario are `==` even if the
/// host was faster the second time.
#[derive(Debug, Clone, Deserialize)]
pub struct SimReport {
    /// Name of the scheduler that produced the run.
    pub scheduler: String,
    /// Per-workflow outcomes, in submission (id) order.
    pub outcomes: Vec<WorkflowOutcome>,
    /// Time of the last processed event (the censoring instant for
    /// unfinished workflows).
    pub end_time: SimTime,
    /// Whether every workflow completed before the cutoff.
    pub completed: bool,
    /// Total busy slot-milliseconds by kind `[map, reduce]`.
    pub busy_slot_ms: [u128; 2],
    /// Total slots by kind `[map, reduce]`.
    pub total_slots: [u32; 2],
    /// Total tasks executed (including re-executions after failures).
    pub tasks_executed: u64,
    /// Failed task attempts that were re-executed (failure injection).
    pub task_failures: u64,
    /// Map tasks that ran on one of their preferred nodes (locality mode).
    pub local_map_tasks: u64,
    /// Map tasks that ran remotely, paying the locality penalty.
    pub remote_map_tasks: u64,
    /// Slot offers declined while waiting for a local slot (delay
    /// scheduling).
    pub delay_skips: u64,
    /// Wall-clock nanoseconds the master spent inside the scheduler's
    /// `assign_task` across the whole run — the paper's "overhead on the
    /// master node".
    pub scheduler_nanos: u64,
    /// Attempts that were injected as stragglers (speculation mode).
    pub stragglers: u64,
    /// Speculative duplicate attempts launched.
    pub speculative_launched: u64,
    /// Races won by the speculative duplicate.
    pub speculative_wins: u64,
    /// Number of `assign_task` consultations.
    pub assign_calls: u64,
    /// Slot offers forfeited because the scheduler returned an ineligible
    /// job (should be zero for a correct scheduler).
    pub invalid_assignments: u64,
    /// Events processed.
    pub events_processed: u64,
    /// Node crashes injected (fault mode).
    pub node_failures: u64,
    /// Node repairs that re-registered slots with the JobTracker.
    pub node_recoveries: u64,
    /// Nodes blacklisted after repeated crashes; they never rejoined.
    pub nodes_blacklisted: u64,
    /// Running attempts killed by a node loss and re-queued as pending.
    pub tasks_requeued: u64,
    /// Completed map outputs invalidated by a node loss and re-executed
    /// because reducers still needed them.
    pub map_outputs_lost: u64,
    /// Slot-milliseconds of work in progress that node crashes destroyed
    /// (time each killed attempt had already run).
    pub work_lost_slot_ms: u128,
    /// Per-workflow slot timelines, when tracking was enabled.
    pub timelines: Option<Timelines>,
    /// Master failover accounting; `None` (and omitted from serialized
    /// output) unless master faults were enabled.
    pub recovery: Option<RecoveryReport>,
    /// Admission-gate accounting; `None` (and omitted from serialized
    /// output) unless an admission gate was supplied.
    pub admission: Option<AdmissionReport>,
    /// Failure-prediction accounting (propensity table, padding and
    /// risk-placement counters); `None` (and omitted from serialized
    /// output) unless failure prediction was enabled.
    pub prediction: Option<PredictionReport>,
}

// Hand-written so that `recovery: None` / `admission: None` produce output
// byte-identical to reports from before those subsystems existed: the keys
// are omitted rather than serialized as `null`. Field order must match the
// declaration order above (the derive's behaviour for every other field).
impl Serialize for SimReport {
    fn to_value(&self) -> Value {
        let mut obj = vec![
            ("scheduler".to_string(), self.scheduler.to_value()),
            ("outcomes".to_string(), self.outcomes.to_value()),
            ("end_time".to_string(), self.end_time.to_value()),
            ("completed".to_string(), self.completed.to_value()),
            ("busy_slot_ms".to_string(), self.busy_slot_ms.to_value()),
            ("total_slots".to_string(), self.total_slots.to_value()),
            ("tasks_executed".to_string(), self.tasks_executed.to_value()),
            ("task_failures".to_string(), self.task_failures.to_value()),
            (
                "local_map_tasks".to_string(),
                self.local_map_tasks.to_value(),
            ),
            (
                "remote_map_tasks".to_string(),
                self.remote_map_tasks.to_value(),
            ),
            ("delay_skips".to_string(), self.delay_skips.to_value()),
            (
                "scheduler_nanos".to_string(),
                self.scheduler_nanos.to_value(),
            ),
            ("stragglers".to_string(), self.stragglers.to_value()),
            (
                "speculative_launched".to_string(),
                self.speculative_launched.to_value(),
            ),
            (
                "speculative_wins".to_string(),
                self.speculative_wins.to_value(),
            ),
            ("assign_calls".to_string(), self.assign_calls.to_value()),
            (
                "invalid_assignments".to_string(),
                self.invalid_assignments.to_value(),
            ),
            (
                "events_processed".to_string(),
                self.events_processed.to_value(),
            ),
            ("node_failures".to_string(), self.node_failures.to_value()),
            (
                "node_recoveries".to_string(),
                self.node_recoveries.to_value(),
            ),
            (
                "nodes_blacklisted".to_string(),
                self.nodes_blacklisted.to_value(),
            ),
            ("tasks_requeued".to_string(), self.tasks_requeued.to_value()),
            (
                "map_outputs_lost".to_string(),
                self.map_outputs_lost.to_value(),
            ),
            (
                "work_lost_slot_ms".to_string(),
                self.work_lost_slot_ms.to_value(),
            ),
            ("timelines".to_string(), self.timelines.to_value()),
        ];
        if let Some(recovery) = &self.recovery {
            obj.push(("recovery".to_string(), recovery.to_value()));
        }
        if let Some(admission) = &self.admission {
            obj.push(("admission".to_string(), admission.to_value()));
        }
        if let Some(prediction) = &self.prediction {
            obj.push(("prediction".to_string(), prediction.to_value()));
        }
        Value::Object(obj)
    }
}

impl PartialEq for SimReport {
    fn eq(&self, other: &Self) -> bool {
        self.scheduler == other.scheduler
            && self.outcomes == other.outcomes
            && self.end_time == other.end_time
            && self.completed == other.completed
            && self.busy_slot_ms == other.busy_slot_ms
            && self.total_slots == other.total_slots
            && self.tasks_executed == other.tasks_executed
            && self.task_failures == other.task_failures
            && self.local_map_tasks == other.local_map_tasks
            && self.remote_map_tasks == other.remote_map_tasks
            && self.delay_skips == other.delay_skips
            && self.stragglers == other.stragglers
            && self.speculative_launched == other.speculative_launched
            && self.speculative_wins == other.speculative_wins
            && self.assign_calls == other.assign_calls
            && self.invalid_assignments == other.invalid_assignments
            && self.events_processed == other.events_processed
            && self.node_failures == other.node_failures
            && self.node_recoveries == other.node_recoveries
            && self.nodes_blacklisted == other.nodes_blacklisted
            && self.tasks_requeued == other.tasks_requeued
            && self.map_outputs_lost == other.map_outputs_lost
            && self.work_lost_slot_ms == other.work_lost_slot_ms
            && self.timelines == other.timelines
            && self.recovery == other.recovery
            && self.admission == other.admission
            && self.prediction == other.prediction
    }
}

impl SimReport {
    /// Mean wall-clock nanoseconds per `assign_task` consultation — the
    /// master-side scheduling overhead.
    pub fn mean_assign_nanos(&self) -> f64 {
        if self.assign_calls == 0 {
            return 0.0;
        }
        self.scheduler_nanos as f64 / self.assign_calls as f64
    }

    /// Fraction of executed map tasks that ran node-local (locality mode;
    /// 0 when locality modelling is off).
    pub fn map_locality_ratio(&self) -> f64 {
        let total = self.local_map_tasks + self.remote_map_tasks;
        if total == 0 {
            return 0.0;
        }
        self.local_map_tasks as f64 / total as f64
    }

    /// Number of workflows that missed their deadline (unfinished counts
    /// as missed).
    pub fn deadline_misses(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.met_deadline()).count()
    }

    /// Fraction of workflows that missed their deadline (Fig 8's metric).
    pub fn miss_ratio(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.deadline_misses() as f64 / self.outcomes.len() as f64
    }

    /// The largest tardiness across workflows (Fig 9's metric).
    pub fn max_tardiness(&self) -> SimDuration {
        self.outcomes
            .iter()
            .map(|o| o.tardiness(self.end_time))
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// The sum of tardiness across workflows (Fig 10's metric).
    pub fn total_tardiness(&self) -> SimDuration {
        self.outcomes
            .iter()
            .map(|o| o.tardiness(self.end_time))
            .sum()
    }

    /// Workspans in submission order (Fig 11's metric).
    pub fn workspans(&self) -> Vec<SimDuration> {
        self.outcomes
            .iter()
            .map(|o| o.workspan(self.end_time))
            .collect()
    }

    /// Busy fraction of slots of `kind` over the interval from the first
    /// submission to the end of the run.
    pub fn utilization(&self, kind: SlotKind) -> f64 {
        let k = match kind {
            SlotKind::Map => 0,
            SlotKind::Reduce => 1,
        };
        let start = self
            .outcomes
            .iter()
            .map(|o| o.submitted)
            .min()
            .unwrap_or(SimTime::ZERO);
        let horizon_ms = self.end_time.saturating_since(start).as_millis();
        let capacity = u128::from(self.total_slots[k]) * u128::from(horizon_ms);
        if capacity == 0 {
            return 0.0;
        }
        self.busy_slot_ms[k] as f64 / capacity as f64
    }

    /// Busy fraction across both slot kinds (Fig 12's metric).
    pub fn overall_utilization(&self) -> f64 {
        let start = self
            .outcomes
            .iter()
            .map(|o| o.submitted)
            .min()
            .unwrap_or(SimTime::ZERO);
        let horizon_ms = u128::from(self.end_time.saturating_since(start).as_millis());
        let capacity = u128::from(self.total_slots[0] + self.total_slots[1]) * horizon_ms;
        if capacity == 0 {
            return 0.0;
        }
        (self.busy_slot_ms[0] + self.busy_slot_ms[1]) as f64 / capacity as f64
    }

    /// The outcome of the workflow with the given name.
    pub fn outcome_by_name(&self, name: &str) -> Option<&WorkflowOutcome> {
        self.outcomes.iter().find(|o| o.name == name)
    }
}

/// A monotonically increasing counter, exported in Prometheus text format.
#[derive(Debug, Clone)]
pub struct Counter {
    name: &'static str,
    help: &'static str,
    value: u64,
}

impl Counter {
    fn new(name: &'static str, help: &'static str) -> Self {
        Self {
            name,
            help,
            value: 0,
        }
    }

    /// Increments the counter by one.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Increments the counter by `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Metric name (including the `woha_` prefix and `_total` suffix).
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// An instantaneous value sampled over simulated time. The final value is
/// exported to Prometheus; the sampled series feeds the Chrome trace's
/// counter tracks.
#[derive(Debug, Clone)]
pub struct Gauge {
    name: &'static str,
    help: &'static str,
    current: f64,
    samples: Vec<(SimTime, f64)>,
}

impl Gauge {
    fn new(name: &'static str, help: &'static str) -> Self {
        Self {
            name,
            help,
            current: 0.0,
            samples: Vec::new(),
        }
    }

    /// Sets the current value.
    pub fn set(&mut self, value: f64) {
        self.current = value;
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        self.current
    }

    /// Records the current value as a sample at sim instant `at`. The
    /// driver calls this on a fixed sim-time grid.
    pub fn sample(&mut self, at: SimTime) {
        self.samples.push((at, self.current));
    }

    /// The sampled `(instant, value)` series, in sampling order.
    pub fn series(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// Metric name (including the `woha_` prefix).
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// A fixed-bucket histogram in the Prometheus style: per-bucket counts, a
/// running sum, and a total count. `bounds` are inclusive upper bounds in
/// ascending order; an implicit `+Inf` bucket catches everything above the
/// last bound. Zero-duration (and even negative) observations are valid and
/// land in the first bucket whose bound contains them.
#[derive(Debug, Clone)]
pub struct Histogram {
    name: &'static str,
    help: &'static str,
    label: Option<(&'static str, String)>,
    bounds: &'static [f64],
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    fn new(
        name: &'static str,
        help: &'static str,
        label: Option<(&'static str, String)>,
        bounds: &'static [f64],
    ) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascending");
        Self {
            name,
            help,
            label,
            bounds,
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Per-bucket (non-cumulative) counts; the last entry is the `+Inf`
    /// overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// The bucket upper bounds (without the implicit `+Inf`).
    pub fn bounds(&self) -> &'static [f64] {
        self.bounds
    }

    /// Metric name (including the `woha_` prefix).
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn label_prefix(&self) -> String {
        match &self.label {
            Some((k, v)) => format!("{k}=\"{v}\","),
            None => String::new(),
        }
    }

    fn label_only(&self) -> String {
        match &self.label {
            Some((k, v)) => format!("{{{k}=\"{v}\"}}"),
            None => String::new(),
        }
    }
}

/// Upper bounds (seconds) for the scheduler decision wall-time histogram:
/// 100 ns up to 10 ms, roughly logarithmic.
const DECISION_BOUNDS: &[f64] = &[
    1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 1e-3, 1e-2,
];

/// Upper bounds for the heartbeat batch-size histogram.
const BATCH_BOUNDS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];

/// Upper bounds (seconds) for deadline-margin samples. Negative bounds
/// capture workflows already past their deadline.
const MARGIN_BOUNDS: &[f64] = &[
    -3600.0, -600.0, -300.0, -120.0, -60.0, -30.0, -10.0, 0.0, 10.0, 30.0, 60.0, 120.0, 300.0,
    600.0, 1800.0, 3600.0,
];

/// The simulator's metric registry: well-known counters, gauges, and
/// histograms covering the full scheduling decision loop. Created by the
/// driver when [`ObservabilityConfig::metrics`](crate::ObservabilityConfig)
/// is on; gauges are sampled on the observability grid so their series line
/// up with the Chrome trace's counter tracks.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    /// Heartbeats processed by the JobTracker.
    pub heartbeats: Counter,
    /// Coalesced same-tick heartbeat batches dispatched.
    pub heartbeat_batches: Counter,
    /// Task attempts started (including speculative duplicates).
    pub tasks_started: Counter,
    /// Task attempts that ran to completion.
    pub tasks_completed: Counter,
    /// Workflow plans generated (Algorithm 1 runs, including replans).
    pub plans_generated: Counter,
    /// Mid-flight replans triggered by lag.
    pub replans: Counter,
    /// ρ-rollbacks applied after task failures.
    pub rho_rollbacks: Counter,
    /// Master state checkpoints written.
    pub checkpoints: Counter,
    /// Write-ahead-log records replayed during master recovery.
    pub wal_replayed: Counter,
    /// Node crashes observed.
    pub node_failures: Counter,
    /// Workflow arrivals accepted into the service's arrival buffer.
    pub arrivals: Counter,
    /// Workflow arrivals shed by backpressure before reaching admission.
    pub arrivals_shed: Counter,
    /// Slot offers declined by risk-aware placement (deadline-critical
    /// attempt steered away from a failure-prone node).
    pub risk_averted: Counter,
    /// Preemptive speculative duplicates launched off failure-prone nodes.
    pub preemptive_speculations: Counter,
    /// Incomplete workflows, sampled over sim time.
    pub pending_workflows: Gauge,
    /// Eligible-but-unassigned tasks across incomplete workflows
    /// (the pending-queue depth), sampled over sim time.
    pub pending_tasks: Gauge,
    /// Tightest deadline margin (seconds) across incomplete workflows,
    /// sampled over sim time; 0 when no workflow is pending.
    pub min_deadline_margin_seconds: Gauge,
    /// Depth of the service's bounded arrival buffer.
    pub arrival_queue_depth: Gauge,
    /// Ingest lag (seconds): newest buffered submit time minus the oldest
    /// still-buffered submit time — how far the master trails the stream.
    pub arrival_lag_seconds: Gauge,
    /// Wall-clock seconds per scheduler consultation, labelled with the
    /// priority-index backend. Wall-clock: nondeterministic across runs.
    pub decision_seconds: Histogram,
    /// Heartbeats coalesced into each dispatched batch.
    pub heartbeat_batch_size: Histogram,
    /// Deadline margin (deadline − now, seconds) of every incomplete
    /// workflow, observed at each sample instant.
    pub deadline_margin_seconds: Histogram,
}

impl MetricsRegistry {
    /// Creates an empty registry; `backend` labels the decision-time
    /// histogram (e.g. `"dsl"`, `"btree"`, `"pheap"`, or `"none"` for
    /// schedulers without a priority index).
    pub fn new(backend: &str) -> Self {
        Self {
            heartbeats: Counter::new("woha_heartbeats_total", "Heartbeats processed."),
            heartbeat_batches: Counter::new(
                "woha_heartbeat_batches_total",
                "Coalesced heartbeat batches dispatched.",
            ),
            tasks_started: Counter::new("woha_tasks_started_total", "Task attempts started."),
            tasks_completed: Counter::new("woha_tasks_completed_total", "Task attempts completed."),
            plans_generated: Counter::new(
                "woha_plans_generated_total",
                "Workflow plans generated (Algorithm 1 runs).",
            ),
            replans: Counter::new("woha_replans_total", "Mid-flight replans triggered by lag."),
            rho_rollbacks: Counter::new(
                "woha_rho_rollbacks_total",
                "Rho rollbacks applied after task failures.",
            ),
            checkpoints: Counter::new(
                "woha_checkpoints_total",
                "Master state checkpoints written.",
            ),
            wal_replayed: Counter::new(
                "woha_wal_records_replayed_total",
                "WAL records replayed during master recovery.",
            ),
            node_failures: Counter::new("woha_node_failures_total", "Node crashes observed."),
            arrivals: Counter::new(
                "woha_arrivals_total",
                "Workflow arrivals accepted into the arrival buffer.",
            ),
            arrivals_shed: Counter::new(
                "woha_arrivals_shed_total",
                "Workflow arrivals shed by backpressure.",
            ),
            risk_averted: Counter::new(
                "woha_risk_averted_total",
                "Slot offers declined by risk-aware placement.",
            ),
            preemptive_speculations: Counter::new(
                "woha_preemptive_speculations_total",
                "Preemptive speculative duplicates launched off failure-prone nodes.",
            ),
            pending_workflows: Gauge::new("woha_pending_workflows", "Incomplete workflows."),
            pending_tasks: Gauge::new(
                "woha_pending_tasks",
                "Eligible-but-unassigned tasks (pending-queue depth).",
            ),
            min_deadline_margin_seconds: Gauge::new(
                "woha_min_deadline_margin_seconds",
                "Tightest deadline margin across incomplete workflows.",
            ),
            arrival_queue_depth: Gauge::new(
                "woha_arrival_queue_depth",
                "Depth of the bounded arrival buffer.",
            ),
            arrival_lag_seconds: Gauge::new(
                "woha_arrival_lag_seconds",
                "Ingest lag between the stream head and the oldest buffered arrival.",
            ),
            decision_seconds: Histogram::new(
                "woha_decision_seconds",
                "Wall-clock seconds per scheduler consultation.",
                Some(("backend", backend.to_string())),
                DECISION_BOUNDS,
            ),
            heartbeat_batch_size: Histogram::new(
                "woha_heartbeat_batch_size",
                "Heartbeats coalesced into each dispatched batch.",
                None,
                BATCH_BOUNDS,
            ),
            deadline_margin_seconds: Histogram::new(
                "woha_deadline_margin_seconds",
                "Deadline margin of incomplete workflows at each sample instant.",
                None,
                MARGIN_BOUNDS,
            ),
        }
    }

    /// All counters, in export order.
    pub fn counters(&self) -> [&Counter; 14] {
        [
            &self.heartbeats,
            &self.heartbeat_batches,
            &self.tasks_started,
            &self.tasks_completed,
            &self.plans_generated,
            &self.replans,
            &self.rho_rollbacks,
            &self.checkpoints,
            &self.wal_replayed,
            &self.node_failures,
            &self.arrivals,
            &self.arrivals_shed,
            &self.risk_averted,
            &self.preemptive_speculations,
        ]
    }

    /// All gauges, in export order.
    pub fn gauges(&self) -> [&Gauge; 5] {
        [
            &self.pending_workflows,
            &self.pending_tasks,
            &self.min_deadline_margin_seconds,
            &self.arrival_queue_depth,
            &self.arrival_lag_seconds,
        ]
    }

    /// All histograms, in export order.
    pub fn histograms(&self) -> [&Histogram; 3] {
        [
            &self.decision_seconds,
            &self.heartbeat_batch_size,
            &self.deadline_margin_seconds,
        ]
    }

    /// Renders the registry in the Prometheus text exposition format:
    /// `# HELP` / `# TYPE` preambles, cumulative `_bucket{le=...}` lines
    /// with a `+Inf` bucket, `_sum`, and `_count`. Output order is fixed,
    /// so two identical runs render byte-identical text (up to the
    /// wall-clock `woha_decision_seconds` values).
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for c in self.counters() {
            out.push_str(&format!("# HELP {} {}\n", c.name, c.help));
            out.push_str(&format!("# TYPE {} counter\n", c.name));
            out.push_str(&format!("{} {}\n", c.name, c.value));
        }
        for g in self.gauges() {
            out.push_str(&format!("# HELP {} {}\n", g.name, g.help));
            out.push_str(&format!("# TYPE {} gauge\n", g.name));
            out.push_str(&format!("{} {}\n", g.name, fmt_f64(g.current)));
        }
        for h in self.histograms() {
            out.push_str(&format!("# HELP {} {}\n", h.name, h.help));
            out.push_str(&format!("# TYPE {} histogram\n", h.name));
            let mut cumulative = 0u64;
            for (i, &bound) in h.bounds.iter().enumerate() {
                cumulative += h.counts[i];
                out.push_str(&format!(
                    "{}_bucket{{{}le=\"{}\"}} {}\n",
                    h.name,
                    h.label_prefix(),
                    fmt_f64(bound),
                    cumulative
                ));
            }
            out.push_str(&format!(
                "{}_bucket{{{}le=\"+Inf\"}} {}\n",
                h.name,
                h.label_prefix(),
                h.count
            ));
            out.push_str(&format!(
                "{}_sum{} {}\n",
                h.name,
                h.label_only(),
                fmt_f64(h.sum)
            ));
            out.push_str(&format!("{}_count{} {}\n", h.name, h.label_only(), h.count));
        }
        out
    }
}

/// Deterministic float rendering for the exporters (Rust's shortest
/// round-trip formatting; no locale or precision surprises).
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(
        name: &str,
        submit_s: u64,
        deadline_s: u64,
        finish_s: Option<u64>,
    ) -> WorkflowOutcome {
        WorkflowOutcome {
            id: WorkflowId::new(0),
            name: name.to_string(),
            submitted: SimTime::from_secs(submit_s),
            deadline: SimTime::from_secs(deadline_s),
            finished: finish_s.map(SimTime::from_secs),
        }
    }

    fn report(outcomes: Vec<WorkflowOutcome>) -> SimReport {
        SimReport {
            scheduler: "test".into(),
            outcomes,
            end_time: SimTime::from_secs(1_000),
            completed: true,
            busy_slot_ms: [500_000, 250_000],
            total_slots: [2, 1],
            tasks_executed: 0,
            task_failures: 0,
            local_map_tasks: 0,
            remote_map_tasks: 0,
            delay_skips: 0,
            scheduler_nanos: 0,
            stragglers: 0,
            speculative_launched: 0,
            speculative_wins: 0,
            assign_calls: 0,
            invalid_assignments: 0,
            events_processed: 0,
            node_failures: 0,
            node_recoveries: 0,
            nodes_blacklisted: 0,
            tasks_requeued: 0,
            map_outputs_lost: 0,
            work_lost_slot_ms: 0,
            timelines: None,
            recovery: None,
            admission: None,
            prediction: None,
        }
    }

    #[test]
    fn outcome_metrics() {
        let met = outcome("a", 0, 100, Some(90));
        assert!(met.met_deadline());
        assert_eq!(met.workspan(SimTime::MAX), SimDuration::from_secs(90));
        assert_eq!(met.tardiness(SimTime::MAX), SimDuration::ZERO);

        let missed = outcome("b", 10, 100, Some(150));
        assert!(!missed.met_deadline());
        assert_eq!(missed.workspan(SimTime::MAX), SimDuration::from_secs(140));
        assert_eq!(missed.tardiness(SimTime::MAX), SimDuration::from_secs(50));

        let unfinished = outcome("c", 0, 100, None);
        assert!(!unfinished.met_deadline());
        let censor = SimTime::from_secs(500);
        assert_eq!(unfinished.workspan(censor), SimDuration::from_secs(500));
        assert_eq!(unfinished.tardiness(censor), SimDuration::from_secs(400));
    }

    #[test]
    fn report_aggregates() {
        let r = report(vec![
            outcome("a", 0, 100, Some(90)),
            outcome("b", 0, 100, Some(160)),
            outcome("c", 0, 100, None),
        ]);
        assert_eq!(r.deadline_misses(), 2);
        assert!((r.miss_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.max_tardiness(), SimDuration::from_secs(900));
        assert_eq!(r.total_tardiness(), SimDuration::from_secs(60 + 900));
        assert_eq!(r.workspans()[0], SimDuration::from_secs(90));
        assert!(r.outcome_by_name("b").is_some());
        assert!(r.outcome_by_name("zz").is_none());
    }

    #[test]
    fn utilization_math() {
        let r = report(vec![outcome("a", 0, 100, Some(90))]);
        // 2 map slots over 1000s = 2,000,000 slot-ms capacity; 500,000 busy.
        assert!((r.utilization(SlotKind::Map) - 0.25).abs() < 1e-12);
        assert!((r.utilization(SlotKind::Reduce) - 0.25).abs() < 1e-12);
        assert!((r.overall_utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_sane() {
        let r = report(vec![]);
        assert_eq!(r.miss_ratio(), 0.0);
        assert_eq!(r.max_tardiness(), SimDuration::ZERO);
        assert_eq!(r.total_tardiness(), SimDuration::ZERO);
    }

    #[test]
    fn recovery_key_is_omitted_when_disabled() {
        let r = report(vec![outcome("a", 0, 100, Some(90))]);
        let v = r.to_value();
        let obj = v.as_object().unwrap();
        assert!(obj.iter().all(|(k, _)| k != "recovery"));
        // The last key stays `timelines`, as before master failover.
        assert_eq!(obj.last().unwrap().0, "timelines");
        let back = SimReport::from_value(&v).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.recovery, None);
    }

    #[test]
    fn recovery_report_roundtrips() {
        let mut r = report(vec![]);
        r.recovery = Some(RecoveryReport {
            master_crashes: 2,
            master_downtime_ms: 120_000,
            checkpoints_taken: 9,
            wal_records_replayed: 314,
            attempts_readopted: 40,
            attempts_requeued: 3,
            attempts_orphaned: 1,
            workflows_resubmitted: 1,
            jobs_resubmitted: 2,
        });
        let v = r.to_value();
        assert_eq!(v.as_object().unwrap().last().unwrap().0, "recovery");
        let back = SimReport::from_value(&v).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn admission_report_roundtrips_and_is_omitted_when_absent() {
        let mut r = report(vec![]);
        let v = r.to_value();
        assert!(v.as_object().unwrap().iter().all(|(k, _)| k != "admission"));
        r.admission = Some(AdmissionReport {
            workflows_rejected: 3,
            rejections: vec![
                RejectCount {
                    reason: "aggregate_overload".to_string(),
                    count: 2,
                },
                RejectCount {
                    reason: "critical_path_exceeds_deadline".to_string(),
                    count: 1,
                },
            ],
        });
        let v = r.to_value();
        assert_eq!(v.as_object().unwrap().last().unwrap().0, "admission");
        let back = SimReport::from_value(&v).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn prediction_report_roundtrips_and_is_omitted_when_absent() {
        let mut r = report(vec![]);
        let v = r.to_value();
        assert!(v
            .as_object()
            .unwrap()
            .iter()
            .all(|(k, _)| k != "prediction"));
        r.prediction = Some(PredictionReport {
            node_propensity: vec![0.0, 1.5, 0.25],
            plans_padded: 4,
            risk_averted_placements: 7,
            preemptive_speculations: 2,
            adaptive_blacklists: 1,
        });
        let v = r.to_value();
        assert_eq!(v.as_object().unwrap().last().unwrap().0, "prediction");
        let back = SimReport::from_value(&v).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn timeline_recorder_samples_steps() {
        let mut rec = TimelineRecorder::default();
        let wf = WorkflowId::new(0);
        // Occupy 2 map slots from t=5s to t=25s, 1 until t=35s.
        rec.record(SimTime::from_secs(5), wf, SlotKind::Map, 1);
        rec.record(SimTime::from_secs(5), wf, SlotKind::Map, 1);
        rec.record(SimTime::from_secs(25), wf, SlotKind::Map, -1);
        rec.record(SimTime::from_secs(35), wf, SlotKind::Map, -1);
        let tl = rec.finish(1, SimTime::from_secs(40), SimDuration::from_secs(10));
        assert_eq!(tl.sample_count(), 5);
        assert_eq!(tl.series(wf, SlotKind::Map), &[0, 2, 2, 1, 0]);
        assert_eq!(tl.series(wf, SlotKind::Reduce), &[0, 0, 0, 0, 0]);
        assert_eq!(tl.workflow_count(), 1);
        assert_eq!(tl.interval(), SimDuration::from_secs(10));
        assert_eq!(tl.down_slots(), &[0, 0, 0, 0, 0]);
    }

    #[test]
    fn timeline_tracks_offline_slots() {
        let mut rec = TimelineRecorder::default();
        // 3 slots offline from t=10s, back at t=30s.
        rec.record_down(SimTime::from_secs(10), 3);
        rec.record_down(SimTime::from_secs(30), -3);
        let tl = rec.finish(0, SimTime::from_secs(40), SimDuration::from_secs(10));
        assert_eq!(tl.down_slots(), &[0, 3, 3, 0, 0]);
    }

    #[test]
    fn timeline_out_of_order_deltas_are_sorted() {
        let mut rec = TimelineRecorder::default();
        let wf = WorkflowId::new(0);
        rec.record(SimTime::from_secs(20), wf, SlotKind::Reduce, -1);
        rec.record(SimTime::from_secs(10), wf, SlotKind::Reduce, 1);
        let tl = rec.finish(1, SimTime::from_secs(30), SimDuration::from_secs(10));
        assert_eq!(tl.series(wf, SlotKind::Reduce), &[0, 1, 0, 0]);
    }

    /// A delta landing exactly on the cutoff instant (the final sample,
    /// `horizon` itself when it is a grid multiple) is included in that
    /// sample — the grid applies deltas with `time <= sample instant`.
    #[test]
    fn timeline_sample_at_exact_cutoff_instant() {
        let mut rec = TimelineRecorder::default();
        let wf = WorkflowId::new(0);
        rec.record(SimTime::from_secs(0), wf, SlotKind::Map, 1);
        // Released exactly at the horizon: the last sample must see it.
        rec.record(SimTime::from_secs(40), wf, SlotKind::Map, -1);
        rec.record_down(SimTime::from_secs(40), 2);
        let tl = rec.finish(1, SimTime::from_secs(40), SimDuration::from_secs(10));
        assert_eq!(tl.sample_count(), 5);
        assert_eq!(tl.series(wf, SlotKind::Map), &[1, 1, 1, 1, 0]);
        assert_eq!(tl.down_slots(), &[0, 0, 0, 0, 2]);

        // A horizon that is not a grid multiple truncates to the last grid
        // instant at or before it; deltas beyond that never surface.
        let mut rec = TimelineRecorder::default();
        rec.record(SimTime::from_secs(0), wf, SlotKind::Map, 1);
        rec.record(SimTime::from_secs(44), wf, SlotKind::Map, -1);
        let tl = rec.finish(1, SimTime::from_secs(45), SimDuration::from_secs(10));
        assert_eq!(tl.sample_count(), 5);
        assert_eq!(tl.series(wf, SlotKind::Map), &[1, 1, 1, 1, 1]);
    }

    /// Zero-duration observations are valid histogram input: they count,
    /// fall in the first bucket whose bound admits zero, and leave the sum
    /// untouched.
    #[test]
    fn histogram_zero_duration_observations() {
        let mut h = MetricsRegistry::new("dsl").decision_seconds;
        h.observe(0.0);
        h.observe(0.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 0.0);
        // All decision bounds are positive, so zero lands in the very
        // first bucket, not the +Inf overflow.
        assert_eq!(h.bucket_counts()[0], 2);
        assert_eq!(*h.bucket_counts().last().unwrap(), 0);

        // Margin buckets include negative bounds: zero lands exactly in
        // the `le="0"` bucket, and a negative margin below the first one.
        let mut m = MetricsRegistry::new("dsl").deadline_margin_seconds;
        m.observe(0.0);
        m.observe(-7200.0);
        let zero_idx = m.bounds().iter().position(|&b| b == 0.0).unwrap();
        assert_eq!(m.bucket_counts()[zero_idx], 1);
        assert_eq!(m.bucket_counts()[0], 1);
        assert_eq!(m.count(), 2);
    }

    /// Utilization with a zero slot kind: zero capacity must divide to
    /// exactly 0.0, not NaN, and must not poison the other kind or the
    /// overall figure.
    #[test]
    fn utilization_with_zero_slot_kind() {
        let mut r = report(vec![outcome("a", 0, 100, Some(90))]);
        r.total_slots = [2, 0];
        r.busy_slot_ms = [500_000, 0];
        assert!((r.utilization(SlotKind::Map) - 0.25).abs() < 1e-12);
        assert_eq!(r.utilization(SlotKind::Reduce), 0.0);
        assert!(r.utilization(SlotKind::Reduce).is_finite());
        // Overall capacity is the slot-kind sum: 2 slots over 1000 s.
        assert!((r.overall_utilization() - 0.25).abs() < 1e-12);

        // Both kinds zero: everything degrades to 0.0.
        r.total_slots = [0, 0];
        assert_eq!(r.utilization(SlotKind::Map), 0.0);
        assert_eq!(r.overall_utilization(), 0.0);
    }

    #[test]
    fn counter_and_gauge_basics() {
        let mut reg = MetricsRegistry::new("btree");
        reg.heartbeats.inc();
        reg.heartbeats.add(4);
        assert_eq!(reg.heartbeats.value(), 5);
        reg.pending_tasks.set(12.0);
        reg.pending_tasks.sample(SimTime::from_secs(10));
        reg.pending_tasks.set(3.0);
        reg.pending_tasks.sample(SimTime::from_secs(20));
        assert_eq!(
            reg.pending_tasks.series(),
            &[
                (SimTime::from_secs(10), 12.0),
                (SimTime::from_secs(20), 3.0)
            ]
        );
        assert_eq!(reg.pending_tasks.value(), 3.0);
    }

    #[test]
    fn prometheus_text_shape() {
        let mut reg = MetricsRegistry::new("pheap");
        reg.heartbeats.add(7);
        reg.decision_seconds.observe(3e-7);
        reg.decision_seconds.observe(2.0); // beyond the last bound
        reg.heartbeat_batch_size.observe(4.0);
        let text = reg.prometheus_text();
        assert!(text.contains("# HELP woha_heartbeats_total Heartbeats processed.\n"));
        assert!(text.contains("# TYPE woha_heartbeats_total counter\n"));
        assert!(text.contains("woha_heartbeats_total 7\n"));
        assert!(text.contains("# TYPE woha_pending_workflows gauge\n"));
        assert!(text.contains("# TYPE woha_decision_seconds histogram\n"));
        // Buckets are cumulative and labelled with the backend.
        assert!(
            text.contains("woha_decision_seconds_bucket{backend=\"pheap\",le=\"0.0000005\"} 1\n")
        );
        assert!(text.contains("woha_decision_seconds_bucket{backend=\"pheap\",le=\"+Inf\"} 2\n"));
        assert!(text.contains("woha_decision_seconds_count{backend=\"pheap\"} 2\n"));
        // Unlabelled histogram renders bare `{le=...}` selectors.
        assert!(text.contains("woha_heartbeat_batch_size_bucket{le=\"4\"} 1\n"));
        assert!(text.contains("woha_heartbeat_batch_size_sum 4\n"));
        // Every non-comment line is `name{...} value` or `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("metric line");
            assert!(!name.is_empty(), "{line}");
            assert!(value.parse::<f64>().is_ok(), "{line}");
        }
    }
}
