//! Cluster configuration: nodes and their map/reduce slots.

use crate::fault::FaultConfig;
use serde::{Deserialize, Serialize};
use woha_model::{NodeId, SimDuration, SlotKind};

/// Static description of one worker node (TaskTracker host).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeConfig {
    /// Number of map slots.
    pub map_slots: u32,
    /// Number of reduce slots.
    pub reduce_slots: u32,
}

impl NodeConfig {
    /// Slots of the given kind.
    pub fn slots(&self, kind: SlotKind) -> u32 {
        match kind {
            SlotKind::Map => self.map_slots,
            SlotKind::Reduce => self.reduce_slots,
        }
    }

    /// Total slots of both kinds on this node.
    ///
    /// # Panics
    ///
    /// Panics if the sum overflows `u32` (also in release builds — slot
    /// counts feed capacity math that must not wrap silently).
    pub fn total_slots(&self) -> u32 {
        self.map_slots
            .checked_add(self.reduce_slots)
            .expect("node slot count overflows u32")
    }
}

/// Static description of the simulated cluster.
///
/// # Examples
///
/// ```
/// use woha_sim::ClusterConfig;
/// use woha_model::SlotKind;
///
/// // The paper's demo cluster: 32 slaves, 2 map + 1 reduce slot each.
/// let c = ClusterConfig::uniform(32, 2, 1);
/// assert_eq!(c.total_slots(SlotKind::Map), 64);
/// assert_eq!(c.total_slots(SlotKind::Reduce), 32);
///
/// // The paper's "200m-200r" trace cluster.
/// let c = ClusterConfig::with_totals(200, 200);
/// assert_eq!(c.total_slots(SlotKind::Map), 200);
/// assert_eq!(c.total_slots(SlotKind::Reduce), 200);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterConfig {
    nodes: Vec<NodeConfig>,
    heartbeat_interval: SimDuration,
    faults: FaultConfig,
}

impl ClusterConfig {
    /// Default TaskTracker heartbeat interval (Hadoop-1 uses 3 s minimum
    /// for small clusters; the simulator defaults to 1 s for finer-grained
    /// scheduling, and the heartbeat that reports a completion may carry a
    /// new assignment immediately, as in Hadoop).
    pub const DEFAULT_HEARTBEAT: SimDuration = SimDuration::from_secs(1);

    /// A cluster of `node_count` identical nodes.
    ///
    /// # Panics
    ///
    /// Panics if `node_count` is zero or both slot counts are zero.
    pub fn uniform(node_count: u32, map_slots: u32, reduce_slots: u32) -> Self {
        assert!(node_count > 0, "cluster needs at least one node");
        let node = NodeConfig {
            map_slots,
            reduce_slots,
        };
        // Checked: `map_slots + reduce_slots` would wrap in release builds.
        assert!(node.total_slots() > 0, "nodes need at least one slot");
        ClusterConfig {
            nodes: vec![node; node_count as usize],
            heartbeat_interval: Self::DEFAULT_HEARTBEAT,
            faults: FaultConfig::default(),
        }
    }

    /// A cluster with the given total slot counts, split over nodes of
    /// 2 map + 2 reduce slots (the paper's trace experiments name clusters
    /// by totals, e.g. "240m-240r").
    ///
    /// # Panics
    ///
    /// Panics if both totals are zero.
    pub fn with_totals(map_slots: u32, reduce_slots: u32) -> Self {
        let total = map_slots
            .checked_add(reduce_slots)
            .expect("cluster slot count overflows u32");
        assert!(total > 0, "cluster needs slots");
        let node_count = map_slots.div_ceil(2).max(reduce_slots.div_ceil(2)).max(1);
        let mut nodes = Vec::with_capacity(node_count as usize);
        let mut maps_left = map_slots;
        let mut reduces_left = reduce_slots;
        for i in 0..node_count {
            let remaining_nodes = node_count - i;
            let m = maps_left.div_ceil(remaining_nodes).min(maps_left);
            let r = reduces_left.div_ceil(remaining_nodes).min(reduces_left);
            nodes.push(NodeConfig {
                map_slots: m,
                reduce_slots: r,
            });
            maps_left -= m;
            reduces_left -= r;
        }
        ClusterConfig {
            nodes,
            heartbeat_interval: Self::DEFAULT_HEARTBEAT,
            faults: FaultConfig::default(),
        }
    }

    /// Overrides the heartbeat interval (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn with_heartbeat(mut self, interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "heartbeat interval must be positive");
        self.heartbeat_interval = interval;
        self
    }

    /// Attaches a fault-injection configuration (builder-style). The
    /// default configuration injects nothing.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// The nodes.
    pub fn nodes(&self) -> &[NodeConfig] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node ids, in order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId::new)
    }

    /// Configuration of one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node(&self, node: NodeId) -> NodeConfig {
        self.nodes[node.index()]
    }

    /// Total slots of a kind across the cluster.
    ///
    /// # Panics
    ///
    /// Panics if the total overflows `u32`.
    pub fn total_slots(&self, kind: SlotKind) -> u32 {
        self.nodes.iter().map(|n| n.slots(kind)).fold(0u32, |a, s| {
            a.checked_add(s).expect("cluster slot count overflows u32")
        })
    }

    /// Total slots of both kinds (the resource cap `n` handed to the
    /// Scheduling Plan Generator).
    ///
    /// # Panics
    ///
    /// Panics if the total overflows `u32`.
    pub fn total_all_slots(&self) -> u32 {
        self.total_slots(SlotKind::Map)
            .checked_add(self.total_slots(SlotKind::Reduce))
            .expect("cluster slot count overflows u32")
    }

    /// TaskTracker heartbeat interval.
    pub fn heartbeat_interval(&self) -> SimDuration {
        self.heartbeat_interval
    }

    /// The fault-injection configuration.
    pub fn faults(&self) -> &FaultConfig {
        &self.faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_totals() {
        let c = ClusterConfig::uniform(80, 2, 1);
        assert_eq!(c.node_count(), 80);
        assert_eq!(c.total_slots(SlotKind::Map), 160);
        assert_eq!(c.total_slots(SlotKind::Reduce), 80);
        assert_eq!(c.total_all_slots(), 240);
        assert_eq!(c.node(NodeId::new(0)).slots(SlotKind::Map), 2);
    }

    #[test]
    fn with_totals_exact() {
        for (m, r) in [(200, 200), (240, 240), (280, 280), (7, 3), (1, 0), (0, 5)] {
            let c = ClusterConfig::with_totals(m, r);
            assert_eq!(c.total_slots(SlotKind::Map), m, "maps for {m}m-{r}r");
            assert_eq!(c.total_slots(SlotKind::Reduce), r, "reduces for {m}m-{r}r");
        }
    }

    #[test]
    fn with_totals_spreads_evenly() {
        let c = ClusterConfig::with_totals(200, 200);
        assert_eq!(c.node_count(), 100);
        for n in c.nodes() {
            assert_eq!(n.map_slots, 2);
            assert_eq!(n.reduce_slots, 2);
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn uniform_rejects_empty() {
        ClusterConfig::uniform(0, 2, 1);
    }

    #[test]
    fn heartbeat_override() {
        let c = ClusterConfig::uniform(1, 1, 1).with_heartbeat(SimDuration::from_secs(3));
        assert_eq!(c.heartbeat_interval(), SimDuration::from_secs(3));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn heartbeat_rejects_zero() {
        ClusterConfig::uniform(1, 1, 1).with_heartbeat(SimDuration::ZERO);
    }

    #[test]
    fn node_ids_cover_nodes() {
        let c = ClusterConfig::uniform(5, 1, 1);
        let ids: Vec<NodeId> = c.node_ids().collect();
        assert_eq!(ids.len(), 5);
        assert_eq!(ids[4], NodeId::new(4));
    }

    #[test]
    #[should_panic(expected = "overflows u32")]
    fn uniform_rejects_slot_overflow() {
        ClusterConfig::uniform(1, u32::MAX, 1);
    }

    #[test]
    #[should_panic(expected = "overflows u32")]
    fn with_totals_rejects_slot_overflow() {
        ClusterConfig::with_totals(u32::MAX, u32::MAX);
    }

    #[test]
    #[should_panic(expected = "overflows u32")]
    fn node_total_slots_rejects_overflow() {
        NodeConfig {
            map_slots: u32::MAX,
            reduce_slots: u32::MAX,
        }
        .total_slots();
    }

    #[test]
    fn faults_default_disabled_and_builder_attaches() {
        use crate::fault::{FaultConfig, ScriptedFault};
        use woha_model::SimTime;

        let c = ClusterConfig::uniform(2, 1, 1);
        assert!(!c.faults().enabled());
        let f = FaultConfig::scripted(vec![ScriptedFault::one(
            NodeId::new(1),
            SimTime::from_secs(5),
            None,
        )]);
        let c = c.with_faults(f.clone());
        assert!(c.faults().enabled());
        assert_eq!(c.faults(), &f);
    }
}
