//! The discrete-event queue driving the cluster simulation.
//!
//! Events are totally ordered by `(time, sequence number)`: ties at the
//! same instant are broken by insertion order, which makes every simulation
//! run exactly reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use woha_model::{JobId, NodeId, SimTime, SlotKind, WorkflowId};

/// A simulation event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A workflow pulled from the workload source reaches its submission
    /// time (`value` is its pull-order index among admitted workflows).
    WorkflowArrival(usize),
    /// A wjob's submitter map task finishes: the job becomes schedulable.
    JobActivated(WorkflowId, JobId),
    /// A TaskTracker heartbeat: the node reports its free slots and may be
    /// assigned new tasks.
    Heartbeat(NodeId),
    /// A running task attempt finishes on a node.
    TaskComplete {
        /// Node the task ran on.
        node: NodeId,
        /// Owning workflow.
        workflow: WorkflowId,
        /// Owning job.
        job: JobId,
        /// Map or reduce.
        kind: SlotKind,
        /// Attempt id (distinguishes speculative duplicates).
        attempt: u64,
    },
    /// A node crashes: every attempt running on it dies and its slots leave
    /// the pool. The JobTracker does not know yet — detection follows via
    /// [`Event::NodeLost`]. Ignored if the node is already down or
    /// blacklisted (overlapping scripted/stochastic schedules).
    NodeDown(NodeId),
    /// A crashed node finishes repair and re-registers with empty slots.
    /// Ignored if the node is already up or was blacklisted.
    NodeUp(NodeId),
    /// The failure detector declares a node lost after it missed the
    /// configured number of heartbeats: its tasks are requeued and map
    /// outputs invalidated. `incident` stamps which outage this detection
    /// belongs to, so a detection scheduled for an outage the node already
    /// recovered from is recognised as stale and dropped.
    NodeLost {
        /// The lost node.
        node: NodeId,
        /// The outage this detection was scheduled for.
        incident: u64,
    },
    /// The JobTracker takes a periodic full-state checkpoint and truncates
    /// its write-ahead log. Only scheduled when master faults are enabled.
    Checkpoint,
    /// The JobTracker process crashes. Assignment freezes and the cluster
    /// idles until the replacement master finishes recovery.
    /// `incident` counts master outages, stamping stale duplicates.
    MasterCrash {
        /// The master outage this crash begins.
        incident: u64,
    },
    /// The replacement JobTracker finishes recovery (snapshot restore +
    /// WAL replay + TaskTracker re-registration) and resumes scheduling.
    MasterRecovered {
        /// The master outage this restart ends.
        incident: u64,
    },
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry {
    time: SimTime,
    /// Ordering lane at equal times: arrivals injected from a streaming
    /// [`WorkloadSource`](woha_trace::WorkloadSource) use lane 0 so they
    /// sort before every same-instant event pushed earlier — replicating
    /// the batch driver, which pushed all arrivals first (lowest seqs).
    class: u8,
    seq: u64,
    event: Event,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.class.cmp(&self.class))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue with deterministic FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use woha_sim::event::{Event, EventQueue};
/// use woha_model::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(5), Event::WorkflowArrival(1));
/// q.push(SimTime::from_secs(1), Event::WorkflowArrival(0));
/// let (t, e) = q.pop().unwrap();
/// assert_eq!(t, SimTime::from_secs(1));
/// assert_eq!(e, Event::WorkflowArrival(0));
/// ```
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time,
            class: 1,
            seq,
            event,
        });
    }

    /// Schedules an arrival injected from a streaming workload source at
    /// `time`, in the priority lane that sorts before every same-instant
    /// [`push`](Self::push) event. The batch driver pushed all arrivals
    /// before anything else, so at any tied timestamp an un-dispatched
    /// arrival popped first; a source injects arrivals lazily (after
    /// heartbeats etc. are already queued), and this lane preserves that
    /// ordering. Only the driver's source-injection path uses it — crash
    /// recovery re-pushes drained arrivals with [`push`](Self::push),
    /// which already yields them in drained (lane-ordered) order.
    pub fn push_arrival(&mut self, time: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time,
            class: 0,
            seq,
            event,
        });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// The earliest pending event (the one [`pop`](Self::pop) would
    /// return), without removing it. Used by the driver to coalesce runs of
    /// same-tick heartbeats.
    pub fn peek(&self) -> Option<(SimTime, &Event)> {
        self.heap.peek().map(|e| (e.time, &e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes every pending event and returns them in queue order
    /// (time, then insertion order). Used by master recovery to rebuild
    /// the schedule: kept events are re-pushed with fresh sequence
    /// numbers, preserving their relative order.
    pub fn drain_ordered(&mut self) -> Vec<(SimTime, Event)> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some((t, e)) = self.pop() {
            out.push((t, e));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), Event::WorkflowArrival(3));
        q.push(SimTime::from_secs(1), Event::WorkflowArrival(1));
        q.push(SimTime::from_secs(2), Event::WorkflowArrival(2));
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::WorkflowArrival(i) => i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.push(t, Event::WorkflowArrival(i));
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::WorkflowArrival(i) => i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(9), Event::Heartbeat(NodeId::new(0)));
        q.push(SimTime::from_secs(4), Event::Heartbeat(NodeId::new(1)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        q.pop();
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn drain_ordered_preserves_relative_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(2);
        q.push(t, Event::WorkflowArrival(1));
        q.push(SimTime::from_secs(1), Event::Checkpoint);
        q.push(t, Event::WorkflowArrival(2));
        let drained = q.drain_ordered();
        assert!(q.is_empty());
        assert_eq!(
            drained,
            vec![
                (SimTime::from_secs(1), Event::Checkpoint),
                (t, Event::WorkflowArrival(1)),
                (t, Event::WorkflowArrival(2)),
            ]
        );
        // Re-pushing keeps working with fresh sequence numbers.
        for (time, ev) in drained {
            q.push(time, ev);
        }
        assert_eq!(q.pop().unwrap().1, Event::Checkpoint);
    }

    #[test]
    fn arrival_lane_sorts_before_same_instant_events() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(7);
        q.push(t, Event::Heartbeat(NodeId::new(0)));
        q.push(t, Event::Checkpoint);
        // Injected later, but its lane wins the tie.
        q.push_arrival(t, Event::WorkflowArrival(0));
        q.push_arrival(t, Event::WorkflowArrival(1));
        let order: Vec<Event> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(
            order,
            vec![
                Event::WorkflowArrival(0),
                Event::WorkflowArrival(1),
                Event::Heartbeat(NodeId::new(0)),
                Event::Checkpoint,
            ]
        );
        // Strictly earlier events still pop first regardless of lane.
        q.push_arrival(t, Event::WorkflowArrival(2));
        q.push(SimTime::from_secs(1), Event::Checkpoint);
        assert_eq!(q.pop().unwrap().1, Event::Checkpoint);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), Event::WorkflowArrival(5));
        q.push(SimTime::from_secs(1), Event::WorkflowArrival(1));
        assert_eq!(q.pop().unwrap().0, SimTime::from_secs(1));
        q.push(SimTime::from_secs(2), Event::WorkflowArrival(2));
        assert_eq!(q.pop().unwrap().0, SimTime::from_secs(2));
        assert_eq!(q.pop().unwrap().0, SimTime::from_secs(5));
    }
}
