//! A deterministic, DoS-hardening-free hasher for the driver's hot state
//! tables.
//!
//! The simulator's per-attempt maps (`attempts`, `groups`,
//! `pending_map_ids`, …) are keyed by small integers and tuples of small
//! integers, looked up on every heartbeat. `std`'s default SipHash-1-3
//! spends most of each lookup hashing; since every key here is
//! simulator-internal (never attacker-controlled input), the collision
//! hardening buys nothing. This is the rustc-style Fx multiply-rotate
//! hash: one rotate, one xor, one multiply per word, with fully
//! deterministic output — which also keeps the driver's behaviour
//! independent of `RandomState`'s per-process seeds.
//!
//! Determinism note: swapping the hasher can only change *iteration
//! order* of a map, never its contents. The driver never iterates a
//! [`FastMap`] in an order-sensitive way (the two iteration sites sort
//! ids first or fold commutative counters), so simulation results are
//! bit-identical to the SipHash build.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// The 64-bit Fx multiplier (a truncation of π's golden-ratio-like
/// constant, as used by rustc's FxHash).
const K: u64 = 0x517c_c1b7_2722_0a95;

/// A fast, deterministic, non-cryptographic hasher for small
/// simulator-internal keys.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// Deterministic `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` on [`FxHasher`]: the driver's hot state tables use this
/// instead of the SipHash default.
pub type FastMap<K, V> = HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn deterministic_across_builders() {
        let a = FxBuildHasher::default().hash_one((7u64, 9u32));
        let b = FxBuildHasher::default().hash_one((7u64, 9u32));
        assert_eq!(a, b);
        assert_ne!(
            FxBuildHasher::default().hash_one(1u64),
            FxBuildHasher::default().hash_one(2u64)
        );
    }

    #[test]
    fn map_behaves_like_hashmap() {
        let mut m: FastMap<(u64, u32), Vec<u32>> = FastMap::default();
        for i in 0..1_000u64 {
            m.insert((i, (i % 7) as u32), vec![i as u32]);
        }
        assert_eq!(m.len(), 1_000);
        for i in 0..1_000u64 {
            assert_eq!(m.get(&(i, (i % 7) as u32)), Some(&vec![i as u32]));
        }
        assert!(m.remove(&(3, 3)).is_some());
        assert!(!m.contains_key(&(3, 3)));
    }

    #[test]
    fn hashes_byte_tails() {
        // Exercise the non-multiple-of-8 path of `write`.
        let h1 = FxBuildHasher::default().hash_one("abc");
        let h2 = FxBuildHasher::default().hash_one("abd");
        assert_ne!(h1, h2);
    }
}
