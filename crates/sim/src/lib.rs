//! A discrete-event Hadoop-1 cluster simulator.
//!
//! This crate is the substrate the WOHA reproduction runs on: since the
//! paper's 80-server Hadoop-1.2.1 testbed is not available, every
//! evaluation result is regenerated on this simulator, which reproduces the
//! scheduling-relevant behaviour of Hadoop-1:
//!
//! - a single **JobTracker** that owns all scheduling state,
//! - **TaskTrackers** with fixed map/reduce slot counts that heartbeat
//!   periodically and receive task assignments in the heartbeat response,
//! - jobs whose **reducers wait for all maps**, and
//! - workflow-level lifecycle: prerequisite tracking, WOHA's on-demand
//!   submitter jobs (modelled as an activation latency), and per-workflow
//!   deadline accounting.
//!
//! Schedulers plug in through [`WorkflowScheduler`], mirroring the paper's
//! replaceable Workflow Scheduler module.
//!
//! # Quick example
//!
//! ```
//! use woha_sim::{run_simulation, ClusterConfig, SimConfig, SubmitOrderScheduler};
//! use woha_model::{JobSpec, SimDuration, WorkflowBuilder};
//!
//! let mut b = WorkflowBuilder::new("demo");
//! b.add_job(JobSpec::new("only", 8, 2,
//!     SimDuration::from_secs(30), SimDuration::from_secs(60)));
//! b.relative_deadline(SimDuration::from_mins(10));
//! let report = run_simulation(
//!     &[b.build().unwrap()],
//!     &mut SubmitOrderScheduler::new(),
//!     &ClusterConfig::uniform(4, 2, 1),
//!     &SimConfig::default(),
//! );
//! assert!(report.completed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backpressure;
pub mod clock;
pub mod cluster;
pub mod driver;
pub mod event;
pub mod fault;
pub mod gate;
pub mod hash;
pub mod health;
pub mod metrics;
pub mod obs;
pub mod scheduler;
pub mod snapshot;
pub mod state;

pub use backpressure::{ArrivalBuffer, ServiceStats};
pub use clock::{Clock, SimClock, SourceWait, WallClock};
pub use cluster::{ClusterConfig, NodeConfig};
pub use driver::{
    run_simulation, run_simulation_observed, run_simulation_streamed, try_run_simulation,
    try_run_simulation_clocked, try_run_simulation_observed, try_run_simulation_streamed,
    try_run_simulation_streamed_observed, LocalityConfig, SimConfig, SimError, SpeculationConfig,
};
pub use fault::{FaultConfig, FaultStream, MasterFaultConfig, ScriptedFault};
pub use gate::{AdmissionGate, AdmitAll};
pub use hash::{FastMap, FxBuildHasher, FxHasher};
pub use health::{HealthRecord, NodeHealth, PredictionConfig, PredictionReport};
pub use metrics::{
    AdmissionReport, Counter, Gauge, Histogram, MetricsRegistry, RecoveryReport, RejectCount,
    SimReport, Timelines, WorkflowOutcome,
};
pub use obs::{
    jsonl_line, JsonlTraceSink, MemorySink, ObservabilityConfig, Observations, TraceEvent,
    TraceRecord, TraceSink,
};
pub use scheduler::{
    first_eligible_job, spec_slack_fraction, SchedTrace, SchedulerState, SubmitOrderScheduler,
    WorkflowScheduler,
};
pub use snapshot::MasterSnapshot;
pub use state::{JobPhase, JobState, WorkflowPool, WorkflowState};

/// Compile-time Send/Sync audit of the types a parallel sweep moves (or
/// shares) across worker threads: the bench orchestrator borrows workload
/// specs and clones configs into `std::thread::scope` workers, and each
/// worker returns a [`SimReport`]. A non-Send field added to any of these
/// (an `Rc`, a raw pointer, a thread-local handle) would silently force
/// sweeps back to one thread — this turns that mistake into a compile
/// error naming the type.
#[allow(dead_code)]
const SEND_SYNC_AUDIT: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SimConfig>();
    assert_send_sync::<ClusterConfig>();
    assert_send_sync::<FaultConfig>();
    assert_send_sync::<MasterFaultConfig>();
    assert_send_sync::<PredictionConfig>();
    assert_send_sync::<ObservabilityConfig>();
    assert_send_sync::<SimReport>();
    assert_send_sync::<MasterSnapshot>();
    assert_send_sync::<woha_model::WorkflowSpec>();
};
