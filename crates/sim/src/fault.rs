//! Node-level fault injection: configuration, the seeded fault stream, and
//! the crash/repair sampling that drives [`crate::event::Event::NodeDown`] /
//! [`crate::event::Event::NodeUp`].
//!
//! The model follows Hadoop-1 operational behaviour:
//!
//! - a node (TaskTracker host) crashes, killing every attempt running on it
//!   and taking its slots out of the pool;
//! - the JobTracker only learns of the crash after the node misses
//!   [`FaultConfig::detect_missed_heartbeats`] heartbeats, at which point it
//!   declares the node *lost*, requeues the node's running tasks, and
//!   invalidates completed map outputs that reducers still need;
//! - the node repairs and re-registers after its downtime, unless it has
//!   crashed [`FaultConfig::blacklist_after`] times and is blacklisted.
//!
//! Crash and repair times come from per-node exponential distributions
//! (mean [`FaultConfig::mtbf`] / [`FaultConfig::mttr`]) drawn from the same
//! seeded, salted counter streams as task-failure and straggler rolls, so a
//! `(config, seed)` pair fully determines a run. Deterministic scripted
//! schedules ([`FaultConfig::scripted`]) serve tests and targeted
//! experiments.

use serde::{Deserialize, Serialize};
use woha_model::{NodeId, SimDuration, SimTime};

/// One deterministic, pre-scripted node outage (for tests and targeted
/// experiments). A single fault may take down a whole *set* of nodes
/// atomically — the building block for rack-level fault domains.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScriptedFault {
    /// The nodes that crash together at `down_at`.
    pub nodes: Vec<NodeId>,
    /// Absolute crash time.
    pub down_at: SimTime,
    /// Absolute repair time (for every node of the set); `None` leaves
    /// them down forever.
    pub up_at: Option<SimTime>,
}

impl ScriptedFault {
    /// A single-node outage.
    pub fn one(node: NodeId, down_at: SimTime, up_at: Option<SimTime>) -> Self {
        ScriptedFault {
            nodes: vec![node],
            down_at,
            up_at,
        }
    }

    /// An atomic multi-node outage (e.g. a rack losing power).
    pub fn group(nodes: Vec<NodeId>, down_at: SimTime, up_at: Option<SimTime>) -> Self {
        assert!(!nodes.is_empty(), "scripted fault needs at least one node");
        ScriptedFault {
            nodes,
            down_at,
            up_at,
        }
    }
}

/// Configuration of the fault-injection subsystem. The default
/// (`FaultConfig::default()`) injects nothing and leaves the simulator's
/// behaviour untouched.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Mean time between failures per node. `None` disables stochastic
    /// crashes (scripted faults may still fire).
    pub mtbf: Option<SimDuration>,
    /// Mean time to repair per node (exponential), used for stochastic
    /// crashes; scripted faults carry their own repair times.
    pub mttr: SimDuration,
    /// Heartbeats a node must miss before the JobTracker declares it lost
    /// and requeues its work.
    pub detect_missed_heartbeats: u32,
    /// Number of crashes after which a node is blacklisted and never
    /// rejoins the cluster. `0` disables blacklisting.
    pub blacklist_after: u32,
    /// Deterministic outage schedule, applied in addition to any
    /// stochastic crashes.
    pub scripted: Vec<ScriptedFault>,
    /// JobTracker (master) failure model; disabled by default.
    pub master: MasterFaultConfig,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            mtbf: None,
            mttr: SimDuration::from_mins(5),
            detect_missed_heartbeats: 2,
            blacklist_after: 0,
            scripted: Vec::new(),
            master: MasterFaultConfig::default(),
        }
    }
}

/// Failure model of the JobTracker itself: checkpoint cadence, write-ahead
/// logging, and crash/restart times. The default injects nothing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MasterFaultConfig {
    /// Mean time between master crashes. `None` disables stochastic
    /// master crashes (scripted ones may still fire).
    pub mtbf: Option<SimDuration>,
    /// Master restart time: exact for scripted crashes, the exponential
    /// mean for stochastic ones.
    pub mttr: SimDuration,
    /// Interval between full state checkpoints.
    pub checkpoint_interval: SimDuration,
    /// Whether the master appends every processed event to a write-ahead
    /// log between checkpoints. With the WAL, recovery replays up to the
    /// crash instant (lossless); without it, recovery falls back to the
    /// last checkpoint and loses the suffix (stale-snapshot mode).
    pub wal: bool,
    /// Deterministic master crash times. A non-empty schedule *overrides*
    /// stochastic master crashes (`mtbf` is ignored for crash timing, but
    /// still switches restart durations from exact `mttr` to exponential
    /// draws around it).
    pub scripted: Vec<SimTime>,
}

impl Default for MasterFaultConfig {
    fn default() -> Self {
        MasterFaultConfig {
            mtbf: None,
            mttr: SimDuration::from_mins(1),
            checkpoint_interval: SimDuration::from_mins(5),
            wal: true,
            scripted: Vec::new(),
        }
    }
}

impl MasterFaultConfig {
    /// Whether any master-crash source is active.
    pub fn enabled(&self) -> bool {
        self.mtbf.is_some() || !self.scripted.is_empty()
    }
}

impl FaultConfig {
    /// Stochastic faults with the given MTBF and MTTR.
    pub fn with_mtbf(mtbf: SimDuration, mttr: SimDuration) -> Self {
        assert!(!mtbf.is_zero(), "MTBF must be positive");
        assert!(!mttr.is_zero(), "MTTR must be positive");
        FaultConfig {
            mtbf: Some(mtbf),
            mttr,
            ..FaultConfig::default()
        }
    }

    /// A purely scripted fault schedule.
    pub fn scripted(faults: Vec<ScriptedFault>) -> Self {
        FaultConfig {
            scripted: faults,
            ..FaultConfig::default()
        }
    }

    /// Whether any fault source is active.
    pub fn enabled(&self) -> bool {
        self.mtbf.is_some() || !self.scripted.is_empty()
    }
}

/// splitmix64 finalizer: the stateless mixing function behind every
/// simulator random stream (jitter, locality placement, failures,
/// stragglers, crashes, repairs).
pub(crate) fn splitmix(mut h: u64) -> u64 {
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// Salt of the task-failure roll stream (keyed by completion sequence).
pub(crate) const FAILURE_SALT: u64 = 0xFA11_FA11_FA11_FA11;
/// Salt of the straggler roll stream (keyed by attempt id).
pub(crate) const STRAGGLER_SALT: u64 = 0x57A6_57A6_57A6_57A6;
/// Salt of the node-crash inter-arrival stream.
const CRASH_SALT: u64 = 0xC4A5_4C4A_54C4_A54C;
/// Salt of the node-repair duration stream.
const REPAIR_SALT: u64 = 0x4E9A_144E_9A14_4E9A;
/// Salt of the master-crash inter-arrival stream.
const MASTER_CRASH_SALT: u64 = 0x3A57_E4C4_A53A_57E4;
/// Salt of the master-restart duration stream.
const MASTER_REPAIR_SALT: u64 = 0x3A57_E44E_9A14_3A57;

/// The unified seeded random-stream plumbing for every fault-like draw:
/// task failures, stragglers, node crashes, and node repairs. Each stream
/// is a salted splitmix64 counter, so draws are stateless, order-independent
/// and fully determined by `(seed, salt, sequence)`.
#[derive(Debug, Clone, Copy)]
pub struct FaultStream {
    seed: u64,
}

impl FaultStream {
    /// A stream for the given simulation seed.
    pub fn new(seed: u64) -> Self {
        FaultStream { seed }
    }

    /// A uniform draw in `[0, 1)` from the stream with `salt`, at counter
    /// position `seq`.
    pub fn roll(&self, salt: u64, seq: u64) -> f64 {
        let h = splitmix(self.seed ^ salt ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The task-failure roll for the `seq`-th task completion.
    pub fn task_failure(&self, seq: u64) -> f64 {
        self.roll(FAILURE_SALT, seq)
    }

    /// The straggler roll for attempt `attempt`.
    pub fn straggler(&self, attempt: u64) -> f64 {
        self.roll(STRAGGLER_SALT, attempt)
    }

    /// Exponential time to the next crash of `node` after its
    /// `incident`-th recovery.
    pub fn time_to_failure(&self, node: NodeId, incident: u64, mtbf: SimDuration) -> SimDuration {
        self.exponential(CRASH_SALT, node, incident, mtbf)
    }

    /// Exponential downtime of `node`'s `incident`-th outage.
    pub fn time_to_repair(&self, node: NodeId, incident: u64, mttr: SimDuration) -> SimDuration {
        self.exponential(REPAIR_SALT, node, incident, mttr)
    }

    /// Exponential time to the master's next crash after its
    /// `incident`-th restart.
    pub fn master_time_to_failure(&self, incident: u64, mtbf: SimDuration) -> SimDuration {
        self.exponential_seq(MASTER_CRASH_SALT, incident, mtbf)
    }

    /// Exponential duration of the master's `incident`-th restart.
    pub fn master_time_to_repair(&self, incident: u64, mttr: SimDuration) -> SimDuration {
        self.exponential_seq(MASTER_REPAIR_SALT, incident, mttr)
    }

    fn exponential(
        &self,
        salt: u64,
        node: NodeId,
        incident: u64,
        mean: SimDuration,
    ) -> SimDuration {
        let seq = ((node.index() as u64) << 40) ^ incident;
        self.exponential_seq(salt, seq, mean)
    }

    fn exponential_seq(&self, salt: u64, seq: u64, mean: SimDuration) -> SimDuration {
        let u = self.roll(salt, seq);
        // Inverse CDF; u < 1 so the log argument is positive.
        let ms = -(mean.as_millis() as f64) * (1.0 - u).ln();
        SimDuration::from_millis(ms as u64).max(SimDuration::from_millis(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_disabled() {
        let c = FaultConfig::default();
        assert!(!c.enabled());
        assert_eq!(c.blacklist_after, 0);
    }

    #[test]
    fn constructors_enable() {
        let c = FaultConfig::with_mtbf(SimDuration::from_mins(60), SimDuration::from_mins(2));
        assert!(c.enabled());
        let c = FaultConfig::scripted(vec![ScriptedFault::one(
            NodeId::new(0),
            SimTime::from_secs(10),
            None,
        )]);
        assert!(c.enabled());
    }

    #[test]
    fn scripted_group_takes_down_a_node_set_atomically() {
        let rack: Vec<NodeId> = (0..4).map(NodeId::new).collect();
        let f = ScriptedFault::group(
            rack.clone(),
            SimTime::from_secs(30),
            Some(SimTime::from_secs(90)),
        );
        assert_eq!(f.nodes, rack);
        assert_eq!(f.down_at, SimTime::from_secs(30));
        assert_eq!(f.up_at, Some(SimTime::from_secs(90)));
        // A group fault is one scripted event, not four.
        let c = FaultConfig::scripted(vec![f]);
        assert!(c.enabled());
        assert_eq!(c.scripted.len(), 1);
        assert_eq!(c.scripted[0].nodes.len(), 4);
        // Single-node constructor is the degenerate group.
        let solo = ScriptedFault::one(NodeId::new(7), SimTime::from_secs(1), None);
        assert_eq!(solo.nodes, vec![NodeId::new(7)]);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_group_rejected() {
        ScriptedFault::group(vec![], SimTime::ZERO, None);
    }

    #[test]
    fn master_config_defaults_disabled() {
        let m = MasterFaultConfig::default();
        assert!(!m.enabled());
        assert!(m.wal);
        let m = MasterFaultConfig {
            scripted: vec![SimTime::from_mins(10)],
            ..MasterFaultConfig::default()
        };
        assert!(m.enabled());
        // Master faults do not switch node-fault injection on.
        let c = FaultConfig {
            master: m,
            ..FaultConfig::default()
        };
        assert!(!c.enabled());
        assert!(c.master.enabled());
    }

    #[test]
    fn master_samples_are_deterministic_and_distinct() {
        let s = FaultStream::new(11);
        let m = SimDuration::from_mins(30);
        assert_eq!(
            s.master_time_to_failure(0, m),
            s.master_time_to_failure(0, m)
        );
        assert_ne!(
            s.master_time_to_failure(0, m),
            s.master_time_to_failure(1, m)
        );
        assert_ne!(
            s.master_time_to_failure(0, m),
            s.master_time_to_repair(0, m)
        );
        // Master streams are independent of node streams.
        assert_ne!(
            s.master_time_to_failure(0, m),
            s.time_to_failure(NodeId::new(0), 0, m)
        );
    }

    #[test]
    #[should_panic(expected = "MTBF")]
    fn zero_mtbf_rejected() {
        FaultConfig::with_mtbf(SimDuration::ZERO, SimDuration::from_mins(2));
    }

    #[test]
    fn rolls_are_deterministic_and_uniform_ish() {
        let s = FaultStream::new(42);
        assert_eq!(s.task_failure(7), s.task_failure(7));
        assert_ne!(s.task_failure(7), s.task_failure(8));
        let n = 10_000;
        let mean: f64 = (0..n).map(|i| s.roll(0x1234, i)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn streams_differ_between_seeds_and_salts() {
        let a = FaultStream::new(1);
        let b = FaultStream::new(2);
        assert_ne!(a.task_failure(0), b.task_failure(0));
        assert_ne!(a.task_failure(0), a.straggler(0));
    }

    #[test]
    fn exponential_sampling_tracks_mean() {
        let s = FaultStream::new(9);
        let mtbf = SimDuration::from_mins(60);
        let n = 5_000u64;
        let total: u64 = (0..n)
            .map(|i| s.time_to_failure(NodeId::new(3), i, mtbf).as_millis())
            .sum();
        let mean_ms = total as f64 / n as f64;
        let expect = mtbf.as_millis() as f64;
        assert!(
            (mean_ms - expect).abs() / expect < 0.05,
            "mean {mean_ms} vs {expect}"
        );
    }

    #[test]
    fn samples_depend_on_node_and_incident() {
        let s = FaultStream::new(5);
        let m = SimDuration::from_mins(30);
        assert_ne!(
            s.time_to_failure(NodeId::new(0), 0, m),
            s.time_to_failure(NodeId::new(1), 0, m)
        );
        assert_ne!(
            s.time_to_failure(NodeId::new(0), 0, m),
            s.time_to_failure(NodeId::new(0), 1, m)
        );
        assert_ne!(
            s.time_to_failure(NodeId::new(0), 0, m),
            s.time_to_repair(NodeId::new(0), 0, m)
        );
    }

    #[test]
    fn config_roundtrips_through_json() {
        let c = FaultConfig {
            mtbf: Some(SimDuration::from_mins(90)),
            mttr: SimDuration::from_mins(3),
            detect_missed_heartbeats: 3,
            blacklist_after: 4,
            scripted: vec![ScriptedFault::group(
                vec![NodeId::new(2), NodeId::new(5)],
                SimTime::from_secs(30),
                Some(SimTime::from_secs(90)),
            )],
            master: MasterFaultConfig {
                mtbf: Some(SimDuration::from_mins(240)),
                mttr: SimDuration::from_secs(45),
                checkpoint_interval: SimDuration::from_mins(2),
                wal: false,
                scripted: vec![SimTime::from_mins(7)],
            },
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: FaultConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
