//! Node-level fault injection: configuration, the seeded fault stream, and
//! the crash/repair sampling that drives [`crate::event::Event::NodeDown`] /
//! [`crate::event::Event::NodeUp`].
//!
//! The model follows Hadoop-1 operational behaviour:
//!
//! - a node (TaskTracker host) crashes, killing every attempt running on it
//!   and taking its slots out of the pool;
//! - the JobTracker only learns of the crash after the node misses
//!   [`FaultConfig::detect_missed_heartbeats`] heartbeats, at which point it
//!   declares the node *lost*, requeues the node's running tasks, and
//!   invalidates completed map outputs that reducers still need;
//! - the node repairs and re-registers after its downtime, unless it has
//!   crashed [`FaultConfig::blacklist_after`] times and is blacklisted.
//!
//! Crash and repair times come from per-node exponential distributions
//! (mean [`FaultConfig::mtbf`] / [`FaultConfig::mttr`]) drawn from the same
//! seeded, salted counter streams as task-failure and straggler rolls, so a
//! `(config, seed)` pair fully determines a run. Deterministic scripted
//! schedules ([`FaultConfig::scripted`]) serve tests and targeted
//! experiments.

use serde::{Deserialize, Serialize};
use woha_model::{NodeId, SimDuration, SimTime};

/// One deterministic, pre-scripted node outage (for tests and targeted
/// experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScriptedFault {
    /// The node that crashes.
    pub node: NodeId,
    /// Absolute crash time.
    pub down_at: SimTime,
    /// Absolute repair time; `None` leaves the node down forever.
    pub up_at: Option<SimTime>,
}

/// Configuration of the fault-injection subsystem. The default
/// (`FaultConfig::default()`) injects nothing and leaves the simulator's
/// behaviour untouched.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Mean time between failures per node. `None` disables stochastic
    /// crashes (scripted faults may still fire).
    pub mtbf: Option<SimDuration>,
    /// Mean time to repair per node (exponential), used for stochastic
    /// crashes; scripted faults carry their own repair times.
    pub mttr: SimDuration,
    /// Heartbeats a node must miss before the JobTracker declares it lost
    /// and requeues its work.
    pub detect_missed_heartbeats: u32,
    /// Number of crashes after which a node is blacklisted and never
    /// rejoins the cluster. `0` disables blacklisting.
    pub blacklist_after: u32,
    /// Deterministic outage schedule, applied in addition to any
    /// stochastic crashes.
    pub scripted: Vec<ScriptedFault>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            mtbf: None,
            mttr: SimDuration::from_mins(5),
            detect_missed_heartbeats: 2,
            blacklist_after: 0,
            scripted: Vec::new(),
        }
    }
}

impl FaultConfig {
    /// Stochastic faults with the given MTBF and MTTR.
    pub fn with_mtbf(mtbf: SimDuration, mttr: SimDuration) -> Self {
        assert!(!mtbf.is_zero(), "MTBF must be positive");
        assert!(!mttr.is_zero(), "MTTR must be positive");
        FaultConfig {
            mtbf: Some(mtbf),
            mttr,
            ..FaultConfig::default()
        }
    }

    /// A purely scripted fault schedule.
    pub fn scripted(faults: Vec<ScriptedFault>) -> Self {
        FaultConfig {
            scripted: faults,
            ..FaultConfig::default()
        }
    }

    /// Whether any fault source is active.
    pub fn enabled(&self) -> bool {
        self.mtbf.is_some() || !self.scripted.is_empty()
    }
}

/// splitmix64 finalizer: the stateless mixing function behind every
/// simulator random stream (jitter, locality placement, failures,
/// stragglers, crashes, repairs).
pub(crate) fn splitmix(mut h: u64) -> u64 {
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// Salt of the task-failure roll stream (keyed by completion sequence).
pub(crate) const FAILURE_SALT: u64 = 0xFA11_FA11_FA11_FA11;
/// Salt of the straggler roll stream (keyed by attempt id).
pub(crate) const STRAGGLER_SALT: u64 = 0x57A6_57A6_57A6_57A6;
/// Salt of the node-crash inter-arrival stream.
const CRASH_SALT: u64 = 0xC4A5_4C4A_54C4_A54C;
/// Salt of the node-repair duration stream.
const REPAIR_SALT: u64 = 0x4E9A_144E_9A14_4E9A;

/// The unified seeded random-stream plumbing for every fault-like draw:
/// task failures, stragglers, node crashes, and node repairs. Each stream
/// is a salted splitmix64 counter, so draws are stateless, order-independent
/// and fully determined by `(seed, salt, sequence)`.
#[derive(Debug, Clone, Copy)]
pub struct FaultStream {
    seed: u64,
}

impl FaultStream {
    /// A stream for the given simulation seed.
    pub fn new(seed: u64) -> Self {
        FaultStream { seed }
    }

    /// A uniform draw in `[0, 1)` from the stream with `salt`, at counter
    /// position `seq`.
    pub fn roll(&self, salt: u64, seq: u64) -> f64 {
        let h = splitmix(self.seed ^ salt ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The task-failure roll for the `seq`-th task completion.
    pub fn task_failure(&self, seq: u64) -> f64 {
        self.roll(FAILURE_SALT, seq)
    }

    /// The straggler roll for attempt `attempt`.
    pub fn straggler(&self, attempt: u64) -> f64 {
        self.roll(STRAGGLER_SALT, attempt)
    }

    /// Exponential time to the next crash of `node` after its
    /// `incident`-th recovery.
    pub fn time_to_failure(&self, node: NodeId, incident: u64, mtbf: SimDuration) -> SimDuration {
        self.exponential(CRASH_SALT, node, incident, mtbf)
    }

    /// Exponential downtime of `node`'s `incident`-th outage.
    pub fn time_to_repair(&self, node: NodeId, incident: u64, mttr: SimDuration) -> SimDuration {
        self.exponential(REPAIR_SALT, node, incident, mttr)
    }

    fn exponential(
        &self,
        salt: u64,
        node: NodeId,
        incident: u64,
        mean: SimDuration,
    ) -> SimDuration {
        let seq = ((node.index() as u64) << 40) ^ incident;
        let u = self.roll(salt, seq);
        // Inverse CDF; u < 1 so the log argument is positive.
        let ms = -(mean.as_millis() as f64) * (1.0 - u).ln();
        SimDuration::from_millis(ms as u64).max(SimDuration::from_millis(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_disabled() {
        let c = FaultConfig::default();
        assert!(!c.enabled());
        assert_eq!(c.blacklist_after, 0);
    }

    #[test]
    fn constructors_enable() {
        let c = FaultConfig::with_mtbf(SimDuration::from_mins(60), SimDuration::from_mins(2));
        assert!(c.enabled());
        let c = FaultConfig::scripted(vec![ScriptedFault {
            node: NodeId::new(0),
            down_at: SimTime::from_secs(10),
            up_at: None,
        }]);
        assert!(c.enabled());
    }

    #[test]
    #[should_panic(expected = "MTBF")]
    fn zero_mtbf_rejected() {
        FaultConfig::with_mtbf(SimDuration::ZERO, SimDuration::from_mins(2));
    }

    #[test]
    fn rolls_are_deterministic_and_uniform_ish() {
        let s = FaultStream::new(42);
        assert_eq!(s.task_failure(7), s.task_failure(7));
        assert_ne!(s.task_failure(7), s.task_failure(8));
        let n = 10_000;
        let mean: f64 = (0..n).map(|i| s.roll(0x1234, i)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn streams_differ_between_seeds_and_salts() {
        let a = FaultStream::new(1);
        let b = FaultStream::new(2);
        assert_ne!(a.task_failure(0), b.task_failure(0));
        assert_ne!(a.task_failure(0), a.straggler(0));
    }

    #[test]
    fn exponential_sampling_tracks_mean() {
        let s = FaultStream::new(9);
        let mtbf = SimDuration::from_mins(60);
        let n = 5_000u64;
        let total: u64 = (0..n)
            .map(|i| s.time_to_failure(NodeId::new(3), i, mtbf).as_millis())
            .sum();
        let mean_ms = total as f64 / n as f64;
        let expect = mtbf.as_millis() as f64;
        assert!(
            (mean_ms - expect).abs() / expect < 0.05,
            "mean {mean_ms} vs {expect}"
        );
    }

    #[test]
    fn samples_depend_on_node_and_incident() {
        let s = FaultStream::new(5);
        let m = SimDuration::from_mins(30);
        assert_ne!(
            s.time_to_failure(NodeId::new(0), 0, m),
            s.time_to_failure(NodeId::new(1), 0, m)
        );
        assert_ne!(
            s.time_to_failure(NodeId::new(0), 0, m),
            s.time_to_failure(NodeId::new(0), 1, m)
        );
        assert_ne!(
            s.time_to_failure(NodeId::new(0), 0, m),
            s.time_to_repair(NodeId::new(0), 0, m)
        );
    }

    #[test]
    fn config_roundtrips_through_json() {
        let c = FaultConfig {
            mtbf: Some(SimDuration::from_mins(90)),
            mttr: SimDuration::from_mins(3),
            detect_missed_heartbeats: 3,
            blacklist_after: 4,
            scripted: vec![ScriptedFault {
                node: NodeId::new(2),
                down_at: SimTime::from_secs(30),
                up_at: Some(SimTime::from_secs(90)),
            }],
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: FaultConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
