//! The simulation driver: a discrete-event loop over heartbeats, task
//! completions, and workflow arrivals.
//!
//! The driver mirrors the Hadoop-1 control loop the paper extends:
//!
//! 1. TaskTrackers heartbeat periodically; a heartbeat offers the node's
//!    free slots to the JobTracker, which consults the pluggable
//!    [`WorkflowScheduler`] once per free slot. The heartbeat that reports
//!    a task completion can carry new assignments immediately, so slots are
//!    re-offered the moment they free up.
//! 2. When a workflow arrives, its initially-ready wjobs go through WOHA's
//!    on-demand submission: a submitter map task loads the jar and writes
//!    input splits on a slave before the job becomes schedulable, modeled
//!    as the configurable [`SimConfig::submit_latency`]. The same latency
//!    applies when a job's last prerequisite finishes (for the Oozie-style
//!    baselines this models Oozie noticing the completion and submitting
//!    the next job).
//! 3. Reducers of a job become eligible only after all of its maps finish.
//!
//! Task durations may deviate from the client's estimates by a
//! deterministic per-task jitter ([`SimConfig::duration_jitter`]), so plans
//! are tested against "error in execution time prediction" exactly as the
//! paper cautions.
//!
//! When the cluster carries a [`FaultConfig`](crate::FaultConfig), nodes
//! crash and recover (see [`crate::fault`]): running attempts die with the
//! node, the JobTracker requeues them once its failure detector declares
//! the node lost (or the node re-registers first), completed map outputs
//! hosted on the node are re-executed while reducers still need them, and
//! repeatedly-crashing nodes can be blacklisted.
//!
//! The *master* (JobTracker) can crash too, when
//! [`MasterFaultConfig`](crate::fault::MasterFaultConfig) is enabled. The
//! master takes a full-state checkpoint ([`crate::snapshot`]) every
//! checkpoint interval and appends every processed event to a write-ahead
//! log in between. A crash freezes the world — nothing is assigned, no
//! heartbeat is answered — for the restart duration; the replacement
//! master then restores the latest checkpoint, replays the WAL, and
//! reconciles with the physical cluster as TaskTrackers re-register:
//! attempts still running on live nodes are re-adopted, attempts the
//! recovered state cannot account for are killed and requeued (Hadoop-1
//! JobTracker-restart semantics), and task completions the master has no
//! record of are discarded as orphans.

use crate::clock::{Clock, SimClock, SourceWait};
use crate::cluster::ClusterConfig;
use crate::event::{Event, EventQueue};
use crate::fault::{splitmix, FaultStream};
use crate::gate::AdmissionGate;
use crate::health::{NodeHealth, PredictionConfig, PredictionReport};
use crate::metrics::{
    AdmissionReport, MetricsRegistry, RecoveryReport, RejectCount, SimReport, TimelineRecorder,
    WorkflowOutcome,
};
use crate::obs::{
    MemorySink, ObservabilityConfig, Observations, TraceEvent, TraceRecord, TraceSink,
};
use crate::scheduler::{SchedTrace, WorkflowScheduler};
use crate::snapshot::{
    completed_workflows, AttemptRecord, DelaySkipRecord, FaultSnapshot, GroupRecord,
    LostTaskRecord, MapOutputRecord, MasterSnapshot, NodeSlotsRecord, PendingMapsRecord,
    SnapshotCounters,
};
use crate::state::{JobPhase, WorkflowPool};
use serde::Value;
use std::collections::{BTreeMap, HashSet};

use crate::hash::FastMap;
use std::fmt;
use woha_model::{JobId, NodeId, SimDuration, SimTime, SlotKind, WorkflowId, WorkflowSpec};
use woha_trace::{SourcePoll, VecSource, WorkloadSource};

/// A configuration error detected before the simulation starts.
///
/// Returned by [`try_run_simulation`]; [`run_simulation`] panics on these
/// instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A scripted node fault names a node outside the cluster.
    UnknownScriptedNode {
        /// The out-of-range node.
        node: NodeId,
        /// Number of nodes in the cluster.
        node_count: usize,
    },
    /// Master faults are enabled with a zero checkpoint interval.
    ZeroCheckpointInterval,
    /// Master faults are enabled with a zero restart time.
    ZeroMasterMttr,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownScriptedNode { node, node_count } => write!(
                f,
                "scripted fault names node {} but the cluster has {} nodes",
                node.index(),
                node_count
            ),
            SimError::ZeroCheckpointInterval => {
                write!(f, "master faults need a positive checkpoint interval")
            }
            SimError::ZeroMasterMttr => {
                write!(f, "master faults need a positive restart time (MTTR)")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Data-locality modelling for map tasks (HDFS-style block placement).
///
/// Each map task gets `replicas` preferred nodes (deterministic per task);
/// running it elsewhere multiplies its duration by `remote_penalty`
/// (reading its input block over the network). `max_delay_skips` enables
/// *delay scheduling* (Zaharia et al., EuroSys'10 — the paper's related
/// work \[4\]): when the chosen job has no pending map task local to the
/// offering node, the slot offer is declined up to that many consecutive
/// times per job, waiting for a better-placed slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalityConfig {
    /// Preferred replicas per map task (HDFS default: 3).
    pub replicas: u32,
    /// Duration multiplier for a non-local map task (>= 1.0).
    pub remote_penalty: f64,
    /// Consecutive non-local offers a job may decline (0 = no delay
    /// scheduling).
    pub max_delay_skips: u32,
}

impl Default for LocalityConfig {
    fn default() -> Self {
        LocalityConfig {
            replicas: 3,
            remote_penalty: 1.3,
            max_delay_skips: 0,
        }
    }
}

/// Straggler injection and speculative execution (Hadoop's classic
/// mitigation: when slots would otherwise idle, launch a duplicate of a
/// task running far beyond its estimate; the first attempt to finish wins
/// and the loser is killed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeculationConfig {
    /// Probability that a task attempt is a straggler (deterministic per
    /// seed and attempt).
    pub straggler_prob: f64,
    /// Duration multiplier applied to straggler attempts (> 1).
    pub straggler_factor: f64,
    /// Launch a duplicate once an attempt has run longer than
    /// `threshold × estimate` and a slot would otherwise stay idle.
    pub speculate_after: f64,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        SpeculationConfig {
            straggler_prob: 0.03,
            straggler_factor: 5.0,
            speculate_after: 1.5,
        }
    }
}

/// Driver knobs independent of the cluster shape.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Delay between a wjob's prerequisites finishing (or its workflow
    /// arriving) and the job becoming schedulable — the submitter map task
    /// loading jars and initializing tasks on a slave.
    pub submit_latency: SimDuration,
    /// Relative task-duration jitter: an actual duration is the estimate
    /// times a deterministic per-task factor in `[1 - j, 1 + j]`.
    pub duration_jitter: f64,
    /// Probability that a task attempt fails on completion and must be
    /// re-executed (failure injection). Each task fails at most once, so
    /// runs always terminate; the retry re-enters the pending queue and is
    /// scheduled like any task. Deterministic per seed.
    pub task_failure_prob: f64,
    /// Seed of the jitter stream.
    pub seed: u64,
    /// Record per-workflow slot timelines (Figs 14–19). Off by default; it
    /// costs memory proportional to task count.
    pub track_timelines: bool,
    /// Sampling interval of the recorded timelines.
    pub sample_interval: SimDuration,
    /// Hard cutoff: events after this instant are not processed and
    /// unfinished workflows are reported as such.
    pub max_sim_time: SimTime,
    /// Data-locality modelling; `None` (the default) makes all map tasks
    /// location-agnostic, as in the base WOHA evaluation.
    pub locality: Option<LocalityConfig>,
    /// Straggler injection + speculative execution; `None` (the default)
    /// runs every attempt at its jittered estimate with no duplicates.
    pub speculation: Option<SpeculationConfig>,
    /// Batched heartbeat processing: coalesce same-tick heartbeats and fill
    /// each node's free slots through one
    /// [`WorkflowScheduler::assign_batch`] pass instead of per-slot
    /// `assign_task` probes. Behaviour-identical to the unbatched path
    /// (proven by the determinism tests) and on by default; disable to
    /// cross-check or to profile the per-slot path. Ignored (treated as
    /// `false`) when delay scheduling is on, because locality declines
    /// would desynchronize pre-committed batch picks.
    pub batch_heartbeats: bool,
    /// Structured observability (tracing, metrics, timelines). Fully off
    /// by default; see [`crate::obs`]. When everything here is off, the
    /// simulation output is byte-identical to builds without the
    /// observability layer. The trace and metrics switches only take
    /// effect through [`run_simulation_observed`] /
    /// [`try_run_simulation_observed`], which return the collected
    /// [`Observations`] alongside the report.
    pub observability: ObservabilityConfig,
    /// Failure prediction: per-node propensity tracking plus the
    /// risk-aware placement and adaptive-blacklist policies built on it
    /// (see [`crate::health`]). `None` (the default) keeps the reactive
    /// behaviour and the byte-identical output it guarantees.
    pub prediction: Option<PredictionConfig>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            submit_latency: SimDuration::from_secs(1),
            duration_jitter: 0.0,
            task_failure_prob: 0.0,
            seed: 0,
            track_timelines: false,
            sample_interval: SimDuration::from_secs(10),
            max_sim_time: SimTime::from_mins(60 * 24 * 30),
            locality: None,
            speculation: None,
            batch_heartbeats: true,
            observability: ObservabilityConfig::default(),
            prediction: None,
        }
    }
}

impl SimConfig {
    /// The sampling interval that actually drives gauge and timeline
    /// sampling: [`ObservabilityConfig::sample_interval`] when set,
    /// otherwise the legacy [`SimConfig::sample_interval`].
    pub fn effective_sample_interval(&self) -> SimDuration {
        self.observability
            .sample_interval
            .unwrap_or(self.sample_interval)
    }

    /// Whether per-workflow slot timelines are recorded: the deprecated
    /// [`SimConfig::track_timelines`] flag OR-ed with
    /// [`ObservabilityConfig::timelines`].
    pub fn effective_timelines(&self) -> bool {
        self.track_timelines || self.observability.timelines
    }
}

/// One running task attempt (speculation mode only).
#[derive(Debug, Clone, Copy)]
struct Attempt {
    wf: WorkflowId,
    job: JobId,
    kind: SlotKind,
    node: NodeId,
    group: u64,
    started: SimTime,
    estimate: SimDuration,
    speculative: bool,
    cancelled: bool,
}

/// One logical task with up to two attempts racing (speculation mode).
#[derive(Debug, Clone, Copy, Default)]
struct AttemptGroup {
    done: bool,
    twin_launched: bool,
    attempts: [u64; 2],
    attempt_count: u8,
}

/// Work destroyed by a node crash, parked until the JobTracker learns of
/// the crash (failure-detector timeout or the node re-registering).
#[derive(Debug, Clone, Copy)]
struct LostTask {
    wf: WorkflowId,
    job: JobId,
    kind: SlotKind,
    /// Whether this was the only live attempt of its logical task: solo
    /// attempts are requeued as pending; non-solo ones just release their
    /// running count because a twin is still racing elsewhere.
    solo: bool,
}

/// Deterministic preferred node for `(wf, job, task, replica)`.
fn preferred_node(
    seed: u64,
    wf: WorkflowId,
    job: JobId,
    task: u32,
    replica: u32,
    node_count: usize,
) -> NodeId {
    let h = splitmix(
        seed ^ 0x10CA_110C_A110_CA11u64
            ^ wf.as_u64().rotate_left(17)
            ^ (u64::from(job.as_u32()) << 40)
            ^ (u64::from(task) << 8)
            ^ u64::from(replica),
    );
    NodeId::new((h % node_count as u64) as u32)
}

/// Deterministic per-task jitter factor: a splitmix64 hash of the task's
/// identity mapped into `[1 - jitter, 1 + jitter]`.
fn jitter_factor(
    seed: u64,
    wf: WorkflowId,
    job: JobId,
    kind: SlotKind,
    index: u32,
    jitter: f64,
) -> f64 {
    if jitter <= 0.0 {
        return 1.0;
    }
    let h = seed
        ^ wf.as_u64().wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (u64::from(job.as_u32()) << 32)
        ^ (u64::from(index) << 1)
        ^ match kind {
            SlotKind::Map => 0x5555_5555_5555_5555,
            SlotKind::Reduce => 0xAAAA_AAAA_AAAA_AAAA,
        };
    let u = (splitmix(h) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    1.0 + jitter * (2.0 * u - 1.0)
}

struct NodeSlots {
    free_maps: u32,
    free_reduces: u32,
}

impl NodeSlots {
    fn free(&self, kind: SlotKind) -> u32 {
        match kind {
            SlotKind::Map => self.free_maps,
            SlotKind::Reduce => self.free_reduces,
        }
    }

    fn take(&mut self, kind: SlotKind) {
        match kind {
            SlotKind::Map => self.free_maps -= 1,
            SlotKind::Reduce => self.free_reduces -= 1,
        }
    }

    fn release(&mut self, kind: SlotKind) {
        match kind {
            SlotKind::Map => self.free_maps += 1,
            SlotKind::Reduce => self.free_reduces += 1,
        }
    }
}

struct Sim<'a> {
    config: &'a SimConfig,
    cluster: &'a ClusterConfig,
    queue: EventQueue,
    pool: WorkflowPool,
    nodes: Vec<NodeSlots>,
    remaining: usize,
    now: SimTime,
    /// Unified seeded stream behind failure, straggler, crash, and repair
    /// draws: `(config, seed)` fully determines a run.
    rng: FaultStream,
    // busy accounting
    busy_count: [u32; 2],
    busy_integral_ms: [u128; 2],
    last_busy_touch: SimTime,
    // counters
    tasks_executed: u64,
    task_failures: u64,
    completion_seq: u64,
    assign_calls: u64,
    invalid_assignments: u64,
    events_processed: u64,
    recorder: Option<TimelineRecorder>,
    node_count: usize,
    /// Pending map-task ids per job (locality mode only).
    pending_map_ids: FastMap<(WorkflowId, JobId), Vec<u32>>,
    /// Consecutive declined non-local offers per job (delay scheduling).
    delay_skips: FastMap<(WorkflowId, JobId), u32>,
    local_map_tasks: u64,
    remote_map_tasks: u64,
    delay_skip_count: u64,
    scheduler_nanos: u64,
    // Attempt bookkeeping (speculation and/or fault mode).
    attempts: FastMap<u64, Attempt>,
    groups: FastMap<u64, AttemptGroup>,
    next_attempt: u64,
    next_group: u64,
    stragglers: u64,
    speculative_launched: u64,
    speculative_wins: u64,
    /// Whether per-attempt state is tracked (needed to race duplicates and
    /// to know what died with a node).
    track_attempts: bool,
    // Fault-injection state (fault mode only).
    fault_mode: bool,
    /// Whether each node is currently up.
    alive: Vec<bool>,
    /// Whether each node has been blacklisted (never rejoins).
    node_blacklisted: Vec<bool>,
    /// Outage counter per node; stamps [`Event::NodeLost`] detections so
    /// stale ones (the node already recovered) are dropped.
    incident: Vec<u64>,
    /// Crashes per node (drives blacklisting).
    crash_count: Vec<u32>,
    /// Whether the node's periodic heartbeat chain is still scheduled.
    heartbeat_live: Vec<bool>,
    /// Work killed by a crash, awaiting requeue at detection or recovery.
    lost_pending: Vec<Vec<LostTask>>,
    /// Nodes hosting each incomplete job's completed map outputs (one entry
    /// per completed map execution; jobs with reducers only).
    map_output_hosts: FastMap<(WorkflowId, JobId), Vec<NodeId>>,
    node_failures: u64,
    node_recoveries: u64,
    nodes_blacklisted: u64,
    tasks_requeued: u64,
    map_outputs_lost: u64,
    work_lost_slot_ms: u128,
    /// Per-node failure-propensity tracker (prediction mode only).
    health: Option<NodeHealth>,
    // Master-failover state (master mode only).
    master_mode: bool,
    /// Whether the JobTracker process is up. While it is down the world is
    /// frozen: no event fires until the replacement master recovers.
    master_alive: bool,
    /// Whether the driver is replaying the WAL during recovery. Handlers
    /// mutate state normally but [`Self::schedule`] drops new events: the
    /// pending future was captured at the crash and is re-applied there.
    replaying: bool,
    /// The latest checkpoint, as an encoded [`MasterSnapshot`].
    checkpoint: Option<Value>,
    /// Events processed since the latest checkpoint (the write-ahead log).
    wal: Vec<(SimTime, Event)>,
    /// Which pulled workflows have had their arrival event processed, by
    /// pull (source cursor) order. Grows as the source is pulled;
    /// `arrived.len()` is the source cursor.
    arrived: Vec<bool>,
    /// Specs pulled from the workload source so far, in pull order — the
    /// [`Event::WorkflowArrival`] payloads. Retained for WAL replay and
    /// crash-time resubmission.
    workflows: Vec<WorkflowSpec>,
    /// Whether the workload source has been drained.
    exhausted: bool,
    /// Accumulated master outages: the effective arrival time of a not yet
    /// pulled workflow is its submit time plus this shift. (A pending
    /// arrival already in the queue is shifted by the crash handler
    /// instead, exactly like every other pending event.)
    arrival_shift: SimDuration,
    /// Admission gate at the front door; `None` admits everything.
    gate: Option<&'a mut dyn AdmissionGate>,
    /// Workflows the gate turned away.
    workflows_rejected: u64,
    /// Per-reason rejection counts (sorted for deterministic reports).
    rejections: BTreeMap<String, u64>,
    recovery: RecoveryReport,
    // Observability state (see crate::obs). All `None`/off by default,
    // leaving only `Option` checks on the hot path.
    /// Structured trace sink; `None` when tracing is off (and while the
    /// WAL replays during master recovery, mirroring `recorder`).
    sink: Option<&'a mut dyn TraceSink>,
    /// Metrics registry; `None` when metrics are off (and during replay).
    metrics: Option<MetricsRegistry>,
    /// Whether scheduler-internal tracing was requested (trace or metrics
    /// on), so replay suspension knows to toggle it.
    sched_tracing: bool,
    /// Priority-index backend label, captured once from the scheduler.
    backend: &'static str,
    /// Reusable buffer for draining scheduler trace records.
    sched_scratch: Vec<SchedTrace>,
    /// Next gauge-sampling grid instant.
    next_sample: SimTime,
    /// Gauge-sampling interval (zero disables sampling).
    obs_interval: SimDuration,
}

impl<'a> Sim<'a> {
    /// Schedules a future event, unless the driver is replaying the WAL
    /// (the original master already scheduled this future; it was captured
    /// at the crash and is re-applied shifted by the outage).
    fn schedule(&mut self, time: SimTime, event: Event) {
        if !self.replaying {
            self.queue.push(time, event);
        }
    }

    fn touch_busy(&mut self) {
        let dt = u128::from(self.now.saturating_since(self.last_busy_touch).as_millis());
        if dt > 0 {
            self.busy_integral_ms[0] += u128::from(self.busy_count[0]) * dt;
            self.busy_integral_ms[1] += u128::from(self.busy_count[1]) * dt;
            self.last_busy_touch = self.now;
        }
    }

    fn kind_index(kind: SlotKind) -> usize {
        match kind {
            SlotKind::Map => 0,
            SlotKind::Reduce => 1,
        }
    }

    /// Emits one trace record at the current instant, if tracing is on.
    fn emit(&mut self, event: TraceEvent) {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.record(TraceRecord {
                at: self.now,
                event,
            });
        }
    }

    /// Drains the scheduler's buffered [`SchedTrace`] records into the
    /// sink and the counters. Called after every dispatched event; a no-op
    /// unless tracing or metrics are on (schedulers only buffer while
    /// tracing was requested).
    fn drain_sched(&mut self, scheduler: &mut dyn WorkflowScheduler) {
        if self.sink.is_none() && self.metrics.is_none() {
            return;
        }
        let mut scratch = std::mem::take(&mut self.sched_scratch);
        scratch.clear();
        scheduler.drain_trace(&mut scratch);
        for t in scratch.drain(..) {
            if let Some(m) = &mut self.metrics {
                match t {
                    SchedTrace::Pick { .. } => {}
                    SchedTrace::PlanGenerated { .. } => m.plans_generated.inc(),
                    SchedTrace::Replan { .. } => m.replans.inc(),
                    SchedTrace::RhoRollback { .. } => m.rho_rollbacks.inc(),
                }
            }
            if self.sink.is_some() {
                let backend = self.backend;
                let event = match t {
                    SchedTrace::Pick {
                        workflow,
                        rank,
                        blocked,
                    } => TraceEvent::SchedulerPick {
                        workflow,
                        rank,
                        blocked,
                        backend,
                    },
                    SchedTrace::PlanGenerated { workflow, jobs } => {
                        TraceEvent::PlanGenerated { workflow, jobs }
                    }
                    SchedTrace::Replan { workflow } => TraceEvent::Replan { workflow },
                    SchedTrace::RhoRollback { workflow } => TraceEvent::RhoRollback { workflow },
                };
                self.emit(event);
            }
        }
        self.sched_scratch = scratch;
    }

    /// Samples the gauges at every grid instant strictly before `t` (the
    /// state between events is constant, so a grid instant inherits the
    /// state left by the last event before it). Instants exactly at `t`
    /// are sampled once the *next* event arrives — or by the final
    /// inclusive flush — so a sample at an event's instant observes that
    /// event, matching the timeline recorder's cutoff semantics.
    fn sample_gauges_before(&mut self, t: SimTime) {
        if self.metrics.is_none() || self.obs_interval.is_zero() {
            return;
        }
        while self.next_sample < t {
            let at = self.next_sample;
            self.sample_gauges_at(at);
            self.next_sample = self.next_sample.saturating_add(self.obs_interval);
        }
    }

    /// Final flush: samples every remaining grid instant up to and
    /// including `end`.
    fn sample_gauges_through(&mut self, end: SimTime) {
        if self.metrics.is_none() || self.obs_interval.is_zero() {
            return;
        }
        while self.next_sample <= end {
            let at = self.next_sample;
            self.sample_gauges_at(at);
            self.next_sample = self.next_sample.saturating_add(self.obs_interval);
        }
    }

    /// One gauge sample: pending-workflow/task depth and the tightest
    /// deadline margin across incomplete workflows (plus one
    /// deadline-margin histogram observation per incomplete workflow).
    fn sample_gauges_at(&mut self, at: SimTime) {
        let Some(m) = &mut self.metrics else {
            return;
        };
        let mut wfs = 0u64;
        let mut tasks = 0u64;
        let mut min_margin = f64::INFINITY;
        for wf in self.pool.incomplete() {
            wfs += 1;
            let w = self.pool.workflow(wf);
            for job in w.active_jobs() {
                let j = w.job(job);
                tasks += u64::from(j.pending_maps()) + u64::from(j.pending_reduces());
            }
            let margin = (w.spec().deadline().as_millis() as f64 - at.as_millis() as f64) / 1000.0;
            m.deadline_margin_seconds.observe(margin);
            if margin < min_margin {
                min_margin = margin;
            }
        }
        m.pending_workflows.set(wfs as f64);
        m.pending_workflows.sample(at);
        m.pending_tasks.set(tasks as f64);
        m.pending_tasks.sample(at);
        if min_margin.is_finite() {
            m.min_deadline_margin_seconds.set(min_margin);
            m.min_deadline_margin_seconds.sample(at);
        }
    }

    fn begin_job_submission(&mut self, wf: WorkflowId, job: JobId) {
        self.pool.workflow_mut(wf).begin_submitting(job);
        self.schedule(
            self.now.saturating_add(self.config.submit_latency),
            Event::JobActivated(wf, job),
        );
    }

    fn handle_arrival(&mut self, scheduler: &mut dyn WorkflowScheduler, spec: &WorkflowSpec) {
        let wf = self.pool.register(spec.clone());
        scheduler.on_workflow_submitted(&self.pool, wf, self.now);
        let ready = self.pool.workflow(wf).spec().initially_ready();
        for job in ready {
            self.begin_job_submission(wf, job);
        }
    }

    fn handle_activation(
        &mut self,
        scheduler: &mut dyn WorkflowScheduler,
        wf: WorkflowId,
        job: JobId,
    ) {
        self.pool.workflow_mut(wf).activate(job, self.now);
        if self.config.locality.is_some() {
            let maps = self.pool.workflow(wf).spec().job(job).map_tasks();
            self.pending_map_ids.insert((wf, job), (0..maps).collect());
        }
        scheduler.on_job_activated(&self.pool, wf, job, self.now);
    }

    /// In locality mode, picks the pending map task of `(wf, job)` to run
    /// on `node`: a node-local task if one exists, otherwise the last
    /// pending one at the remote penalty. Returns `(task index, local?)`,
    /// or `None` to decline the offer (delay scheduling).
    fn pick_map_task(&mut self, wf: WorkflowId, job: JobId, node: NodeId) -> Option<(u32, bool)> {
        let loc = self.config.locality.expect("locality mode");
        let seed = self.config.seed;
        let node_count = self.node_count;
        let ids = self
            .pending_map_ids
            .get_mut(&(wf, job))
            .expect("activated job has pending map ids");
        let local_pos = ids.iter().position(|&task| {
            (0..loc.replicas).any(|r| preferred_node(seed, wf, job, task, r, node_count) == node)
        });
        if let Some(pos) = local_pos {
            let task = ids.swap_remove(pos);
            self.delay_skips.insert((wf, job), 0);
            return Some((task, true));
        }
        // No local task: maybe wait for a better offer.
        let skips = self.delay_skips.entry((wf, job)).or_insert(0);
        if *skips < loc.max_delay_skips {
            *skips += 1;
            self.delay_skip_count += 1;
            return None;
        }
        *skips = 0;
        let task = ids.pop().expect("pending map task exists");
        Some((task, false))
    }

    fn handle_completion(
        &mut self,
        scheduler: &mut dyn WorkflowScheduler,
        node: NodeId,
        wf: WorkflowId,
        job: JobId,
        kind: SlotKind,
        attempt: u64,
    ) {
        // Attempt bookkeeping: resolve which attempt this is and whether it
        // still matters (its twin may have won, or its node may have died).
        if self.track_attempts {
            let info = self
                .attempts
                .remove(&attempt)
                .expect("completion for a registered attempt");
            if info.cancelled {
                // The race was decided (or the node crashed) earlier; this
                // slot was already freed when the attempt was killed.
                return;
            }
            // This attempt wins its group. Kill the twin, if racing.
            let group = self.groups.remove(&info.group).expect("live group");
            if info.speculative {
                self.speculative_wins += 1;
            }
            for &other_id in group.attempts[..usize::from(group.attempt_count)].iter() {
                if other_id == attempt {
                    continue;
                }
                if let Some(other) = self.attempts.get_mut(&other_id) {
                    if other.cancelled {
                        // Already killed by a node crash; its accounting
                        // was settled then.
                        continue;
                    }
                    other.cancelled = true;
                    let other = *other;
                    // Free the loser's slot immediately (Hadoop kills it).
                    self.touch_busy();
                    self.busy_count[Self::kind_index(other.kind)] -= 1;
                    self.nodes[other.node.index()].release(other.kind);
                    if let Some(rec) = self.recorder.as_mut() {
                        rec.record(self.now, other.wf, other.kind, -1);
                    }
                    if self.sink.is_some() {
                        self.emit(TraceEvent::TaskKilled {
                            node: other.node.index(),
                            workflow: other.wf,
                            job: other.job.as_u32() as usize,
                            kind: other.kind,
                        });
                    }
                    self.pool
                        .workflow_mut(other.wf)
                        .finish_speculative(other.job, other.kind);
                }
            }
        }
        self.touch_busy();
        self.busy_count[Self::kind_index(kind)] -= 1;
        self.nodes[node.index()].release(kind);
        if let Some(rec) = self.recorder.as_mut() {
            rec.record(self.now, wf, kind, -1);
        }
        if self.sink.is_some() {
            self.emit(TraceEvent::TaskComplete {
                node: node.index(),
                workflow: wf,
                job: job.as_u32() as usize,
                kind,
            });
        }
        if let Some(m) = &mut self.metrics {
            m.tasks_completed.inc();
        }
        // Failure injection: the attempt may fail and re-queue its task.
        // A task fails at most once (the retry succeeds), so termination
        // is guaranteed.
        self.completion_seq += 1;
        if self.config.task_failure_prob > 0.0 {
            let spec = self.pool.workflow(wf).spec().job(job);
            let budget = match kind {
                SlotKind::Map => spec.map_tasks(),
                SlotKind::Reduce => spec.reduce_tasks(),
            };
            let already = self.pool.workflow(wf).job(job).retried(kind);
            if already < budget && self.roll_failure() {
                self.task_failures += 1;
                self.pool.workflow_mut(wf).fail_task(job, kind);
                if kind == SlotKind::Map && self.config.locality.is_some() {
                    // The retried attempt gets fresh preferred nodes (a
                    // new attempt id beyond the original task range).
                    let spec_maps = self.pool.workflow(wf).spec().job(job).map_tasks();
                    let retried = self.pool.workflow(wf).job(job).retried(kind);
                    if let Some(ids) = self.pending_map_ids.get_mut(&(wf, job)) {
                        ids.push(spec_maps + retried);
                    }
                }
                scheduler.on_task_failed(&self.pool, wf, job, kind, self.now);
                self.assign_node(scheduler, node);
                return;
            }
        }
        if self.fault_mode
            && kind == SlotKind::Map
            && self.pool.workflow(wf).spec().job(job).reduce_tasks() > 0
        {
            // Remember where the map output lives: reducers fetch it from
            // the mapper's local disk, so it dies with the node.
            self.map_output_hosts
                .entry((wf, job))
                .or_default()
                .push(node);
        }
        let job_done = self.pool.workflow_mut(wf).finish_task(job, kind, self.now);
        if job_done {
            self.map_output_hosts.remove(&(wf, job));
            scheduler.on_job_completed(&self.pool, wf, job, self.now);
            let dependents: Vec<JobId> = self.pool.workflow(wf).spec().dependents(job).to_vec();
            for dep in dependents {
                if self.pool.workflow_mut(wf).satisfy_prereq(dep) {
                    self.begin_job_submission(wf, dep);
                }
            }
            if self.pool.workflow(wf).is_complete() {
                scheduler.on_workflow_completed(&self.pool, wf, self.now);
                self.remaining -= 1;
                // The original master already released this workflow before
                // the crash; replay must not release it twice.
                if !self.replaying {
                    if let Some(gate) = self.gate.as_deref_mut() {
                        gate.release(self.pool.workflow(wf).spec().name());
                    }
                }
            }
        }
        self.assign_node(scheduler, node);
    }

    /// Deterministic failure roll for the current completion.
    fn roll_failure(&self) -> bool {
        self.rng.task_failure(self.completion_seq) < self.config.task_failure_prob
    }

    /// Offers all of `node`'s free slots to the scheduler, as a heartbeat
    /// response does.
    fn assign_node(&mut self, scheduler: &mut dyn WorkflowScheduler, node: NodeId) {
        // Delay scheduling and risk-aware placement can decline individual
        // offers, which would desynchronize a scheduler's pre-committed
        // batch picks, so the batch path stays off whenever either is
        // modelled.
        let batchable = self.config.batch_heartbeats
            && self.config.locality.is_none()
            && !self.risk_placement_on();
        for kind in SlotKind::ALL {
            let free = self.nodes[node.index()].free(kind);
            if batchable && free > 0 {
                let started = std::time::Instant::now();
                let picks = scheduler.assign_batch(&self.pool, kind, self.now, free);
                let elapsed = started.elapsed();
                self.scheduler_nanos += elapsed.as_nanos() as u64;
                if let Some(m) = &mut self.metrics {
                    m.decision_seconds.observe(elapsed.as_secs_f64());
                }
                if let Some(picks) = picks {
                    // Count probes as the sequential path would have made:
                    // one per pick, plus the trailing `None` probe when the
                    // batch under-fills the node.
                    self.assign_calls +=
                        picks.len() as u64 + u64::from((picks.len() as u32) < free);
                    let mut invalid = false;
                    for (wf, job) in picks {
                        if !self.pool.eligible(wf, job, kind) {
                            self.invalid_assignments += 1;
                            invalid = true;
                            break;
                        }
                        // Batch picks are pre-committed inside the
                        // scheduler: start without re-notifying it.
                        if self.sink.is_some() {
                            self.emit(TraceEvent::Assign {
                                node: node.index(),
                                kind,
                                workflow: wf,
                                job: job.as_u32() as usize,
                            });
                        }
                        let ok = self.start_task(scheduler, node, wf, job, kind, false);
                        debug_assert!(ok, "batch picks cannot be declined");
                    }
                    if !invalid {
                        // Leftover slots may duplicate overdue attempts
                        // (speculative execution), as in the `None` arm of
                        // the sequential path.
                        while self.nodes[node.index()].free(kind) > 0
                            && self.try_speculate(node, kind)
                        {}
                    }
                    continue;
                }
            }
            while self.nodes[node.index()].free(kind) > 0 {
                self.assign_calls += 1;
                let started = std::time::Instant::now();
                let choice = scheduler.assign_task(&self.pool, kind, self.now);
                let elapsed = started.elapsed();
                self.scheduler_nanos += elapsed.as_nanos() as u64;
                if let Some(m) = &mut self.metrics {
                    m.decision_seconds.observe(elapsed.as_secs_f64());
                }
                let Some((wf, job)) = choice else {
                    // Nothing pending: an idle slot may duplicate an
                    // overdue attempt (speculative execution).
                    while self.nodes[node.index()].free(kind) > 0 && self.try_speculate(node, kind)
                    {
                    }
                    break;
                };
                if !self.pool.eligible(wf, job, kind) {
                    self.invalid_assignments += 1;
                    break;
                }
                if self.sink.is_some() {
                    self.emit(TraceEvent::Assign {
                        node: node.index(),
                        kind,
                        workflow: wf,
                        job: job.as_u32() as usize,
                    });
                }
                if !self.start_task(scheduler, node, wf, job, kind, true) {
                    // Delay scheduling declined the offer; leave the
                    // node's remaining slots of this kind for a later,
                    // better-placed heartbeat.
                    break;
                }
            }
        }
    }

    /// Starts one task of `(wf, job, kind)` on `node`. Returns `false` if
    /// the offer was declined under delay scheduling (the slot stays free).
    /// `notify` fires the scheduler's `on_task_assigned` hook; batch picks
    /// pass `false` because `assign_batch` already applied it per pick.
    fn start_task(
        &mut self,
        scheduler: &mut dyn WorkflowScheduler,
        node: NodeId,
        wf: WorkflowId,
        job: JobId,
        kind: SlotKind,
        notify: bool,
    ) -> bool {
        // Risk-aware placement: decline the offer outright (before any
        // state is touched) when a deadline-critical task would land on a
        // failure-prone node and a safer node could still take it.
        if self.risk_placement_on() && self.decline_for_risk(scheduler, node, wf, kind) {
            return false;
        }
        let (estimate, index) = {
            let state = self.pool.workflow(wf);
            let spec = state.spec().job(job);
            match kind {
                SlotKind::Map => (
                    spec.map_duration(),
                    spec.map_tasks() - state.job(job).pending_maps(),
                ),
                SlotKind::Reduce => (
                    spec.reduce_duration(),
                    spec.reduce_tasks() - state.job(job).pending_reduces(),
                ),
            }
        };
        // Locality: map tasks may run remotely at a penalty, or the offer
        // may be declined entirely under delay scheduling.
        let mut locality_factor = 1.0;
        if kind == SlotKind::Map && self.config.locality.is_some() {
            match self.pick_map_task(wf, job, node) {
                Some((_task, true)) => self.local_map_tasks += 1,
                Some((_task, false)) => {
                    self.remote_map_tasks += 1;
                    locality_factor = self.config.locality.expect("set").remote_penalty;
                }
                None => return false,
            }
        }
        let mut factor = jitter_factor(
            self.config.seed,
            wf,
            job,
            kind,
            index,
            self.config.duration_jitter,
        ) * locality_factor;
        let attempt = self.next_attempt;
        self.next_attempt += 1;
        if let Some(spec) = self.config.speculation {
            if self.rng.straggler(attempt) < spec.straggler_prob {
                factor *= spec.straggler_factor.max(1.0);
                self.stragglers += 1;
            }
        }
        if self.track_attempts {
            let group = self.next_group;
            self.next_group += 1;
            self.attempts.insert(
                attempt,
                Attempt {
                    wf,
                    job,
                    kind,
                    node,
                    group,
                    started: self.now,
                    estimate,
                    speculative: false,
                    cancelled: false,
                },
            );
            self.groups.insert(
                group,
                AttemptGroup {
                    done: false,
                    twin_launched: false,
                    attempts: [attempt, 0],
                    attempt_count: 1,
                },
            );
        }
        // A task always takes at least one millisecond.
        let duration = SimDuration::from_millis(estimate.mul_f64(factor).as_millis().max(1));

        self.pool.workflow_mut(wf).start_task(job, kind);
        self.nodes[node.index()].take(kind);
        self.touch_busy();
        self.busy_count[Self::kind_index(kind)] += 1;
        if let Some(rec) = self.recorder.as_mut() {
            rec.record(self.now, wf, kind, 1);
        }
        if self.sink.is_some() {
            self.emit(TraceEvent::TaskStart {
                node: node.index(),
                workflow: wf,
                job: job.as_u32() as usize,
                kind,
                speculative: false,
            });
        }
        if let Some(m) = &mut self.metrics {
            m.tasks_started.inc();
        }
        self.tasks_executed += 1;
        self.schedule(
            self.now + duration,
            Event::TaskComplete {
                node,
                workflow: wf,
                job,
                kind,
                attempt,
            },
        );
        if notify {
            scheduler.on_task_assigned(&self.pool, wf, job, kind, self.now);
        }
        true
    }

    /// Whether risk-aware placement is active (prediction on with the
    /// placement policy enabled).
    fn risk_placement_on(&self) -> bool {
        matches!(&self.config.prediction, Some(p) if p.risk_placement)
    }

    /// Whether the sequential-path offer of `(node, wf)` should be
    /// declined because the node is failure-prone, the workflow is
    /// deadline-critical, and a safer live node has a free slot of this
    /// kind right now — an escape route the declined task can actually
    /// take. Gating on free capacity rather than mere node liveness keeps
    /// the policy quiet when the cluster is saturated: under heavy churn
    /// every slot is spoken for, declining just idles the node's remaining
    /// slots for the heartbeat, and any slot beats none. Counts and traces
    /// the aversion when it declines.
    fn decline_for_risk(
        &mut self,
        scheduler: &mut dyn WorkflowScheduler,
        node: NodeId,
        wf: WorkflowId,
        kind: SlotKind,
    ) -> bool {
        let p = self
            .config
            .prediction
            .expect("risk placement implies prediction");
        let Some(health) = &self.health else {
            return false;
        };
        if !health.risky(node, self.now, p.risk_threshold) {
            return false;
        }
        if scheduler.slack_fraction(&self.pool, wf, self.now) >= p.slack_threshold {
            return false;
        }
        let escape_exists = (0..self.node_count).any(|i| {
            i != node.index()
                && self.alive[i]
                && !self.node_blacklisted[i]
                && self.nodes[i].free(kind) > 0
                && !health.risky(NodeId::new(i as u32), self.now, p.risk_threshold)
        });
        if !escape_exists {
            return false;
        }
        self.health.as_mut().expect("checked above").risk_averted += 1;
        if self.sink.is_some() {
            self.emit(TraceEvent::RiskAverted {
                node: node.index(),
                workflow: wf,
            });
        }
        if let Some(m) = &mut self.metrics {
            m.risk_averted.inc();
        }
        true
    }

    /// Launches a preemptive duplicate of an attempt running on a
    /// failure-prone node, if any, onto the (safe) `node`. A duplicate
    /// burns a slot for the attempt's whole duration even when the
    /// original survives, so only *repeat offenders* — nodes at twice the
    /// risk threshold, i.e. multiple recent crashes still undecayed —
    /// qualify. Highest propensity first, ties broken by lowest attempt
    /// id, so the choice is deterministic. Returns whether a duplicate was
    /// launched.
    fn try_speculate_risk(&mut self, node: NodeId, kind: SlotKind) -> bool {
        let Some(p) = self.config.prediction else {
            return false;
        };
        if !p.risk_placement {
            return false;
        }
        let Some(health) = &self.health else {
            return false;
        };
        let now = self.now;
        // Never duplicate onto a node that is itself risky.
        if health.risky(node, now, p.risk_threshold) {
            return false;
        }
        let candidate = self
            .attempts
            .iter()
            .filter(|(_, a)| {
                a.kind == kind && !a.speculative && !a.cancelled && a.node != node && {
                    let g = &self.groups[&a.group];
                    !g.done && !g.twin_launched
                }
            })
            .filter_map(|(&id, a)| {
                let score = health.score(a.node, now);
                (score >= 2.0 * p.risk_threshold).then_some((id, score))
            })
            .fold(None::<(u64, f64)>, |best, (id, score)| match best {
                Some((best_id, best_score))
                    if best_score > score || (best_score == score && best_id < id) =>
                {
                    best
                }
                _ => Some((id, score)),
            })
            .map(|(id, _)| id);
        let Some(original_id) = candidate else {
            return false;
        };
        self.launch_duplicate(original_id, node, kind, true);
        true
    }

    /// Launches a speculative duplicate of the most-overdue running
    /// attempt of `kind`, if any, onto `node`. Under risk placement,
    /// attempts running on failure-prone nodes are duplicated first (a
    /// preemptive copy before the node dies), then the overdue-based
    /// policy applies unchanged. Returns whether a duplicate was launched.
    fn try_speculate(&mut self, node: NodeId, kind: SlotKind) -> bool {
        if self.try_speculate_risk(node, kind) {
            return true;
        }
        let Some(spec) = self.config.speculation else {
            return false;
        };
        let now = self.now;
        // Most-overdue original attempt without a twin.
        let candidate = self
            .attempts
            .iter()
            .filter(|(_, a)| {
                a.kind == kind && !a.speculative && !a.cancelled && {
                    let g = &self.groups[&a.group];
                    !g.done && !g.twin_launched
                }
            })
            .filter_map(|(&id, a)| {
                let elapsed = now.saturating_since(a.started).as_millis() as f64;
                let budget = a.estimate.as_millis().max(1) as f64 * spec.speculate_after;
                (elapsed > budget).then_some((id, elapsed / budget))
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite ratios"))
            .map(|(id, _)| id);
        let Some(original_id) = candidate else {
            return false;
        };
        self.launch_duplicate(original_id, node, kind, false);
        true
    }

    /// Starts a speculative duplicate of `original_id` on `node`; shared
    /// by overdue-based and risk-preemptive speculation. `preemptive`
    /// marks risk-driven launches for the prediction counters.
    fn launch_duplicate(
        &mut self,
        original_id: u64,
        node: NodeId,
        kind: SlotKind,
        preemptive: bool,
    ) {
        let now = self.now;
        let original = self.attempts[&original_id];
        let attempt = self.next_attempt;
        self.next_attempt += 1;
        // The duplicate gets a fresh duration (its own straggler roll).
        let mut factor = 1.0;
        if let Some(spec) = self.config.speculation {
            if self.rng.straggler(attempt) < spec.straggler_prob {
                factor *= spec.straggler_factor.max(1.0);
                self.stragglers += 1;
            }
        }
        let duration =
            SimDuration::from_millis(original.estimate.mul_f64(factor).as_millis().max(1));
        self.attempts.insert(
            attempt,
            Attempt {
                node,
                started: now,
                speculative: true,
                cancelled: false,
                ..original
            },
        );
        let group = self.groups.get_mut(&original.group).expect("live group");
        group.twin_launched = true;
        group.attempts[1] = attempt;
        group.attempt_count = 2;
        self.speculative_launched += 1;
        if preemptive {
            if let Some(h) = self.health.as_mut() {
                h.preemptive_speculations += 1;
            }
            if let Some(m) = &mut self.metrics {
                m.preemptive_speculations.inc();
            }
        }

        self.pool
            .workflow_mut(original.wf)
            .start_speculative(original.job, kind);
        self.nodes[node.index()].take(kind);
        self.touch_busy();
        self.busy_count[Self::kind_index(kind)] += 1;
        if let Some(rec) = self.recorder.as_mut() {
            rec.record(now, original.wf, kind, 1);
        }
        if self.sink.is_some() {
            self.emit(TraceEvent::TaskStart {
                node: node.index(),
                workflow: original.wf,
                job: original.job.as_u32() as usize,
                kind,
                speculative: true,
            });
        }
        if let Some(m) = &mut self.metrics {
            m.tasks_started.inc();
        }
        self.schedule(
            now + duration,
            Event::TaskComplete {
                node,
                workflow: original.wf,
                job: original.job,
                kind,
                attempt,
            },
        );
    }

    /// A node crashes: every attempt on it dies, its slots leave the pool,
    /// and detection (plus repair, for stochastic crashes) is scheduled.
    /// The JobTracker's pool is *not* touched yet — it still believes the
    /// tasks are running until [`Self::requeue_lost`].
    fn handle_node_down(&mut self, node: NodeId) {
        let i = node.index();
        if !self.alive[i] || self.node_blacklisted[i] {
            return;
        }
        self.alive[i] = false;
        self.incident[i] += 1;
        self.crash_count[i] += 1;
        self.node_failures += 1;
        self.emit(TraceEvent::NodeDown { node: i });
        if let Some(m) = &mut self.metrics {
            m.node_failures.inc();
        }
        self.touch_busy();
        // Kill every live attempt on the node, in attempt-id order (the
        // map iterates in arbitrary order; sorting keeps runs seeded).
        let mut victims: Vec<u64> = self
            .attempts
            .iter()
            .filter(|(_, a)| a.node == node && !a.cancelled)
            .map(|(&id, _)| id)
            .collect();
        victims.sort_unstable();
        let victim_count = victims.len();
        for id in victims {
            let a = self.attempts.get_mut(&id).expect("victim is registered");
            a.cancelled = true;
            let a = *a;
            self.busy_count[Self::kind_index(a.kind)] -= 1;
            if let Some(rec) = self.recorder.as_mut() {
                rec.record(self.now, a.wf, a.kind, -1);
            }
            if self.sink.is_some() {
                self.emit(TraceEvent::TaskKilled {
                    node: i,
                    workflow: a.wf,
                    job: a.job.as_u32() as usize,
                    kind: a.kind,
                });
            }
            self.work_lost_slot_ms += u128::from(self.now.saturating_since(a.started).as_millis());
            let group = self.groups.get(&a.group).expect("live group");
            let twin_alive = group.attempts[..usize::from(group.attempt_count)]
                .iter()
                .any(|&o| o != id && self.attempts.get(&o).is_some_and(|t| !t.cancelled));
            if !twin_alive {
                self.groups.remove(&a.group);
            }
            self.lost_pending[i].push(LostTask {
                wf: a.wf,
                job: a.job,
                kind: a.kind,
                solo: !twin_alive,
            });
        }
        // Slots leave the pool until the node re-registers.
        self.nodes[i].free_maps = 0;
        self.nodes[i].free_reduces = 0;
        let node_cfg = self.cluster.node(node);
        if let Some(rec) = self.recorder.as_mut() {
            rec.record_down(self.now, node_cfg.total_slots() as i32);
        }
        let faults = self.cluster.faults();
        // Failure prediction: fold this crash into the node's propensity
        // score — the crash itself plus a per-victim term, since a crash
        // that took running work down with it is stronger evidence.
        if let Some(p) = self.config.prediction {
            self.health
                .as_mut()
                .expect("prediction implies health tracker")
                .bump(
                    node,
                    self.now,
                    p.crash_weight + p.kill_weight * victim_count as f64,
                );
        }
        // Blacklisting: the adaptive propensity-threshold policy when
        // configured, otherwise the fixed crash-count policy (the default,
        // preserved for byte-identical replays).
        let adaptive = self.config.prediction.and_then(|p| p.adaptive_blacklist);
        let blacklist = match adaptive {
            Some(threshold) => self
                .health
                .as_ref()
                .expect("adaptive blacklist implies health tracker")
                .risky(node, self.now, threshold),
            None => faults.blacklist_after > 0 && self.crash_count[i] >= faults.blacklist_after,
        };
        if blacklist {
            self.node_blacklisted[i] = true;
            self.nodes_blacklisted += 1;
            if adaptive.is_some() {
                self.health
                    .as_mut()
                    .expect("checked above")
                    .adaptive_blacklists += 1;
            }
            self.emit(TraceEvent::NodeBlacklisted { node: i });
        }
        // Failure detector: the JobTracker declares the node lost after it
        // misses the configured number of heartbeats.
        let detect = SimDuration::from_millis(
            self.cluster.heartbeat_interval().as_millis()
                * u64::from(faults.detect_missed_heartbeats.max(1)),
        );
        self.schedule(
            self.now.saturating_add(detect),
            Event::NodeLost {
                node,
                incident: self.incident[i],
            },
        );
        // Stochastic crashes sample their repair time now; scripted faults
        // carry their own absolute repair times.
        if let Some(mttr) = faults.mtbf.map(|_| faults.mttr) {
            let ttr = self.rng.time_to_repair(node, self.incident[i], mttr);
            self.schedule(self.now.saturating_add(ttr), Event::NodeUp(node));
        }
    }

    /// A node finishes repair and re-registers with the JobTracker. Any
    /// work not yet requeued is requeued now (re-registration proves the
    /// old attempts are gone), and its slots rejoin the pool empty.
    fn handle_node_up(&mut self, scheduler: &mut dyn WorkflowScheduler, node: NodeId) {
        let i = node.index();
        if self.alive[i] || self.node_blacklisted[i] {
            return;
        }
        self.requeue_lost(scheduler, node);
        self.alive[i] = true;
        self.node_recoveries += 1;
        self.emit(TraceEvent::NodeUp { node: i });
        let node_cfg = self.cluster.node(node);
        self.nodes[i].free_maps = node_cfg.map_slots;
        self.nodes[i].free_reduces = node_cfg.reduce_slots;
        if let Some(rec) = self.recorder.as_mut() {
            rec.record_down(self.now, -(node_cfg.total_slots() as i32));
        }
        if !self.heartbeat_live[i] {
            self.heartbeat_live[i] = true;
            self.schedule(self.now, Event::Heartbeat(node));
        }
        if let Some(mtbf) = self.cluster.faults().mtbf {
            let ttf = self.rng.time_to_failure(node, self.incident[i], mtbf);
            self.schedule(self.now.saturating_add(ttf), Event::NodeDown(node));
        }
    }

    /// The failure detector fires: if the node is still down and the
    /// detection belongs to the current outage, requeue its work and give
    /// the scheduler its node-loss checkpoint.
    fn handle_node_lost(
        &mut self,
        scheduler: &mut dyn WorkflowScheduler,
        node: NodeId,
        incident: u64,
    ) {
        let i = node.index();
        if self.alive[i] || self.incident[i] != incident {
            return;
        }
        self.requeue_lost(scheduler, node);
        scheduler.on_node_lost(&self.pool, node, self.now);
    }

    /// Applies the JobTracker-side consequences of a crash: killed attempts
    /// re-enter the pending queues, and completed map outputs hosted on the
    /// node are invalidated and re-executed while reducers still need them.
    fn requeue_lost(&mut self, scheduler: &mut dyn WorkflowScheduler, node: NodeId) {
        let lost = std::mem::take(&mut self.lost_pending[node.index()]);
        for t in lost {
            if t.solo {
                self.pool.workflow_mut(t.wf).fail_task(t.job, t.kind);
                self.tasks_requeued += 1;
                if t.kind == SlotKind::Map && self.config.locality.is_some() {
                    let spec_maps = self.pool.workflow(t.wf).spec().job(t.job).map_tasks();
                    let retried = self.pool.workflow(t.wf).job(t.job).retried(t.kind);
                    if let Some(ids) = self.pending_map_ids.get_mut(&(t.wf, t.job)) {
                        ids.push(spec_maps + retried);
                    }
                }
                scheduler.on_task_failed(&self.pool, t.wf, t.job, t.kind, self.now);
            } else {
                // A twin is still racing on another node: only undo this
                // attempt's running count.
                self.pool
                    .workflow_mut(t.wf)
                    .finish_speculative(t.job, t.kind);
            }
        }
        // Completed map outputs on the node are gone; jobs whose reducers
        // still need them re-execute those maps (in key order — the map
        // iterates in arbitrary order).
        let mut jobs: Vec<(WorkflowId, JobId)> = self
            .map_output_hosts
            .iter()
            .filter(|(_, hosts)| hosts.contains(&node))
            .map(|(&key, _)| key)
            .collect();
        jobs.sort_unstable_by_key(|&(wf, job)| (wf.as_u64(), job.as_u32()));
        for (wf, job) in jobs {
            let hosts = self
                .map_output_hosts
                .get_mut(&(wf, job))
                .expect("key exists");
            let before = hosts.len();
            hosts.retain(|&h| h != node);
            let lost = (before - hosts.len()) as u32;
            self.pool
                .workflow_mut(wf)
                .invalidate_completed_maps(job, lost);
            self.map_outputs_lost += u64::from(lost);
            if self.config.locality.is_some() {
                let spec_maps = self.pool.workflow(wf).spec().job(job).map_tasks();
                let retried = self.pool.workflow(wf).job(job).retried(SlotKind::Map);
                if let Some(ids) = self.pending_map_ids.get_mut(&(wf, job)) {
                    for k in 0..lost {
                        ids.push(spec_maps + retried - k);
                    }
                }
            }
            for _ in 0..lost {
                scheduler.on_task_failed(&self.pool, wf, job, SlotKind::Map, self.now);
            }
        }
    }

    /// A TaskTracker heartbeat: dead nodes stop the chain; live ones get
    /// their free slots offered and the next beat scheduled.
    fn handle_heartbeat(&mut self, scheduler: &mut dyn WorkflowScheduler, node: NodeId) {
        if self.fault_mode && !self.alive[node.index()] {
            // A dead node stops heartbeating; NodeUp restarts the chain
            // when it re-registers.
            self.heartbeat_live[node.index()] = false;
        } else {
            if self.sink.is_some() || self.metrics.is_some() {
                let slots = &self.nodes[node.index()];
                let (free_maps, free_reduces) = (slots.free_maps, slots.free_reduces);
                self.emit(TraceEvent::Heartbeat {
                    node: node.index(),
                    free_maps,
                    free_reduces,
                });
                if let Some(m) = &mut self.metrics {
                    m.heartbeats.inc();
                }
            }
            self.assign_node(scheduler, node);
            // Keep the chain alive while work remains — including work the
            // source has not delivered yet.
            if self.remaining > 0 || !self.exhausted {
                self.schedule(
                    self.now + self.cluster.heartbeat_interval(),
                    Event::Heartbeat(node),
                );
            }
        }
    }

    /// Applies one event to the master state. Called from the main loop
    /// and, with [`Self::replaying`] set, from WAL replay during recovery.
    fn dispatch(&mut self, scheduler: &mut dyn WorkflowScheduler, event: Event) {
        match event {
            Event::WorkflowArrival(i) => {
                // WAL replay may carry arrivals pulled after the restored
                // checkpoint was taken; grow the ledger exactly as the
                // injection path did originally.
                while self.arrived.len() <= i {
                    self.arrived.push(false);
                    self.remaining += 1;
                }
                self.arrived[i] = true;
                let spec = self.workflows[i].clone();
                self.handle_arrival(scheduler, &spec);
            }
            Event::JobActivated(wf, job) => self.handle_activation(scheduler, wf, job),
            Event::Heartbeat(node) => self.handle_heartbeat(scheduler, node),
            Event::TaskComplete {
                node,
                workflow,
                job,
                kind,
                attempt,
            } => self.handle_completion(scheduler, node, workflow, job, kind, attempt),
            Event::NodeDown(node) => self.handle_node_down(node),
            Event::NodeUp(node) => self.handle_node_up(scheduler, node),
            Event::NodeLost { node, incident } => self.handle_node_lost(scheduler, node, incident),
            Event::Checkpoint => self.handle_checkpoint(scheduler),
            Event::MasterCrash { incident } => self.handle_master_crash(scheduler, incident),
            Event::MasterRecovered { incident } => {
                self.handle_master_recovered(scheduler, incident)
            }
        }
        self.drain_sched(scheduler);
    }

    /// Serializes the full master state (see [`crate::snapshot`]). Maps
    /// are emitted as key-sorted vectors so the encoding is deterministic.
    fn build_snapshot(&self, scheduler: &dyn WorkflowScheduler) -> MasterSnapshot {
        let mut attempts: Vec<AttemptRecord> = self
            .attempts
            .iter()
            .map(|(&id, a)| AttemptRecord {
                id,
                wf: a.wf,
                job: a.job,
                kind: a.kind,
                node: a.node,
                group: a.group,
                started: a.started,
                estimate: a.estimate,
                speculative: a.speculative,
                cancelled: a.cancelled,
            })
            .collect();
        attempts.sort_unstable_by_key(|a| a.id);
        let mut groups: Vec<GroupRecord> = self
            .groups
            .iter()
            .map(|(&id, g)| GroupRecord {
                id,
                done: g.done,
                twin_launched: g.twin_launched,
                attempts: g.attempts,
                attempt_count: g.attempt_count,
            })
            .collect();
        groups.sort_unstable_by_key(|g| g.id);
        let mut pending_map_ids: Vec<PendingMapsRecord> = self
            .pending_map_ids
            .iter()
            .map(|(&(wf, job), ids)| PendingMapsRecord {
                wf,
                job,
                ids: ids.clone(),
            })
            .collect();
        pending_map_ids.sort_unstable_by_key(|r| (r.wf.as_u64(), r.job.as_u32()));
        let mut delay_skips: Vec<DelaySkipRecord> = self
            .delay_skips
            .iter()
            .map(|(&(wf, job), &skips)| DelaySkipRecord { wf, job, skips })
            .collect();
        delay_skips.sort_unstable_by_key(|r| (r.wf.as_u64(), r.job.as_u32()));
        let mut map_output_hosts: Vec<MapOutputRecord> = self
            .map_output_hosts
            .iter()
            .map(|(&(wf, job), hosts)| MapOutputRecord {
                wf,
                job,
                hosts: hosts.clone(),
            })
            .collect();
        map_output_hosts.sort_unstable_by_key(|r| (r.wf.as_u64(), r.job.as_u32()));
        MasterSnapshot {
            taken_at: self.now,
            pool: self.pool.clone(),
            source_cursor: self.arrived.len() as u64,
            arrived: self.arrived.clone(),
            attempts,
            groups,
            next_attempt: self.next_attempt,
            next_group: self.next_group,
            pending_map_ids,
            delay_skips,
            map_output_hosts,
            node_slots: self
                .nodes
                .iter()
                .map(|n| NodeSlotsRecord {
                    free_maps: n.free_maps,
                    free_reduces: n.free_reduces,
                })
                .collect(),
            busy_count: self.busy_count,
            completion_seq: self.completion_seq,
            counters: SnapshotCounters {
                tasks_executed: self.tasks_executed,
                task_failures: self.task_failures,
                assign_calls: self.assign_calls,
                invalid_assignments: self.invalid_assignments,
                local_map_tasks: self.local_map_tasks,
                remote_map_tasks: self.remote_map_tasks,
                delay_skip_count: self.delay_skip_count,
                stragglers: self.stragglers,
                speculative_launched: self.speculative_launched,
                speculative_wins: self.speculative_wins,
                node_failures: self.node_failures,
                node_recoveries: self.node_recoveries,
                nodes_blacklisted: self.nodes_blacklisted,
                tasks_requeued: self.tasks_requeued,
                map_outputs_lost: self.map_outputs_lost,
                work_lost_slot_ms: self.work_lost_slot_ms,
            },
            fault: FaultSnapshot {
                alive: self.alive.clone(),
                blacklisted: self.node_blacklisted.clone(),
                incident: self.incident.clone(),
                crash_count: self.crash_count.clone(),
                heartbeat_live: self.heartbeat_live.clone(),
                lost_pending: self
                    .lost_pending
                    .iter()
                    .map(|v| {
                        v.iter()
                            .map(|t| LostTaskRecord {
                                wf: t.wf,
                                job: t.job,
                                kind: t.kind,
                                solo: t.solo,
                            })
                            .collect()
                    })
                    .collect(),
            },
            scheduler: scheduler.snapshot_state(),
            health: self.health.as_ref().map(NodeHealth::to_record),
        }
    }

    /// Replaces the master's logical state with a decoded checkpoint.
    fn install_snapshot(&mut self, scheduler: &mut dyn WorkflowScheduler, snap: MasterSnapshot) {
        self.pool = snap.pool;
        self.arrived = snap.arrived;
        debug_assert_eq!(
            snap.source_cursor as usize,
            self.arrived.len(),
            "snapshot arrival cursor matches its arrival ledger"
        );
        self.attempts = snap
            .attempts
            .into_iter()
            .map(|r| {
                (
                    r.id,
                    Attempt {
                        wf: r.wf,
                        job: r.job,
                        kind: r.kind,
                        node: r.node,
                        group: r.group,
                        started: r.started,
                        estimate: r.estimate,
                        speculative: r.speculative,
                        cancelled: r.cancelled,
                    },
                )
            })
            .collect();
        self.groups = snap
            .groups
            .into_iter()
            .map(|r| {
                (
                    r.id,
                    AttemptGroup {
                        done: r.done,
                        twin_launched: r.twin_launched,
                        attempts: r.attempts,
                        attempt_count: r.attempt_count,
                    },
                )
            })
            .collect();
        self.next_attempt = snap.next_attempt;
        self.next_group = snap.next_group;
        self.pending_map_ids = snap
            .pending_map_ids
            .into_iter()
            .map(|r| ((r.wf, r.job), r.ids))
            .collect();
        self.delay_skips = snap
            .delay_skips
            .into_iter()
            .map(|r| ((r.wf, r.job), r.skips))
            .collect();
        self.map_output_hosts = snap
            .map_output_hosts
            .into_iter()
            .map(|r| ((r.wf, r.job), r.hosts))
            .collect();
        for (slots, r) in self.nodes.iter_mut().zip(&snap.node_slots) {
            slots.free_maps = r.free_maps;
            slots.free_reduces = r.free_reduces;
        }
        self.busy_count = snap.busy_count;
        self.completion_seq = snap.completion_seq;
        let c = snap.counters;
        self.tasks_executed = c.tasks_executed;
        self.task_failures = c.task_failures;
        self.assign_calls = c.assign_calls;
        self.invalid_assignments = c.invalid_assignments;
        self.local_map_tasks = c.local_map_tasks;
        self.remote_map_tasks = c.remote_map_tasks;
        self.delay_skip_count = c.delay_skip_count;
        self.stragglers = c.stragglers;
        self.speculative_launched = c.speculative_launched;
        self.speculative_wins = c.speculative_wins;
        self.node_failures = c.node_failures;
        self.node_recoveries = c.node_recoveries;
        self.nodes_blacklisted = c.nodes_blacklisted;
        self.tasks_requeued = c.tasks_requeued;
        self.map_outputs_lost = c.map_outputs_lost;
        self.work_lost_slot_ms = c.work_lost_slot_ms;
        let f = snap.fault;
        self.alive = f.alive;
        self.node_blacklisted = f.blacklisted;
        self.incident = f.incident;
        self.crash_count = f.crash_count;
        self.heartbeat_live = f.heartbeat_live;
        self.lost_pending = f
            .lost_pending
            .into_iter()
            .map(|v| {
                v.into_iter()
                    .map(|t| LostTask {
                        wf: t.wf,
                        job: t.job,
                        kind: t.kind,
                        solo: t.solo,
                    })
                    .collect()
            })
            .collect();
        self.remaining = self.arrived.len() - completed_workflows(&self.pool);
        if let (Some(health), Some(rec)) = (self.health.as_mut(), snap.health.as_ref()) {
            // Propensity is logical (learned) state: restore the
            // checkpoint and let WAL replay re-apply later crashes.
            health.restore(rec);
        }
        scheduler.restore_state(&self.pool, &snap.scheduler);
    }

    /// Takes a checkpoint: encodes the current master state and truncates
    /// the WAL.
    fn take_checkpoint(&mut self, scheduler: &mut dyn WorkflowScheduler) {
        let snap = self.build_snapshot(scheduler);
        self.checkpoint = Some(snap.encode());
        let superseded = self.wal.len() as u64;
        self.wal.clear();
        self.recovery.checkpoints_taken += 1;
        self.emit(TraceEvent::CheckpointTaken {
            wal_records: superseded,
        });
        if let Some(m) = &mut self.metrics {
            m.checkpoints.inc();
        }
    }

    fn handle_checkpoint(&mut self, scheduler: &mut dyn WorkflowScheduler) {
        self.take_checkpoint(scheduler);
        let interval = self.cluster.faults().master.checkpoint_interval;
        self.schedule(self.now.saturating_add(interval), Event::Checkpoint);
    }

    /// The JobTracker crashes. The world freezes for the restart duration
    /// (every pending event shifts by the outage); the replacement master
    /// restores the latest checkpoint, replays the WAL, and reconciles
    /// with the physical cluster as TaskTrackers re-register.
    fn handle_master_crash(&mut self, scheduler: &mut dyn WorkflowScheduler, incident: u64) {
        if incident != self.recovery.master_crashes {
            // A stale crash from before an earlier recovery.
            return;
        }
        let cluster = self.cluster;
        let mcfg = &cluster.faults().master;
        self.recovery.master_crashes += 1;
        self.emit(TraceEvent::MasterCrashed);
        self.touch_busy();
        // Pure-scripted schedules restart in exactly `mttr` (deterministic
        // for tests); stochastic ones sample an exponential restart time.
        let outage = if mcfg.mtbf.is_some() {
            self.rng.master_time_to_repair(incident, mcfg.mttr)
        } else {
            mcfg.mttr
        };
        self.recovery.master_downtime_ms += outage.as_millis();
        self.master_alive = false;
        let crash_time = self.now;
        let recover_at = crash_time.saturating_add(outage);

        // The physical world at the crash: node liveness, outage ordinals,
        // and blacklists do not reset because the master restarted.
        let phys_alive = std::mem::take(&mut self.alive);
        let phys_blacklisted = std::mem::take(&mut self.node_blacklisted);
        let phys_incident = std::mem::take(&mut self.incident);
        let phys_crash_count = std::mem::take(&mut self.crash_count);
        let phys_heartbeat_live = std::mem::take(&mut self.heartbeat_live);

        let pending = self.queue.drain_ordered();

        // Restore the latest checkpoint and replay the WAL onto it. The
        // replay re-derives every post-checkpoint decision (same RNG
        // streams, same attempt ids) without scheduling new events.
        let snap = MasterSnapshot::decode(self.checkpoint.as_ref().expect("genesis checkpoint"))
            .expect("checkpoint decodes");
        let wal = std::mem::take(&mut self.wal);
        self.install_snapshot(scheduler, snap);
        self.replaying = true;
        // Replay re-derives decisions the original master already made and
        // recorded: observability (like the timeline recorder) suspends so
        // nothing is double-counted or double-traced.
        let recorder = self.recorder.take();
        let sink = self.sink.take();
        let metrics = self.metrics.take();
        if self.sched_tracing {
            scheduler.set_tracing(false);
        }
        let replayed = wal.len() as u64;
        for (t, event) in wal {
            self.now = t;
            self.recovery.wal_records_replayed += 1;
            self.dispatch(scheduler, event);
        }
        self.recorder = recorder;
        self.sink = sink;
        self.metrics = metrics;
        if self.sched_tracing {
            // Re-arming also discards anything buffered during replay.
            scheduler.set_tracing(true);
        }
        self.replaying = false;
        self.now = crash_time;
        // The replay span is stamped at the recovery instant and stretches
        // back over the outage; nothing else fires inside that window.
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.record(TraceRecord {
                at: recover_at,
                event: TraceEvent::WalReplayed {
                    records: replayed,
                    outage,
                },
            });
        }
        if let Some(m) = &mut self.metrics {
            m.wal_replayed.add(replayed);
        }

        // The source cursor never rewinds: arrival slots the restored
        // checkpoint (plus WAL) predates belong to workflows already pulled
        // from the source, whose arrival events were pending at the crash
        // (or lost with it and resubmitted below).
        while self.arrived.len() < self.workflows.len() {
            self.arrived.push(false);
            self.remaining += 1;
        }
        // Workflows not yet pulled shift with the frozen world: their
        // effective arrival time gains the outage, exactly like the
        // pending events re-pushed below.
        self.arrival_shift = self.arrival_shift.saturating_add(outage);

        // Node failures that happened but fell into a lost WAL suffix still
        // count toward the report; derive per-node recoveries from the
        // crash-count delta and the liveness transition.
        for i in 0..self.node_count {
            let missed_downs = i64::from(phys_crash_count[i]) - i64::from(self.crash_count[i]);
            let missed_ups = missed_downs + i64::from(phys_alive[i]) - i64::from(self.alive[i]);
            self.node_failures += missed_downs.max(0) as u64;
            self.node_recoveries += missed_ups.max(0) as u64;
            if phys_blacklisted[i] && !self.node_blacklisted[i] {
                self.nodes_blacklisted += 1;
            }
        }
        self.alive = phys_alive;
        self.node_blacklisted = phys_blacklisted;
        self.incident = phys_incident;
        self.crash_count = phys_crash_count;
        self.heartbeat_live = phys_heartbeat_live;

        // Reconciliation: TaskTrackers re-register with the new master and
        // report what they are running. An attempt the recovered state
        // knows about is re-adopted if its node is live and its completion
        // is still pending; otherwise it is killed and requeued (Hadoop-1
        // kills attempts the restarted JobTracker cannot account for).
        let pending_attempts: HashSet<u64> = pending
            .iter()
            .filter_map(|(_, e)| match e {
                Event::TaskComplete { attempt, .. } => Some(*attempt),
                _ => None,
            })
            .collect();
        let mut ids: Vec<u64> = self.attempts.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let a = self.attempts[&id];
            if a.cancelled {
                continue;
            }
            if self.alive[a.node.index()] && pending_attempts.contains(&id) {
                // Re-adopted: the attempt kept running through the outage;
                // its completion shifts with everything else.
                let a = self.attempts.get_mut(&id).expect("registered");
                a.started = a.started.saturating_add(outage);
                self.recovery.attempts_readopted += 1;
                continue;
            }
            // Dead node, or the completion fell into the lost WAL suffix:
            // kill the attempt and requeue its task.
            let a = self.attempts.get_mut(&id).expect("registered");
            a.cancelled = true;
            let a = *a;
            let twin_alive = self.groups.get(&a.group).is_some_and(|g| {
                g.attempts[..usize::from(g.attempt_count)]
                    .iter()
                    .any(|&o| o != id && self.attempts.get(&o).is_some_and(|t| !t.cancelled))
            });
            if twin_alive {
                self.pool
                    .workflow_mut(a.wf)
                    .finish_speculative(a.job, a.kind);
            } else {
                self.groups.remove(&a.group);
                self.pool.workflow_mut(a.wf).fail_task(a.job, a.kind);
                self.tasks_requeued += 1;
                if a.kind == SlotKind::Map && self.config.locality.is_some() {
                    let spec_maps = self.pool.workflow(a.wf).spec().job(a.job).map_tasks();
                    let retried = self.pool.workflow(a.wf).job(a.job).retried(a.kind);
                    if let Some(ids) = self.pending_map_ids.get_mut(&(a.wf, a.job)) {
                        ids.push(spec_maps + retried);
                    }
                }
                scheduler.on_task_failed(&self.pool, a.wf, a.job, a.kind, self.now);
                self.recovery.attempts_requeued += 1;
            }
            self.work_lost_slot_ms +=
                u128::from(crash_time.saturating_since(a.started).as_millis());
            if let Some(rec) = self.recorder.as_mut() {
                rec.record(crash_time, a.wf, a.kind, -1);
            }
            if self.sink.is_some() {
                self.emit(TraceEvent::TaskKilled {
                    node: a.node.index(),
                    workflow: a.wf,
                    job: a.job.as_u32() as usize,
                    kind: a.kind,
                });
            }
            if !pending_attempts.contains(&id) {
                // No event will ever reference this attempt again.
                self.attempts.remove(&id);
            }
        }

        // Crash work whose detection (NodeLost) and repair (NodeUp) both
        // fell into the lost suffix would otherwise never be requeued:
        // re-registration at recovery surfaces it now.
        for i in 0..self.node_count {
            if self.lost_pending[i].is_empty() {
                continue;
            }
            let node = NodeId::new(i as u32);
            let has_wakeup = pending.iter().any(|(_, e)| match e {
                Event::NodeUp(n) => *n == node,
                Event::NodeLost {
                    node: n,
                    incident: inc,
                } => *n == node && *inc == self.incident[i],
                _ => false,
            });
            if !has_wakeup {
                self.requeue_lost(scheduler, node);
            }
        }

        // Rebuild slot occupancy from the surviving attempts.
        self.busy_count = [0, 0];
        for (i, slots) in self.nodes.iter_mut().enumerate() {
            if self.alive[i] && !self.node_blacklisted[i] {
                let cfg = cluster.node(NodeId::new(i as u32));
                slots.free_maps = cfg.map_slots;
                slots.free_reduces = cfg.reduce_slots;
            } else {
                slots.free_maps = 0;
                slots.free_reduces = 0;
            }
        }
        for a in self.attempts.values() {
            if !a.cancelled {
                self.busy_count[Self::kind_index(a.kind)] += 1;
                self.nodes[a.node.index()].take(a.kind);
            }
        }

        // Rebuild the event queue: recovery fires first, then the frozen
        // future shifted by the outage. Orphaned completions (attempts the
        // recovered master has no record of) are discarded; activations of
        // jobs no longer in the Submitting phase are stale; the checkpoint
        // cycle restarts fresh at recovery.
        let mut has_arrival = vec![false; self.arrived.len()];
        let mut has_activation: Vec<(WorkflowId, JobId)> = Vec::new();
        for (_, e) in &pending {
            match e {
                Event::WorkflowArrival(i) => has_arrival[*i] = true,
                Event::JobActivated(wf, job) => has_activation.push((*wf, *job)),
                _ => {}
            }
        }
        self.queue
            .push(recover_at, Event::MasterRecovered { incident });
        for (t, event) in pending {
            let keep = match &event {
                Event::TaskComplete {
                    attempt,
                    workflow,
                    job,
                    kind,
                    node,
                } => {
                    if self.attempts.contains_key(attempt) {
                        true
                    } else {
                        self.recovery.attempts_orphaned += 1;
                        if let Some(rec) = self.recorder.as_mut() {
                            rec.record(crash_time, *workflow, *kind, -1);
                        }
                        if let Some(sink) = self.sink.as_deref_mut() {
                            sink.record(TraceRecord {
                                at: crash_time,
                                event: TraceEvent::TaskKilled {
                                    node: node.index(),
                                    workflow: *workflow,
                                    job: job.as_u32() as usize,
                                    kind: *kind,
                                },
                            });
                        }
                        false
                    }
                }
                Event::JobActivated(wf, job) => {
                    // A workflow that arrived after the checkpoint is
                    // unknown to the restored master: its activation is as
                    // orphaned as the arrival, which gets resubmitted.
                    (wf.as_u64() as usize) < self.pool.len()
                        && self.pool.workflow(*wf).job(*job).phase() == JobPhase::Submitting
                }
                Event::Checkpoint => false,
                _ => true,
            };
            if keep {
                self.queue.push(t.saturating_add(outage), event);
            }
        }

        // Arrivals and submitter jobs consumed in the lost suffix are gone
        // from both the recovered state and the queue: the client (or the
        // workflow manager) resubmits them to the new master at recovery.
        let lost: Vec<usize> = (0..self.arrived.len())
            .filter(|&i| !self.arrived[i] && !has_arrival[i])
            .collect();
        for i in lost {
            self.queue.push(recover_at, Event::WorkflowArrival(i));
            self.recovery.workflows_resubmitted += 1;
        }
        let mut resubmit: Vec<(WorkflowId, JobId)> = Vec::new();
        for w in self.pool.workflows() {
            for job in w.spec().job_ids() {
                if w.job(job).phase() == JobPhase::Submitting
                    && !has_activation.contains(&(w.id(), job))
                {
                    resubmit.push((w.id(), job));
                }
            }
        }
        for (wf, job) in resubmit {
            self.queue.push(
                recover_at.saturating_add(self.config.submit_latency),
                Event::JobActivated(wf, job),
            );
            self.recovery.jobs_resubmitted += 1;
        }
    }

    /// The replacement JobTracker finishes recovery and resumes.
    fn handle_master_recovered(&mut self, scheduler: &mut dyn WorkflowScheduler, incident: u64) {
        debug_assert_eq!(incident + 1, self.recovery.master_crashes);
        // The outage contributes zero busy time: the integral window
        // restarts at recovery.
        self.last_busy_touch = self.now;
        self.master_alive = true;
        // A fresh checkpoint cycle starts immediately.
        self.take_checkpoint(scheduler);
        let cluster = self.cluster;
        let mcfg = &cluster.faults().master;
        self.schedule(
            self.now.saturating_add(mcfg.checkpoint_interval),
            Event::Checkpoint,
        );
        // Chain the next stochastic crash (scripted schedules were queued
        // up front and override stochastic crashes entirely).
        if mcfg.scripted.is_empty() {
            if let Some(mtbf) = mcfg.mtbf {
                let n = self.recovery.master_crashes;
                let ttf = self.rng.master_time_to_failure(n, mtbf);
                self.schedule(
                    self.now.saturating_add(ttf),
                    Event::MasterCrash { incident: n },
                );
            }
        }
    }
}

/// Runs one simulation of `workflows` under `scheduler` on `cluster`.
///
/// Workflows are submitted at their [`WorkflowSpec::submit_time`]s; the run
/// ends when every workflow completes or [`SimConfig::max_sim_time`] is
/// reached.
///
/// # Examples
///
/// ```
/// use woha_sim::{run_simulation, ClusterConfig, SimConfig, SubmitOrderScheduler};
/// use woha_model::{JobSpec, SimDuration, WorkflowBuilder};
///
/// let mut b = WorkflowBuilder::new("w");
/// b.add_job(JobSpec::new("only", 4, 2,
///     SimDuration::from_secs(10), SimDuration::from_secs(20)));
/// b.relative_deadline(SimDuration::from_mins(5));
/// let w = b.build().unwrap();
///
/// let report = run_simulation(
///     &[w],
///     &mut SubmitOrderScheduler::new(),
///     &ClusterConfig::uniform(2, 2, 1),
///     &SimConfig::default(),
/// );
/// assert!(report.completed);
/// assert_eq!(report.deadline_misses(), 0);
/// ```
///
/// # Panics
///
/// Panics on an invalid configuration (see [`SimError`]); use
/// [`try_run_simulation`] for a fallible variant.
pub fn run_simulation(
    workflows: &[WorkflowSpec],
    scheduler: &mut dyn WorkflowScheduler,
    cluster: &ClusterConfig,
    config: &SimConfig,
) -> SimReport {
    try_run_simulation(workflows, scheduler, cluster, config).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`run_simulation`]: validates the fault
/// configuration against the cluster before starting.
///
/// # Errors
///
/// Returns a [`SimError`] when a scripted fault names a node outside the
/// cluster, or master faults are enabled with a zero checkpoint interval
/// or restart time.
pub fn try_run_simulation(
    workflows: &[WorkflowSpec],
    scheduler: &mut dyn WorkflowScheduler,
    cluster: &ClusterConfig,
    config: &SimConfig,
) -> Result<SimReport, SimError> {
    // A thin wrapper over the streaming path: a [`VecSource`] yields the
    // slice in submission order, which reproduces the historical batch
    // driver byte for byte (proven by the E2E identity tests).
    let mut source = VecSource::new(workflows.to_vec());
    try_run_simulation_streamed(&mut source, scheduler, cluster, config, None)
}

/// Streaming variant of [`run_simulation`]: pulls workflows lazily from a
/// [`WorkloadSource`] as simulated time advances instead of materializing
/// the whole workload up front, and optionally screens each arrival
/// through an [`AdmissionGate`].
///
/// For a [`VecSource`] over the same workflows the report is byte-identical
/// to [`run_simulation`]. A rejected workflow never enters the cluster: it
/// produces no [`WorkflowOutcome`](crate::metrics::WorkflowOutcome) and is
/// only counted in [`SimReport::admission`].
///
/// # Panics
///
/// Panics on an invalid configuration (see [`SimError`]); use
/// [`try_run_simulation_streamed`] for a fallible variant.
pub fn run_simulation_streamed<'a>(
    source: &mut dyn WorkloadSource,
    scheduler: &mut dyn WorkflowScheduler,
    cluster: &'a ClusterConfig,
    config: &'a SimConfig,
    gate: Option<&'a mut dyn AdmissionGate>,
) -> SimReport {
    try_run_simulation_streamed(source, scheduler, cluster, config, gate)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`run_simulation_streamed`].
///
/// # Errors
///
/// Returns the same [`SimError`]s as [`try_run_simulation`].
pub fn try_run_simulation_streamed<'a>(
    source: &mut dyn WorkloadSource,
    scheduler: &mut dyn WorkflowScheduler,
    cluster: &'a ClusterConfig,
    config: &'a SimConfig,
    gate: Option<&'a mut dyn AdmissionGate>,
) -> Result<SimReport, SimError> {
    validate(cluster)?;
    Ok(run_inner(source, scheduler, cluster, config, gate, None, None).0)
}

/// Streaming-and-observed variant: like [`try_run_simulation_streamed`],
/// but records the decision-loop trace into a caller-supplied sink as the
/// run progresses — pass a [`JsonlTraceSink`](crate::obs::JsonlTraceSink)
/// to stream records to disk incrementally instead of buffering them — and
/// returns the [`MetricsRegistry`] when
/// [`ObservabilityConfig::metrics`] is on.
///
/// # Errors
///
/// Returns the same [`SimError`]s as [`try_run_simulation`].
pub fn try_run_simulation_streamed_observed<'a>(
    source: &mut dyn WorkloadSource,
    scheduler: &mut dyn WorkflowScheduler,
    cluster: &'a ClusterConfig,
    config: &'a SimConfig,
    gate: Option<&'a mut dyn AdmissionGate>,
    sink: Option<&'a mut dyn TraceSink>,
) -> Result<(SimReport, Option<MetricsRegistry>), SimError> {
    validate(cluster)?;
    let metrics = config
        .observability
        .metrics
        .then(|| MetricsRegistry::new(scheduler.backend_label()));
    let sched_tracing = sink.is_some() || metrics.is_some();
    if sched_tracing {
        scheduler.set_tracing(true);
    }
    let result = run_inner(source, scheduler, cluster, config, gate, sink, metrics);
    if sched_tracing {
        scheduler.set_tracing(false);
    }
    Ok(result)
}

/// Clocked variant of [`try_run_simulation_streamed_observed`]: the same
/// event loop, but time is governed by a caller-supplied [`Clock`].
///
/// With [`SimClock`] this is byte-identical to the streamed-observed entry
/// point (pinned by the E2E identity tests). With a
/// [`WallClock`](crate::clock::WallClock) the loop paces events against
/// real time and waits for live sources — this is the engine under
/// `woha serve --wall-clock`, where the source is typically a
/// [`FollowSource`](woha_trace::FollowSource) or
/// [`ChannelSource`](woha_trace::ChannelSource) behind an
/// [`ArrivalBuffer`](crate::backpressure::ArrivalBuffer).
///
/// # Errors
///
/// Returns the same [`SimError`]s as [`try_run_simulation`].
#[allow(clippy::too_many_arguments)]
pub fn try_run_simulation_clocked<'a>(
    source: &mut dyn WorkloadSource,
    scheduler: &mut dyn WorkflowScheduler,
    cluster: &'a ClusterConfig,
    config: &'a SimConfig,
    gate: Option<&'a mut dyn AdmissionGate>,
    sink: Option<&'a mut dyn TraceSink>,
    clock: &mut dyn Clock,
) -> Result<(SimReport, Option<MetricsRegistry>), SimError> {
    validate(cluster)?;
    let metrics = config
        .observability
        .metrics
        .then(|| MetricsRegistry::new(scheduler.backend_label()));
    let sched_tracing = sink.is_some() || metrics.is_some();
    if sched_tracing {
        scheduler.set_tracing(true);
    }
    let result = run_inner_clocked(
        source, scheduler, cluster, config, gate, sink, metrics, clock,
    );
    if sched_tracing {
        scheduler.set_tracing(false);
    }
    Ok(result)
}

/// Observability-enabled variant of [`run_simulation`]: runs the same
/// simulation and additionally returns the [`Observations`] collected
/// according to [`SimConfig::observability`] (an empty trace and no
/// metrics when the corresponding switches are off). The [`SimReport`] is
/// byte-identical to what [`run_simulation`] produces for the same inputs.
///
/// # Panics
///
/// Panics on an invalid configuration (see [`SimError`]); use
/// [`try_run_simulation_observed`] for a fallible variant.
pub fn run_simulation_observed(
    workflows: &[WorkflowSpec],
    scheduler: &mut dyn WorkflowScheduler,
    cluster: &ClusterConfig,
    config: &SimConfig,
) -> (SimReport, Observations) {
    try_run_simulation_observed(workflows, scheduler, cluster, config)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`run_simulation_observed`].
///
/// # Errors
///
/// Returns the same [`SimError`]s as [`try_run_simulation`].
pub fn try_run_simulation_observed(
    workflows: &[WorkflowSpec],
    scheduler: &mut dyn WorkflowScheduler,
    cluster: &ClusterConfig,
    config: &SimConfig,
) -> Result<(SimReport, Observations), SimError> {
    validate(cluster)?;
    let obs = &config.observability;
    let mut sink = obs.trace.then(MemorySink::new);
    let metrics = obs
        .metrics
        .then(|| MetricsRegistry::new(scheduler.backend_label()));
    // Scheduler-internal tracing feeds both the trace (pick records) and
    // the counters (plans/replans/rollbacks), so either switch arms it.
    let sched_tracing = obs.trace || obs.metrics;
    if sched_tracing {
        scheduler.set_tracing(true);
    }
    let mut source = VecSource::new(workflows.to_vec());
    let (report, metrics) = run_inner(
        &mut source,
        scheduler,
        cluster,
        config,
        None,
        sink.as_mut().map(|s| s as &mut dyn TraceSink),
        metrics,
    );
    if sched_tracing {
        scheduler.set_tracing(false);
    }
    let observations = Observations {
        trace: sink.map(MemorySink::into_records).unwrap_or_default(),
        metrics,
        node_count: cluster.node_count(),
    };
    Ok((report, observations))
}

/// Validates the cluster's fault configuration before a run starts.
fn validate(cluster: &ClusterConfig) -> Result<(), SimError> {
    let node_count = cluster.node_count();
    for f in &cluster.faults().scripted {
        for &node in &f.nodes {
            if node.index() >= node_count {
                return Err(SimError::UnknownScriptedNode { node, node_count });
            }
        }
    }
    let mcfg = &cluster.faults().master;
    if mcfg.enabled() {
        if mcfg.checkpoint_interval.is_zero() {
            return Err(SimError::ZeroCheckpointInterval);
        }
        if mcfg.mttr.is_zero() {
            return Err(SimError::ZeroMasterMttr);
        }
    }
    Ok(())
}

fn run_inner<'a>(
    source: &mut dyn WorkloadSource,
    scheduler: &mut dyn WorkflowScheduler,
    cluster: &'a ClusterConfig,
    config: &'a SimConfig,
    gate: Option<&'a mut dyn AdmissionGate>,
    sink: Option<&'a mut dyn TraceSink>,
    metrics: Option<MetricsRegistry>,
) -> (SimReport, Option<MetricsRegistry>) {
    run_inner_clocked(
        source,
        scheduler,
        cluster,
        config,
        gate,
        sink,
        metrics,
        &mut SimClock,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_inner_clocked<'a>(
    source: &mut dyn WorkloadSource,
    scheduler: &mut dyn WorkflowScheduler,
    cluster: &'a ClusterConfig,
    config: &'a SimConfig,
    gate: Option<&'a mut dyn AdmissionGate>,
    sink: Option<&'a mut dyn TraceSink>,
    metrics: Option<MetricsRegistry>,
    clock: &mut dyn Clock,
) -> (SimReport, Option<MetricsRegistry>) {
    let fault_mode = cluster.faults().enabled();
    let master_mode = cluster.faults().master.enabled();
    let node_count = cluster.node_count();
    let sched_tracing = sink.is_some() || metrics.is_some();
    let mut sim = Sim {
        config,
        cluster,
        queue: EventQueue::new(),
        pool: WorkflowPool::new(),
        nodes: cluster
            .nodes()
            .iter()
            .map(|n| NodeSlots {
                free_maps: n.map_slots,
                free_reduces: n.reduce_slots,
            })
            .collect(),
        remaining: 0,
        now: SimTime::ZERO,
        rng: FaultStream::new(config.seed),
        busy_count: [0, 0],
        busy_integral_ms: [0, 0],
        last_busy_touch: SimTime::ZERO,
        tasks_executed: 0,
        task_failures: 0,
        completion_seq: 0,
        assign_calls: 0,
        invalid_assignments: 0,
        events_processed: 0,
        recorder: config.effective_timelines().then(TimelineRecorder::default),
        node_count: cluster.node_count(),
        pending_map_ids: FastMap::default(),
        delay_skips: FastMap::default(),
        local_map_tasks: 0,
        remote_map_tasks: 0,
        delay_skip_count: 0,
        scheduler_nanos: 0,
        attempts: FastMap::default(),
        groups: FastMap::default(),
        next_attempt: 1,
        next_group: 1,
        stragglers: 0,
        speculative_launched: 0,
        speculative_wins: 0,
        track_attempts: config.speculation.is_some()
            || fault_mode
            || master_mode
            || config.prediction.is_some(),
        fault_mode,
        alive: vec![true; node_count],
        node_blacklisted: vec![false; node_count],
        incident: vec![0; node_count],
        crash_count: vec![0; node_count],
        heartbeat_live: vec![true; node_count],
        lost_pending: vec![Vec::new(); node_count],
        map_output_hosts: FastMap::default(),
        node_failures: 0,
        node_recoveries: 0,
        nodes_blacklisted: 0,
        tasks_requeued: 0,
        map_outputs_lost: 0,
        work_lost_slot_ms: 0,
        health: config
            .prediction
            .as_ref()
            .map(|p| NodeHealth::new(p, node_count)),
        master_mode,
        master_alive: true,
        replaying: false,
        checkpoint: None,
        wal: Vec::new(),
        arrived: vec![],
        workflows: Vec::new(),
        exhausted: false,
        arrival_shift: SimDuration::ZERO,
        gate,
        workflows_rejected: 0,
        rejections: BTreeMap::new(),
        recovery: RecoveryReport::default(),
        sink,
        metrics,
        sched_tracing,
        backend: scheduler.backend_label(),
        sched_scratch: Vec::new(),
        next_sample: SimTime::ZERO,
        obs_interval: config.effective_sample_interval(),
    };

    // Workflow arrivals are NOT pushed here: the main loop below pulls
    // them from the source lazily, as simulated time reaches them.
    // Staggered initial heartbeats.
    let interval_ms = cluster.heartbeat_interval().as_millis();
    for (i, node) in cluster.node_ids().enumerate() {
        let offset = SimDuration::from_millis(interval_ms * i as u64 / (node_count as u64).max(1));
        sim.queue
            .push(SimTime::ZERO + offset, Event::Heartbeat(node));
    }
    // Fault schedule: scripted outages verbatim (each fault takes its node
    // set down atomically), plus the first stochastic crash per node
    // (later crashes chain off each recovery).
    if fault_mode {
        for f in &cluster.faults().scripted {
            for &node in &f.nodes {
                sim.queue.push(f.down_at, Event::NodeDown(node));
                if let Some(up) = f.up_at {
                    sim.queue.push(up, Event::NodeUp(node));
                }
            }
        }
        if let Some(mtbf) = cluster.faults().mtbf {
            for node in cluster.node_ids() {
                let ttf = sim.rng.time_to_failure(node, 0, mtbf);
                sim.queue.push(SimTime::ZERO + ttf, Event::NodeDown(node));
            }
        }
    }
    // Master-fault schedule: a genesis checkpoint (recovery always has a
    // snapshot to restore), the periodic checkpoint chain, and the crash
    // schedule — scripted crash times verbatim (stamped with their crash
    // ordinal), or the first stochastic crash when nothing is scripted.
    let wal_enabled = master_mode && cluster.faults().master.wal;
    if master_mode {
        let mcfg = &cluster.faults().master;
        sim.take_checkpoint(scheduler);
        sim.queue.push(
            SimTime::ZERO.saturating_add(mcfg.checkpoint_interval),
            Event::Checkpoint,
        );
        let mut crashes = mcfg.scripted.clone();
        crashes.sort_unstable();
        for (k, &at) in crashes.iter().enumerate() {
            sim.queue
                .push(at, Event::MasterCrash { incident: k as u64 });
        }
        if crashes.is_empty() {
            if let Some(mtbf) = mcfg.mtbf {
                let ttf = sim.rng.master_time_to_failure(0, mtbf);
                sim.queue
                    .push(SimTime::ZERO + ttf, Event::MasterCrash { incident: 0 });
            }
        }
    }

    let mut truncated = false;
    loop {
        // Pull every source arrival due at or before the queue head (all
        // of them when the queue is empty): each injected arrival lands in
        // the queue's priority lane at its effective submission time, so
        // by the time an event at time T is processed, every workflow
        // submitted at or before T has been pulled, gated, and enqueued —
        // exactly the set the batch driver had pre-registered. Arrivals
        // the gate turns away are counted and dropped on the spot. A live
        // source may have no data *yet* (Pending); the clock decides
        // whether to wait it out, service the next due event, or — for
        // the replay clock, which never waits — treat it as the end.
        while !sim.exhausted {
            let submit = match source.poll_time() {
                SourcePoll::Ready(submit) => submit,
                SourcePoll::Exhausted => {
                    sim.exhausted = true;
                    break;
                }
                SourcePoll::Pending => match clock.source_pending(sim.queue.peek_time()) {
                    SourceWait::Retry => continue,
                    SourceWait::EventDue => break,
                    SourceWait::Ended => {
                        sim.exhausted = true;
                        break;
                    }
                },
            };
            let at = clock.stamp(submit.saturating_add(sim.arrival_shift), sim.now);
            if sim.queue.peek_time().is_some_and(|head| at > head) {
                break;
            }
            let spec = source.next_workflow().expect("peeked source yields");
            if let Some(gate) = sim.gate.as_deref_mut() {
                if let Err(reason) = gate.admit(&spec, at) {
                    sim.workflows_rejected += 1;
                    *sim.rejections.entry(reason.clone()).or_insert(0) += 1;
                    if let Some(s) = sim.sink.as_deref_mut() {
                        s.record(TraceRecord {
                            at,
                            event: TraceEvent::AdmissionReject {
                                workflow: spec.name().to_string(),
                                reason,
                            },
                        });
                    }
                    continue;
                }
            }
            let index = sim.workflows.len();
            sim.workflows.push(spec);
            sim.arrived.push(false);
            sim.remaining += 1;
            sim.queue.push_arrival(at, Event::WorkflowArrival(index));
        }
        if sim.remaining == 0 && sim.exhausted {
            break;
        }
        // In wall-clock mode, wait (in poll slices) until the head event
        // is due, re-polling the source between slices so fresh arrivals
        // can still beat it. The replay clock is always ready.
        if let Some(head) = sim.queue.peek_time() {
            if !clock.ready_for(head) {
                continue;
            }
        }
        let Some((t, event)) = sim.queue.pop() else {
            break;
        };
        if t > config.max_sim_time {
            truncated = true;
            sim.now = config.max_sim_time;
            break;
        }
        debug_assert!(t >= sim.now, "time went backwards");
        sim.sample_gauges_before(t);
        sim.now = t;
        sim.events_processed += 1;
        if wal_enabled
            && sim.master_alive
            && !matches!(
                event,
                Event::Checkpoint | Event::MasterCrash { .. } | Event::MasterRecovered { .. }
            )
        {
            sim.wal.push((t, event.clone()));
        }
        if sim.config.batch_heartbeats && matches!(event, Event::Heartbeat(_)) {
            // Coalesce the run of same-tick heartbeats behind this one:
            // the nodes' slot offers all share `now`, so handling them
            // back to back in pop order is identical to popping them one
            // by one, and it turns N per-slot scheduler probes into one
            // batched pass per (node, kind). Each coalesced event is still
            // counted and WAL-logged individually so recovery replays the
            // exact same stream.
            let mut run = vec![event];
            while let Some((tn, Event::Heartbeat(_))) = sim.queue.peek() {
                if tn != t {
                    break;
                }
                let (_, next) = sim.queue.pop().expect("peeked event");
                sim.events_processed += 1;
                if wal_enabled && sim.master_alive {
                    sim.wal.push((t, next.clone()));
                }
                run.push(next);
            }
            if run.len() >= 2 {
                sim.emit(TraceEvent::BatchCoalesced {
                    heartbeats: run.len(),
                });
                if let Some(m) = &mut sim.metrics {
                    m.heartbeat_batches.inc();
                }
            }
            if let Some(m) = &mut sim.metrics {
                m.heartbeat_batch_size.observe(run.len() as f64);
            }
            for ev in run {
                sim.dispatch(scheduler, ev);
            }
        } else {
            sim.dispatch(scheduler, event);
        }
    }
    sim.touch_busy();

    let end_time = sim.now;
    sim.sample_gauges_through(end_time);
    let metrics = sim.metrics.take();
    let outcomes: Vec<WorkflowOutcome> = sim
        .pool
        .workflows()
        .iter()
        .map(|w| WorkflowOutcome {
            id: w.id(),
            name: w.spec().name().to_string(),
            submitted: w.spec().submit_time(),
            deadline: w.spec().deadline(),
            finished: w.finished_at(),
        })
        .collect();
    let completed =
        !truncated && sim.remaining == 0 && sim.exhausted && outcomes.len() == sim.workflows.len();
    let timelines = sim
        .recorder
        .take()
        .map(|rec| rec.finish(sim.pool.len(), end_time, config.effective_sample_interval()));
    let admission = sim.gate.is_some().then(|| AdmissionReport {
        workflows_rejected: sim.workflows_rejected,
        rejections: sim
            .rejections
            .iter()
            .map(|(reason, &count)| RejectCount {
                reason: reason.clone(),
                count,
            })
            .collect(),
    });
    let prediction = sim.health.as_ref().map(|h| PredictionReport {
        node_propensity: h.scores_at(end_time),
        plans_padded: scheduler.plans_padded(),
        risk_averted_placements: h.risk_averted,
        preemptive_speculations: h.preemptive_speculations,
        adaptive_blacklists: h.adaptive_blacklists,
    });
    let report = SimReport {
        scheduler: scheduler.name().to_string(),
        outcomes,
        end_time,
        completed,
        busy_slot_ms: sim.busy_integral_ms,
        total_slots: [
            cluster.total_slots(SlotKind::Map),
            cluster.total_slots(SlotKind::Reduce),
        ],
        tasks_executed: sim.tasks_executed,
        task_failures: sim.task_failures,
        local_map_tasks: sim.local_map_tasks,
        remote_map_tasks: sim.remote_map_tasks,
        delay_skips: sim.delay_skip_count,
        scheduler_nanos: sim.scheduler_nanos,
        stragglers: sim.stragglers,
        speculative_launched: sim.speculative_launched,
        speculative_wins: sim.speculative_wins,
        assign_calls: sim.assign_calls,
        invalid_assignments: sim.invalid_assignments,
        events_processed: sim.events_processed,
        node_failures: sim.node_failures,
        node_recoveries: sim.node_recoveries,
        nodes_blacklisted: sim.nodes_blacklisted,
        tasks_requeued: sim.tasks_requeued,
        map_outputs_lost: sim.map_outputs_lost,
        work_lost_slot_ms: sim.work_lost_slot_ms,
        timelines,
        recovery: sim.master_mode.then_some(sim.recovery),
        admission,
        prediction,
    };
    (report, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SubmitOrderScheduler;
    use woha_model::{JobSpec, WorkflowBuilder};

    fn simple_workflow(name: &str, submit_s: u64, deadline_rel_s: u64) -> WorkflowSpec {
        let mut b = WorkflowBuilder::new(name);
        let a = b.add_job(JobSpec::new(
            "a",
            4,
            2,
            SimDuration::from_secs(10),
            SimDuration::from_secs(20),
        ));
        let z = b.add_job(JobSpec::new(
            "z",
            2,
            1,
            SimDuration::from_secs(5),
            SimDuration::from_secs(15),
        ));
        b.add_dependency(a, z);
        b.submit_at(SimTime::from_secs(submit_s));
        b.relative_deadline(SimDuration::from_secs(deadline_rel_s));
        b.build().unwrap()
    }

    fn default_run(workflows: &[WorkflowSpec]) -> SimReport {
        run_simulation(
            workflows,
            &mut SubmitOrderScheduler::new(),
            &ClusterConfig::uniform(2, 2, 1),
            &SimConfig::default(),
        )
    }

    #[test]
    fn single_workflow_completes() {
        let report = default_run(&[simple_workflow("w", 0, 600)]);
        assert!(report.completed);
        assert_eq!(report.outcomes.len(), 1);
        assert!(report.outcomes[0].finished.is_some());
        assert_eq!(report.invalid_assignments, 0);
        // 4 + 2 + 2 + 1 tasks.
        assert_eq!(report.tasks_executed, 9);
    }

    #[test]
    fn phases_respect_dependencies() {
        // With 4 map slots and 2 reduce slots: job a needs one map wave
        // (10s) + one reduce wave (20s); then job z one map wave (5s) +
        // reduce (15s). Plus ~1s submit latency each and heartbeat slack.
        let report = default_run(&[simple_workflow("w", 0, 600)]);
        let finish = report.outcomes[0].finished.unwrap();
        // Lower bound: pure critical path 10+20+5+15 = 50s + 2 submit
        // latencies = 52s.
        assert!(finish >= SimTime::from_secs(52), "finish {finish}");
        // Upper bound with heartbeat slack: well under 70s.
        assert!(finish <= SimTime::from_secs(70), "finish {finish}");
    }

    #[test]
    fn deadline_outcome_reflects_finish() {
        let tight = default_run(&[simple_workflow("w", 0, 10)]);
        assert_eq!(tight.deadline_misses(), 1);
        assert!(tight.max_tardiness() > SimDuration::ZERO);
        let loose = default_run(&[simple_workflow("w", 0, 600)]);
        assert_eq!(loose.deadline_misses(), 0);
    }

    #[test]
    fn later_submission_time_is_respected() {
        let report = default_run(&[simple_workflow("w", 120, 600)]);
        let o = &report.outcomes[0];
        assert_eq!(o.submitted, SimTime::from_secs(120));
        assert!(o.finished.unwrap() > SimTime::from_secs(120));
        // Workspan is measured from submission, not from zero.
        assert!(o.workspan(report.end_time) < SimDuration::from_secs(100));
    }

    #[test]
    fn deterministic_across_runs() {
        let w = vec![
            simple_workflow("a", 0, 600),
            simple_workflow("b", 5, 600),
            simple_workflow("c", 10, 600),
        ];
        let r1 = default_run(&w);
        let r2 = default_run(&w);
        assert_eq!(r1, r2);
    }

    #[test]
    fn jitter_changes_durations_but_stays_deterministic() {
        let w = vec![simple_workflow("w", 0, 600)];
        let cfg = SimConfig {
            duration_jitter: 0.3,
            seed: 7,
            ..SimConfig::default()
        };
        let cluster = ClusterConfig::uniform(2, 2, 1);
        let r1 = run_simulation(&w, &mut SubmitOrderScheduler::new(), &cluster, &cfg);
        let r2 = run_simulation(&w, &mut SubmitOrderScheduler::new(), &cluster, &cfg);
        assert_eq!(r1, r2);
        let r0 = default_run(&w);
        assert_ne!(
            r0.outcomes[0].finished, r1.outcomes[0].finished,
            "jitter should perturb the schedule"
        );
        let other_seed = SimConfig { seed: 8, ..cfg };
        let r3 = run_simulation(&w, &mut SubmitOrderScheduler::new(), &cluster, &other_seed);
        assert_ne!(r1.outcomes[0].finished, r3.outcomes[0].finished);
    }

    #[test]
    fn max_sim_time_truncates() {
        let cfg = SimConfig {
            max_sim_time: SimTime::from_secs(20),
            ..SimConfig::default()
        };
        let report = run_simulation(
            &[simple_workflow("w", 0, 600)],
            &mut SubmitOrderScheduler::new(),
            &ClusterConfig::uniform(1, 1, 1),
            &cfg,
        );
        assert!(!report.completed);
        assert_eq!(report.outcomes[0].finished, None);
        assert!(report.end_time <= SimTime::from_secs(20));
    }

    #[test]
    fn utilization_bounded_and_positive() {
        let report = default_run(&[simple_workflow("w", 0, 600)]);
        let u = report.overall_utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn timelines_track_slot_occupancy() {
        let cfg = SimConfig {
            track_timelines: true,
            sample_interval: SimDuration::from_secs(1),
            ..SimConfig::default()
        };
        let report = run_simulation(
            &[simple_workflow("w", 0, 600)],
            &mut SubmitOrderScheduler::new(),
            &ClusterConfig::uniform(2, 2, 1),
            &cfg,
        );
        let tl = report.timelines.as_ref().unwrap();
        let maps = tl.series(WorkflowId::new(0), SlotKind::Map);
        // At some instant all 4 map slots are busy.
        assert_eq!(*maps.iter().max().unwrap(), 4);
        // Never exceeds cluster capacity.
        assert!(maps.iter().all(|&m| m <= 4));
        let reduces = tl.series(WorkflowId::new(0), SlotKind::Reduce);
        assert_eq!(*reduces.iter().max().unwrap(), 2);
    }

    #[test]
    fn work_conserving_with_parallel_workflows() {
        // Two identical workflows, cluster big enough for both: the second
        // must not wait for the first.
        let w = vec![simple_workflow("a", 0, 600), simple_workflow("b", 0, 600)];
        let report = run_simulation(
            &w,
            &mut SubmitOrderScheduler::new(),
            &ClusterConfig::uniform(8, 2, 1),
            &SimConfig::default(),
        );
        let f0 = report.outcomes[0].finished.unwrap();
        let f1 = report.outcomes[1].finished.unwrap();
        let spread = if f0 > f1 { f0 - f1 } else { f1 - f0 };
        assert!(spread < SimDuration::from_secs(5), "spread {spread}");
    }

    #[test]
    fn zero_submit_latency_works() {
        let cfg = SimConfig {
            submit_latency: SimDuration::ZERO,
            ..SimConfig::default()
        };
        let report = run_simulation(
            &[simple_workflow("w", 0, 600)],
            &mut SubmitOrderScheduler::new(),
            &ClusterConfig::uniform(2, 2, 1),
            &cfg,
        );
        assert!(report.completed);
    }

    #[test]
    fn failure_injection_retries_and_terminates() {
        let cfg = SimConfig {
            task_failure_prob: 0.3,
            seed: 5,
            ..SimConfig::default()
        };
        let report = run_simulation(
            &[simple_workflow("w", 0, 3_000)],
            &mut SubmitOrderScheduler::new(),
            &ClusterConfig::uniform(2, 2, 1),
            &cfg,
        );
        assert!(report.completed);
        assert!(report.task_failures > 0, "30% failure rate must fire");
        // Every failed attempt re-executes: executed = tasks + failures.
        assert_eq!(report.tasks_executed, 9 + report.task_failures);
        // Deterministic.
        let again = run_simulation(
            &[simple_workflow("w", 0, 3_000)],
            &mut SubmitOrderScheduler::new(),
            &ClusterConfig::uniform(2, 2, 1),
            &cfg,
        );
        assert_eq!(report, again);
    }

    #[test]
    fn failures_delay_completion() {
        let base = default_run(&[simple_workflow("w", 0, 3_000)]);
        let cfg = SimConfig {
            task_failure_prob: 0.5,
            seed: 3,
            ..SimConfig::default()
        };
        let faulty = run_simulation(
            &[simple_workflow("w", 0, 3_000)],
            &mut SubmitOrderScheduler::new(),
            &ClusterConfig::uniform(2, 2, 1),
            &cfg,
        );
        assert!(
            faulty.outcomes[0].finished.unwrap() > base.outcomes[0].finished.unwrap(),
            "failures must slow the workflow down"
        );
    }

    #[test]
    fn speculation_duplicates_stragglers_and_terminates() {
        // High straggler probability and patient threshold: speculation
        // must fire, resolve races, and the run must stay consistent.
        let cfg = SimConfig {
            speculation: Some(SpeculationConfig {
                straggler_prob: 0.4,
                straggler_factor: 8.0,
                speculate_after: 1.3,
            }),
            seed: 11,
            ..SimConfig::default()
        };
        // A workload wide enough to leave idle slots while stragglers run.
        let workflows = vec![simple_workflow("w", 0, 3_000)];
        let report = run_simulation(
            &workflows,
            &mut SubmitOrderScheduler::new(),
            &ClusterConfig::uniform(4, 2, 1),
            &cfg,
        );
        assert!(report.completed);
        assert!(report.stragglers > 0, "stragglers must be injected");
        assert!(
            report.speculative_launched > 0,
            "speculation must fire: {report:?}"
        );
        assert!(report.speculative_wins <= report.speculative_launched);
        // Deterministic.
        let again = run_simulation(
            &workflows,
            &mut SubmitOrderScheduler::new(),
            &ClusterConfig::uniform(4, 2, 1),
            &cfg,
        );
        assert_eq!(report, again);
    }

    #[test]
    fn speculation_beats_stragglers() {
        // With heavy stragglers, speculation should shorten the makespan
        // relative to no speculation (same straggler injection).
        let base_spec = SpeculationConfig {
            straggler_prob: 0.3,
            straggler_factor: 10.0,
            speculate_after: 1.2,
        };
        let run_with = |speculate: bool| {
            let cfg = SimConfig {
                speculation: Some(SpeculationConfig {
                    // Disable duplicates by making the threshold absurd.
                    speculate_after: if speculate {
                        base_spec.speculate_after
                    } else {
                        1e9
                    },
                    ..base_spec
                }),
                seed: 21,
                ..SimConfig::default()
            };
            run_simulation(
                &[simple_workflow("w", 0, 30_000)],
                &mut SubmitOrderScheduler::new(),
                &ClusterConfig::uniform(4, 2, 1),
                &cfg,
            )
        };
        let with = run_with(true);
        let without = run_with(false);
        assert!(with.completed && without.completed);
        assert!(without.speculative_launched == 0);
        assert!(
            with.end_time < without.end_time,
            "speculation should cut the straggler tail: {} vs {}",
            with.end_time,
            without.end_time
        );
    }

    #[test]
    fn speculation_composes_with_woha_style_accounting() {
        // Tasks executed still counts every *launch* (original + dup), and
        // per-workflow progress is untouched by duplicates.
        let cfg = SimConfig {
            speculation: Some(SpeculationConfig {
                straggler_prob: 0.5,
                straggler_factor: 6.0,
                speculate_after: 1.2,
            }),
            seed: 3,
            ..SimConfig::default()
        };
        let report = run_simulation(
            &[simple_workflow("w", 0, 30_000)],
            &mut SubmitOrderScheduler::new(),
            &ClusterConfig::uniform(4, 2, 1),
            &cfg,
        );
        assert!(report.completed);
        // 9 real tasks, plus one launch per original attempt only.
        assert_eq!(report.tasks_executed, 9);
        assert_eq!(report.invalid_assignments, 0);
    }

    #[test]
    fn locality_tracks_local_and_remote_tasks() {
        let cfg = SimConfig {
            locality: Some(LocalityConfig::default()),
            ..SimConfig::default()
        };
        let report = run_simulation(
            &[simple_workflow("w", 0, 600)],
            &mut SubmitOrderScheduler::new(),
            &ClusterConfig::uniform(4, 2, 1),
            &cfg,
        );
        assert!(report.completed);
        // Every map task is classified.
        assert_eq!(report.local_map_tasks + report.remote_map_tasks, 6);
        let ratio = report.map_locality_ratio();
        assert!((0.0..=1.0).contains(&ratio));
        // With 3 replicas over 4 nodes most tasks should find a local slot
        // eventually, but the run still completes either way.
    }

    #[test]
    fn delay_scheduling_improves_locality() {
        let workflows: Vec<WorkflowSpec> = (0..4)
            .map(|i| simple_workflow(&format!("w{i}"), i * 3, 3_000))
            .collect();
        let run_with = |skips: u32| {
            let cfg = SimConfig {
                locality: Some(LocalityConfig {
                    replicas: 1,
                    remote_penalty: 2.0,
                    max_delay_skips: skips,
                }),
                ..SimConfig::default()
            };
            run_simulation(
                &workflows,
                &mut SubmitOrderScheduler::new(),
                &ClusterConfig::uniform(8, 2, 1),
                &cfg,
            )
        };
        let eager = run_with(0);
        let patient = run_with(4);
        assert!(eager.completed && patient.completed);
        assert_eq!(eager.delay_skips, 0);
        assert!(
            patient.delay_skips > 0,
            "delay scheduling must decline offers"
        );
        assert!(
            patient.map_locality_ratio() >= eager.map_locality_ratio(),
            "waiting for local slots must not hurt locality: {} vs {}",
            patient.map_locality_ratio(),
            eager.map_locality_ratio()
        );
    }

    #[test]
    fn locality_composes_with_failures() {
        let cfg = SimConfig {
            locality: Some(LocalityConfig::default()),
            task_failure_prob: 0.3,
            seed: 7,
            ..SimConfig::default()
        };
        let report = run_simulation(
            &[simple_workflow("w", 0, 3_000)],
            &mut SubmitOrderScheduler::new(),
            &ClusterConfig::uniform(4, 2, 1),
            &cfg,
        );
        assert!(report.completed);
        assert!(report.task_failures > 0);
        assert_eq!(
            report.local_map_tasks + report.remote_map_tasks,
            // 6 original maps plus every retried map attempt.
            6 + report.task_failures - reduce_failures(&report)
        );
    }

    /// Failures on reduce tasks (no locality classification).
    fn reduce_failures(report: &SimReport) -> u64 {
        // executed = 9 tasks + all failures; map executions are classified.
        report.tasks_executed - (report.local_map_tasks + report.remote_map_tasks) - 3
    }

    mod faults {
        use super::*;
        use crate::fault::{FaultConfig, ScriptedFault};

        fn fault_cluster(faults: FaultConfig) -> ClusterConfig {
            ClusterConfig::uniform(2, 2, 1).with_faults(faults)
        }

        fn run(workflows: &[WorkflowSpec], cluster: &ClusterConfig, cfg: &SimConfig) -> SimReport {
            run_simulation(workflows, &mut SubmitOrderScheduler::new(), cluster, cfg)
        }

        #[test]
        fn disabled_fault_config_is_bit_identical() {
            let w = vec![simple_workflow("w", 0, 600)];
            let plain = default_run(&w);
            let with_default = run(
                &w,
                &fault_cluster(FaultConfig::default()),
                &SimConfig::default(),
            );
            assert_eq!(plain, with_default);
        }

        #[test]
        fn scripted_crash_requeues_and_recovers() {
            // Crash node 1 while job a's maps run; it recovers at 20 s.
            let faults = FaultConfig::scripted(vec![ScriptedFault::one(
                NodeId::new(1),
                SimTime::from_secs(5),
                Some(SimTime::from_secs(20)),
            )]);
            let cfg = SimConfig {
                track_timelines: true,
                sample_interval: SimDuration::from_secs(1),
                ..SimConfig::default()
            };
            let cluster = fault_cluster(faults);
            let w = [simple_workflow("w", 0, 3_000)];
            let report = run(&w, &cluster, &cfg);
            assert!(report.completed);
            assert_eq!(report.node_failures, 1);
            assert_eq!(report.node_recoveries, 1);
            assert!(report.tasks_requeued > 0, "running maps died with the node");
            assert!(report.work_lost_slot_ms > 0);
            // Every requeued or invalidated task launches again.
            assert_eq!(
                report.tasks_executed,
                9 + report.tasks_requeued + report.map_outputs_lost
            );
            // The node's 3 slots leave the pool during the outage and
            // return after it.
            let tl = report.timelines.as_ref().unwrap();
            assert!(tl.down_slots().contains(&3));
            assert_eq!(*tl.down_slots().last().unwrap(), 0);
            assert_eq!(report, run(&w, &cluster, &cfg), "fault runs are seeded");
        }

        #[test]
        fn node_loss_invalidates_completed_map_outputs() {
            // Crash node 1 after job a's maps finished (~11.5 s), while its
            // reduces still run: the two map outputs it hosted must
            // re-execute before the requeued reduce can restart.
            let faults = FaultConfig::scripted(vec![ScriptedFault::one(
                NodeId::new(1),
                SimTime::from_secs(15),
                Some(SimTime::from_secs(40)),
            )]);
            let report = run(
                &[simple_workflow("w", 0, 3_000)],
                &fault_cluster(faults),
                &SimConfig::default(),
            );
            assert!(report.completed);
            assert!(
                report.map_outputs_lost > 0,
                "completed maps died with the node"
            );
            assert_eq!(
                report.tasks_executed,
                9 + report.tasks_requeued + report.map_outputs_lost
            );
        }

        #[test]
        fn crashes_delay_completion() {
            let w = [simple_workflow("w", 0, 3_000)];
            let base = default_run(&w);
            let faults = FaultConfig::scripted(vec![ScriptedFault::one(
                NodeId::new(1),
                SimTime::from_secs(5),
                Some(SimTime::from_secs(60)),
            )]);
            let faulty = run(&w, &fault_cluster(faults), &SimConfig::default());
            assert!(
                faulty.outcomes[0].finished.unwrap() > base.outcomes[0].finished.unwrap(),
                "losing a node must slow the workflow down"
            );
        }

        #[test]
        fn blacklisted_node_never_rejoins() {
            let faults = FaultConfig {
                blacklist_after: 2,
                scripted: vec![
                    ScriptedFault::one(
                        NodeId::new(1),
                        SimTime::from_secs(5),
                        Some(SimTime::from_secs(10)),
                    ),
                    ScriptedFault::one(
                        NodeId::new(1),
                        SimTime::from_secs(15),
                        Some(SimTime::from_secs(20)),
                    ),
                ],
                ..FaultConfig::default()
            };
            let cfg = SimConfig {
                track_timelines: true,
                sample_interval: SimDuration::from_secs(1),
                ..SimConfig::default()
            };
            let report = run(
                &[simple_workflow("w", 0, 3_000)],
                &fault_cluster(faults),
                &cfg,
            );
            assert!(report.completed, "node 0 alone still finishes the work");
            assert_eq!(report.node_failures, 2);
            assert_eq!(report.node_recoveries, 1, "second repair is refused");
            assert_eq!(report.nodes_blacklisted, 1);
            // The blacklisted node's slots stay out of the pool for good.
            let tl = report.timelines.as_ref().unwrap();
            assert_eq!(*tl.down_slots().last().unwrap(), 3);
        }

        #[test]
        fn stochastic_faults_are_seeded() {
            let faults =
                FaultConfig::with_mtbf(SimDuration::from_secs(45), SimDuration::from_secs(10));
            let cluster = ClusterConfig::uniform(4, 2, 1).with_faults(faults);
            let w = [simple_workflow("w", 0, 30_000)];
            let cfg = SimConfig {
                seed: 13,
                ..SimConfig::default()
            };
            let r1 = run(&w, &cluster, &cfg);
            assert!(r1.completed);
            assert!(r1.node_failures > 0, "45 s MTBF must crash something");
            assert_eq!(r1, run(&w, &cluster, &cfg));
            let other = SimConfig {
                seed: 14,
                ..SimConfig::default()
            };
            assert_ne!(
                r1,
                run(&w, &cluster, &other),
                "seed drives the fault schedule"
            );
        }

        #[test]
        fn faults_compose_with_speculation_failures_and_locality() {
            let faults = FaultConfig {
                mtbf: Some(SimDuration::from_secs(60)),
                mttr: SimDuration::from_secs(8),
                ..FaultConfig::default()
            };
            let cluster = ClusterConfig::uniform(4, 2, 1).with_faults(faults);
            let cfg = SimConfig {
                task_failure_prob: 0.2,
                locality: Some(LocalityConfig::default()),
                speculation: Some(SpeculationConfig {
                    straggler_prob: 0.3,
                    straggler_factor: 6.0,
                    speculate_after: 1.3,
                }),
                seed: 17,
                ..SimConfig::default()
            };
            let w = [simple_workflow("w", 0, 30_000)];
            let report = run(&w, &cluster, &cfg);
            assert!(report.completed);
            assert_eq!(report, run(&w, &cluster, &cfg));
        }
    }

    mod master {
        use super::*;
        use crate::fault::{FaultConfig, MasterFaultConfig, ScriptedFault};

        fn master_faults(m: MasterFaultConfig) -> FaultConfig {
            FaultConfig {
                master: m,
                ..FaultConfig::default()
            }
        }

        fn cluster_with(m: MasterFaultConfig) -> ClusterConfig {
            ClusterConfig::uniform(2, 2, 1).with_faults(master_faults(m))
        }

        fn run(workflows: &[WorkflowSpec], cluster: &ClusterConfig, cfg: &SimConfig) -> SimReport {
            run_simulation(workflows, &mut SubmitOrderScheduler::new(), cluster, cfg)
        }

        #[test]
        fn disabled_master_faults_are_bit_identical_and_unreported() {
            let w = vec![simple_workflow("w", 0, 600)];
            let plain = default_run(&w);
            assert!(plain.recovery.is_none());
            let with_default = run(
                &w,
                &ClusterConfig::uniform(2, 2, 1).with_faults(FaultConfig::default()),
                &SimConfig::default(),
            );
            assert_eq!(plain, with_default);
        }

        #[test]
        fn lossless_crash_shifts_completion_by_exactly_the_restart_time() {
            // With the WAL, recovery replays to the crash instant and no
            // work is lost: under an order-based scheduler the whole run
            // is the uninterrupted run shifted by the outage.
            let w = vec![simple_workflow("w", 0, 3_000)];
            let base = default_run(&w);
            let mttr = SimDuration::from_secs(30);
            let cluster = cluster_with(MasterFaultConfig {
                mttr,
                scripted: vec![SimTime::from_secs(5)],
                ..MasterFaultConfig::default()
            });
            let report = run(&w, &cluster, &SimConfig::default());
            assert!(report.completed);
            let rec = report.recovery.as_ref().expect("master mode reports");
            assert_eq!(rec.master_crashes, 1);
            assert_eq!(rec.master_downtime_ms, mttr.as_millis());
            assert!(rec.wal_records_replayed > 0, "events since genesis replay");
            assert!(rec.attempts_readopted > 0, "crash lands mid-task");
            assert_eq!(rec.attempts_requeued, 0, "lossless recovery");
            assert_eq!(rec.attempts_orphaned, 0, "lossless recovery");
            assert_eq!(rec.workflows_resubmitted, 0);
            assert_eq!(rec.jobs_resubmitted, 0);
            // No work re-executes...
            assert_eq!(report.tasks_executed, base.tasks_executed);
            assert_eq!(report.tasks_requeued, 0);
            // ...and every completion shifts by exactly the outage.
            for (o, b) in report.outcomes.iter().zip(&base.outcomes) {
                assert_eq!(
                    o.finished.unwrap(),
                    b.finished.unwrap().saturating_add(mttr),
                    "{}",
                    o.name
                );
            }
            assert_eq!(report, run(&w, &cluster, &SimConfig::default()));
        }

        #[test]
        fn stale_snapshot_recovery_requeues_and_stays_deterministic() {
            // Without the WAL, recovery falls back to the last checkpoint:
            // everything since (including the arrival, with a checkpoint
            // interval longer than the crash time) is lost and must be
            // resubmitted, requeued, or orphaned.
            let w = vec![simple_workflow("w", 0, 3_000)];
            let cluster = cluster_with(MasterFaultConfig {
                mttr: SimDuration::from_secs(20),
                checkpoint_interval: SimDuration::from_mins(10),
                wal: false,
                scripted: vec![SimTime::from_secs(12)],
                ..MasterFaultConfig::default()
            });
            let cfg = SimConfig::default();
            let report = run(&w, &cluster, &cfg);
            assert!(report.completed);
            let rec = report.recovery.as_ref().expect("master mode reports");
            assert_eq!(rec.master_crashes, 1);
            assert_eq!(rec.wal_records_replayed, 0, "no WAL to replay");
            assert_eq!(
                rec.workflows_resubmitted, 1,
                "the arrival fell into the lost suffix"
            );
            assert!(
                rec.attempts_orphaned > 0,
                "in-flight completions reference attempts the stale master never saw"
            );
            // Work conservation still holds across the restart.
            assert_eq!(
                report.tasks_executed,
                9 + report.tasks_requeued + report.map_outputs_lost
            );
            assert_eq!(report, run(&w, &cluster, &cfg), "recovery is seeded");
        }

        #[test]
        fn recovery_counters_reconcile_with_attempt_bookkeeping() {
            // Lossless crash mid-run: every attempt in flight at the crash
            // is either re-adopted or requeued, and nothing is orphaned.
            let w = vec![
                simple_workflow("w", 0, 3_000),
                simple_workflow("x", 2, 3_000),
            ];
            let cluster = cluster_with(MasterFaultConfig {
                mttr: SimDuration::from_secs(10),
                checkpoint_interval: SimDuration::from_secs(7),
                scripted: vec![SimTime::from_secs(16)],
                ..MasterFaultConfig::default()
            });
            let report = run(&w, &cluster, &SimConfig::default());
            assert!(report.completed);
            let rec = report.recovery.as_ref().expect("master mode reports");
            assert_eq!(rec.master_crashes, 1);
            // Genesis + at least one periodic + one at recovery.
            assert!(rec.checkpoints_taken >= 3, "{}", rec.checkpoints_taken);
            assert_eq!(rec.attempts_requeued + rec.attempts_orphaned, 0);
            assert_eq!(report.tasks_executed, 18, "no work re-executes");
            assert!(rec.wal_records_replayed > 0, "2 s of WAL since t=14 s");
            assert_eq!(
                rec.master_downtime_ms,
                SimDuration::from_secs(10).as_millis()
            );
        }

        #[test]
        fn stochastic_master_crashes_are_seeded() {
            let w = vec![simple_workflow("w", 0, 30_000)];
            let cluster = cluster_with(MasterFaultConfig {
                mtbf: Some(SimDuration::from_secs(20)),
                mttr: SimDuration::from_secs(5),
                checkpoint_interval: SimDuration::from_secs(15),
                ..MasterFaultConfig::default()
            });
            let cfg = SimConfig {
                seed: 3,
                ..SimConfig::default()
            };
            let r1 = run(&w, &cluster, &cfg);
            assert!(r1.completed);
            let rec = r1.recovery.as_ref().expect("master mode reports");
            assert!(rec.master_crashes >= 1, "20 s MTBF must crash the master");
            assert_eq!(r1, run(&w, &cluster, &cfg));
            let other = SimConfig {
                seed: 4,
                ..SimConfig::default()
            };
            assert_ne!(r1, run(&w, &cluster, &other));
        }

        #[test]
        fn master_and_node_faults_compose() {
            let faults = FaultConfig {
                scripted: vec![ScriptedFault::one(
                    NodeId::new(1),
                    SimTime::from_secs(8),
                    Some(SimTime::from_secs(40)),
                )],
                master: MasterFaultConfig {
                    mttr: SimDuration::from_secs(15),
                    checkpoint_interval: SimDuration::from_secs(10),
                    scripted: vec![SimTime::from_secs(12)],
                    ..MasterFaultConfig::default()
                },
                ..FaultConfig::default()
            };
            let cluster = ClusterConfig::uniform(3, 2, 1).with_faults(faults);
            let w = vec![simple_workflow("w", 0, 3_000)];
            let cfg = SimConfig::default();
            let report = run(&w, &cluster, &cfg);
            assert!(report.completed);
            assert_eq!(report.node_failures, 1);
            assert_eq!(report.recovery.as_ref().unwrap().master_crashes, 1);
            assert_eq!(
                report.tasks_executed,
                9 + report.tasks_requeued + report.map_outputs_lost
            );
            assert_eq!(report, run(&w, &cluster, &cfg));
        }

        #[test]
        fn invalid_configs_are_rejected() {
            let w = vec![simple_workflow("w", 0, 600)];
            let mut s = SubmitOrderScheduler::new();
            let cfg = SimConfig::default();
            let bad_node =
                ClusterConfig::uniform(2, 2, 1).with_faults(FaultConfig::scripted(vec![
                    ScriptedFault::one(NodeId::new(9), SimTime::ZERO, None),
                ]));
            assert_eq!(
                try_run_simulation(&w, &mut s, &bad_node, &cfg),
                Err(SimError::UnknownScriptedNode {
                    node: NodeId::new(9),
                    node_count: 2
                })
            );
            let zero_interval = cluster_with(MasterFaultConfig {
                checkpoint_interval: SimDuration::ZERO,
                scripted: vec![SimTime::from_secs(1)],
                ..MasterFaultConfig::default()
            });
            assert_eq!(
                try_run_simulation(&w, &mut s, &zero_interval, &cfg),
                Err(SimError::ZeroCheckpointInterval)
            );
            let zero_mttr = cluster_with(MasterFaultConfig {
                mttr: SimDuration::ZERO,
                scripted: vec![SimTime::from_secs(1)],
                ..MasterFaultConfig::default()
            });
            assert_eq!(
                try_run_simulation(&w, &mut s, &zero_mttr, &cfg),
                Err(SimError::ZeroMasterMttr)
            );
            assert!(SimError::ZeroMasterMttr.to_string().contains("MTTR"));
        }

        #[test]
        #[should_panic(expected = "scripted fault names node")]
        fn run_simulation_panics_on_invalid_config() {
            let bad = ClusterConfig::uniform(1, 1, 1).with_faults(FaultConfig::scripted(vec![
                ScriptedFault::one(NodeId::new(3), SimTime::ZERO, None),
            ]));
            run(&[simple_workflow("w", 0, 600)], &bad, &SimConfig::default());
        }
    }

    #[test]
    fn jitter_factor_is_deterministic_and_bounded() {
        let wf = WorkflowId::new(3);
        let job = JobId::new(1);
        for idx in 0..100 {
            let f = jitter_factor(9, wf, job, SlotKind::Map, idx, 0.2);
            assert!((0.8..=1.2).contains(&f), "factor {f}");
            assert_eq!(f, jitter_factor(9, wf, job, SlotKind::Map, idx, 0.2));
        }
        assert_eq!(jitter_factor(9, wf, job, SlotKind::Map, 0, 0.0), 1.0);
    }
}
