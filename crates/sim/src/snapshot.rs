//! Master (JobTracker) state snapshots for crash recovery.
//!
//! A [`MasterSnapshot`] captures everything the simulated JobTracker needs
//! to resume scheduling after a crash: the workflow pool, in-flight task
//! attempts, speculative-execution bookkeeping, slot occupancy, fault
//! bookkeeping, and the scheduler's private state (via
//! [`SchedulerState`](crate::SchedulerState)). The driver serializes one on
//! every checkpoint tick and appends processed events to an in-memory WAL
//! between checkpoints; on recovery the latest snapshot is deserialized and
//! the WAL replayed on top of it.
//!
//! The snapshot deliberately excludes wall-clock measurement state
//! (`busy_integral_ms`, `scheduler_nanos`, `events_processed`), the event
//! queue (rebuilt from the crash-time pending set), and the recovery
//! counters themselves — those describe the *physical* world or the report,
//! not the master's logical state.
//!
//! All maps are stored as key-sorted vectors so a snapshot of a given
//! master state is byte-for-byte deterministic.

use serde::{Deserialize, Serialize, Value};
use woha_model::{JobId, NodeId, SimDuration, SimTime, SlotKind, WorkflowId};

use crate::state::WorkflowPool;

/// One in-flight task attempt, keyed by its attempt id.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttemptRecord {
    /// Attempt id (the driver's `attempts` map key).
    pub id: u64,
    /// Owning workflow.
    pub wf: WorkflowId,
    /// Owning wjob.
    pub job: JobId,
    /// Map or reduce.
    pub kind: SlotKind,
    /// Node the attempt runs on.
    pub node: NodeId,
    /// Speculation group the attempt belongs to.
    pub group: u64,
    /// Launch time.
    pub started: SimTime,
    /// Jittered run-time estimate (completion is `started + estimate`).
    pub estimate: SimDuration,
    /// Whether this is the speculative twin.
    pub speculative: bool,
    /// Whether the attempt was cancelled (its completion event is stale).
    pub cancelled: bool,
}

/// One speculation group (original attempt + optional speculative twin).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupRecord {
    /// Group id (the driver's `groups` map key).
    pub id: u64,
    /// Whether a member already completed the logical task.
    pub done: bool,
    /// Whether the speculative twin was launched.
    pub twin_launched: bool,
    /// Member attempt ids (only the first `attempt_count` are valid).
    pub attempts: [u64; 2],
    /// Number of valid members.
    pub attempt_count: u8,
}

/// Pending map-task ids of one wjob (for locality-aware map picking).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingMapsRecord {
    /// Owning workflow.
    pub wf: WorkflowId,
    /// Owning wjob.
    pub job: JobId,
    /// Pending map-task indices, in queue order.
    pub ids: Vec<u32>,
}

/// Delay-scheduling skip count of one wjob.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DelaySkipRecord {
    /// Owning workflow.
    pub wf: WorkflowId,
    /// Owning wjob.
    pub job: JobId,
    /// Consecutive non-local offers skipped so far.
    pub skips: u32,
}

/// Nodes holding completed map output of one wjob.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MapOutputRecord {
    /// Owning workflow.
    pub wf: WorkflowId,
    /// Owning wjob.
    pub job: JobId,
    /// One entry per completed map, the node that ran it.
    pub hosts: Vec<NodeId>,
}

/// Free-slot counters of one node at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSlotsRecord {
    /// Free map slots.
    pub free_maps: u32,
    /// Free reduce slots.
    pub free_reduces: u32,
}

/// A task lost to a node failure, awaiting requeue at failure detection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LostTaskRecord {
    /// Owning workflow.
    pub wf: WorkflowId,
    /// Owning wjob.
    pub job: JobId,
    /// Map or reduce.
    pub kind: SlotKind,
    /// Whether the attempt was the only member of its speculation group.
    pub solo: bool,
}

/// Cumulative report counters that must survive a master restart (they
/// feed `SimReport`, which describes the whole run, not one incarnation
/// of the master).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub struct SnapshotCounters {
    pub tasks_executed: u64,
    pub task_failures: u64,
    pub assign_calls: u64,
    pub invalid_assignments: u64,
    pub local_map_tasks: u64,
    pub remote_map_tasks: u64,
    pub delay_skip_count: u64,
    pub stragglers: u64,
    pub speculative_launched: u64,
    pub speculative_wins: u64,
    pub node_failures: u64,
    pub node_recoveries: u64,
    pub nodes_blacklisted: u64,
    pub tasks_requeued: u64,
    pub map_outputs_lost: u64,
    pub work_lost_slot_ms: u128,
}

/// Fault-layer bookkeeping at snapshot time, indexed by node.
///
/// On recovery the *physical* node state (liveness, incident ordinals,
/// blacklist) is taken from the crash-time world, not from here — a master
/// restart does not resurrect dead nodes. The snapshot still carries it so
/// WAL replay sees the same world the original master saw.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSnapshot {
    /// Per-node liveness.
    pub alive: Vec<bool>,
    /// Per-node blacklist flag.
    pub blacklisted: Vec<bool>,
    /// Per-node failure-incident ordinal (salts the fault RNG).
    pub incident: Vec<u64>,
    /// Per-node crash count (drives blacklisting).
    pub crash_count: Vec<u32>,
    /// Per-node heartbeat-chain liveness.
    pub heartbeat_live: Vec<bool>,
    /// Per-node tasks lost to an undetected failure, awaiting requeue.
    pub lost_pending: Vec<Vec<LostTaskRecord>>,
}

/// The complete serialized master state at one checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MasterSnapshot {
    /// Simulation time the checkpoint was taken.
    pub taken_at: SimTime,
    /// The workflow pool: specs, job phases, task counts.
    pub pool: WorkflowPool,
    /// Arrival cursor into the workload source: the number of workflows
    /// pulled from the source when the checkpoint was taken. Recovery
    /// replays arrivals deterministically from this cursor — workflows
    /// pulled before the checkpoint are restored from the snapshot (and
    /// the WAL), while workflows past the cursor are still unread in the
    /// source and arrive normally. Always equals `arrived.len()`.
    pub source_cursor: u64,
    /// Which pulled arrivals have had their arrival event processed, by
    /// pull (source cursor) order.
    pub arrived: Vec<bool>,
    /// In-flight attempts, sorted by attempt id.
    pub attempts: Vec<AttemptRecord>,
    /// Speculation groups, sorted by group id.
    pub groups: Vec<GroupRecord>,
    /// Next attempt id to allocate.
    pub next_attempt: u64,
    /// Next group id to allocate.
    pub next_group: u64,
    /// Pending map-task queues, sorted by (wf, job).
    pub pending_map_ids: Vec<PendingMapsRecord>,
    /// Delay-scheduling skip counts, sorted by (wf, job).
    pub delay_skips: Vec<DelaySkipRecord>,
    /// Completed-map output locations, sorted by (wf, job).
    pub map_output_hosts: Vec<MapOutputRecord>,
    /// Per-node free-slot counters.
    pub node_slots: Vec<NodeSlotsRecord>,
    /// Busy slots by kind (`[maps, reduces]`).
    pub busy_count: [u32; 2],
    /// Completion sequence number (salts the failure RNG).
    pub completion_seq: u64,
    /// Cumulative report counters.
    pub counters: SnapshotCounters,
    /// Fault-layer bookkeeping.
    pub fault: FaultSnapshot,
    /// Scheduler-private state from
    /// [`SchedulerState::snapshot_state`](crate::SchedulerState::snapshot_state).
    pub scheduler: Value,
    /// Failure-propensity tracker state (prediction mode only). Trails the
    /// struct and is omitted when absent, so prediction-off checkpoints
    /// stay byte-identical to pre-prediction ones and old checkpoints
    /// still decode.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub health: Option<crate::health::HealthRecord>,
}

impl MasterSnapshot {
    /// Serializes the snapshot to a value tree (what the driver stores as
    /// "the latest checkpoint").
    pub fn encode(&self) -> Value {
        self.to_value()
    }

    /// Deserializes a snapshot from a tree produced by
    /// [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// Returns an error if `value` is not a well-formed snapshot.
    pub fn decode(value: &Value) -> Result<Self, serde::Error> {
        Self::from_value(value)
    }
}

/// Convenience: number of completed workflows in a pool (used to recompute
/// the driver's `remaining` counter after a restore).
pub fn completed_workflows(pool: &WorkflowPool) -> usize {
    pool.workflows()
        .iter()
        .filter(|wf| wf.is_complete())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MasterSnapshot {
        MasterSnapshot {
            taken_at: SimTime::from_secs(120),
            pool: WorkflowPool::new(),
            source_cursor: 2,
            arrived: vec![true, false],
            attempts: vec![AttemptRecord {
                id: 3,
                wf: WorkflowId::new(0),
                job: JobId::new(1),
                kind: SlotKind::Map,
                node: NodeId::new(2),
                group: 1,
                started: SimTime::from_secs(100),
                estimate: SimDuration::from_secs(60),
                speculative: false,
                cancelled: false,
            }],
            groups: vec![GroupRecord {
                id: 1,
                done: false,
                twin_launched: false,
                attempts: [3, 0],
                attempt_count: 1,
            }],
            next_attempt: 4,
            next_group: 2,
            pending_map_ids: vec![PendingMapsRecord {
                wf: WorkflowId::new(0),
                job: JobId::new(1),
                ids: vec![2, 5],
            }],
            delay_skips: vec![DelaySkipRecord {
                wf: WorkflowId::new(0),
                job: JobId::new(1),
                skips: 1,
            }],
            map_output_hosts: vec![MapOutputRecord {
                wf: WorkflowId::new(0),
                job: JobId::new(0),
                hosts: vec![NodeId::new(0), NodeId::new(2)],
            }],
            node_slots: vec![
                NodeSlotsRecord {
                    free_maps: 1,
                    free_reduces: 1,
                },
                NodeSlotsRecord {
                    free_maps: 2,
                    free_reduces: 0,
                },
            ],
            busy_count: [1, 1],
            completion_seq: 7,
            counters: SnapshotCounters {
                tasks_executed: 9,
                work_lost_slot_ms: 1234,
                ..SnapshotCounters::default()
            },
            fault: FaultSnapshot {
                alive: vec![true, true],
                blacklisted: vec![false, false],
                incident: vec![0, 1],
                crash_count: vec![0, 1],
                heartbeat_live: vec![true, true],
                lost_pending: vec![
                    vec![],
                    vec![LostTaskRecord {
                        wf: WorkflowId::new(0),
                        job: JobId::new(1),
                        kind: SlotKind::Reduce,
                        solo: true,
                    }],
                ],
            },
            scheduler: Value::Null,
            health: None,
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let snap = sample();
        let restored = MasterSnapshot::decode(&snap.encode()).expect("round trip");
        assert_eq!(restored, snap);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(MasterSnapshot::decode(&Value::Bool(true)).is_err());
        assert!(MasterSnapshot::decode(&Value::Object(vec![])).is_err());
    }

    #[test]
    fn encoding_is_deterministic() {
        let snap = sample();
        assert_eq!(snap.encode(), snap.encode());
    }
}
