//! Runtime state of workflows and jobs inside the simulated JobTracker.
//!
//! [`WorkflowPool`] is the JobTracker's internal bookkeeping *and* the
//! read-only view handed to [`WorkflowScheduler`](crate::WorkflowScheduler)
//! implementations: schedulers inspect it to pick a `(workflow, job)` pair
//! but only the driver mutates it.

use serde::{Deserialize, Serialize};
use woha_model::{JobId, SimTime, SlotKind, WorkflowId, WorkflowSpec};

/// Lifecycle of one wjob inside the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobPhase {
    /// Waiting for prerequisite jobs to finish.
    Blocked,
    /// Prerequisites done; the submitter map task is loading the jar and
    /// initializing tasks (WOHA's on-demand submission, §III-A).
    Submitting,
    /// Schedulable: tasks may be assigned.
    Active,
    /// All tasks finished.
    Complete,
}

/// Runtime counters of one job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobState {
    phase: JobPhase,
    remaining_prereqs: usize,
    pending_maps: u32,
    running_maps: u32,
    completed_maps: u32,
    pending_reduces: u32,
    running_reduces: u32,
    completed_reduces: u32,
    retried_maps: u32,
    retried_reduces: u32,
    activated_at: Option<SimTime>,
    completed_at: Option<SimTime>,
}

impl JobState {
    fn new(spec_maps: u32, spec_reduces: u32, prereqs: usize) -> Self {
        JobState {
            phase: JobPhase::Blocked,
            remaining_prereqs: prereqs,
            pending_maps: spec_maps,
            running_maps: 0,
            completed_maps: 0,
            pending_reduces: spec_reduces,
            running_reduces: 0,
            completed_reduces: 0,
            retried_maps: 0,
            retried_reduces: 0,
            activated_at: None,
            completed_at: None,
        }
    }

    /// Current lifecycle phase.
    pub fn phase(&self) -> JobPhase {
        self.phase
    }

    /// Map tasks not yet assigned to a slot.
    pub fn pending_maps(&self) -> u32 {
        self.pending_maps
    }

    /// Map tasks currently running.
    pub fn running_maps(&self) -> u32 {
        self.running_maps
    }

    /// Map tasks finished.
    pub fn completed_maps(&self) -> u32 {
        self.completed_maps
    }

    /// Reduce tasks not yet assigned to a slot.
    pub fn pending_reduces(&self) -> u32 {
        self.pending_reduces
    }

    /// Reduce tasks currently running.
    pub fn running_reduces(&self) -> u32 {
        self.running_reduces
    }

    /// Reduce tasks finished.
    pub fn completed_reduces(&self) -> u32 {
        self.completed_reduces
    }

    /// Tasks of `kind` that failed and were re-queued for execution.
    pub fn retried(&self, kind: SlotKind) -> u32 {
        match kind {
            SlotKind::Map => self.retried_maps,
            SlotKind::Reduce => self.retried_reduces,
        }
    }

    /// Whether every map task has finished (reducers may start only then).
    pub fn maps_done(&self) -> bool {
        self.pending_maps == 0 && self.running_maps == 0
    }

    /// Pending tasks of the given kind that are *eligible* right now:
    /// pending maps while active, pending reduces once all maps finished.
    pub fn eligible_tasks(&self, kind: SlotKind) -> u32 {
        if self.phase != JobPhase::Active {
            return 0;
        }
        match kind {
            SlotKind::Map => self.pending_maps,
            SlotKind::Reduce => {
                if self.maps_done() {
                    self.pending_reduces
                } else {
                    0
                }
            }
        }
    }

    /// When the job became schedulable, if it has.
    pub fn activated_at(&self) -> Option<SimTime> {
        self.activated_at
    }

    /// When the job finished, if it has.
    pub fn completed_at(&self) -> Option<SimTime> {
        self.completed_at
    }
}

/// Runtime state of one workflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowState {
    id: WorkflowId,
    spec: WorkflowSpec,
    jobs: Vec<JobState>,
    jobs_completed: usize,
    tasks_scheduled: u64,
    finished_at: Option<SimTime>,
}

impl WorkflowState {
    pub(crate) fn new(id: WorkflowId, spec: WorkflowSpec) -> Self {
        let jobs = spec
            .job_ids()
            .map(|j| {
                JobState::new(
                    spec.job(j).map_tasks(),
                    spec.job(j).reduce_tasks(),
                    spec.prerequisites(j).len(),
                )
            })
            .collect();
        WorkflowState {
            id,
            spec,
            jobs,
            jobs_completed: 0,
            tasks_scheduled: 0,
            finished_at: None,
        }
    }

    /// The workflow's id.
    pub fn id(&self) -> WorkflowId {
        self.id
    }

    /// The static workflow specification.
    pub fn spec(&self) -> &WorkflowSpec {
        &self.spec
    }

    /// State of one job.
    ///
    /// # Panics
    ///
    /// Panics if `job` is out of range.
    pub fn job(&self, job: JobId) -> &JobState {
        &self.jobs[job.index()]
    }

    /// Number of jobs that have completed.
    pub fn jobs_completed(&self) -> usize {
        self.jobs_completed
    }

    /// Whether every job has completed.
    pub fn is_complete(&self) -> bool {
        self.jobs_completed == self.jobs.len()
    }

    /// When the workflow finished, if it has.
    pub fn finished_at(&self) -> Option<SimTime> {
        self.finished_at
    }

    /// The *true progress* `ρ_i` (paper §IV-B): total number of tasks of
    /// this workflow that have been handed to slots so far.
    pub fn tasks_scheduled(&self) -> u64 {
        self.tasks_scheduled
    }

    /// Jobs currently in [`JobPhase::Active`], in job-id order.
    pub fn active_jobs(&self) -> impl Iterator<Item = JobId> + '_ {
        self.jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.phase == JobPhase::Active)
            .map(|(i, _)| JobId::new(i as u32))
    }

    /// Total tasks of this workflow currently running on slots (both
    /// kinds) — the usage quantity a fair scheduler balances.
    pub fn running_tasks(&self) -> u64 {
        self.jobs
            .iter()
            .map(|j| u64::from(j.running_maps + j.running_reduces))
            .sum()
    }

    /// Whether any active job has an eligible task of `kind`.
    pub fn has_eligible_task(&self, kind: SlotKind) -> bool {
        self.jobs.iter().any(|j| j.eligible_tasks(kind) > 0)
    }

    /// Total eligible tasks of `kind` across active jobs.
    pub fn eligible_tasks(&self, kind: SlotKind) -> u64 {
        self.jobs
            .iter()
            .map(|j| u64::from(j.eligible_tasks(kind)))
            .sum()
    }

    // ---- mutations ---------------------------------------------------
    //
    // These drive the job lifecycle. The built-in simulator driver calls
    // them; they are public so custom drivers and scheduler tests can
    // construct mid-execution states.

    fn job_mut(&mut self, job: JobId) -> &mut JobState {
        &mut self.jobs[job.index()]
    }

    /// Marks prerequisites of `job` satisfied by one completed predecessor;
    /// returns true when the job has no remaining prerequisites.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the job has no outstanding prerequisites.
    pub fn satisfy_prereq(&mut self, job: JobId) -> bool {
        let j = self.job_mut(job);
        debug_assert!(j.remaining_prereqs > 0, "over-satisfied prerequisite");
        j.remaining_prereqs -= 1;
        j.remaining_prereqs == 0
    }

    /// Moves a job from [`JobPhase::Blocked`] to [`JobPhase::Submitting`]
    /// (its submitter map task starts).
    ///
    /// # Panics
    ///
    /// Debug builds panic unless the job is blocked.
    pub fn begin_submitting(&mut self, job: JobId) {
        let j = self.job_mut(job);
        debug_assert_eq!(j.phase, JobPhase::Blocked);
        j.phase = JobPhase::Submitting;
    }

    /// Moves a job from [`JobPhase::Submitting`] to [`JobPhase::Active`].
    ///
    /// # Panics
    ///
    /// Debug builds panic unless the job is submitting.
    pub fn activate(&mut self, job: JobId, now: SimTime) {
        let j = self.job_mut(job);
        debug_assert_eq!(j.phase, JobPhase::Submitting);
        j.phase = JobPhase::Active;
        j.activated_at = Some(now);
    }

    /// Records a task assignment; updates true progress.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the job has no eligible task of `kind`.
    pub fn start_task(&mut self, job: JobId, kind: SlotKind) {
        {
            let j = self.job_mut(job);
            debug_assert!(j.eligible_tasks(kind) > 0, "assigning ineligible task");
            match kind {
                SlotKind::Map => {
                    j.pending_maps -= 1;
                    j.running_maps += 1;
                }
                SlotKind::Reduce => {
                    j.pending_reduces -= 1;
                    j.running_reduces += 1;
                }
            }
        }
        self.tasks_scheduled += 1;
    }

    /// Records the start of a *speculative duplicate* attempt: it occupies
    /// a slot (running count rises) but does not consume a pending task or
    /// advance true progress.
    pub fn start_speculative(&mut self, job: JobId, kind: SlotKind) {
        let j = self.job_mut(job);
        match kind {
            SlotKind::Map => j.running_maps += 1,
            SlotKind::Reduce => j.running_reduces += 1,
        }
    }

    /// Reverses [`start_speculative`](Self::start_speculative) when the
    /// duplicate is cancelled or loses the race.
    ///
    /// # Panics
    ///
    /// Debug builds panic if no task of `kind` is running.
    pub fn finish_speculative(&mut self, job: JobId, kind: SlotKind) {
        let j = self.job_mut(job);
        match kind {
            SlotKind::Map => {
                debug_assert!(j.running_maps > 0);
                j.running_maps -= 1;
            }
            SlotKind::Reduce => {
                debug_assert!(j.running_reduces > 0);
                j.running_reduces -= 1;
            }
        }
    }

    /// Records a failed task attempt: the task leaves its slot and is
    /// queued for re-execution.
    ///
    /// # Panics
    ///
    /// Debug builds panic if no task of `kind` is running.
    pub fn fail_task(&mut self, job: JobId, kind: SlotKind) {
        let j = self.job_mut(job);
        match kind {
            SlotKind::Map => {
                debug_assert!(j.running_maps > 0);
                j.running_maps -= 1;
                j.pending_maps += 1;
                j.retried_maps += 1;
            }
            SlotKind::Reduce => {
                debug_assert!(j.running_reduces > 0);
                j.running_reduces -= 1;
                j.pending_reduces += 1;
                j.retried_reduces += 1;
            }
        }
    }

    /// Invalidates `count` completed map outputs of `job` after their host
    /// node was lost: the maps re-enter the pending queue and count as
    /// retries. Hadoop-1 re-executes such maps because reducers fetch
    /// intermediate output from the mapper's local disk.
    ///
    /// # Panics
    ///
    /// Debug builds panic if fewer than `count` maps have completed, or the
    /// job already finished (its reducers no longer need map output).
    pub fn invalidate_completed_maps(&mut self, job: JobId, count: u32) {
        let j = self.job_mut(job);
        debug_assert!(j.completed_maps >= count, "invalidating unfinished maps");
        debug_assert_ne!(j.phase, JobPhase::Complete, "job no longer needs maps");
        j.completed_maps -= count;
        j.pending_maps += count;
        j.retried_maps += count;
    }

    /// Records a task completion; returns true when the whole job finished.
    ///
    /// # Panics
    ///
    /// Debug builds panic if no task of `kind` is running.
    pub fn finish_task(&mut self, job: JobId, kind: SlotKind, now: SimTime) -> bool {
        let job_done = {
            let j = self.job_mut(job);
            match kind {
                SlotKind::Map => {
                    debug_assert!(j.running_maps > 0);
                    j.running_maps -= 1;
                    j.completed_maps += 1;
                }
                SlotKind::Reduce => {
                    debug_assert!(j.running_reduces > 0);
                    j.running_reduces -= 1;
                    j.completed_reduces += 1;
                }
            }
            let done = j.maps_done()
                && j.pending_reduces == 0
                && j.running_reduces == 0
                && j.phase == JobPhase::Active;
            if done {
                j.phase = JobPhase::Complete;
                j.completed_at = Some(now);
            }
            done
        };
        if job_done {
            self.jobs_completed += 1;
            if self.is_complete() {
                self.finished_at = Some(now);
            }
        }
        job_done
    }
}

/// All workflows known to the JobTracker, indexed by [`WorkflowId`].
///
/// Ids are assigned densely in submission order, so `WorkflowId::as_u64()`
/// indexes into the pool.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkflowPool {
    workflows: Vec<WorkflowState>,
}

impl WorkflowPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        WorkflowPool::default()
    }

    /// Registers a workflow, returning its new id. Called by the driver on
    /// workflow arrival; public for custom drivers and tests.
    pub fn register(&mut self, spec: WorkflowSpec) -> WorkflowId {
        let id = WorkflowId::new(self.workflows.len() as u64);
        self.workflows.push(WorkflowState::new(id, spec));
        id
    }

    /// The workflow with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this pool.
    pub fn workflow(&self, id: WorkflowId) -> &WorkflowState {
        &self.workflows[id.as_u64() as usize]
    }

    /// Mutable access to a workflow's runtime state (drivers only;
    /// schedulers receive `&WorkflowPool`).
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this pool.
    pub fn workflow_mut(&mut self, id: WorkflowId) -> &mut WorkflowState {
        &mut self.workflows[id.as_u64() as usize]
    }

    /// All registered workflows in submission order.
    pub fn workflows(&self) -> &[WorkflowState] {
        &self.workflows
    }

    /// Ids of workflows that have been submitted but not completed.
    pub fn incomplete(&self) -> impl Iterator<Item = WorkflowId> + '_ {
        self.workflows
            .iter()
            .filter(|w| !w.is_complete())
            .map(WorkflowState::id)
    }

    /// Whether the given job may be assigned a task of `kind` right now.
    /// The driver enforces this regardless of what a scheduler returns.
    pub fn eligible(&self, wf: WorkflowId, job: JobId, kind: SlotKind) -> bool {
        self.workflow(wf).job(job).eligible_tasks(kind) > 0
    }

    /// Number of registered workflows.
    pub fn len(&self) -> usize {
        self.workflows.len()
    }

    /// Whether no workflows are registered.
    pub fn is_empty(&self) -> bool {
        self.workflows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use woha_model::{JobSpec, SimDuration, WorkflowBuilder};

    fn two_job_spec() -> WorkflowSpec {
        let mut b = WorkflowBuilder::new("w");
        let a = b.add_job(JobSpec::new(
            "a",
            2,
            1,
            SimDuration::from_secs(10),
            SimDuration::from_secs(20),
        ));
        let z = b.add_job(JobSpec::new(
            "z",
            1,
            0,
            SimDuration::from_secs(5),
            SimDuration::ZERO,
        ));
        b.add_dependency(a, z);
        b.build().unwrap()
    }

    fn pool_with_one() -> (WorkflowPool, WorkflowId) {
        let mut pool = WorkflowPool::new();
        let id = pool.register(two_job_spec());
        (pool, id)
    }

    #[test]
    fn register_assigns_dense_ids() {
        let mut pool = WorkflowPool::new();
        assert!(pool.is_empty());
        let a = pool.register(two_job_spec());
        let b = pool.register(two_job_spec());
        assert_eq!(a, WorkflowId::new(0));
        assert_eq!(b, WorkflowId::new(1));
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn job_lifecycle() {
        let (mut pool, id) = pool_with_one();
        let j0 = JobId::new(0);
        let j1 = JobId::new(1);
        let t = SimTime::from_secs(1);

        // Initially blocked.
        assert_eq!(pool.workflow(id).job(j0).phase(), JobPhase::Blocked);
        assert!(!pool.eligible(id, j0, SlotKind::Map));

        // Activate j0.
        pool.workflow_mut(id).begin_submitting(j0);
        pool.workflow_mut(id).activate(j0, t);
        assert_eq!(pool.workflow(id).job(j0).phase(), JobPhase::Active);
        assert!(pool.eligible(id, j0, SlotKind::Map));
        // Reduces not eligible while maps pending.
        assert!(!pool.eligible(id, j0, SlotKind::Reduce));

        // Run both maps.
        pool.workflow_mut(id).start_task(j0, SlotKind::Map);
        pool.workflow_mut(id).start_task(j0, SlotKind::Map);
        assert_eq!(pool.workflow(id).job(j0).running_maps(), 2);
        assert!(!pool.eligible(id, j0, SlotKind::Map));
        assert!(!pool.workflow_mut(id).finish_task(j0, SlotKind::Map, t));
        // One map still running: reduces stay ineligible.
        assert!(!pool.eligible(id, j0, SlotKind::Reduce));
        assert!(!pool.workflow_mut(id).finish_task(j0, SlotKind::Map, t));
        // All maps done: reduce eligible now.
        assert!(pool.eligible(id, j0, SlotKind::Reduce));

        // Run the reduce; job completes.
        pool.workflow_mut(id).start_task(j0, SlotKind::Reduce);
        let done = pool
            .workflow_mut(id)
            .finish_task(j0, SlotKind::Reduce, SimTime::from_secs(30));
        assert!(done);
        assert_eq!(pool.workflow(id).job(j0).phase(), JobPhase::Complete);
        assert_eq!(
            pool.workflow(id).job(j0).completed_at(),
            Some(SimTime::from_secs(30))
        );
        assert_eq!(pool.workflow(id).jobs_completed(), 1);
        assert!(!pool.workflow(id).is_complete());

        // Unblock and run j1 (map-only).
        assert!(pool.workflow_mut(id).satisfy_prereq(j1));
        pool.workflow_mut(id).begin_submitting(j1);
        pool.workflow_mut(id).activate(j1, SimTime::from_secs(31));
        pool.workflow_mut(id).start_task(j1, SlotKind::Map);
        let done = pool
            .workflow_mut(id)
            .finish_task(j1, SlotKind::Map, SimTime::from_secs(40));
        assert!(done);
        assert!(pool.workflow(id).is_complete());
        assert_eq!(
            pool.workflow(id).finished_at(),
            Some(SimTime::from_secs(40))
        );
        assert_eq!(pool.workflow(id).tasks_scheduled(), 4);
        assert_eq!(pool.incomplete().count(), 0);
    }

    #[test]
    fn eligible_counts() {
        let (mut pool, id) = pool_with_one();
        let j0 = JobId::new(0);
        pool.workflow_mut(id).begin_submitting(j0);
        pool.workflow_mut(id).activate(j0, SimTime::ZERO);
        let w = pool.workflow(id);
        assert_eq!(w.eligible_tasks(SlotKind::Map), 2);
        assert_eq!(w.eligible_tasks(SlotKind::Reduce), 0);
        assert!(w.has_eligible_task(SlotKind::Map));
        assert_eq!(w.active_jobs().collect::<Vec<_>>(), vec![j0]);
    }
}
