//! Bounded arrival buffering and load shedding for the live service.
//!
//! A live master cannot assume the arrival stream pauses while it plans:
//! [`ArrivalBuffer`] sits between a [`WorkloadSource`] and the driver,
//! holding at most `capacity` pulled-but-unprocessed workflows. When the
//! buffer reaches its **high watermark** the service is falling behind and
//! the buffer starts shedding the newest arrivals (the ones whose
//! deadlines are least likely to survive the backlog anyway); shedding
//! stops once the master drains the buffer back to the **low watermark**
//! — classic hysteresis so the service does not flap at the boundary.
//!
//! Everything observable — arrivals accepted, arrivals shed, queue depth,
//! ingest lag — is published through [`ServiceStats`], a cheaply cloneable
//! handle a service thread can read while the driver owns the buffer, and
//! exported into the [`MetricsRegistry`] Prometheus surface at the end of
//! a run.

use crate::metrics::MetricsRegistry;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use woha_model::{SimTime, WorkflowSpec};
use woha_trace::{SourcePoll, WorkloadSource};

#[derive(Debug, Default)]
struct StatsInner {
    arrivals: AtomicU64,
    shed: AtomicU64,
    depth: AtomicU64,
    depth_peak: AtomicU64,
    lag_ms: AtomicU64,
    lag_peak_ms: AtomicU64,
}

/// Shared, read-while-running view of an [`ArrivalBuffer`]'s health.
///
/// All loads/stores are `SeqCst` on plain `u64`s; clones share one
/// underlying block, so a monitoring thread sees the buffer's live state.
#[derive(Debug, Clone, Default)]
pub struct ServiceStats(Arc<StatsInner>);

impl ServiceStats {
    /// Arrivals accepted into the buffer (excludes shed arrivals).
    pub fn arrivals(&self) -> u64 {
        self.0.arrivals.load(Ordering::SeqCst)
    }

    /// Arrivals dropped by backpressure shedding.
    pub fn shed(&self) -> u64 {
        self.0.shed.load(Ordering::SeqCst)
    }

    /// Current buffered-arrival count.
    pub fn depth(&self) -> u64 {
        self.0.depth.load(Ordering::SeqCst)
    }

    /// Highest buffered-arrival count observed.
    pub fn depth_peak(&self) -> u64 {
        self.0.depth_peak.load(Ordering::SeqCst)
    }

    /// Current ingest lag in sim milliseconds: the newest submit time seen
    /// minus the submit time of the oldest still-buffered arrival.
    pub fn lag_ms(&self) -> u64 {
        self.0.lag_ms.load(Ordering::SeqCst)
    }

    /// Largest ingest lag observed, in sim milliseconds.
    pub fn lag_peak_ms(&self) -> u64 {
        self.0.lag_peak_ms.load(Ordering::SeqCst)
    }

    /// Adds externally observed arrivals to the counter. The buffer counts
    /// its own pulls; this is for harnesses that drive a stats handle
    /// directly (shutdown watchers, benches).
    pub fn record_arrivals(&self, n: u64) {
        self.0.arrivals.fetch_add(n, Ordering::SeqCst);
    }

    /// Writes the stats into the registry's service metrics: the arrival
    /// and shed counters, and — because a finished run's instantaneous
    /// depth/lag are trivially zero — the *peak* depth and lag observed,
    /// which are the useful end-of-run summary of how far behind the
    /// master ever fell.
    pub fn export_into(&self, metrics: &mut MetricsRegistry) {
        metrics.arrivals.add(self.arrivals());
        metrics.arrivals_shed.add(self.shed());
        metrics.arrival_queue_depth.set(self.depth_peak() as f64);
        metrics
            .arrival_lag_seconds
            .set(self.lag_peak_ms() as f64 / 1000.0);
    }

    fn set_depth(&self, depth: u64) {
        self.0.depth.store(depth, Ordering::SeqCst);
        self.0.depth_peak.fetch_max(depth, Ordering::SeqCst);
    }

    fn set_lag(&self, lag_ms: u64) {
        self.0.lag_ms.store(lag_ms, Ordering::SeqCst);
        self.0.lag_peak_ms.fetch_max(lag_ms, Ordering::SeqCst);
    }
}

/// A bounded arrival queue with high/low-watermark shedding, itself a
/// [`WorkloadSource`] so it slots transparently between any source and
/// the driver. See the [module docs](self) for the shedding policy.
pub struct ArrivalBuffer<S: WorkloadSource> {
    inner: S,
    queue: VecDeque<WorkflowSpec>,
    capacity: usize,
    high: usize,
    low: usize,
    shedding: bool,
    inner_exhausted: bool,
    /// Newest submit time pulled from the inner source (shed or kept).
    newest: SimTime,
    stats: ServiceStats,
}

impl<S: WorkloadSource> ArrivalBuffer<S> {
    /// Buffers `inner` with the given capacity (at least 1). Watermarks
    /// default to shedding at a full buffer (`high = capacity`) until it
    /// half-drains (`low = capacity / 2`).
    pub fn new(inner: S, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        ArrivalBuffer {
            inner,
            queue: VecDeque::new(),
            capacity,
            high: capacity,
            low: capacity / 2,
            shedding: false,
            inner_exhausted: false,
            newest: SimTime::ZERO,
            stats: ServiceStats::default(),
        }
    }

    /// Overrides the shedding watermarks. `high` is clamped into
    /// `[1, capacity]` and `low` to below `high`.
    pub fn with_watermarks(mut self, high: usize, low: usize) -> Self {
        self.high = high.clamp(1, self.capacity);
        self.low = low.min(self.high.saturating_sub(1));
        self
    }

    /// The shareable stats handle.
    pub fn stats(&self) -> ServiceStats {
        self.stats.clone()
    }

    /// The wrapped source (e.g. to read a `FollowSource` error).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn update_gauges(&self) {
        self.stats.set_depth(self.queue.len() as u64);
        let lag = match self.queue.front() {
            Some(w) => self
                .newest
                .as_millis()
                .saturating_sub(w.submit_time().as_millis()),
            None => 0,
        };
        self.stats.set_lag(lag);
    }

    /// Pulls whatever the inner source has ready, respecting capacity and
    /// the shedding hysteresis. Bounded per call so a fast source cannot
    /// starve the event loop.
    fn pump(&mut self) {
        let mut pulls = self.capacity.max(16);
        while pulls > 0 {
            pulls -= 1;
            if self.shedding && self.queue.len() <= self.low {
                self.shedding = false;
            }
            if !self.shedding && self.queue.len() >= self.high {
                self.shedding = true;
            }
            if !self.shedding && self.queue.len() >= self.capacity {
                break;
            }
            match self.inner.poll_time() {
                SourcePoll::Ready(_) => {
                    let w = self.inner.next_workflow().expect("ready source yields");
                    self.newest = self.newest.max(w.submit_time());
                    if self.shedding {
                        self.stats.0.shed.fetch_add(1, Ordering::SeqCst);
                    } else {
                        self.stats.0.arrivals.fetch_add(1, Ordering::SeqCst);
                        self.queue.push_back(w);
                    }
                }
                SourcePoll::Pending => break,
                SourcePoll::Exhausted => {
                    self.inner_exhausted = true;
                    break;
                }
            }
        }
        self.update_gauges();
    }
}

impl<S: WorkloadSource> WorkloadSource for ArrivalBuffer<S> {
    fn peek_time(&mut self) -> Option<SimTime> {
        self.pump();
        self.queue.front().map(WorkflowSpec::submit_time)
    }

    fn next_workflow(&mut self) -> Option<WorkflowSpec> {
        self.pump();
        let w = self.queue.pop_front();
        self.update_gauges();
        w
    }

    fn poll_time(&mut self) -> SourcePoll {
        self.pump();
        match self.queue.front() {
            Some(w) => SourcePoll::Ready(w.submit_time()),
            None if self.inner_exhausted => SourcePoll::Exhausted,
            None => SourcePoll::Pending,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use woha_model::{JobSpec, SimDuration, WorkflowBuilder};
    use woha_trace::VecSource;

    fn spec(name: &str, submit_s: u64) -> WorkflowSpec {
        let mut b = WorkflowBuilder::new(name);
        b.add_job(JobSpec::new(
            "j0",
            2,
            1,
            SimDuration::from_secs(10),
            SimDuration::from_secs(20),
        ));
        b.build()
            .unwrap()
            .reissued(name.to_string(), SimTime::from_secs(submit_s), SimTime::MAX)
    }

    fn specs(n: u64) -> Vec<WorkflowSpec> {
        (0..n).map(|i| spec(&format!("w{i}"), i)).collect()
    }

    #[test]
    fn passes_through_below_watermark_without_shedding() {
        let mut buf = ArrivalBuffer::new(VecSource::new(specs(5)), 16);
        let names: Vec<String> = std::iter::from_fn(|| buf.next_workflow())
            .map(|w| w.name().to_string())
            .collect();
        assert_eq!(names.len(), 5);
        let stats = buf.stats();
        assert_eq!(stats.arrivals(), 5);
        assert_eq!(stats.shed(), 0);
        assert!(stats.depth_peak() >= 1);
        assert!(matches!(buf.poll_time(), SourcePoll::Exhausted));
    }

    #[test]
    fn sheds_newest_arrivals_above_high_watermark_with_hysteresis() {
        // Capacity 4, shed at 4, resume at 2. A 10-deep burst arrives all
        // at once: the first 4 fill the buffer, then shedding drops
        // everything else pulled in the same pump (hysteresis requires the
        // *master* to drain to 2 before new arrivals are accepted again).
        let mut buf = ArrivalBuffer::new(VecSource::new(specs(10)), 4).with_watermarks(4, 2);
        assert!(matches!(buf.poll_time(), SourcePoll::Ready(_)));
        let stats = buf.stats();
        assert_eq!(stats.depth(), 4);
        assert_eq!(stats.shed(), 6);
        assert_eq!(stats.depth_peak(), 4);

        // The survivors are the oldest arrivals, in order.
        let names: Vec<String> = std::iter::from_fn(|| buf.next_workflow())
            .map(|w| w.name().to_string())
            .collect();
        assert_eq!(names, vec!["w0", "w1", "w2", "w3"]);
        assert_eq!(buf.stats().arrivals(), 4);
    }

    #[test]
    fn resumes_accepting_after_draining_to_low_watermark() {
        // Feed in two bursts via a channel so the second burst arrives
        // after the master drained the backlog.
        let (tx, src) = woha_trace::ChannelSource::pair();
        let mut buf = ArrivalBuffer::new(src, 4).with_watermarks(4, 2);
        for w in specs(6) {
            tx.send(w).unwrap();
        }
        assert!(matches!(buf.poll_time(), SourcePoll::Ready(_)));
        assert_eq!(buf.stats().shed(), 2);

        // Drain to the low watermark: shedding stops.
        buf.next_workflow().unwrap();
        buf.next_workflow().unwrap();
        tx.send(spec("late", 30)).unwrap();
        drop(tx);
        let names: Vec<String> = std::iter::from_fn(|| buf.next_workflow())
            .map(|w| w.name().to_string())
            .collect();
        assert_eq!(names, vec!["w2", "w3", "late"]);
        assert!(matches!(buf.poll_time(), SourcePoll::Exhausted));
        assert_eq!(buf.stats().arrivals(), 5);
        assert_eq!(buf.stats().shed(), 2);
    }

    #[test]
    fn tracks_lag_between_newest_and_oldest_buffered() {
        let mut buf = ArrivalBuffer::new(VecSource::new(specs(5)), 16);
        assert!(matches!(buf.poll_time(), SourcePoll::Ready(_)));
        let stats = buf.stats();
        // Oldest buffered w0 (t=0s), newest seen w4 (t=4s): 4s of lag.
        assert_eq!(stats.lag_ms(), 4000);
        assert_eq!(stats.lag_peak_ms(), 4000);
        while buf.next_workflow().is_some() {}
        assert_eq!(buf.stats().lag_ms(), 0);
        assert_eq!(buf.stats().lag_peak_ms(), 4000);
    }

    #[test]
    fn exports_into_metrics_registry() {
        let mut buf = ArrivalBuffer::new(VecSource::new(specs(10)), 4).with_watermarks(4, 2);
        while buf.next_workflow().is_some() {}
        let mut metrics = MetricsRegistry::new("none");
        buf.stats().export_into(&mut metrics);
        let text = metrics.prometheus_text();
        assert!(text.contains("woha_arrivals_total 4"), "{text}");
        assert!(text.contains("woha_arrivals_shed_total 6"), "{text}");
        assert!(text.contains("woha_arrival_queue_depth 4"), "{text}");
        assert!(text.contains("woha_arrival_lag_seconds"), "{text}");
    }
}
