//! The pluggable scheduler interface — the simulator's equivalent of the
//! paper's Workflow Scheduler module on the JobTracker.
//!
//! The driver calls [`WorkflowScheduler::assign_task`] once per free slot
//! whenever a heartbeat arrives (including the implicit heartbeat carried
//! by a task completion), exactly as Hadoop's `TaskScheduler.assignTasks`
//! is driven by TaskTracker heartbeats. Notification hooks keep the
//! scheduler's own bookkeeping (queues, plans, progress) in sync with job
//! lifecycle events; implementations only need to override the ones they
//! use.

use crate::state::WorkflowPool;
use serde::Value;
use woha_model::{JobId, SimTime, SlotKind, WorkflowId};

/// Checkpoint support for scheduler-internal state, used by master
/// failover: the JobTracker's periodic snapshot embeds the scheduler's
/// private bookkeeping (WOHA's plan records and priority index, the
/// baselines' activation queues) so a recovered master can resume
/// scheduling without re-deriving it.
///
/// Both methods default to a stateless scheduler (nothing to save,
/// nothing to restore), so purely pool-driven schedulers need no code.
pub trait SchedulerState {
    /// Serializes the scheduler's internal state to a value tree.
    fn snapshot_state(&self) -> Value {
        Value::Null
    }

    /// Rebuilds internal state from a tree produced by
    /// [`snapshot_state`](Self::snapshot_state) against the recovered
    /// `pool`. Implementations should replace — not merge — their state.
    fn restore_state(&mut self, pool: &WorkflowPool, state: &Value) {
        let _ = (pool, state);
    }
}

/// A structured observation emitted by a scheduler implementation while
/// tracing is on (see [`WorkflowScheduler::set_tracing`]). The driver
/// drains these after every dispatched event and timestamps them into the
/// run's [`TraceSink`](crate::obs::TraceSink); schedulers themselves stay
/// clock-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedTrace {
    /// One assignment decision: which workflow won the slot and how far
    /// down the priority order the scheduler had to look.
    Pick {
        /// Chosen workflow.
        workflow: WorkflowId,
        /// 1-based position of the chosen workflow in the scheduler's
        /// priority descent (1 = the head was directly schedulable).
        rank: u32,
        /// Workflows skipped because a batch pre-pass had blocked them.
        blocked: u32,
    },
    /// A scheduling plan was generated for a workflow (Algorithm 1).
    PlanGenerated {
        /// Planned workflow.
        workflow: WorkflowId,
        /// Jobs in the generated plan.
        jobs: usize,
    },
    /// A lagging workflow was replanned mid-flight.
    Replan {
        /// Replanned workflow.
        workflow: WorkflowId,
    },
    /// A task failure rolled a workflow's progress counter ρ back.
    RhoRollback {
        /// Affected workflow.
        workflow: WorkflowId,
    },
}

/// A workflow-aware task scheduler plugged into the simulated JobTracker.
///
/// Implementations decide, for each free slot, which `(workflow, job)` pair
/// receives a task. The driver validates eligibility (the job must be
/// active and have a pending task of the right kind, and reducers only run
/// once the job's maps finished) — a scheduler returning an ineligible pair
/// forfeits that slot offer and the violation is counted in the report.
///
/// The [`SchedulerState`] supertrait lets the fault layer checkpoint and
/// restore scheduler-internal state on master failover; stateless
/// schedulers inherit the no-op defaults via an empty `impl`.
pub trait WorkflowScheduler: SchedulerState {
    /// Human-readable scheduler name used in reports and tables.
    fn name(&self) -> &str;

    /// A workflow has been submitted (its configuration and, for WOHA, its
    /// scheduling plan have reached the JobTracker).
    fn on_workflow_submitted(&mut self, pool: &WorkflowPool, wf: WorkflowId, now: SimTime) {
        let _ = (pool, wf, now);
    }

    /// A wjob finished its submitter task and became schedulable.
    fn on_job_activated(&mut self, pool: &WorkflowPool, wf: WorkflowId, job: JobId, now: SimTime) {
        let _ = (pool, wf, job, now);
    }

    /// A wjob completed all of its tasks.
    fn on_job_completed(&mut self, pool: &WorkflowPool, wf: WorkflowId, job: JobId, now: SimTime) {
        let _ = (pool, wf, job, now);
    }

    /// A workflow completed its last job.
    fn on_workflow_completed(&mut self, pool: &WorkflowPool, wf: WorkflowId, now: SimTime) {
        let _ = (pool, wf, now);
    }

    /// A task of `(wf, job)` was handed to a slot (after a successful
    /// [`assign_task`](Self::assign_task)). WOHA uses this to advance the
    /// true progress `ρ`.
    fn on_task_assigned(
        &mut self,
        pool: &WorkflowPool,
        wf: WorkflowId,
        job: JobId,
        kind: SlotKind,
        now: SimTime,
    ) {
        let _ = (pool, wf, job, kind, now);
    }

    /// A previously-assigned task of `(wf, job)` failed (injected attempt
    /// failure, or its node was lost) and re-entered the pending queue.
    /// WOHA uses this to roll back the true progress `ρ`; the baselines
    /// (FIFO, Fair, EDF) keep no per-task progress state and ignore it.
    fn on_task_failed(
        &mut self,
        pool: &WorkflowPool,
        wf: WorkflowId,
        job: JobId,
        kind: SlotKind,
        now: SimTime,
    ) {
        let _ = (pool, wf, job, kind, now);
    }

    /// The failure detector declared `node` lost (it missed the configured
    /// number of heartbeats). Fired after every affected task's
    /// [`on_task_failed`](Self::on_task_failed); WOHA uses it as a
    /// replanning checkpoint.
    fn on_node_lost(&mut self, pool: &WorkflowPool, node: woha_model::NodeId, now: SimTime) {
        let _ = (pool, node, now);
    }

    /// Chooses the job to receive the free slot of `kind`, or `None` to
    /// leave the slot idle. Called repeatedly while slots remain free, so a
    /// work-conserving scheduler keeps returning pairs until nothing is
    /// eligible.
    fn assign_task(
        &mut self,
        pool: &WorkflowPool,
        kind: SlotKind,
        now: SimTime,
    ) -> Option<(WorkflowId, JobId)>;

    /// Fills up to `max_tasks` free slots of `kind` in one invocation,
    /// making a single pass over the scheduler's internal ordering instead
    /// of `max_tasks` independent [`assign_task`](Self::assign_task)
    /// probes. The picks must be exactly what repeated `assign_task` calls
    /// (each followed by the driver starting the task) would have chosen.
    ///
    /// Returning `Some(picks)` means the scheduler has **already applied**
    /// its own post-assignment bookkeeping for every pick — the driver
    /// starts the tasks but must not call
    /// [`on_task_assigned`](Self::on_task_assigned) for them. Fewer than
    /// `max_tasks` picks means nothing else is eligible.
    ///
    /// The default returns `None`: the driver falls back to per-slot
    /// `assign_task` probes. A correct batch implementation needs internal
    /// accounting of which tasks the batch already claimed (the pool is
    /// only updated afterwards), so it is strictly opt-in.
    fn assign_batch(
        &mut self,
        pool: &WorkflowPool,
        kind: SlotKind,
        now: SimTime,
        max_tasks: u32,
    ) -> Option<Vec<(WorkflowId, JobId)>> {
        let _ = (pool, kind, now, max_tasks);
        None
    }

    /// Turns structured decision tracing on or off. While on, the
    /// scheduler buffers [`SchedTrace`] records for the driver to drain
    /// via [`drain_trace`](Self::drain_trace). The default ignores the
    /// request: schedulers without instrumentation simply emit nothing.
    fn set_tracing(&mut self, on: bool) {
        let _ = on;
    }

    /// Moves buffered [`SchedTrace`] records into `out`, preserving
    /// emission order. The default is a no-op (nothing buffered).
    fn drain_trace(&mut self, out: &mut Vec<SchedTrace>) {
        let _ = out;
    }

    /// Label of the priority-index backend this scheduler consults, used
    /// to label the decision-time histogram (`"dsl"`, `"btree"`,
    /// `"pheap"`, `"naive"`). The default, for schedulers without a
    /// priority index, is `"none"`.
    fn backend_label(&self) -> &'static str {
        "none"
    }

    /// How much of its deadline window the workflow has left at `now`, in
    /// `[0, 1]` — `0.0` means the deadline is due (or blown), `1.0` means
    /// the whole window remains. The driver's risk-aware placement treats
    /// workflows below a slack threshold as deadline-critical and steers
    /// them away from failure-prone nodes.
    ///
    /// The default derives slack from the workflow spec alone (remaining
    /// time over the relative deadline), which serves every baseline;
    /// schedulers with richer progress state (WOHA's lag) override it.
    fn slack_fraction(&self, pool: &WorkflowPool, wf: WorkflowId, now: SimTime) -> f64 {
        spec_slack_fraction(pool, wf, now)
    }

    /// Plans generated with proactive failure padding applied (see
    /// `woha-core`'s plan padding). Schedulers without plan generation
    /// report zero.
    fn plans_padded(&self) -> u64 {
        0
    }
}

/// The spec-based slack fraction shared by the default
/// [`WorkflowScheduler::slack_fraction`] and scheduler overrides that
/// refine it: time remaining to the deadline over the relative deadline,
/// clamped to `[0, 1]`. A workflow with no deadline reports full slack and
/// is therefore never deadline-critical.
pub fn spec_slack_fraction(pool: &WorkflowPool, wf: WorkflowId, now: SimTime) -> f64 {
    let spec = pool.workflow(wf).spec();
    if spec.deadline() == SimTime::MAX {
        return 1.0;
    }
    let window = spec.relative_deadline().as_millis().max(1) as f64;
    let left = spec.deadline().saturating_since(now).as_millis() as f64;
    (left / window).clamp(0.0, 1.0)
}

/// Picks the first eligible job of `wf` in job-id order — the common
/// "any task from this workflow" fallback used by several schedulers.
pub fn first_eligible_job(pool: &WorkflowPool, wf: WorkflowId, kind: SlotKind) -> Option<JobId> {
    pool.workflow(wf)
        .active_jobs()
        .find(|&j| pool.eligible(wf, j, kind))
}

/// A minimal reference scheduler: workflows in submission (id) order, jobs
/// in id order. Useful for driver tests; the paper's baselines (FIFO by job
/// submission time, Fair, EDF) live in `woha-core`.
#[derive(Debug, Default, Clone)]
pub struct SubmitOrderScheduler;

impl SubmitOrderScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        SubmitOrderScheduler
    }
}

impl SchedulerState for SubmitOrderScheduler {}

impl WorkflowScheduler for SubmitOrderScheduler {
    fn name(&self) -> &str {
        "submit-order"
    }

    fn assign_task(
        &mut self,
        pool: &WorkflowPool,
        kind: SlotKind,
        _now: SimTime,
    ) -> Option<(WorkflowId, JobId)> {
        pool.incomplete()
            .find_map(|wf| first_eligible_job(pool, wf, kind).map(|job| (wf, job)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_order_on_empty_pool() {
        let pool = WorkflowPool::new();
        let mut s = SubmitOrderScheduler::new();
        assert_eq!(s.assign_task(&pool, SlotKind::Map, SimTime::ZERO), None);
        assert_eq!(s.name(), "submit-order");
    }
}
