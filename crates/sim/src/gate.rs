//! The admission gate at the driver's front door.
//!
//! A gate sees every workflow the moment it is pulled from the
//! [`WorkloadSource`](woha_trace::WorkloadSource) — *before* it enters the
//! event queue, the pool, or the scheduler — and may turn it away. A
//! rejected workflow never enters the cluster: it gets no pool entry, no
//! outcome, and no events; the driver only counts it (per reason label) in
//! [`AdmissionReport`](crate::metrics::AdmissionReport) and emits an
//! [`AdmissionReject`](crate::TraceEvent::AdmissionReject) trace record.
//!
//! The gate models a *client-side* admission controller (the paper's
//! necessary-condition feasibility check), not master state: it is
//! consulted exactly once per workflow at submission, its decisions are
//! never replayed from the WAL, and a master crash does not reset it.
//! [`release`](AdmissionGate::release) fires once per admitted workflow
//! when it completes, so capacity-tracking gates can free its demand.

use woha_model::{SimTime, WorkflowSpec};

/// Decides, at submission time, whether a workflow may enter the cluster.
///
/// Implementations live outside this crate (the WOHA admission controller
/// in `woha-core` is the canonical one); the driver only needs the two
/// hooks below.
pub trait AdmissionGate {
    /// Decides whether `spec`, submitted at `now`, is admitted.
    ///
    /// Submission times are nondecreasing across calls (the driver pulls
    /// the source in time order), so gates may keep time-indexed state.
    ///
    /// # Errors
    ///
    /// Returns a *stable, snake_case reason label* (e.g.
    /// `"aggregate_overload"`) when the workflow is rejected. Labels key
    /// the per-reason counters in the report, so they must not embed
    /// run-specific values.
    fn admit(&mut self, spec: &WorkflowSpec, now: SimTime) -> Result<(), String>;

    /// Notifies the gate that the admitted workflow named `name` has
    /// completed, so its demand can be released. Called exactly once per
    /// admitted workflow that completes (never during WAL replay).
    fn release(&mut self, name: &str);
}

/// A gate that admits everything — useful as a baseline and in tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmitAll;

impl AdmissionGate for AdmitAll {
    fn admit(&mut self, _spec: &WorkflowSpec, _now: SimTime) -> Result<(), String> {
        Ok(())
    }

    fn release(&mut self, _name: &str) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use woha_model::{JobSpec, SimDuration, WorkflowBuilder};

    #[test]
    fn admit_all_admits() {
        let mut b = WorkflowBuilder::new("w");
        b.add_job(JobSpec::new(
            "j",
            1,
            0,
            SimDuration::from_secs(1),
            SimDuration::ZERO,
        ));
        let spec = b.build().unwrap();
        let mut gate = AdmitAll;
        assert!(gate.admit(&spec, SimTime::ZERO).is_ok());
        gate.release("w");
    }
}
