//! Structured observability: a zero-cost-when-off trace bus over the full
//! scheduling decision loop, plus exporters for the collected data.
//!
//! The simulator's ad-hoc outputs (the `SimReport` aggregates and the
//! Figs 14–19 slot timelines) answer *what* happened; this module records
//! *why*. When [`ObservabilityConfig::trace`] is on, the driver emits one
//! [`TraceRecord`] per decision-loop step — heartbeat arrival, batch
//! coalescing, assignment outcome, plan generation, ρ-rollback/replan,
//! fault and blacklist events, checkpoint writes, and WAL replay spans —
//! into a caller-supplied [`TraceSink`]. When it is off (the default), the
//! only cost on the hot path is a `None` check, and reports are
//! byte-identical to pre-observability output (proven by the E2E tests).
//!
//! Two exporters turn the collected data into standard tooling formats:
//!
//! - [`Observations::chrome_trace_json`] renders Chrome trace-event JSON
//!   loadable in Perfetto (<https://ui.perfetto.dev>), with one track per
//!   cluster node, a scheduler-decisions track, and counter tracks from
//!   the sampled gauges; every timestamp is simulated time, so the file is
//!   deterministic across runs.
//! - [`Observations::prometheus_text`] renders the
//!   [`MetricsRegistry`](crate::metrics::MetricsRegistry) in the
//!   Prometheus text exposition format.

use crate::metrics::MetricsRegistry;
use serde::Value;
use woha_model::{SimDuration, SimTime, SlotKind, WorkflowId};

/// Which observability subsystems a run records. Everything is off by
/// default, which keeps the simulation output byte-identical to builds
/// that predate this module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObservabilityConfig {
    /// Emit structured [`TraceRecord`]s for the decision loop.
    pub trace: bool,
    /// Maintain the [`MetricsRegistry`] (counters, histograms, and gauges
    /// sampled on the observability grid).
    pub metrics: bool,
    /// Record per-workflow slot timelines (Figs 14–19). Supersedes the
    /// deprecated `SimConfig::track_timelines`, which is OR-ed in for
    /// backward compatibility.
    pub timelines: bool,
    /// Sampling interval for gauges and timelines. `None` falls back to
    /// the legacy `SimConfig::sample_interval`.
    pub sample_interval: Option<SimDuration>,
}

impl ObservabilityConfig {
    /// Whether any subsystem that hooks the driver's event loop is on.
    pub fn enabled(&self) -> bool {
        self.trace || self.metrics || self.timelines
    }
}

/// One structured observation: what happened, and when in simulated time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated instant of the event.
    pub at: SimTime,
    /// What happened.
    pub event: TraceEvent,
}

/// A step of the scheduling decision loop.
///
/// Node-scoped variants carry the node's index in the cluster config;
/// scheduler-scoped variants land on the scheduler-decisions track of the
/// Chrome trace export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A TaskTracker heartbeat reached the JobTracker.
    Heartbeat {
        /// Reporting node.
        node: usize,
        /// Free map slots advertised.
        free_maps: u32,
        /// Free reduce slots advertised.
        free_reduces: u32,
    },
    /// Same-tick heartbeats were coalesced into one scheduler batch.
    BatchCoalesced {
        /// Heartbeats in the batch (≥ 2; single heartbeats are not
        /// recorded as batches).
        heartbeats: usize,
    },
    /// The scheduler assigned a task to a slot offer.
    Assign {
        /// Offering node.
        node: usize,
        /// Slot kind offered.
        kind: SlotKind,
        /// Chosen workflow.
        workflow: WorkflowId,
        /// Chosen job (index within the workflow).
        job: usize,
    },
    /// Detail of one scheduler pick, drained from the scheduler itself
    /// (WOHA emits these; fifo-style schedulers do not).
    SchedulerPick {
        /// Chosen workflow.
        workflow: WorkflowId,
        /// 1-based rank of the chosen workflow in the priority-index
        /// descent — 1 means the LPF head was schedulable directly.
        rank: u32,
        /// Workflows skipped as blocked (batch pre-commit) during this
        /// pick.
        blocked: u32,
        /// Priority-index backend label (`"dsl"`, `"btree"`, `"pheap"`,
        /// `"naive"`).
        backend: &'static str,
    },
    /// A workflow plan was generated (Algorithm 1).
    PlanGenerated {
        /// Planned workflow.
        workflow: WorkflowId,
        /// Jobs in the plan.
        jobs: usize,
    },
    /// A lagging workflow was replanned mid-flight.
    Replan {
        /// Replanned workflow.
        workflow: WorkflowId,
    },
    /// A task failure rolled the workflow's progress counter ρ back.
    RhoRollback {
        /// Affected workflow.
        workflow: WorkflowId,
    },
    /// A task attempt started executing.
    TaskStart {
        /// Executing node.
        node: usize,
        /// Owning workflow.
        workflow: WorkflowId,
        /// Owning job.
        job: usize,
        /// Task kind.
        kind: SlotKind,
        /// Whether this is a speculative duplicate attempt.
        speculative: bool,
    },
    /// A task attempt ran to completion.
    TaskComplete {
        /// Executing node.
        node: usize,
        /// Owning workflow.
        workflow: WorkflowId,
        /// Owning job.
        job: usize,
        /// Task kind.
        kind: SlotKind,
    },
    /// A running attempt was killed (lost speculation race or node loss).
    TaskKilled {
        /// Executing node.
        node: usize,
        /// Owning workflow.
        workflow: WorkflowId,
        /// Owning job.
        job: usize,
        /// Task kind.
        kind: SlotKind,
    },
    /// A node crashed and its slots left the pool.
    NodeDown {
        /// Crashed node.
        node: usize,
    },
    /// A repaired node re-registered with the JobTracker.
    NodeUp {
        /// Recovered node.
        node: usize,
    },
    /// A node exceeded the crash threshold and was blacklisted for good.
    NodeBlacklisted {
        /// Blacklisted node.
        node: usize,
    },
    /// The master wrote a full state checkpoint.
    CheckpointTaken {
        /// WAL records superseded by (folded into) this checkpoint.
        wal_records: u64,
    },
    /// The admission gate rejected a workflow at the driver's front door.
    /// The workflow never enters the pool and produces no outcome.
    AdmissionReject {
        /// Name of the rejected workflow spec.
        workflow: String,
        /// Stable rejection-reason label produced by the gate in use.
        reason: String,
    },
    /// Risk-aware placement declined a slot offer: the node's failure
    /// propensity was over threshold and the workflow deadline-critical,
    /// so the task waits for a safer node.
    RiskAverted {
        /// Declined (failure-prone) node.
        node: usize,
        /// Deadline-critical workflow steered away.
        workflow: WorkflowId,
    },
    /// The master (JobTracker) crashed.
    MasterCrashed,
    /// The restarted master finished replaying its write-ahead log. The
    /// record is emitted at the recovery instant; `outage` stretches the
    /// replay span back to the crash.
    WalReplayed {
        /// WAL records replayed.
        records: u64,
        /// Master downtime covered by this recovery.
        outage: SimDuration,
    },
}

/// Receives trace records as the simulation emits them.
///
/// The driver calls [`record`](Self::record) synchronously from the event
/// loop, so implementations should be cheap (push to a buffer); rendering
/// belongs after the run. [`MemorySink`] is the standard implementation.
pub trait TraceSink {
    /// Consumes one record.
    fn record(&mut self, record: TraceRecord);
}

/// A [`TraceSink`] that buffers every record in memory.
#[derive(Debug, Default)]
pub struct MemorySink {
    records: Vec<TraceRecord>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The records collected so far, in emission order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Consumes the sink, returning its records.
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, record: TraceRecord) {
        self.records.push(record);
    }
}

/// A [`TraceSink`] that renders each record as one line of JSON and writes
/// it to the underlying writer immediately — the streaming counterpart of
/// buffering into [`MemorySink`] and rendering afterwards. Peak memory is
/// one line regardless of trace length; the output is byte-identical to
/// [`Observations::trace_jsonl`] over the same records.
///
/// Write errors are sticky: the first one is retained (see
/// [`error`](Self::error)) and later records are dropped.
#[derive(Debug)]
pub struct JsonlTraceSink<W: std::io::Write> {
    writer: W,
    error: Option<String>,
}

impl<W: std::io::Write> JsonlTraceSink<W> {
    /// Wraps a writer. Callers that care about throughput should pass a
    /// buffered writer; every record still reaches it eagerly.
    pub fn new(writer: W) -> Self {
        JsonlTraceSink {
            writer,
            error: None,
        }
    }

    /// The first write error encountered, if any.
    pub fn error(&self) -> Option<&str> {
        self.error.as_deref()
    }

    /// Flushes and returns the underlying writer, plus the sticky error if
    /// one occurred.
    ///
    /// # Errors
    ///
    /// Returns the first write/flush error encountered.
    pub fn finish(mut self) -> Result<W, String> {
        if let Err(e) = self.writer.flush() {
            self.error.get_or_insert_with(|| e.to_string());
        }
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.writer),
        }
    }
}

impl<W: std::io::Write> TraceSink for JsonlTraceSink<W> {
    fn record(&mut self, record: TraceRecord) {
        if self.error.is_some() {
            return;
        }
        let line = jsonl_line(&record);
        if let Err(e) = self
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
        {
            self.error = Some(e.to_string());
        }
    }
}

/// Renders one trace record as a single compact JSON line:
/// `{"at_ms": <time>, "event": "<kind>", ...fields}`. Field order is the
/// variant's declaration order, so rendering is deterministic and a
/// buffered trace renders byte-identically to a streamed one.
pub fn jsonl_line(record: &TraceRecord) -> String {
    let mut obj: Vec<(String, Value)> = vec![("at_ms".into(), Value::U64(record.at.as_millis()))];
    let mut put = |key: &str, value: Value| obj.push((key.to_string(), value));
    match &record.event {
        TraceEvent::Heartbeat {
            node,
            free_maps,
            free_reduces,
        } => {
            put("event", Value::Str("heartbeat".into()));
            put("node", Value::U64(*node as u64));
            put("free_maps", Value::U64(u64::from(*free_maps)));
            put("free_reduces", Value::U64(u64::from(*free_reduces)));
        }
        TraceEvent::BatchCoalesced { heartbeats } => {
            put("event", Value::Str("batch_coalesced".into()));
            put("heartbeats", Value::U64(*heartbeats as u64));
        }
        TraceEvent::Assign {
            node,
            kind,
            workflow,
            job,
        } => {
            put("event", Value::Str("assign".into()));
            put("node", Value::U64(*node as u64));
            put("kind", Value::Str(kind.to_string()));
            put("workflow", Value::U64(workflow.as_u64()));
            put("job", Value::U64(*job as u64));
        }
        TraceEvent::SchedulerPick {
            workflow,
            rank,
            blocked,
            backend,
        } => {
            put("event", Value::Str("scheduler_pick".into()));
            put("workflow", Value::U64(workflow.as_u64()));
            put("rank", Value::U64(u64::from(*rank)));
            put("blocked", Value::U64(u64::from(*blocked)));
            put("backend", Value::Str((*backend).to_string()));
        }
        TraceEvent::PlanGenerated { workflow, jobs } => {
            put("event", Value::Str("plan_generated".into()));
            put("workflow", Value::U64(workflow.as_u64()));
            put("jobs", Value::U64(*jobs as u64));
        }
        TraceEvent::Replan { workflow } => {
            put("event", Value::Str("replan".into()));
            put("workflow", Value::U64(workflow.as_u64()));
        }
        TraceEvent::RhoRollback { workflow } => {
            put("event", Value::Str("rho_rollback".into()));
            put("workflow", Value::U64(workflow.as_u64()));
        }
        TraceEvent::TaskStart {
            node,
            workflow,
            job,
            kind,
            speculative,
        } => {
            put("event", Value::Str("task_start".into()));
            put("node", Value::U64(*node as u64));
            put("workflow", Value::U64(workflow.as_u64()));
            put("job", Value::U64(*job as u64));
            put("kind", Value::Str(kind.to_string()));
            put("speculative", Value::Bool(*speculative));
        }
        TraceEvent::TaskComplete {
            node,
            workflow,
            job,
            kind,
        } => {
            put("event", Value::Str("task_complete".into()));
            put("node", Value::U64(*node as u64));
            put("workflow", Value::U64(workflow.as_u64()));
            put("job", Value::U64(*job as u64));
            put("kind", Value::Str(kind.to_string()));
        }
        TraceEvent::TaskKilled {
            node,
            workflow,
            job,
            kind,
        } => {
            put("event", Value::Str("task_killed".into()));
            put("node", Value::U64(*node as u64));
            put("workflow", Value::U64(workflow.as_u64()));
            put("job", Value::U64(*job as u64));
            put("kind", Value::Str(kind.to_string()));
        }
        TraceEvent::NodeDown { node } => {
            put("event", Value::Str("node_down".into()));
            put("node", Value::U64(*node as u64));
        }
        TraceEvent::NodeUp { node } => {
            put("event", Value::Str("node_up".into()));
            put("node", Value::U64(*node as u64));
        }
        TraceEvent::NodeBlacklisted { node } => {
            put("event", Value::Str("node_blacklisted".into()));
            put("node", Value::U64(*node as u64));
        }
        TraceEvent::CheckpointTaken { wal_records } => {
            put("event", Value::Str("checkpoint_taken".into()));
            put("wal_records", Value::U64(*wal_records));
        }
        TraceEvent::AdmissionReject { workflow, reason } => {
            put("event", Value::Str("admission_reject".into()));
            put("workflow", Value::Str(workflow.clone()));
            put("reason", Value::Str(reason.clone()));
        }
        TraceEvent::RiskAverted { node, workflow } => {
            put("event", Value::Str("risk_averted".into()));
            put("node", Value::U64(*node as u64));
            put("workflow", Value::U64(workflow.as_u64()));
        }
        TraceEvent::MasterCrashed => {
            put("event", Value::Str("master_crashed".into()));
        }
        TraceEvent::WalReplayed { records, outage } => {
            put("event", Value::Str("wal_replayed".into()));
            put("records", Value::U64(*records));
            put("outage_ms", Value::U64(outage.as_millis()));
        }
    }
    serde_json::to_string(&Value::Object(obj)).expect("trace line renders")
}

/// Everything a run observed beyond its [`SimReport`](crate::SimReport):
/// the trace, the metrics registry, and enough cluster shape to render
/// per-node tracks.
#[derive(Debug, Default)]
pub struct Observations {
    /// Structured decision-loop records in emission order; empty when
    /// tracing was off.
    pub trace: Vec<TraceRecord>,
    /// The metrics registry; `None` when metrics were off.
    pub metrics: Option<MetricsRegistry>,
    /// Number of cluster nodes (per-node Chrome trace tracks).
    pub node_count: usize,
}

impl Observations {
    /// Renders the Prometheus text exposition of the metrics registry, or
    /// `None` when metrics were off.
    pub fn prometheus_text(&self) -> Option<String> {
        self.metrics.as_ref().map(|m| m.prometheus_text())
    }

    /// Renders the buffered trace as JSON Lines, one record per line —
    /// byte-identical to what a [`JsonlTraceSink`] would have written
    /// incrementally over the same records.
    pub fn trace_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in &self.trace {
            out.push_str(&jsonl_line(rec));
            out.push('\n');
        }
        out
    }

    /// Renders the trace (plus sampled gauge series) as Chrome trace-event
    /// JSON: `{"traceEvents": [...]}` with complete (`ph:"X"`) spans for
    /// task attempts on one track per node, instant (`ph:"i"`) events for
    /// decisions on a dedicated scheduler track (`tid` 0), and counter
    /// (`ph:"C"`) events from the gauge series. Load the file at
    /// <https://ui.perfetto.dev> or `chrome://tracing`.
    ///
    /// All timestamps are simulated microseconds, so the output is
    /// byte-identical across identical seeded runs.
    pub fn chrome_trace_json(&self) -> String {
        let mut events: Vec<Value> = Vec::new();
        thread_meta(&mut events, SCHED_TID, "scheduler decisions");
        for node in 0..self.node_count {
            thread_meta(&mut events, node_tid(node), &format!("node-{node}"));
        }

        // FIFO-pair task starts with their completion/kill so each attempt
        // becomes one complete span. Keyed by (node, workflow, job, kind);
        // concurrent same-task attempts on one node pair in start order.
        let mut open: Vec<(TaskKey, u64, bool)> = Vec::new();
        let horizon_us = self.trace.last().map_or(0, |r| us(r.at));
        for rec in &self.trace {
            let ts = us(rec.at);
            match &rec.event {
                TraceEvent::Heartbeat {
                    node,
                    free_maps,
                    free_reduces,
                } => events.push(instant(
                    "heartbeat",
                    "heartbeat",
                    ts,
                    node_tid(*node),
                    vec![
                        ("free_maps", Value::U64(u64::from(*free_maps))),
                        ("free_reduces", Value::U64(u64::from(*free_reduces))),
                    ],
                )),
                TraceEvent::BatchCoalesced { heartbeats } => events.push(instant(
                    "batch_coalesced",
                    "scheduler",
                    ts,
                    SCHED_TID,
                    vec![("heartbeats", Value::U64(*heartbeats as u64))],
                )),
                TraceEvent::Assign {
                    node,
                    kind,
                    workflow,
                    job,
                } => events.push(instant(
                    "assign",
                    "scheduler",
                    ts,
                    node_tid(*node),
                    vec![
                        ("workflow", Value::U64(workflow.as_u64())),
                        ("job", Value::U64(*job as u64)),
                        ("kind", Value::Str(kind.to_string())),
                    ],
                )),
                TraceEvent::SchedulerPick {
                    workflow,
                    rank,
                    blocked,
                    backend,
                } => events.push(instant(
                    "pick",
                    "scheduler",
                    ts,
                    SCHED_TID,
                    vec![
                        ("workflow", Value::U64(workflow.as_u64())),
                        ("rank", Value::U64(u64::from(*rank))),
                        ("blocked", Value::U64(u64::from(*blocked))),
                        ("backend", Value::Str((*backend).to_string())),
                    ],
                )),
                TraceEvent::PlanGenerated { workflow, jobs } => events.push(instant(
                    "plan_generated",
                    "scheduler",
                    ts,
                    SCHED_TID,
                    vec![
                        ("workflow", Value::U64(workflow.as_u64())),
                        ("jobs", Value::U64(*jobs as u64)),
                    ],
                )),
                TraceEvent::Replan { workflow } => events.push(instant(
                    "replan",
                    "scheduler",
                    ts,
                    SCHED_TID,
                    vec![("workflow", Value::U64(workflow.as_u64()))],
                )),
                TraceEvent::RhoRollback { workflow } => events.push(instant(
                    "rho_rollback",
                    "scheduler",
                    ts,
                    SCHED_TID,
                    vec![("workflow", Value::U64(workflow.as_u64()))],
                )),
                TraceEvent::TaskStart {
                    node,
                    workflow,
                    job,
                    kind,
                    speculative,
                } => open.push((
                    TaskKey {
                        node: *node,
                        workflow: *workflow,
                        job: *job,
                        kind: *kind,
                    },
                    ts,
                    *speculative,
                )),
                TraceEvent::TaskComplete {
                    node,
                    workflow,
                    job,
                    kind,
                }
                | TraceEvent::TaskKilled {
                    node,
                    workflow,
                    job,
                    kind,
                } => {
                    let key = TaskKey {
                        node: *node,
                        workflow: *workflow,
                        job: *job,
                        kind: *kind,
                    };
                    let killed = matches!(rec.event, TraceEvent::TaskKilled { .. });
                    if let Some(pos) = open.iter().position(|(k, ..)| *k == key) {
                        let (key, start, speculative) = open.remove(pos);
                        events.push(task_span(&key, start, ts, speculative, killed));
                    }
                }
                TraceEvent::NodeDown { node } => {
                    events.push(instant("node_down", "fault", ts, node_tid(*node), vec![]))
                }
                TraceEvent::NodeUp { node } => {
                    events.push(instant("node_up", "fault", ts, node_tid(*node), vec![]))
                }
                TraceEvent::NodeBlacklisted { node } => events.push(instant(
                    "node_blacklisted",
                    "fault",
                    ts,
                    node_tid(*node),
                    vec![],
                )),
                TraceEvent::CheckpointTaken { wal_records } => events.push(instant(
                    "checkpoint",
                    "master",
                    ts,
                    SCHED_TID,
                    vec![("wal_records", Value::U64(*wal_records))],
                )),
                TraceEvent::AdmissionReject { workflow, reason } => events.push(instant(
                    "admission_reject",
                    "admission",
                    ts,
                    SCHED_TID,
                    vec![
                        ("workflow", Value::Str(workflow.clone())),
                        ("reason", Value::Str(reason.clone())),
                    ],
                )),
                TraceEvent::RiskAverted { node, workflow } => events.push(instant(
                    "risk_averted",
                    "scheduler",
                    ts,
                    node_tid(*node),
                    vec![("workflow", Value::U64(workflow.as_u64()))],
                )),
                TraceEvent::MasterCrashed => {
                    events.push(instant("master_crashed", "master", ts, SCHED_TID, vec![]))
                }
                TraceEvent::WalReplayed { records, outage } => {
                    let dur = outage.as_millis() * 1000;
                    events.push(span(
                        "wal_replay",
                        "master",
                        ts.saturating_sub(dur),
                        dur,
                        SCHED_TID,
                        vec![("records", Value::U64(*records))],
                    ));
                }
            }
        }
        // Attempts still running at the end of the trace render as spans
        // truncated at the last recorded instant.
        for (key, start, speculative) in open {
            events.push(task_span(
                &key,
                start,
                horizon_us.max(start),
                speculative,
                false,
            ));
        }

        // Counter tracks from the sampled gauge series.
        if let Some(metrics) = &self.metrics {
            for gauge in metrics.gauges() {
                for &(at, value) in gauge.series() {
                    events.push(Value::Object(vec![
                        ("name".into(), Value::Str(gauge.name().to_string())),
                        ("ph".into(), Value::Str("C".to_string())),
                        ("pid".into(), Value::U64(PID)),
                        ("tid".into(), Value::U64(SCHED_TID)),
                        ("ts".into(), Value::U64(us(at))),
                        (
                            "args".into(),
                            Value::Object(vec![("value".into(), Value::F64(value))]),
                        ),
                    ]));
                }
            }
        }

        let root = Value::Object(vec![("traceEvents".into(), Value::Array(events))]);
        serde_json::to_string(&root).expect("trace value renders")
    }
}

/// Process id used for every trace event.
const PID: u64 = 1;
/// Thread id of the scheduler-decisions track.
const SCHED_TID: u64 = 0;

fn node_tid(node: usize) -> u64 {
    node as u64 + 1
}

fn us(at: SimTime) -> u64 {
    at.as_millis() * 1000
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TaskKey {
    node: usize,
    workflow: WorkflowId,
    job: usize,
    kind: SlotKind,
}

fn thread_meta(events: &mut Vec<Value>, tid: u64, name: &str) {
    events.push(Value::Object(vec![
        ("name".into(), Value::Str("thread_name".to_string())),
        ("ph".into(), Value::Str("M".to_string())),
        ("pid".into(), Value::U64(PID)),
        ("tid".into(), Value::U64(tid)),
        (
            "args".into(),
            Value::Object(vec![("name".into(), Value::Str(name.to_string()))]),
        ),
    ]));
}

fn instant(name: &str, cat: &str, ts: u64, tid: u64, args: Vec<(&str, Value)>) -> Value {
    let mut obj = vec![
        ("name".into(), Value::Str(name.to_string())),
        ("cat".into(), Value::Str(cat.to_string())),
        ("ph".into(), Value::Str("i".to_string())),
        ("s".into(), Value::Str("t".to_string())),
        ("pid".into(), Value::U64(PID)),
        ("tid".into(), Value::U64(tid)),
        ("ts".into(), Value::U64(ts)),
    ];
    if !args.is_empty() {
        obj.push(("args".into(), args_obj(args)));
    }
    Value::Object(obj)
}

fn span(name: &str, cat: &str, ts: u64, dur: u64, tid: u64, args: Vec<(&str, Value)>) -> Value {
    let mut obj = vec![
        ("name".into(), Value::Str(name.to_string())),
        ("cat".into(), Value::Str(cat.to_string())),
        ("ph".into(), Value::Str("X".to_string())),
        ("pid".into(), Value::U64(PID)),
        ("tid".into(), Value::U64(tid)),
        ("ts".into(), Value::U64(ts)),
        ("dur".into(), Value::U64(dur)),
    ];
    if !args.is_empty() {
        obj.push(("args".into(), args_obj(args)));
    }
    Value::Object(obj)
}

fn task_span(key: &TaskKey, start: u64, end: u64, speculative: bool, killed: bool) -> Value {
    let name = format!("w{}/j{} {}", key.workflow.as_u64(), key.job, key.kind);
    span(
        &name,
        "task",
        start,
        end.saturating_sub(start),
        node_tid(key.node),
        vec![
            ("workflow", Value::U64(key.workflow.as_u64())),
            ("job", Value::U64(key.job as u64)),
            ("kind", Value::Str(key.kind.to_string())),
            ("speculative", Value::Bool(speculative)),
            ("killed", Value::Bool(killed)),
        ],
    )
}

fn args_obj(args: Vec<(&str, Value)>) -> Value {
    Value::Object(args.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_buffers_in_order() {
        let mut sink = MemorySink::new();
        sink.record(TraceRecord {
            at: SimTime::from_secs(1),
            event: TraceEvent::MasterCrashed,
        });
        sink.record(TraceRecord {
            at: SimTime::from_secs(2),
            event: TraceEvent::Heartbeat {
                node: 0,
                free_maps: 2,
                free_reduces: 1,
            },
        });
        assert_eq!(sink.records().len(), 2);
        assert_eq!(sink.records()[0].at, SimTime::from_secs(1));
        let records = sink.into_records();
        assert!(matches!(records[1].event, TraceEvent::Heartbeat { .. }));
    }

    #[test]
    fn observability_config_default_is_fully_off() {
        let obs = ObservabilityConfig::default();
        assert!(!obs.enabled());
        assert!(obs.sample_interval.is_none());
        assert!(ObservabilityConfig {
            trace: true,
            ..ObservabilityConfig::default()
        }
        .enabled());
    }

    #[test]
    fn chrome_trace_pairs_task_spans() {
        let wf = WorkflowId::new(3);
        let obs = Observations {
            trace: vec![
                TraceRecord {
                    at: SimTime::from_secs(10),
                    event: TraceEvent::TaskStart {
                        node: 1,
                        workflow: wf,
                        job: 0,
                        kind: SlotKind::Map,
                        speculative: false,
                    },
                },
                TraceRecord {
                    at: SimTime::from_secs(40),
                    event: TraceEvent::TaskComplete {
                        node: 1,
                        workflow: wf,
                        job: 0,
                        kind: SlotKind::Map,
                    },
                },
            ],
            metrics: None,
            node_count: 2,
        };
        let json = obs.chrome_trace_json();
        let value: Value = serde_json::from_str(&json).unwrap();
        let events = value.as_object().unwrap()[0].1.as_array().unwrap();
        // 3 thread_name metadata records (scheduler + 2 nodes) + 1 span.
        assert_eq!(events.len(), 4);
        let span = events
            .iter()
            .find(|e| field(e, "ph").as_str() == Some("X"))
            .expect("one complete span");
        assert_eq!(field(span, "ts").as_u128(), Some(10_000_000));
        assert_eq!(field(span, "dur").as_u128(), Some(30_000_000));
        assert_eq!(field(span, "tid").as_u128(), Some(2)); // node 1
        assert_eq!(field(span, "name").as_str(), Some("w3/j0 map"));
    }

    #[test]
    fn chrome_trace_truncates_unfinished_spans_and_emits_counters() {
        let mut metrics = MetricsRegistry::new("dsl");
        metrics.pending_tasks.set(5.0);
        metrics.pending_tasks.sample(SimTime::from_secs(30));
        let obs = Observations {
            trace: vec![
                TraceRecord {
                    at: SimTime::from_secs(10),
                    event: TraceEvent::TaskStart {
                        node: 0,
                        workflow: WorkflowId::new(0),
                        job: 1,
                        kind: SlotKind::Reduce,
                        speculative: true,
                    },
                },
                TraceRecord {
                    at: SimTime::from_secs(50),
                    event: TraceEvent::MasterCrashed,
                },
            ],
            metrics: Some(metrics),
            node_count: 1,
        };
        let json = obs.chrome_trace_json();
        let value: Value = serde_json::from_str(&json).unwrap();
        let events = value.as_object().unwrap()[0].1.as_array().unwrap();
        let span = events
            .iter()
            .find(|e| field(e, "ph").as_str() == Some("X"))
            .expect("truncated span");
        // Runs to the last traced instant (the crash at 50 s).
        assert_eq!(field(span, "dur").as_u128(), Some(40_000_000));
        let counters: Vec<_> = events
            .iter()
            .filter(|e| field(e, "ph").as_str() == Some("C"))
            .collect();
        assert_eq!(counters.len(), 1); // one sampled gauge, one sample
        assert!(counters
            .iter()
            .any(|c| field(c, "name").as_str() == Some("woha_pending_tasks")));
    }

    #[test]
    fn jsonl_sink_matches_buffered_rendering() {
        let records = vec![
            TraceRecord {
                at: SimTime::from_secs(1),
                event: TraceEvent::Heartbeat {
                    node: 2,
                    free_maps: 3,
                    free_reduces: 1,
                },
            },
            TraceRecord {
                at: SimTime::from_secs(2),
                event: TraceEvent::AdmissionReject {
                    workflow: "w-late".to_string(),
                    reason: "critical_path_exceeds_deadline".to_string(),
                },
            },
            TraceRecord {
                at: SimTime::from_secs(3),
                event: TraceEvent::WalReplayed {
                    records: 7,
                    outage: SimDuration::from_secs(4),
                },
            },
        ];
        let mut sink = JsonlTraceSink::new(Vec::new());
        for rec in &records {
            sink.record(rec.clone());
        }
        let streamed = String::from_utf8(sink.finish().expect("no write error")).unwrap();
        let buffered = Observations {
            trace: records,
            metrics: None,
            node_count: 3,
        }
        .trace_jsonl();
        assert_eq!(streamed, buffered);
        assert_eq!(streamed.lines().count(), 3);
        let first: Value = serde_json::from_str(streamed.lines().next().unwrap()).unwrap();
        assert_eq!(field(&first, "event").as_str(), Some("heartbeat"));
        assert_eq!(field(&first, "at_ms").as_u128(), Some(1000));
        let second: Value = serde_json::from_str(streamed.lines().nth(1).unwrap()).unwrap();
        assert_eq!(
            field(&second, "reason").as_str(),
            Some("critical_path_exceeds_deadline")
        );
    }

    #[test]
    fn jsonl_sink_records_sticky_write_errors() {
        struct Failing;
        impl std::io::Write for Failing {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlTraceSink::new(Failing);
        sink.record(TraceRecord {
            at: SimTime::ZERO,
            event: TraceEvent::MasterCrashed,
        });
        assert!(sink.error().is_some_and(|e| e.contains("disk full")));
        assert!(sink.finish().is_err());
    }

    #[test]
    fn chrome_trace_renders_admission_rejects() {
        let obs = Observations {
            trace: vec![TraceRecord {
                at: SimTime::from_secs(5),
                event: TraceEvent::AdmissionReject {
                    workflow: "w0".to_string(),
                    reason: "aggregate_overload".to_string(),
                },
            }],
            metrics: None,
            node_count: 1,
        };
        let json = obs.chrome_trace_json();
        assert!(json.contains("admission_reject"));
        assert!(json.contains("aggregate_overload"));
    }

    fn field<'v>(event: &'v Value, key: &str) -> &'v Value {
        &event
            .as_object()
            .unwrap()
            .iter()
            .find(|(k, _)| k == key)
            .unwrap()
            .1
    }
}
