//! The workflow ordering index of the WOHA master: the paper's Double Skip
//! List (§IV-B, Fig 4), plus the Balanced-Search-Tree alternative it is
//! compared against in Fig 13(a).
//!
//! The index maintains two orderings over queued workflows:
//!
//! - the **ct list**, ordered by each workflow's *next progress-requirement
//!   change time* — the scheduler walks its head to find workflows whose
//!   priority is stale;
//! - the **priority list**, ordered by current progress lag
//!   `F_i(ttd) - ρ_i` descending — its head is the workflow to schedule.
//!
//! Both structures see the same skewed access pattern: most deletions hit
//! the head. [`DslIndex`] serves those in O(1) via [`SkipList`];
//! [`BstIndex`] uses two `BTreeSet`s at O(log n) per head access. (The
//! paper's third contender, the naive rebuild-everything scheduler, lives
//! in [`crate::woha`] because it bypasses any incremental index.)

use crate::skiplist::SkipList;
use std::collections::BTreeSet;
use std::fmt;
use woha_model::{SimTime, WorkflowId};

/// A double ordering over queued workflows, keyed by next-change time and
/// by priority (progress lag, larger = more urgent).
///
/// Callers must pass the *current* `(ct, lag)` of a workflow when removing
/// or updating it — the index does not track per-workflow state itself,
/// mirroring how the paper's scheduler stores `W_h.t` and `W_h.p` on the
/// workflow object.
pub trait WorkflowIndex: fmt::Debug {
    /// Short name for reports ("dsl", "bst").
    fn name(&self) -> &'static str;

    /// Adds a workflow with its next change time, current lag, and
    /// (effective) deadline used as the urgency tie-break.
    fn insert(&mut self, wf: WorkflowId, ct: SimTime, lag: i64, deadline: SimTime);

    /// Removes a workflow, given its current keys.
    fn remove(&mut self, wf: WorkflowId, ct: SimTime, lag: i64, deadline: SimTime);

    /// Re-keys a workflow.
    #[allow(clippy::too_many_arguments)]
    fn update(
        &mut self,
        wf: WorkflowId,
        old_ct: SimTime,
        old_lag: i64,
        new_ct: SimTime,
        new_lag: i64,
        deadline: SimTime,
    ) {
        self.remove(wf, old_ct, old_lag, deadline);
        self.insert(wf, new_ct, new_lag, deadline);
    }

    /// Head of the ct list: the workflow whose progress requirement changes
    /// soonest.
    fn min_ct(&self) -> Option<(SimTime, WorkflowId)>;

    /// Workflows in descending priority (lag) order; ties by id ascending.
    fn by_priority(&self) -> Box<dyn Iterator<Item = (i64, WorkflowId)> + '_>;

    /// Head of the priority list.
    fn max_priority(&self) -> Option<(i64, WorkflowId)> {
        self.by_priority().next()
    }

    /// Number of queued workflows.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Priority-list key: orders by lag descending, then deadline ascending
/// (an urgency tie-break: equal lags go to the workflow closer to its
/// deadline), then workflow id, by storing the negated lag in a
/// min-ordered structure.
fn pri_key(lag: i64, deadline: SimTime, wf: WorkflowId) -> (i64, u64, u64) {
    (-lag, deadline.as_millis(), wf.as_u64())
}

/// The paper's Double Skip List: two [`SkipList`]s with O(1) head access.
///
/// # Examples
///
/// ```
/// use woha_core::index::{DslIndex, WorkflowIndex};
/// use woha_model::{SimTime, WorkflowId};
///
/// let mut idx = DslIndex::new();
/// idx.insert(WorkflowId::new(1), SimTime::from_secs(6), 39, SimTime::from_mins(10));
/// idx.insert(WorkflowId::new(4), SimTime::from_secs(5), -17, SimTime::from_mins(12));
/// assert_eq!(idx.min_ct(), Some((SimTime::from_secs(5), WorkflowId::new(4))));
/// assert_eq!(idx.max_priority(), Some((39, WorkflowId::new(1))));
/// ```
#[derive(Debug, Default)]
pub struct DslIndex {
    ct: SkipList<(SimTime, u64), ()>,
    pri: SkipList<(i64, u64, u64), ()>,
}

impl DslIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        DslIndex::default()
    }
}

impl WorkflowIndex for DslIndex {
    fn name(&self) -> &'static str {
        "dsl"
    }

    fn insert(&mut self, wf: WorkflowId, ct: SimTime, lag: i64, deadline: SimTime) {
        self.ct.insert((ct, wf.as_u64()), ());
        self.pri.insert(pri_key(lag, deadline, wf), ());
    }

    fn remove(&mut self, wf: WorkflowId, ct: SimTime, lag: i64, deadline: SimTime) {
        let removed_ct = self.ct.remove(&(ct, wf.as_u64())).is_some();
        let removed_pri = self.pri.remove(&pri_key(lag, deadline, wf)).is_some();
        debug_assert!(removed_ct && removed_pri, "stale keys for {wf}");
    }

    fn min_ct(&self) -> Option<(SimTime, WorkflowId)> {
        self.ct
            .first()
            .map(|(&(t, wf), _)| (t, WorkflowId::new(wf)))
    }

    fn by_priority(&self) -> Box<dyn Iterator<Item = (i64, WorkflowId)> + '_> {
        Box::new(
            self.pri
                .iter()
                .map(|(&(neg, _, wf), _)| (-neg, WorkflowId::new(wf))),
        )
    }

    fn len(&self) -> usize {
        self.ct.len()
    }
}

/// The balanced-search-tree alternative: two `BTreeSet`s.
#[derive(Debug, Default)]
pub struct BstIndex {
    ct: BTreeSet<(SimTime, u64)>,
    pri: BTreeSet<(i64, u64, u64)>,
}

impl BstIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        BstIndex::default()
    }
}

impl WorkflowIndex for BstIndex {
    fn name(&self) -> &'static str {
        "bst"
    }

    fn insert(&mut self, wf: WorkflowId, ct: SimTime, lag: i64, deadline: SimTime) {
        self.ct.insert((ct, wf.as_u64()));
        self.pri.insert(pri_key(lag, deadline, wf));
    }

    fn remove(&mut self, wf: WorkflowId, ct: SimTime, lag: i64, deadline: SimTime) {
        let removed_ct = self.ct.remove(&(ct, wf.as_u64()));
        let removed_pri = self.pri.remove(&pri_key(lag, deadline, wf));
        debug_assert!(removed_ct && removed_pri, "stale keys for {wf}");
    }

    fn min_ct(&self) -> Option<(SimTime, WorkflowId)> {
        self.ct
            .iter()
            .next()
            .map(|&(t, wf)| (t, WorkflowId::new(wf)))
    }

    fn by_priority(&self) -> Box<dyn Iterator<Item = (i64, WorkflowId)> + '_> {
        Box::new(
            self.pri
                .iter()
                .map(|&(neg, _, wf)| (-neg, WorkflowId::new(wf))),
        )
    }

    fn len(&self) -> usize {
        self.ct.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wf(i: u64) -> WorkflowId {
        WorkflowId::new(i)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// The paper's Fig 4 example state: 8 workflows with given next event
    /// times and priorities.
    fn fig4<I: WorkflowIndex + Default>() -> I {
        let mut idx = I::default();
        let rows: [(u64, u64, i64); 8] = [
            (1, 6, 39),
            (2, 27, -3),
            (3, 1, 22),
            (4, 5, -17),
            (5, 15, 31),
            (6, 11, 13),
            (7, 20, 2),
            (8, 7, -19),
        ];
        for (id, ct, p) in rows {
            idx.insert(wf(id), t(ct), p, t(100 + id));
        }
        idx
    }

    fn check_fig4(idx: &mut dyn WorkflowIndex) {
        assert_eq!(idx.len(), 8);
        // ct list head = workflow 3 (time 1).
        assert_eq!(idx.min_ct(), Some((t(1), wf(3))));
        // priority list: 39, 31, 22, 13, 2, -3, -17, -19.
        let priorities: Vec<i64> = idx.by_priority().map(|(p, _)| p).collect();
        assert_eq!(priorities, vec![39, 31, 22, 13, 2, -3, -17, -19]);
        assert_eq!(idx.max_priority(), Some((39, wf(1))));

        // The Fig 4 walkthrough: workflow 3 fires at time 3; its priority
        // becomes 0 and its next ct 10.
        idx.update(wf(3), t(1), 22, t(10), 0, t(103));
        assert_eq!(idx.min_ct(), Some((t(5), wf(4))));
        let order: Vec<u64> = idx.by_priority().map(|(_, w)| w.as_u64()).collect();
        assert_eq!(order, vec![1, 5, 6, 7, 3, 2, 4, 8]);

        // Remove the scheduled head workflow entirely.
        idx.remove(wf(1), t(6), 39, t(101));
        assert_eq!(idx.len(), 7);
        assert_eq!(idx.max_priority(), Some((31, wf(5))));
    }

    #[test]
    fn dsl_fig4_walkthrough() {
        let mut idx: DslIndex = fig4();
        check_fig4(&mut idx);
        assert_eq!(idx.name(), "dsl");
    }

    #[test]
    fn bst_fig4_walkthrough() {
        let mut idx: BstIndex = fig4();
        check_fig4(&mut idx);
        assert_eq!(idx.name(), "bst");
    }

    #[test]
    fn ties_break_by_workflow_id() {
        let mut idx = DslIndex::new();
        idx.insert(wf(2), t(5), 10, t(100));
        idx.insert(wf(1), t(5), 10, t(100));
        assert_eq!(idx.min_ct(), Some((t(5), wf(1))));
        let order: Vec<u64> = idx.by_priority().map(|(_, w)| w.as_u64()).collect();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn empty_index() {
        let idx = DslIndex::new();
        assert!(idx.is_empty());
        assert_eq!(idx.min_ct(), None);
        assert_eq!(idx.max_priority(), None);
        assert_eq!(idx.by_priority().count(), 0);
    }

    #[test]
    fn dsl_and_bst_agree_on_random_ops() {
        let mut dsl = DslIndex::new();
        let mut bst = BstIndex::new();
        // Track live entries so removals use correct keys.
        let mut live: Vec<(WorkflowId, SimTime, i64, SimTime)> = Vec::new();
        let mut state = 99u64;
        let mut rand = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for i in 0..2_000u64 {
            if live.is_empty() || rand() % 3 != 0 {
                let id = wf(i);
                let ct = t(rand() % 1_000);
                let lag = (rand() % 2_000) as i64 - 1_000;
                let deadline = t(rand() % 5_000);
                dsl.insert(id, ct, lag, deadline);
                bst.insert(id, ct, lag, deadline);
                live.push((id, ct, lag, deadline));
            } else {
                let pick = (rand() as usize) % live.len();
                let (id, ct, lag, deadline) = live.swap_remove(pick);
                dsl.remove(id, ct, lag, deadline);
                bst.remove(id, ct, lag, deadline);
            }
            assert_eq!(dsl.len(), bst.len());
            assert_eq!(dsl.min_ct(), bst.min_ct());
            assert_eq!(dsl.max_priority(), bst.max_priority());
        }
        let a: Vec<(i64, WorkflowId)> = dsl.by_priority().collect();
        let b: Vec<(i64, WorkflowId)> = bst.by_priority().collect();
        assert_eq!(a, b);
    }
}
