//! The workflow ordering index of the WOHA master: the paper's Double Skip
//! List (§IV-B, Fig 4) and the alternatives it is compared against in
//! Fig 13(a), behind the pluggable [`PriorityIndex`] trait.
//!
//! The index maintains two orderings over queued workflows:
//!
//! - the **ct list**, ordered by each workflow's *next progress-requirement
//!   change time* — the scheduler walks its head to find workflows whose
//!   priority is stale;
//! - the **priority list**, ordered by current progress lag
//!   `F_i(ttd) - ρ_i` descending — its head is the workflow to schedule.
//!
//! Both structures see the same skewed access pattern: most deletions hit
//! the head. Three interchangeable backends serve it:
//!
//! - [`DslIndex`] — the paper's Double Skip List, O(1) head operations via
//!   [`SkipList`];
//! - [`BTreeIndex`] — the balanced-search-tree baseline, two `BTreeMap`s
//!   at O(log n) per head access;
//! - [`crate::pheap::PairingIndex`] — a cache-dense pairing heap with lazy
//!   decrease-key, O(1) insert/meld and amortized O(log n) pops.
//!
//! Every backend must produce the *identical* ordering: lag descending,
//! then deadline ascending, then workflow id ascending (and next-change
//! time ascending, then id, on the ct list). The differential test harness
//! in `tests/index_differential.rs` pins this down over arbitrary
//! operation sequences. (The paper's third Fig 13(a) contender, the naive
//! rebuild-everything scheduler, lives in [`crate::woha`] because it
//! bypasses any incremental index.)

use crate::skiplist::SkipList;
use std::collections::BTreeMap;
use std::fmt;
use woha_model::{SimTime, WorkflowId};

/// A double ordering over queued workflows, keyed by next-change time and
/// by priority (progress lag, larger = more urgent).
///
/// Callers must pass the *current* `(ct, lag)` of a workflow when removing
/// or updating it — the index does not track per-workflow state itself,
/// mirroring how the paper's scheduler stores `W_h.t` and `W_h.p` on the
/// workflow object. (Backends with lazy re-keying keep private stamps
/// instead, but the contract is the same.)
///
/// Ordering queries take `&mut self` so lazy backends can settle deferred
/// deletions while answering them; the eager backends simply don't.
pub trait PriorityIndex: fmt::Debug {
    /// Short backend name for reports and CLI flags ("dsl", "btree",
    /// "pheap").
    fn name(&self) -> &'static str;

    /// Adds a workflow with its next change time, current lag, and
    /// (effective) deadline used as the urgency tie-break.
    fn insert(&mut self, wf: WorkflowId, ct: SimTime, lag: i64, deadline: SimTime);

    /// Removes a workflow, given its current keys.
    fn remove(&mut self, wf: WorkflowId, ct: SimTime, lag: i64, deadline: SimTime);

    /// Re-keys a workflow.
    #[allow(clippy::too_many_arguments)]
    fn update(
        &mut self,
        wf: WorkflowId,
        old_ct: SimTime,
        old_lag: i64,
        new_ct: SimTime,
        new_lag: i64,
        deadline: SimTime,
    ) {
        self.remove(wf, old_ct, old_lag, deadline);
        self.insert(wf, new_ct, new_lag, deadline);
    }

    /// Head of the ct list: the workflow whose progress requirement changes
    /// soonest.
    fn min_ct(&mut self) -> Option<(SimTime, WorkflowId)>;

    /// Walks the priority list in descending order, calling `visit` on each
    /// workflow until it accepts one, which is returned. This is the single
    /// pass behind `AssignTask`: in the common case the head is eligible
    /// and exactly one entry is touched.
    fn select(
        &mut self,
        visit: &mut dyn FnMut(i64, WorkflowId) -> bool,
    ) -> Option<(i64, WorkflowId)>;

    /// Head of the priority list.
    fn max_priority(&mut self) -> Option<(i64, WorkflowId)> {
        self.select(&mut |_, _| true)
    }

    /// The full priority ordering, as `select` would visit it. Meant for
    /// tests and verification; may allocate.
    fn priority_order(&mut self) -> Vec<(i64, WorkflowId)>;

    /// Number of queued workflows.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Legacy name of [`PriorityIndex`], kept for downstream code written
/// against the pre-refactor trait.
pub use PriorityIndex as WorkflowIndex;

/// Priority-list key: orders by lag descending, then deadline ascending
/// (an urgency tie-break: equal lags go to the workflow closer to its
/// deadline), then workflow id, by storing the negated lag in a
/// min-ordered structure.
pub(crate) fn pri_key(lag: i64, deadline: SimTime, wf: WorkflowId) -> (i64, u64, u64) {
    (-lag, deadline.as_millis(), wf.as_u64())
}

/// The paper's Double Skip List: two [`SkipList`]s with O(1) head access.
///
/// # Examples
///
/// ```
/// use woha_core::index::{DslIndex, PriorityIndex};
/// use woha_model::{SimTime, WorkflowId};
///
/// let mut idx = DslIndex::new();
/// idx.insert(WorkflowId::new(1), SimTime::from_secs(6), 39, SimTime::from_mins(10));
/// idx.insert(WorkflowId::new(4), SimTime::from_secs(5), -17, SimTime::from_mins(12));
/// assert_eq!(idx.min_ct(), Some((SimTime::from_secs(5), WorkflowId::new(4))));
/// assert_eq!(idx.max_priority(), Some((39, WorkflowId::new(1))));
/// ```
#[derive(Debug, Default)]
pub struct DslIndex {
    ct: SkipList<(SimTime, u64), ()>,
    pri: SkipList<(i64, u64, u64), ()>,
}

impl DslIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        DslIndex::default()
    }
}

impl PriorityIndex for DslIndex {
    fn name(&self) -> &'static str {
        "dsl"
    }

    fn insert(&mut self, wf: WorkflowId, ct: SimTime, lag: i64, deadline: SimTime) {
        self.ct.insert((ct, wf.as_u64()), ());
        self.pri.insert(pri_key(lag, deadline, wf), ());
    }

    fn remove(&mut self, wf: WorkflowId, ct: SimTime, lag: i64, deadline: SimTime) {
        let removed_ct = self.ct.remove(&(ct, wf.as_u64())).is_some();
        let removed_pri = self.pri.remove(&pri_key(lag, deadline, wf)).is_some();
        debug_assert!(removed_ct && removed_pri, "stale keys for {wf}");
    }

    fn min_ct(&mut self) -> Option<(SimTime, WorkflowId)> {
        self.ct
            .first()
            .map(|(&(t, wf), _)| (t, WorkflowId::new(wf)))
    }

    fn select(
        &mut self,
        visit: &mut dyn FnMut(i64, WorkflowId) -> bool,
    ) -> Option<(i64, WorkflowId)> {
        self.pri
            .iter()
            .map(|(&(neg, _, wf), _)| (-neg, WorkflowId::new(wf)))
            .find(|&(lag, wf)| visit(lag, wf))
    }

    fn priority_order(&mut self) -> Vec<(i64, WorkflowId)> {
        self.pri
            .iter()
            .map(|(&(neg, _, wf), _)| (-neg, WorkflowId::new(wf)))
            .collect()
    }

    fn len(&self) -> usize {
        self.ct.len()
    }
}

/// The balanced-search-tree baseline: two `BTreeMap`s (the `()` values make
/// them ordered sets with the map API's cache-friendly node layout).
#[derive(Debug, Default)]
pub struct BTreeIndex {
    ct: BTreeMap<(SimTime, u64), ()>,
    pri: BTreeMap<(i64, u64, u64), ()>,
}

impl BTreeIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        BTreeIndex::default()
    }
}

/// Legacy name of [`BTreeIndex`] from when it was backed by `BTreeSet`s.
pub use BTreeIndex as BstIndex;

impl PriorityIndex for BTreeIndex {
    fn name(&self) -> &'static str {
        "btree"
    }

    fn insert(&mut self, wf: WorkflowId, ct: SimTime, lag: i64, deadline: SimTime) {
        self.ct.insert((ct, wf.as_u64()), ());
        self.pri.insert(pri_key(lag, deadline, wf), ());
    }

    fn remove(&mut self, wf: WorkflowId, ct: SimTime, lag: i64, deadline: SimTime) {
        let removed_ct = self.ct.remove(&(ct, wf.as_u64())).is_some();
        let removed_pri = self.pri.remove(&pri_key(lag, deadline, wf)).is_some();
        debug_assert!(removed_ct && removed_pri, "stale keys for {wf}");
    }

    fn min_ct(&mut self) -> Option<(SimTime, WorkflowId)> {
        self.ct
            .keys()
            .next()
            .map(|&(t, wf)| (t, WorkflowId::new(wf)))
    }

    fn select(
        &mut self,
        visit: &mut dyn FnMut(i64, WorkflowId) -> bool,
    ) -> Option<(i64, WorkflowId)> {
        self.pri
            .keys()
            .map(|&(neg, _, wf)| (-neg, WorkflowId::new(wf)))
            .find(|&(lag, wf)| visit(lag, wf))
    }

    fn priority_order(&mut self) -> Vec<(i64, WorkflowId)> {
        self.pri
            .keys()
            .map(|&(neg, _, wf)| (-neg, WorkflowId::new(wf)))
            .collect()
    }

    fn len(&self) -> usize {
        self.ct.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pheap::PairingIndex;

    fn wf(i: u64) -> WorkflowId {
        WorkflowId::new(i)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// The paper's Fig 4 example state: 8 workflows with given next event
    /// times and priorities.
    fn fig4<I: PriorityIndex + Default>() -> I {
        let mut idx = I::default();
        let rows: [(u64, u64, i64); 8] = [
            (1, 6, 39),
            (2, 27, -3),
            (3, 1, 22),
            (4, 5, -17),
            (5, 15, 31),
            (6, 11, 13),
            (7, 20, 2),
            (8, 7, -19),
        ];
        for (id, ct, p) in rows {
            idx.insert(wf(id), t(ct), p, t(100 + id));
        }
        idx
    }

    fn check_fig4(idx: &mut dyn PriorityIndex) {
        assert_eq!(idx.len(), 8);
        // ct list head = workflow 3 (time 1).
        assert_eq!(idx.min_ct(), Some((t(1), wf(3))));
        // priority list: 39, 31, 22, 13, 2, -3, -17, -19.
        let priorities: Vec<i64> = idx.priority_order().into_iter().map(|(p, _)| p).collect();
        assert_eq!(priorities, vec![39, 31, 22, 13, 2, -3, -17, -19]);
        assert_eq!(idx.max_priority(), Some((39, wf(1))));

        // The Fig 4 walkthrough: workflow 3 fires at time 3; its priority
        // becomes 0 and its next ct 10.
        idx.update(wf(3), t(1), 22, t(10), 0, t(103));
        assert_eq!(idx.min_ct(), Some((t(5), wf(4))));
        let order: Vec<u64> = idx
            .priority_order()
            .into_iter()
            .map(|(_, w)| w.as_u64())
            .collect();
        assert_eq!(order, vec![1, 5, 6, 7, 3, 2, 4, 8]);

        // `select` walks the same order and restores what it rejects.
        let mut visited = Vec::new();
        let got = idx.select(&mut |_, w| {
            visited.push(w.as_u64());
            w == wf(6)
        });
        assert_eq!(got, Some((13, wf(6))));
        assert_eq!(visited, vec![1, 5, 6]);
        let order_after: Vec<u64> = idx
            .priority_order()
            .into_iter()
            .map(|(_, w)| w.as_u64())
            .collect();
        assert_eq!(order_after, vec![1, 5, 6, 7, 3, 2, 4, 8]);

        // Remove the scheduled head workflow entirely.
        idx.remove(wf(1), t(6), 39, t(101));
        assert_eq!(idx.len(), 7);
        assert_eq!(idx.max_priority(), Some((31, wf(5))));
    }

    #[test]
    fn dsl_fig4_walkthrough() {
        let mut idx: DslIndex = fig4();
        check_fig4(&mut idx);
        assert_eq!(idx.name(), "dsl");
    }

    #[test]
    fn btree_fig4_walkthrough() {
        let mut idx: BTreeIndex = fig4();
        check_fig4(&mut idx);
        assert_eq!(idx.name(), "btree");
    }

    #[test]
    fn pheap_fig4_walkthrough() {
        let mut idx: PairingIndex = fig4();
        check_fig4(&mut idx);
        assert_eq!(idx.name(), "pheap");
    }

    #[test]
    fn ties_break_by_workflow_id() {
        let backends: [Box<dyn PriorityIndex>; 3] = [
            Box::new(DslIndex::new()),
            Box::new(BTreeIndex::new()),
            Box::new(PairingIndex::new()),
        ];
        for mut idx in backends {
            idx.insert(wf(2), t(5), 10, t(100));
            idx.insert(wf(1), t(5), 10, t(100));
            assert_eq!(idx.min_ct(), Some((t(5), wf(1))), "{}", idx.name());
            let order: Vec<u64> = idx
                .priority_order()
                .into_iter()
                .map(|(_, w)| w.as_u64())
                .collect();
            assert_eq!(order, vec![1, 2], "{}", idx.name());
        }
    }

    #[test]
    fn empty_index() {
        let mut idx = DslIndex::new();
        assert!(idx.is_empty());
        assert_eq!(idx.min_ct(), None);
        assert_eq!(idx.max_priority(), None);
        assert_eq!(idx.priority_order().len(), 0);
    }

    #[test]
    fn backends_agree_on_random_ops() {
        let mut backends: [Box<dyn PriorityIndex>; 3] = [
            Box::new(DslIndex::new()),
            Box::new(BTreeIndex::new()),
            Box::new(PairingIndex::new()),
        ];
        // Track live entries so removals use correct keys.
        let mut live: Vec<(WorkflowId, SimTime, i64, SimTime)> = Vec::new();
        let mut state = 99u64;
        let mut rand = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for i in 0..2_000u64 {
            if live.is_empty() || rand() % 3 != 0 {
                let id = wf(i);
                let ct = t(rand() % 1_000);
                let lag = (rand() % 2_000) as i64 - 1_000;
                let deadline = t(rand() % 5_000);
                for idx in backends.iter_mut() {
                    idx.insert(id, ct, lag, deadline);
                }
                live.push((id, ct, lag, deadline));
            } else {
                let pick = (rand() as usize) % live.len();
                let (id, ct, lag, deadline) = live.swap_remove(pick);
                for idx in backends.iter_mut() {
                    idx.remove(id, ct, lag, deadline);
                }
            }
            let (first, rest) = backends.split_at_mut(1);
            for idx in rest.iter_mut() {
                assert_eq!(first[0].len(), idx.len(), "{}", idx.name());
                assert_eq!(first[0].min_ct(), idx.min_ct(), "{}", idx.name());
                assert_eq!(
                    first[0].max_priority(),
                    idx.max_priority(),
                    "{}",
                    idx.name()
                );
            }
        }
        let (first, rest) = backends.split_at_mut(1);
        let reference = first[0].priority_order();
        for idx in rest.iter_mut() {
            assert_eq!(reference, idx.priority_order(), "{}", idx.name());
        }
    }
}
