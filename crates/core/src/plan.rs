//! Scheduling plans: the progress requirement list `F_i` plus the job order
//! the client computed, shipped to the JobTracker at submission time.
//!
//! The plan is the paper's central artifact (§IV-A): entry `s` says "at
//! least `s.cumulative` tasks of this workflow must have been scheduled
//! once the time to deadline drops to `s.ttd`". The master follows it
//! blindly — all analysis happened on the client.

use crate::priority::PriorityPolicy;
use serde::{Deserialize, Serialize};
use woha_model::{JobId, SimDuration, SimTime};

/// One entry of the progress requirement list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgressRequirement {
    /// Time to deadline at which this requirement takes effect. Entries are
    /// stored in strictly decreasing `ttd` order (chronological order).
    pub ttd: SimDuration,
    /// Cumulative number of tasks that must have been scheduled by then.
    pub cumulative: u64,
}

/// A complete scheduling plan for one workflow.
///
/// Produced by [`generate_plan`](crate::plangen::generate_plan) on the
/// client, consumed by the WOHA Workflow Scheduler on the master.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulingPlan {
    policy: PriorityPolicy,
    resource_cap: u32,
    job_order: Vec<JobId>,
    requirements: Vec<ProgressRequirement>,
    span: SimDuration,
    total_tasks: u64,
}

impl SchedulingPlan {
    /// Assembles a plan from its parts. `requirements` must be in
    /// chronological order: strictly decreasing `ttd`, non-decreasing
    /// `cumulative`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the requirement list is out of order.
    pub fn new(
        policy: PriorityPolicy,
        resource_cap: u32,
        job_order: Vec<JobId>,
        requirements: Vec<ProgressRequirement>,
        span: SimDuration,
        total_tasks: u64,
    ) -> Self {
        debug_assert!(
            requirements.windows(2).all(|w| w[0].ttd > w[1].ttd),
            "requirements must have strictly decreasing ttd"
        );
        debug_assert!(
            requirements
                .windows(2)
                .all(|w| w[0].cumulative <= w[1].cumulative),
            "cumulative requirements must be non-decreasing"
        );
        SchedulingPlan {
            policy,
            resource_cap,
            job_order,
            requirements,
            span,
            total_tasks,
        }
    }

    /// The intra-workflow priority policy the plan was generated under.
    pub fn policy(&self) -> PriorityPolicy {
        self.policy
    }

    /// The resource cap `n` used in the generating simulation.
    pub fn resource_cap(&self) -> u32 {
        self.resource_cap
    }

    /// Jobs in descending intra-workflow priority.
    pub fn job_order(&self) -> &[JobId] {
        &self.job_order
    }

    /// The progress requirement list, chronological (decreasing ttd).
    pub fn requirements(&self) -> &[ProgressRequirement] {
        &self.requirements
    }

    /// The simulated makespan of the plan: the workflow needs at least this
    /// long, so a deadline tighter than the span is infeasible under this
    /// cap.
    pub fn span(&self) -> SimDuration {
        self.span
    }

    /// Total tasks in the workflow; equals the final cumulative
    /// requirement.
    pub fn total_tasks(&self) -> u64 {
        self.total_tasks
    }

    /// `F_i(ttd)`: how many tasks must have been scheduled when the time to
    /// deadline is `ttd`. Monotonically non-increasing in `ttd`.
    ///
    /// # Examples
    ///
    /// ```
    /// use woha_core::plan::{ProgressRequirement, SchedulingPlan};
    /// use woha_core::priority::PriorityPolicy;
    /// use woha_model::SimDuration;
    ///
    /// let plan = SchedulingPlan::new(
    ///     PriorityPolicy::Hlf, 4, vec![],
    ///     vec![
    ///         ProgressRequirement { ttd: SimDuration::from_secs(100), cumulative: 4 },
    ///         ProgressRequirement { ttd: SimDuration::from_secs(40), cumulative: 6 },
    ///     ],
    ///     SimDuration::from_secs(100), 6,
    /// );
    /// assert_eq!(plan.required_at(SimDuration::from_secs(150)), 0);
    /// assert_eq!(plan.required_at(SimDuration::from_secs(100)), 4);
    /// assert_eq!(plan.required_at(SimDuration::from_secs(50)), 4);
    /// assert_eq!(plan.required_at(SimDuration::from_secs(10)), 6);
    /// ```
    pub fn required_at(&self, ttd: SimDuration) -> u64 {
        // Entries are sorted by decreasing ttd; find the last entry with
        // entry.ttd >= ttd. partition_point gives the count of entries
        // satisfying the predicate over the sorted prefix.
        let idx = self.requirements.partition_point(|r| r.ttd >= ttd);
        if idx == 0 {
            0
        } else {
            self.requirements[idx - 1].cumulative
        }
    }

    /// The index of the first requirement entry whose change instant
    /// (`deadline - ttd`) is strictly after `now` — i.e. the value `W_h.i`
    /// of Algorithm 2 after catching up to `now`.
    pub fn next_change_index(&self, deadline: SimTime, now: SimTime) -> usize {
        self.requirements
            .partition_point(|r| deadline.saturating_sub(r.ttd) <= now)
    }

    /// The absolute instant at which requirement entry `index` takes
    /// effect, or `None` past the end of the plan.
    pub fn change_time(&self, deadline: SimTime, index: usize) -> Option<SimTime> {
        self.requirements
            .get(index)
            .map(|r| deadline.saturating_sub(r.ttd))
    }

    /// Cumulative requirement in force once entries `0..index` have fired
    /// (0 when `index == 0`).
    pub fn cumulative_before(&self, index: usize) -> u64 {
        if index == 0 {
            0
        } else {
            self.requirements[index.min(self.requirements.len()) - 1].cumulative
        }
    }

    /// Intervals between consecutive requirement-change instants — the
    /// quantity whose histogram is the paper's Fig 3.
    pub fn change_intervals(&self) -> Vec<SimDuration> {
        self.requirements
            .windows(2)
            .map(|w| w[0].ttd - w[1].ttd)
            .collect()
    }

    /// Size of the plan in its compact wire encoding, in bytes — the
    /// quantity plotted in Fig 13(b). The encoding is one varint per job id
    /// plus two varints per requirement entry (delta-encoded ttd and
    /// cumulative), plus a small fixed header.
    pub fn encoded_size_bytes(&self) -> usize {
        self.encode().len()
    }

    /// Returns the plan with a replacement job order (used by
    /// [`crate::replan`] to translate a remaining-workflow plan back to
    /// the original job ids).
    #[must_use]
    pub fn with_job_order(mut self, job_order: Vec<JobId>) -> Self {
        self.job_order = job_order;
        self
    }

    /// The compact wire encoding the client would ship to the master.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.requirements.len() * 4);
        // Header: policy tag, resource cap, span, totals.
        out.push(match self.policy {
            PriorityPolicy::Hlf => 0u8,
            PriorityPolicy::Lpf => 1,
            PriorityPolicy::Mpf => 2,
        });
        push_varint(&mut out, u64::from(self.resource_cap));
        push_varint(&mut out, self.span.as_millis());
        push_varint(&mut out, self.total_tasks);
        push_varint(&mut out, self.job_order.len() as u64);
        for &j in &self.job_order {
            push_varint(&mut out, u64::from(j.as_u32()));
        }
        push_varint(&mut out, self.requirements.len() as u64);
        let mut prev_ttd = self.span.as_millis();
        let mut prev_cum = 0u64;
        for r in &self.requirements {
            // ttd decreases from the span; cumulative increases from 0.
            push_varint(&mut out, prev_ttd.saturating_sub(r.ttd.as_millis()));
            push_varint(&mut out, r.cumulative - prev_cum);
            prev_ttd = r.ttd.as_millis();
            prev_cum = r.cumulative;
        }
        out
    }
}

/// Error decoding a plan's wire encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlanDecodeError {
    /// Input ended mid-field.
    Truncated,
    /// A varint ran longer than 10 bytes.
    VarintOverflow,
    /// Unknown policy tag byte.
    BadPolicy(u8),
    /// Trailing bytes after the last field.
    TrailingBytes(usize),
    /// The decoded requirement list violates plan invariants.
    Inconsistent(&'static str),
}

impl std::fmt::Display for PlanDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanDecodeError::Truncated => f.write_str("plan encoding ends mid-field"),
            PlanDecodeError::VarintOverflow => f.write_str("varint longer than 10 bytes"),
            PlanDecodeError::BadPolicy(b) => write!(f, "unknown policy tag {b}"),
            PlanDecodeError::TrailingBytes(n) => {
                write!(f, "{n} unexpected trailing bytes after plan")
            }
            PlanDecodeError::Inconsistent(what) => {
                write!(f, "decoded plan violates invariant: {what}")
            }
        }
    }
}

impl std::error::Error for PlanDecodeError {}

impl SchedulingPlan {
    /// Decodes a plan from its [`encode`](Self::encode)d form — what the
    /// JobTracker does with the bytes the client ships.
    ///
    /// # Errors
    ///
    /// Returns [`PlanDecodeError`] on truncated or malformed input, or if
    /// the decoded requirement list is not a valid plan.
    pub fn decode(bytes: &[u8]) -> Result<Self, PlanDecodeError> {
        let mut cursor = 0usize;
        let policy = match *bytes.first().ok_or(PlanDecodeError::Truncated)? {
            0 => PriorityPolicy::Hlf,
            1 => PriorityPolicy::Lpf,
            2 => PriorityPolicy::Mpf,
            other => return Err(PlanDecodeError::BadPolicy(other)),
        };
        cursor += 1;
        let resource_cap = u32::try_from(read_varint(bytes, &mut cursor)?)
            .map_err(|_| PlanDecodeError::Inconsistent("resource cap exceeds u32"))?;
        let span = SimDuration::from_millis(read_varint(bytes, &mut cursor)?);
        let total_tasks = read_varint(bytes, &mut cursor)?;
        let job_count = read_varint(bytes, &mut cursor)? as usize;
        let mut job_order = Vec::with_capacity(job_count.min(1 << 20));
        for _ in 0..job_count {
            let raw = read_varint(bytes, &mut cursor)?;
            let idx = u32::try_from(raw)
                .map_err(|_| PlanDecodeError::Inconsistent("job id exceeds u32"))?;
            job_order.push(JobId::new(idx));
        }
        let entry_count = read_varint(bytes, &mut cursor)? as usize;
        let mut requirements = Vec::with_capacity(entry_count.min(1 << 20));
        let mut prev_ttd = span.as_millis();
        let mut prev_cum = 0u64;
        for _ in 0..entry_count {
            let ttd_delta = read_varint(bytes, &mut cursor)?;
            let cum_delta = read_varint(bytes, &mut cursor)?;
            prev_ttd = prev_ttd
                .checked_sub(ttd_delta)
                .ok_or(PlanDecodeError::Inconsistent("ttd underflow"))?;
            prev_cum = prev_cum
                .checked_add(cum_delta)
                .ok_or(PlanDecodeError::Inconsistent("cumulative overflow"))?;
            requirements.push(ProgressRequirement {
                ttd: SimDuration::from_millis(prev_ttd),
                cumulative: prev_cum,
            });
        }
        if cursor != bytes.len() {
            return Err(PlanDecodeError::TrailingBytes(bytes.len() - cursor));
        }
        if !requirements.windows(2).all(|w| w[0].ttd > w[1].ttd) {
            return Err(PlanDecodeError::Inconsistent("ttd not strictly decreasing"));
        }
        Ok(SchedulingPlan {
            policy,
            resource_cap,
            job_order,
            requirements,
            span,
            total_tasks,
        })
    }
}

fn read_varint(bytes: &[u8], cursor: &mut usize) -> Result<u64, PlanDecodeError> {
    let mut value = 0u64;
    for shift_bytes in 0..10u32 {
        let byte = *bytes.get(*cursor).ok_or(PlanDecodeError::Truncated)?;
        *cursor += 1;
        value |= u64::from(byte & 0x7F) << (7 * shift_bytes);
        if byte & 0x80 == 0 {
            return Ok(value);
        }
    }
    Err(PlanDecodeError::VarintOverflow)
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(entries: &[(u64, u64)]) -> SchedulingPlan {
        let reqs: Vec<ProgressRequirement> = entries
            .iter()
            .map(|&(ttd, c)| ProgressRequirement {
                ttd: SimDuration::from_secs(ttd),
                cumulative: c,
            })
            .collect();
        let span = reqs.first().map(|r| r.ttd).unwrap_or(SimDuration::ZERO);
        let total = reqs.last().map(|r| r.cumulative).unwrap_or(0);
        SchedulingPlan::new(
            PriorityPolicy::Hlf,
            8,
            vec![JobId::new(0)],
            reqs,
            span,
            total,
        )
    }

    #[test]
    fn required_at_steps() {
        let p = plan(&[(100, 4), (40, 6), (0, 9)]);
        assert_eq!(p.required_at(SimDuration::from_secs(200)), 0);
        assert_eq!(p.required_at(SimDuration::from_secs(100)), 4);
        assert_eq!(p.required_at(SimDuration::from_secs(99)), 4);
        assert_eq!(p.required_at(SimDuration::from_secs(40)), 6);
        assert_eq!(p.required_at(SimDuration::from_secs(1)), 6);
        assert_eq!(p.required_at(SimDuration::ZERO), 9);
    }

    #[test]
    fn required_at_is_monotone() {
        let p = plan(&[(100, 4), (40, 6), (0, 9)]);
        let mut last = u64::MAX;
        for ttd_s in 0..=120 {
            let r = p.required_at(SimDuration::from_secs(ttd_s));
            assert!(r <= last);
            last = r;
        }
    }

    #[test]
    fn change_index_and_times() {
        let p = plan(&[(100, 4), (40, 6)]);
        let deadline = SimTime::from_secs(120);
        // Changes fire at t=20 and t=80.
        assert_eq!(p.change_time(deadline, 0), Some(SimTime::from_secs(20)));
        assert_eq!(p.change_time(deadline, 1), Some(SimTime::from_secs(80)));
        assert_eq!(p.change_time(deadline, 2), None);
        assert_eq!(p.next_change_index(deadline, SimTime::ZERO), 0);
        assert_eq!(p.next_change_index(deadline, SimTime::from_secs(20)), 1);
        assert_eq!(p.next_change_index(deadline, SimTime::from_secs(79)), 1);
        assert_eq!(p.next_change_index(deadline, SimTime::from_secs(500)), 2);
        assert_eq!(p.cumulative_before(0), 0);
        assert_eq!(p.cumulative_before(1), 4);
        assert_eq!(p.cumulative_before(2), 6);
    }

    #[test]
    fn change_intervals_match_gaps() {
        let p = plan(&[(100, 4), (40, 6), (0, 9)]);
        assert_eq!(
            p.change_intervals(),
            vec![SimDuration::from_secs(60), SimDuration::from_secs(40)]
        );
    }

    #[test]
    fn empty_plan_is_usable() {
        let p = plan(&[]);
        assert_eq!(p.required_at(SimDuration::ZERO), 0);
        assert_eq!(
            p.next_change_index(SimTime::from_secs(10), SimTime::ZERO),
            0
        );
        assert!(p.change_intervals().is_empty());
    }

    #[test]
    fn decode_roundtrips() {
        for entries in [&[][..], &[(100, 4)][..], &[(100, 4), (40, 6), (0, 9)][..]] {
            let p = plan(entries);
            let back = SchedulingPlan::decode(&p.encode()).unwrap();
            assert_eq!(p, back);
        }
    }

    #[test]
    fn decode_rejects_malformed() {
        assert_eq!(
            SchedulingPlan::decode(&[]).unwrap_err(),
            PlanDecodeError::Truncated
        );
        assert_eq!(
            SchedulingPlan::decode(&[9]).unwrap_err(),
            PlanDecodeError::BadPolicy(9)
        );
        // Truncated mid-varint.
        let mut bytes = plan(&[(100, 4)]).encode();
        bytes.truncate(bytes.len() - 1);
        assert!(matches!(
            SchedulingPlan::decode(&bytes).unwrap_err(),
            PlanDecodeError::Truncated
        ));
        // Trailing garbage.
        let mut bytes = plan(&[(100, 4)]).encode();
        bytes.push(0);
        assert!(matches!(
            SchedulingPlan::decode(&bytes).unwrap_err(),
            PlanDecodeError::TrailingBytes(1)
        ));
        // Overlong varint.
        let bytes = [
            0u8, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
        ];
        assert_eq!(
            SchedulingPlan::decode(&bytes).unwrap_err(),
            PlanDecodeError::VarintOverflow
        );
    }

    #[test]
    fn encoding_is_compact_and_deterministic() {
        let p = plan(&[(100, 4), (40, 6), (0, 9)]);
        let bytes = p.encode();
        assert_eq!(bytes, p.encode());
        // Header + 1 job + 3 entries: comfortably under 40 bytes.
        assert!(bytes.len() < 40, "{} bytes", bytes.len());
        assert_eq!(p.encoded_size_bytes(), bytes.len());
    }

    #[test]
    fn encoding_grows_linearly_with_entries() {
        let small = plan(&[(100, 4)]);
        let entries: Vec<(u64, u64)> = (0..100).map(|i| (200 - i, (i + 1) * 2)).collect();
        let large = plan(&entries);
        assert!(large.encoded_size_bytes() > small.encoded_size_bytes());
        // Delta varints keep the per-entry cost small (≤ ~6 bytes here).
        let per_entry = (large.encoded_size_bytes() - small.encoded_size_bytes()) as f64 / 99.0;
        assert!(per_entry < 8.0, "{per_entry} bytes/entry");
    }

    #[test]
    fn varint_boundaries() {
        let mut out = Vec::new();
        push_varint(&mut out, 0);
        assert_eq!(out, [0]);
        out.clear();
        push_varint(&mut out, 127);
        assert_eq!(out, [127]);
        out.clear();
        push_varint(&mut out, 128);
        assert_eq!(out, [0x80, 0x01]);
        out.clear();
        push_varint(&mut out, u64::MAX);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn accessors() {
        let p = plan(&[(100, 4)]);
        assert_eq!(p.policy(), PriorityPolicy::Hlf);
        assert_eq!(p.resource_cap(), 8);
        assert_eq!(p.job_order(), &[JobId::new(0)]);
        assert_eq!(p.span(), SimDuration::from_secs(100));
        assert_eq!(p.total_tasks(), 4);
        assert_eq!(p.requirements().len(), 1);
    }
}
