//! The Scheduling Plan Generator (paper §IV-A, Algorithm 1).
//!
//! `generate_reqs` simulates the workflow's execution on `n` fungible slots
//! under the given intra-workflow job priorities and records, for every
//! scheduling step, how many tasks have been scheduled — producing the
//! progress requirement list `F_i`. The whole computation runs on the
//! *client*, so its cost never touches the master node.
//!
//! The resource-cap **improvement** (paper §IV-A "An improvement") binary
//! searches for the smallest cap that still meets the deadline, which makes
//! the plan appropriately pessimistic about competition from other
//! workflows (Fig 2).
//!
//! Two small divergences from the paper's pseudocode, both deliberate:
//!
//! - Algorithm 1 never re-inserts FREE events for scheduled tasks; without
//!   them the simulation deadlocks after the first wave. We emit a FREE
//!   event when each scheduled batch finishes, which is clearly the intent.
//! - Algorithm 1 activates a dependent at `t + R` of the prerequisite whose
//!   reduces were *scheduled last*; we activate it when the last
//!   prerequisite actually *finishes* (matching the real cluster), which
//!   differs only when prerequisite completions interleave unusually.
//!
//! Note that list scheduling is subject to Graham's timing anomaly: adding
//! slots can occasionally *lengthen* the simulated makespan, so the span
//! is only approximately monotone in the cap and the binary search finds
//! the minimum feasible cap up to that anomaly — exactly as the paper's
//! own binary search does.

use crate::plan::{ProgressRequirement, SchedulingPlan};
use crate::priority::JobPriorities;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use woha_model::{JobId, SimDuration, SimTime, WorkflowSpec};

/// How the resource cap for plan generation is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CapMode {
    /// Use the full cluster capacity (the unimproved Algorithm 1).
    Uncapped,
    /// Use a fixed cap.
    Fixed(u32),
    /// Binary search for the minimum cap whose plan still meets the
    /// workflow's relative deadline; falls back to the full capacity when
    /// even that is infeasible (best effort), and to [`CapMode::Uncapped`]
    /// when the workflow has no deadline.
    MinFeasible,
}

/// Proactive failure padding for plan generation.
///
/// Algorithm 1 assumes zero failures: a MinFeasible plan spends its whole
/// deadline budget, so the first lost attempt pushes the workflow straight
/// into rho-rollback. Padding reserves margin up front: the expected rework
/// fraction `r` is estimated from the cluster-wide MTBF and the workflow's
/// own task mix, and the makespan budget handed to the cap search is shrunk
/// to `budget / (1 + r)` — the plan finishes early by exactly the margin
/// the expected rework will consume.
///
/// The rework estimate: a task of duration `d` restarts with probability
/// `~ d / MTBF` (exponential failures), so the expected rework share of the
/// workflow's total work is the work-weighted mean task duration
/// `Σ d²·n / Σ d·n` over MTBF. `rework_factor` scales the estimate
/// (1.0 = the raw model) and the fraction is capped at
/// [`PadConfig::MAX_FRACTION`] so a tiny MTBF cannot collapse the budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PadConfig {
    /// Cluster-wide mean time between node failures.
    pub cluster_mtbf: SimDuration,
    /// Multiplier on the raw rework estimate (1.0 = the model as-is).
    pub rework_factor: f64,
}

impl PadConfig {
    /// The rework fraction is never allowed to exceed this, bounding how
    /// much of the deadline budget padding can take.
    pub const MAX_FRACTION: f64 = 0.5;

    /// Fractions below this snap to exactly zero, so an effectively
    /// infinite MTBF yields a plan bit-identical to the unpadded one
    /// (no `1/(1+ε)` rounding residue).
    pub const MIN_FRACTION: f64 = 1e-6;

    /// Padding against the given cluster-wide MTBF with the raw (1.0)
    /// rework factor.
    pub fn new(cluster_mtbf: SimDuration) -> Self {
        PadConfig {
            cluster_mtbf,
            rework_factor: 1.0,
        }
    }
}

/// The expected rework fraction for `workflow` under `pad`: the share of
/// scheduled work expected to be redone due to node failures. Exactly
/// `0.0` when the MTBF is effectively infinite (see
/// [`PadConfig::MIN_FRACTION`]).
pub fn rework_fraction(workflow: &WorkflowSpec, pad: &PadConfig) -> f64 {
    let mtbf_ms = pad.cluster_mtbf.as_millis();
    if mtbf_ms == 0 {
        return 0.0;
    }
    // Work-weighted mean task duration Σ d²·n / Σ d·n: long tasks both
    // hold more work hostage and are likelier to be interrupted.
    let (mut weighted, mut work) = (0.0f64, 0.0f64);
    for j in workflow.job_ids() {
        let spec = workflow.job(j);
        let md = spec.map_duration().as_millis() as f64;
        let rd = spec.reduce_duration().as_millis() as f64;
        let m = f64::from(spec.map_tasks());
        let r = f64::from(spec.reduce_tasks());
        weighted += m * md * md + r * rd * rd;
        work += m * md + r * rd;
    }
    if work <= 0.0 {
        return 0.0;
    }
    let fraction = (weighted / work) / (mtbf_ms as f64) * pad.rework_factor;
    if fraction < PadConfig::MIN_FRACTION {
        0.0
    } else {
        fraction.min(PadConfig::MAX_FRACTION)
    }
}

/// Shrinks a makespan budget to reserve margin for the expected rework
/// fraction: `budget / (1 + fraction)`, floored at 1ms. A zero fraction or
/// an unbounded budget passes through untouched.
pub fn padded_budget(budget: SimDuration, fraction: f64) -> SimDuration {
    if fraction <= 0.0 || budget == SimDuration::MAX {
        return budget;
    }
    let padded = (budget.as_millis() as f64 / (1.0 + fraction)) as u64;
    SimDuration::from_millis(padded.max(1))
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum MiniEvent {
    /// `value` slots become free.
    Free(u32),
    /// These jobs' prerequisites are all satisfied; they join the active queue.
    Add(Vec<usize>),
    /// A job's last tasks finish; dependents may activate.
    Complete(usize),
}

#[derive(Debug, Clone)]
struct MiniJob {
    maps_left: u32,
    reduces_left: u32,
    map_duration: SimDuration,
    reduce_duration: SimDuration,
    prereqs_left: usize,
    /// Completion time of the job's last scheduled phase so far.
    finish: SimTime,
}

/// Runs Algorithm 1: simulates `workflow` on `cap` fungible slots under
/// `priorities` and returns the scheduling plan.
///
/// # Panics
///
/// Panics if `cap == 0`.
pub fn generate_reqs(
    workflow: &WorkflowSpec,
    priorities: &JobPriorities,
    cap: u32,
) -> SchedulingPlan {
    assert!(cap > 0, "resource cap must be positive");
    let mut jobs: Vec<MiniJob> = workflow
        .job_ids()
        .map(|j| {
            let spec = workflow.job(j);
            MiniJob {
                maps_left: spec.map_tasks(),
                reduces_left: spec.reduce_tasks(),
                map_duration: spec.map_duration(),
                reduce_duration: spec.reduce_duration(),
                prereqs_left: workflow.prerequisites(j).len(),
                finish: SimTime::ZERO,
            }
        })
        .collect();

    // Event queue ordered by (time, seq) for determinism.
    let mut events: BinaryHeap<Reverse<(SimTime, u64, EventBox)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let push = |events: &mut BinaryHeap<_>, seq: &mut u64, t: SimTime, e: MiniEvent| {
        events.push(Reverse((t, *seq, EventBox(e))));
        *seq += 1;
    };

    // Active queue: jobs whose prerequisites are satisfied, ordered by
    // priority (rank descending, id ascending). Small, so a sorted Vec.
    let mut active: Vec<usize> = Vec::new();
    let insert_active = |active: &mut Vec<usize>, priorities: &JobPriorities, j: usize| {
        let pos = active.partition_point(|&other| {
            priorities.beats(JobId::new(other as u32), JobId::new(j as u32))
        });
        active.insert(pos, j);
    };

    let initially_ready: Vec<usize> = workflow
        .initially_ready()
        .into_iter()
        .map(|j| j.index())
        .collect();
    push(
        &mut events,
        &mut seq,
        SimTime::ZERO,
        MiniEvent::Add(initially_ready),
    );
    push(&mut events, &mut seq, SimTime::ZERO, MiniEvent::Free(cap));

    let mut free_slots = 0u32;
    let mut scheduled = 0u64; // cumulative tasks scheduled
    let mut batches: Vec<(SimTime, u64)> = Vec::new(); // (t, cumulative after)
    let mut last_time = SimTime::ZERO;

    while let Some(Reverse((t, _, EventBox(event)))) = events.pop() {
        last_time = t;
        match event {
            MiniEvent::Free(k) => free_slots += k,
            MiniEvent::Add(js) => {
                for j in js {
                    insert_active(&mut active, priorities, j);
                }
            }
            MiniEvent::Complete(j) => {
                for dep in workflow.dependents(JobId::new(j as u32)) {
                    let d = dep.index();
                    jobs[d].prereqs_left -= 1;
                    if jobs[d].prereqs_left == 0 {
                        push(&mut events, &mut seq, t, MiniEvent::Add(vec![d]));
                    }
                }
            }
        }
        // Work-conservingly drain free slots into the highest-priority
        // active job (the paper's Line 14-34, looped until starved).
        while free_slots > 0 && !active.is_empty() {
            let j = active[0];
            let job = &mut jobs[j];
            if job.maps_left > 0 {
                let maps = job.maps_left.min(free_slots);
                free_slots -= maps;
                job.maps_left -= maps;
                scheduled += u64::from(maps);
                batches.push((t, scheduled));
                let done_at = t + job.map_duration.max(SimDuration::from_millis(1));
                push(&mut events, &mut seq, done_at, MiniEvent::Free(maps));
                if job.maps_left == 0 {
                    job.finish = job.finish.max(done_at);
                    active.remove(0);
                    if job.reduces_left > 0 {
                        // Reduce phase can start once all maps finish.
                        push(&mut events, &mut seq, done_at, MiniEvent::Add(vec![j]));
                    } else {
                        let f = job.finish;
                        push(&mut events, &mut seq, f, MiniEvent::Complete(j));
                    }
                }
            } else {
                let reduces = job.reduces_left.min(free_slots);
                free_slots -= reduces;
                job.reduces_left -= reduces;
                scheduled += u64::from(reduces);
                batches.push((t, scheduled));
                let done_at = t + job.reduce_duration.max(SimDuration::from_millis(1));
                push(&mut events, &mut seq, done_at, MiniEvent::Free(reduces));
                job.finish = job.finish.max(done_at);
                if job.reduces_left == 0 {
                    active.remove(0);
                    let f = job.finish;
                    push(&mut events, &mut seq, f, MiniEvent::Complete(j));
                }
            }
        }
    }

    debug_assert_eq!(scheduled, workflow.total_tasks(), "all tasks scheduled");
    debug_assert!(
        jobs.iter().all(|j| j.prereqs_left == 0),
        "plan simulation finished every job"
    );

    // Merge batches at the same instant and convert times to ttd.
    let span = last_time.saturating_since(SimTime::ZERO);
    let mut requirements: Vec<ProgressRequirement> = Vec::with_capacity(batches.len());
    for (t, cumulative) in batches {
        let ttd = span.saturating_sub(t.saturating_since(SimTime::ZERO));
        match requirements.last_mut() {
            Some(last) if last.ttd == ttd => last.cumulative = cumulative,
            _ => requirements.push(ProgressRequirement { ttd, cumulative }),
        }
    }

    SchedulingPlan::new(
        priorities.policy(),
        cap,
        priorities.order().to_vec(),
        requirements,
        span,
        workflow.total_tasks(),
    )
}

/// Generates the scheduling plan for `workflow` under the chosen
/// [`CapMode`], where `total_slots` is the cluster capacity reported by the
/// JobTracker.
///
/// # Panics
///
/// Panics if `total_slots == 0` or a fixed cap is 0.
pub fn generate_plan(
    workflow: &WorkflowSpec,
    priorities: &JobPriorities,
    total_slots: u32,
    mode: CapMode,
) -> SchedulingPlan {
    let budget = if workflow.deadline() == SimTime::MAX {
        SimDuration::MAX
    } else {
        workflow.relative_deadline()
    };
    generate_plan_with_budget(workflow, priorities, total_slots, mode, budget)
}

/// Like [`generate_plan`], but with an explicit makespan budget for the
/// [`CapMode::MinFeasible`] search instead of the workflow's own relative
/// deadline — used to reserve safety slack.
///
/// # Panics
///
/// Panics if `total_slots == 0`.
pub fn generate_plan_with_budget(
    workflow: &WorkflowSpec,
    priorities: &JobPriorities,
    total_slots: u32,
    mode: CapMode,
    budget: SimDuration,
) -> SchedulingPlan {
    assert!(total_slots > 0, "cluster must have slots");
    match mode {
        CapMode::Uncapped => generate_reqs(workflow, priorities, total_slots),
        CapMode::Fixed(cap) => generate_reqs(workflow, priorities, cap.min(total_slots)),
        CapMode::MinFeasible => {
            if workflow.deadline() == SimTime::MAX && budget == SimDuration::MAX {
                return generate_reqs(workflow, priorities, total_slots);
            }
            let full = generate_reqs(workflow, priorities, total_slots);
            if full.span() > budget {
                // Even the whole cluster cannot make the deadline; ship the
                // most aggressive plan we have (best effort).
                return full;
            }
            // Binary search the minimum feasible cap in [1, total_slots].
            let mut lo = 1u32;
            let mut hi = total_slots;
            let mut best = full;
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                let candidate = generate_reqs(workflow, priorities, mid);
                if candidate.span() <= budget {
                    best = candidate;
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            best
        }
    }
}

/// Wrapper making [`MiniEvent`] orderable inside the heap tuple (ordering
/// among simultaneous events is by insertion sequence, so the event payload
/// ordering is never exercised; it only needs to exist).
#[derive(Debug, Clone, PartialEq, Eq)]
struct EventBox(MiniEvent);

impl PartialOrd for EventBox {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EventBox {
    fn cmp(&self, _other: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::PriorityPolicy;
    use woha_model::{JobSpec, WorkflowBuilder};

    /// A two-job chain: J1 (3 maps x 1s, 3 reduces x 1s) -> J2 (same) —
    /// the workflow of the paper's Fig 2.
    fn fig2_workflow(deadline_secs: u64) -> WorkflowSpec {
        let mut b = WorkflowBuilder::new("fig2");
        let j1 = b.add_job(JobSpec::new(
            "j1",
            3,
            3,
            SimDuration::from_secs(1),
            SimDuration::from_secs(1),
        ));
        let j2 = b.add_job(JobSpec::new(
            "j2",
            3,
            3,
            SimDuration::from_secs(1),
            SimDuration::from_secs(1),
        ));
        b.add_dependency(j1, j2);
        b.relative_deadline(SimDuration::from_secs(deadline_secs));
        b.build().unwrap()
    }

    fn hlf(w: &WorkflowSpec) -> JobPriorities {
        JobPriorities::compute(w, PriorityPolicy::Hlf)
    }

    #[test]
    fn uncapped_fig2_span_is_4() {
        // With 6 slots: maps of J1 at t=0 (3 slots), reduces at t=1,
        // maps of J2 at t=2, reduces at t=3, done at t=4.
        let w = fig2_workflow(9);
        let plan = generate_reqs(&w, &hlf(&w), 6);
        assert_eq!(plan.span(), SimDuration::from_secs(4));
        assert_eq!(plan.total_tasks(), 12);
        // Fig 2(a)'s problem: the plan requires nothing until 4 time units
        // before the deadline.
        assert_eq!(plan.required_at(SimDuration::from_secs(5)), 0);
        assert_eq!(plan.required_at(SimDuration::from_secs(4)), 3);
    }

    #[test]
    fn capped_fig2_span_stretches() {
        // With cap 2: each phase takes ceil(3/2) = 2 waves of 1s: total 8s.
        let w = fig2_workflow(9);
        let plan = generate_reqs(&w, &hlf(&w), 2);
        assert_eq!(plan.span(), SimDuration::from_secs(8));
        // Requirements now start early (Fig 2(b)).
        assert_eq!(plan.required_at(SimDuration::from_secs(8)), 2);
    }

    #[test]
    fn min_feasible_cap_picks_smallest_that_meets_deadline() {
        let w = fig2_workflow(9);
        let plan = generate_plan(&w, &hlf(&w), 6, CapMode::MinFeasible);
        // cap 2 yields span 8 <= 9; cap 1 yields span 12 > 9.
        assert_eq!(plan.resource_cap(), 2);
        assert!(plan.span() <= SimDuration::from_secs(9));
        let one = generate_reqs(&w, &hlf(&w), 1);
        assert!(one.span() > SimDuration::from_secs(9));
    }

    #[test]
    fn min_feasible_with_loose_deadline_goes_to_one_slot() {
        let w = fig2_workflow(50);
        let plan = generate_plan(&w, &hlf(&w), 6, CapMode::MinFeasible);
        assert_eq!(plan.resource_cap(), 1);
        assert_eq!(plan.span(), SimDuration::from_secs(12));
    }

    #[test]
    fn min_feasible_infeasible_falls_back_to_full() {
        let w = fig2_workflow(2);
        let plan = generate_plan(&w, &hlf(&w), 6, CapMode::MinFeasible);
        assert_eq!(plan.resource_cap(), 6);
    }

    #[test]
    fn cap_modes_fixed_and_uncapped() {
        let w = fig2_workflow(9);
        let p = generate_plan(&w, &hlf(&w), 6, CapMode::Fixed(3));
        assert_eq!(p.resource_cap(), 3);
        let p = generate_plan(&w, &hlf(&w), 6, CapMode::Uncapped);
        assert_eq!(p.resource_cap(), 6);
        // Fixed caps are clamped to the cluster size.
        let p = generate_plan(&w, &hlf(&w), 6, CapMode::Fixed(100));
        assert_eq!(p.resource_cap(), 6);
    }

    #[test]
    fn plan_accounts_every_task() {
        let w = fig2_workflow(9);
        for cap in 1..=8 {
            let plan = generate_reqs(&w, &hlf(&w), cap);
            assert_eq!(
                plan.requirements().last().unwrap().cumulative,
                w.total_tasks(),
                "cap {cap}"
            );
            assert_eq!(plan.required_at(SimDuration::ZERO), w.total_tasks());
        }
    }

    #[test]
    fn span_is_monotone_in_cap() {
        let w = fig2_workflow(9);
        let mut last_span = SimDuration::MAX;
        for cap in 1..=8 {
            let plan = generate_reqs(&w, &hlf(&w), cap);
            assert!(
                plan.span() <= last_span,
                "span should shrink with more slots"
            );
            last_span = plan.span();
        }
    }

    #[test]
    fn reduce_phase_waits_for_all_maps() {
        // One job, 4 maps x 10s, 2 reduces x 5s, cap 2: map waves at 0 and
        // 10; reduces only at t=20; span 25.
        let mut b = WorkflowBuilder::new("w");
        b.add_job(JobSpec::new(
            "j",
            4,
            2,
            SimDuration::from_secs(10),
            SimDuration::from_secs(5),
        ));
        b.relative_deadline(SimDuration::from_mins(5));
        let w = b.build().unwrap();
        let plan = generate_reqs(&w, &hlf(&w), 2);
        assert_eq!(plan.span(), SimDuration::from_secs(25));
        // At ttd = span - 20 = 5s, all 6 tasks must be scheduled.
        assert_eq!(plan.required_at(SimDuration::from_secs(5)), 6);
        // Just before the reduce wave only the 4 maps are required.
        assert_eq!(plan.required_at(SimDuration::from_secs(6)), 4);
    }

    #[test]
    fn map_only_jobs_complete_and_unlock_dependents() {
        let mut b = WorkflowBuilder::new("w");
        let a = b.add_job(JobSpec::new(
            "a",
            2,
            0,
            SimDuration::from_secs(10),
            SimDuration::ZERO,
        ));
        let z = b.add_job(JobSpec::new(
            "z",
            1,
            0,
            SimDuration::from_secs(10),
            SimDuration::ZERO,
        ));
        b.add_dependency(a, z);
        b.relative_deadline(SimDuration::from_mins(5));
        let w = b.build().unwrap();
        let plan = generate_reqs(&w, &hlf(&w), 4);
        assert_eq!(plan.span(), SimDuration::from_secs(20));
        assert_eq!(plan.total_tasks(), 3);
    }

    #[test]
    fn diamond_respects_priorities() {
        // a -> {b, c} -> d where c's chain is heavier: LPF schedules c's
        // tasks before b's when slots are scarce.
        let mut b = WorkflowBuilder::new("w");
        let ja = b.add_job(JobSpec::new(
            "a",
            1,
            0,
            SimDuration::from_secs(1),
            SimDuration::ZERO,
        ));
        let jb = b.add_job(JobSpec::new(
            "b",
            1,
            0,
            SimDuration::from_secs(1),
            SimDuration::ZERO,
        ));
        let jc = b.add_job(JobSpec::new(
            "c",
            1,
            0,
            SimDuration::from_secs(100),
            SimDuration::ZERO,
        ));
        let jd = b.add_job(JobSpec::new(
            "d",
            1,
            0,
            SimDuration::from_secs(1),
            SimDuration::ZERO,
        ));
        b.add_dependency(ja, jb);
        b.add_dependency(ja, jc);
        b.add_dependency(jb, jd);
        b.add_dependency(jc, jd);
        b.relative_deadline(SimDuration::from_mins(60));
        let w = b.build().unwrap();
        let lpf = JobPriorities::compute(&w, PriorityPolicy::Lpf);
        let plan = generate_reqs(&w, &lpf, 1);
        // Span = 1 (a) + 100 (c) + 1 (b) + 1 (d): b runs during/after c
        // under one slot; critical span 103.
        assert_eq!(plan.span(), SimDuration::from_secs(103));
    }

    #[test]
    fn rework_fraction_scales_with_mtbf() {
        let w = fig2_workflow(9);
        // All tasks are 1s, so the work-weighted mean duration is 1s and
        // the fraction is simply 1s / MTBF.
        let pad = PadConfig::new(SimDuration::from_secs(100));
        assert!((rework_fraction(&w, &pad) - 0.01).abs() < 1e-12);
        let double = PadConfig {
            rework_factor: 2.0,
            ..pad
        };
        assert!((rework_fraction(&w, &double) - 0.02).abs() < 1e-12);
        // A tiny MTBF is capped, not allowed to consume the whole budget.
        let churn = PadConfig::new(SimDuration::from_millis(10));
        assert_eq!(rework_fraction(&w, &churn), PadConfig::MAX_FRACTION);
    }

    #[test]
    fn rework_fraction_is_exactly_zero_at_infinite_mtbf() {
        let w = fig2_workflow(9);
        let pad = PadConfig::new(SimDuration::MAX);
        assert_eq!(rework_fraction(&w, &pad), 0.0);
        assert_eq!(
            padded_budget(SimDuration::from_secs(9), rework_fraction(&w, &pad)),
            SimDuration::from_secs(9)
        );
    }

    #[test]
    fn padded_budget_reserves_margin() {
        let budget = SimDuration::from_secs(100);
        assert_eq!(padded_budget(budget, 0.25), SimDuration::from_secs(80));
        assert_eq!(padded_budget(budget, 0.0), budget);
        assert_eq!(padded_budget(SimDuration::MAX, 0.25), SimDuration::MAX);
        // Floors at 1ms rather than producing a zero budget.
        assert_eq!(
            padded_budget(SimDuration::from_millis(1), 0.5),
            SimDuration::from_millis(1)
        );
    }

    #[test]
    fn padding_tightens_the_min_feasible_cap() {
        // Unpadded, a 9s deadline is met with cap 2 (span 8s). Padded by
        // 20%, the budget shrinks to 7.5s, forcing a bigger cap.
        let w = fig2_workflow(9);
        let budget = padded_budget(SimDuration::from_secs(9), 0.2);
        let padded = generate_plan_with_budget(&w, &hlf(&w), 6, CapMode::MinFeasible, budget);
        assert!(padded.resource_cap() > 2);
        assert!(padded.span() <= budget);
    }

    #[test]
    fn plan_sizes_stay_small() {
        // A workflow with many tasks still yields a compact plan: entry
        // count is bounded by scheduling batches, not tasks.
        let mut b = WorkflowBuilder::new("big");
        for i in 0..20 {
            b.add_job(JobSpec::new(
                format!("j{i}"),
                70,
                7,
                SimDuration::from_secs(30),
                SimDuration::from_secs(60),
            ));
        }
        b.relative_deadline(SimDuration::from_mins(600));
        let w = b.build().unwrap();
        assert!(w.total_tasks() > 1_400);
        let plan = generate_reqs(&w, &hlf(&w), 100);
        assert!(
            plan.encoded_size_bytes() < 7 * 1024,
            "plan is {} bytes",
            plan.encoded_size_bytes()
        );
    }
}
