//! Per-workflow runtime state on the WOHA master: the plan cursor, the
//! true progress `ρ_i`, and the derived inter-workflow priority.
//!
//! This is the `W_h.{t, i, p}` bookkeeping of the paper's Algorithm 2.

use crate::plan::SchedulingPlan;
use serde::{Deserialize, Serialize};
use woha_model::{SimTime, WorkflowId};

/// Runtime progress record of one queued workflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowProgress {
    id: WorkflowId,
    plan: SchedulingPlan,
    deadline: SimTime,
    /// True progress `ρ`: tasks of this workflow handed to slots so far.
    rho: u64,
    /// `W_h.i`: index of the next requirement entry to fire.
    index: usize,
    /// `W_h.p`: the current inter-workflow priority `F(ttd) - ρ`.
    lag: i64,
    /// `W_h.t`: absolute time of the next requirement change.
    next_change: SimTime,
}

impl WorkflowProgress {
    /// Creates the record for a workflow submitted at `now` with the given
    /// plan and absolute deadline, with the plan cursor caught up to `now`.
    pub fn new(id: WorkflowId, plan: SchedulingPlan, deadline: SimTime, now: SimTime) -> Self {
        let index = plan.next_change_index(deadline, now);
        let mut p = WorkflowProgress {
            id,
            plan,
            deadline,
            rho: 0,
            index,
            lag: 0,
            next_change: SimTime::ZERO,
        };
        p.refresh();
        p
    }

    /// The workflow this record tracks.
    pub fn id(&self) -> WorkflowId {
        self.id
    }

    /// The scheduling plan the client shipped.
    pub fn plan(&self) -> &SchedulingPlan {
        &self.plan
    }

    /// The workflow's absolute deadline.
    pub fn deadline(&self) -> SimTime {
        self.deadline
    }

    /// True progress `ρ`.
    pub fn rho(&self) -> u64 {
        self.rho
    }

    /// Current inter-workflow priority (progress lag). Larger = further
    /// behind plan = more urgent.
    pub fn lag(&self) -> i64 {
        self.lag
    }

    /// Absolute time of the next progress-requirement change
    /// ([`SimTime::MAX`] once the plan is exhausted).
    pub fn next_change(&self) -> SimTime {
        self.next_change
    }

    fn refresh(&mut self) {
        self.next_change = self
            .plan
            .change_time(self.deadline, self.index)
            .unwrap_or(SimTime::MAX);
        let required = self.plan.cumulative_before(self.index);
        self.lag = required as i64 - self.rho as i64;
    }

    /// Whether the next requirement change has fired by `now` (Algorithm 2
    /// line 6).
    pub fn is_due(&self, now: SimTime) -> bool {
        self.next_change <= now
    }

    /// Advances the plan cursor past every change that fired by `now` and
    /// recomputes priority (Algorithm 2 lines 8–14). Returns whether
    /// anything changed.
    pub fn catch_up(&mut self, now: SimTime) -> bool {
        let new_index = self.plan.next_change_index(self.deadline, now);
        if new_index == self.index {
            return false;
        }
        debug_assert!(new_index > self.index, "plan cursor never rewinds");
        self.index = new_index;
        self.refresh();
        true
    }

    /// Records one task assignment: `ρ ← ρ + 1`, `p ← p - 1`
    /// (Algorithm 2 line 22).
    pub fn on_task_assigned(&mut self) {
        self.rho += 1;
        self.lag -= 1;
    }

    /// Rolls back one task assignment after the task failed (injected
    /// attempt failure or node loss) and re-entered the pending queue:
    /// `ρ ← ρ - 1`, `p ← p + 1`. The inverse of
    /// [`on_task_assigned`](Self::on_task_assigned); saturates at zero so
    /// spurious rollbacks cannot underflow.
    pub fn on_task_failed(&mut self) {
        if self.rho > 0 {
            self.rho -= 1;
            self.lag += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ProgressRequirement;
    use crate::priority::PriorityPolicy;
    use woha_model::SimDuration;

    /// Plan: span 100s; 4 tasks required by ttd=100 (t=deadline-100),
    /// 6 by ttd=40, 9 by ttd=0.
    fn plan() -> SchedulingPlan {
        SchedulingPlan::new(
            PriorityPolicy::Hlf,
            4,
            vec![],
            vec![
                ProgressRequirement {
                    ttd: SimDuration::from_secs(100),
                    cumulative: 4,
                },
                ProgressRequirement {
                    ttd: SimDuration::from_secs(40),
                    cumulative: 6,
                },
                ProgressRequirement {
                    ttd: SimDuration::ZERO,
                    cumulative: 9,
                },
            ],
            SimDuration::from_secs(100),
            9,
        )
    }

    #[test]
    fn fresh_record_has_zero_lag_before_first_change() {
        // Submitted at t=0 with deadline 150: first change at t=50.
        let p = WorkflowProgress::new(
            WorkflowId::new(1),
            plan(),
            SimTime::from_secs(150),
            SimTime::ZERO,
        );
        assert_eq!(p.lag(), 0);
        assert_eq!(p.rho(), 0);
        assert_eq!(p.next_change(), SimTime::from_secs(50));
        assert!(!p.is_due(SimTime::from_secs(49)));
        assert!(p.is_due(SimTime::from_secs(50)));
    }

    #[test]
    fn catch_up_advances_lag() {
        let mut p = WorkflowProgress::new(
            WorkflowId::new(1),
            plan(),
            SimTime::from_secs(150),
            SimTime::ZERO,
        );
        // At t=50 the first requirement (4 tasks) fires.
        assert!(p.catch_up(SimTime::from_secs(50)));
        assert_eq!(p.lag(), 4);
        assert_eq!(p.next_change(), SimTime::from_secs(110));
        // Catch up with no change fired: no-op.
        assert!(!p.catch_up(SimTime::from_secs(60)));
        // Jump past the remaining changes (t=110 and t=150).
        assert!(p.catch_up(SimTime::from_secs(200)));
        assert_eq!(p.lag(), 9);
        assert_eq!(p.next_change(), SimTime::MAX);
        assert!(!p.is_due(SimTime::MAX.saturating_sub(SimDuration::from_secs(1))));
    }

    #[test]
    fn task_assignment_reduces_lag() {
        let mut p = WorkflowProgress::new(
            WorkflowId::new(1),
            plan(),
            SimTime::from_secs(150),
            SimTime::ZERO,
        );
        p.catch_up(SimTime::from_secs(50));
        for _ in 0..6 {
            p.on_task_assigned();
        }
        assert_eq!(p.rho(), 6);
        assert_eq!(p.lag(), -2); // 2 tasks ahead of plan
    }

    #[test]
    fn task_failure_rolls_back_progress() {
        let mut p = WorkflowProgress::new(
            WorkflowId::new(1),
            plan(),
            SimTime::from_secs(150),
            SimTime::ZERO,
        );
        p.catch_up(SimTime::from_secs(50));
        p.on_task_assigned();
        p.on_task_assigned();
        assert_eq!((p.rho(), p.lag()), (2, 2));
        p.on_task_failed();
        assert_eq!((p.rho(), p.lag()), (1, 3));
        // Saturates: rolling back below zero progress is a no-op.
        p.on_task_failed();
        p.on_task_failed();
        assert_eq!((p.rho(), p.lag()), (0, 4));
    }

    #[test]
    fn submission_after_changes_catches_up_immediately() {
        // Submitted at t=120 with deadline 150: changes at 50 and 110
        // already fired, so the workflow starts 6 tasks behind.
        let p = WorkflowProgress::new(
            WorkflowId::new(2),
            plan(),
            SimTime::from_secs(150),
            SimTime::from_secs(120),
        );
        assert_eq!(p.lag(), 6);
        assert_eq!(p.next_change(), SimTime::from_secs(150));
    }

    #[test]
    fn deadline_less_workflow_is_never_due() {
        let p = WorkflowProgress::new(WorkflowId::new(3), plan(), SimTime::MAX, SimTime::ZERO);
        // Change times are astronomically far away.
        assert!(!p.is_due(SimTime::from_mins(1_000_000)));
        assert_eq!(p.lag(), 0);
    }
}
