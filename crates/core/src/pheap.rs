//! A cache-dense pairing heap with lazy decrease-key, and the
//! [`PairingIndex`] workflow-ordering backend built from two of them.
//!
//! The heap stores its nodes in a flat arena (`Vec<Node>`) linked by `u32`
//! indices, like [`crate::skiplist::SkipList`]: no per-node boxing, freed
//! slots are recycled through a free list, and the hot comparisons walk a
//! contiguous allocation. Melding two heaps is O(1); `pop` does the
//! classic two-pass pairing merge (amortized O(log n)).
//!
//! Re-keying is *lazy*: instead of locating and splicing the old node (a
//! pairing heap has no efficient search), [`PairingIndex`] pushes a fresh
//! node under a new *stamp* and lets the stale one surface at the root,
//! where it is recognized (its stamp no longer matches the workflow's
//! current stamp) and discarded. When stale nodes outnumber live entries
//! the index compacts the arena, so memory and per-op cost stay bounded by
//! the live queue size — the standard amortization argument for lazy
//! deletion.

use crate::index::{pri_key, PriorityIndex};
use std::collections::HashMap;
use std::fmt;
use woha_model::{SimTime, WorkflowId};

const NIL: u32 = u32::MAX;
/// Stamp marking an arena slot as free (never issued to a live entry).
const FREE: u64 = u64::MAX;

#[derive(Debug, Clone)]
struct Node<K> {
    key: K,
    wf: u64,
    stamp: u64,
    child: u32,
    sibling: u32,
}

/// An arena-backed min-ordered pairing heap over `(key, workflow, stamp)`
/// entries.
///
/// The heap itself does not know which entries are live; callers pass an
/// `is_live(wf, stamp)` predicate to the pruning operations. Ties between
/// equal keys are broken deterministically (the earlier argument of a meld
/// wins), so heaps built by the same operation sequence are identical.
///
/// # Examples
///
/// ```
/// use woha_core::pheap::PairingHeap;
///
/// let mut h: PairingHeap<u64> = PairingHeap::new();
/// h.push(30, 1, 0);
/// h.push(10, 2, 1);
/// h.push(20, 3, 2);
/// assert_eq!(h.peek(), Some((10, 2, 1)));
/// assert_eq!(h.pop(), Some((10, 2, 1)));
/// assert_eq!(h.peek(), Some((20, 3, 2)));
/// ```
#[derive(Clone)]
pub struct PairingHeap<K> {
    nodes: Vec<Node<K>>,
    free: Vec<u32>,
    root: u32,
    len: usize,
    scratch: Vec<u32>,
}

impl<K: fmt::Debug> fmt::Debug for PairingHeap<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PairingHeap")
            .field("len", &self.len)
            .field("capacity", &self.nodes.len())
            .finish()
    }
}

impl<K: Ord + Copy> Default for PairingHeap<K> {
    fn default() -> Self {
        PairingHeap::new()
    }
}

impl<K: Ord + Copy> PairingHeap<K> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        PairingHeap {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            len: 0,
            scratch: Vec::new(),
        }
    }

    /// Number of nodes in the heap, stale entries included.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the heap holds no nodes at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn alloc(&mut self, key: K, wf: u64, stamp: u64) -> u32 {
        debug_assert_ne!(stamp, FREE, "FREE stamp is reserved");
        let node = Node {
            key,
            wf,
            stamp,
            child: NIL,
            sibling: NIL,
        };
        match self.free.pop() {
            Some(slot) => {
                self.nodes[slot as usize] = node;
                slot
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    fn release(&mut self, slot: u32) {
        self.nodes[slot as usize].stamp = FREE;
        self.nodes[slot as usize].child = NIL;
        self.nodes[slot as usize].sibling = NIL;
        self.free.push(slot);
    }

    /// Melds two root nodes; the smaller key (first argument on ties)
    /// becomes the parent.
    fn meld(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        let (winner, loser) = if self.nodes[b as usize].key < self.nodes[a as usize].key {
            (b, a)
        } else {
            (a, b)
        };
        self.nodes[loser as usize].sibling = self.nodes[winner as usize].child;
        self.nodes[winner as usize].child = loser;
        winner
    }

    /// Two-pass pairing merge of a sibling chain.
    fn merge_pairs(&mut self, mut head: u32) -> u32 {
        let mut pairs = std::mem::take(&mut self.scratch);
        pairs.clear();
        while head != NIL {
            let a = head;
            let b = self.nodes[a as usize].sibling;
            if b == NIL {
                self.nodes[a as usize].sibling = NIL;
                pairs.push(a);
                break;
            }
            head = self.nodes[b as usize].sibling;
            self.nodes[a as usize].sibling = NIL;
            self.nodes[b as usize].sibling = NIL;
            pairs.push(self.meld(a, b));
        }
        let mut root = NIL;
        while let Some(p) = pairs.pop() {
            root = self.meld(root, p);
        }
        self.scratch = pairs;
        root
    }

    /// Inserts an entry. O(1).
    pub fn push(&mut self, key: K, wf: u64, stamp: u64) {
        let node = self.alloc(key, wf, stamp);
        self.root = self.meld(self.root, node);
        self.len += 1;
    }

    /// The minimum entry, stale or not.
    pub fn peek(&self) -> Option<(K, u64, u64)> {
        if self.root == NIL {
            return None;
        }
        let n = &self.nodes[self.root as usize];
        Some((n.key, n.wf, n.stamp))
    }

    /// Removes and returns the minimum entry, stale or not.
    pub fn pop(&mut self) -> Option<(K, u64, u64)> {
        if self.root == NIL {
            return None;
        }
        let r = self.root;
        let (key, wf, stamp) = {
            let n = &self.nodes[r as usize];
            (n.key, n.wf, n.stamp)
        };
        let children = self.nodes[r as usize].child;
        self.root = self.merge_pairs(children);
        self.release(r);
        self.len -= 1;
        Some((key, wf, stamp))
    }

    /// Discards stale roots until the minimum is live (or the heap is
    /// empty), then returns it. This is where lazy deletions are paid for.
    pub fn peek_live(&mut self, is_live: impl Fn(u64, u64) -> bool) -> Option<(K, u64)> {
        while let Some((key, wf, stamp)) = self.peek() {
            if is_live(wf, stamp) {
                return Some((key, wf));
            }
            self.pop();
        }
        None
    }

    /// Visits live entries in ascending key order until `visit` accepts
    /// one, which is returned. Rejected live entries are detached while the
    /// scan advances and melded back afterwards (O(1) each), so the heap is
    /// left intact; stale entries encountered on the way are discarded.
    pub fn select_live(
        &mut self,
        is_live: impl Fn(u64, u64) -> bool,
        mut visit: impl FnMut(K, u64) -> bool,
    ) -> Option<(K, u64)> {
        let mut parked: Vec<u32> = Vec::new();
        let mut found = None;
        loop {
            if self.root == NIL {
                break;
            }
            let r = self.root;
            let (key, wf, stamp) = {
                let n = &self.nodes[r as usize];
                (n.key, n.wf, n.stamp)
            };
            if !is_live(wf, stamp) {
                self.pop();
                continue;
            }
            if visit(key, wf) {
                found = Some((key, wf));
                break;
            }
            // Detach the rejected root without freeing it.
            let children = self.nodes[r as usize].child;
            self.root = self.merge_pairs(children);
            self.nodes[r as usize].child = NIL;
            self.len -= 1;
            parked.push(r);
        }
        for p in parked {
            self.root = self.meld(self.root, p);
            self.len += 1;
        }
        found
    }

    /// Drops every stale node and rebuilds the heap from the live ones in
    /// arena order — the compaction step bounding lazy-deletion garbage.
    pub fn compact(&mut self, is_live: impl Fn(u64, u64) -> bool) {
        let mut live: Vec<u32> = Vec::new();
        for slot in 0..self.nodes.len() as u32 {
            let n = &self.nodes[slot as usize];
            if n.stamp == FREE {
                continue;
            }
            if is_live(n.wf, n.stamp) {
                live.push(slot);
            } else {
                self.free.push(slot);
                self.nodes[slot as usize].stamp = FREE;
            }
        }
        self.root = NIL;
        self.len = live.len();
        for slot in live {
            self.nodes[slot as usize].child = NIL;
            self.nodes[slot as usize].sibling = NIL;
            self.root = self.meld(self.root, slot);
        }
    }

    /// All non-free entries `(key, wf, stamp)` in arena order (for
    /// diagnostics; callers filter staleness themselves).
    pub fn entries(&self) -> impl Iterator<Item = (K, u64, u64)> + '_ {
        self.nodes
            .iter()
            .filter(|n| n.stamp != FREE)
            .map(|n| (n.key, n.wf, n.stamp))
    }
}

/// The pairing-heap [`PriorityIndex`] backend: a min-heap over next-change
/// times and a min-heap over negated priority keys, re-keyed by lazy
/// decrease-key under per-workflow stamps.
///
/// # Examples
///
/// ```
/// use woha_core::index::PriorityIndex;
/// use woha_core::pheap::PairingIndex;
/// use woha_model::{SimTime, WorkflowId};
///
/// let mut idx = PairingIndex::new();
/// idx.insert(WorkflowId::new(1), SimTime::from_secs(6), 39, SimTime::from_mins(10));
/// idx.insert(WorkflowId::new(4), SimTime::from_secs(5), -17, SimTime::from_mins(12));
/// assert_eq!(idx.min_ct(), Some((SimTime::from_secs(5), WorkflowId::new(4))));
/// assert_eq!(idx.max_priority(), Some((39, WorkflowId::new(1))));
/// ```
#[derive(Debug, Default)]
pub struct PairingIndex {
    ct: PairingHeap<(SimTime, u64)>,
    pri: PairingHeap<(i64, u64, u64)>,
    /// Current stamp of each queued workflow's ct entry.
    ct_live: HashMap<u64, u64>,
    /// Current stamp of each queued workflow's priority entry.
    pri_live: HashMap<u64, u64>,
    next_stamp: u64,
    len: usize,
}

impl PairingIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        PairingIndex::default()
    }

    fn fresh_stamp(&mut self) -> u64 {
        let s = self.next_stamp;
        self.next_stamp += 1;
        s
    }

    /// Compacts a heap once stale nodes dominate the live population.
    fn maybe_compact(&mut self) {
        let live = self.len;
        if self.ct.len() > 2 * live + 64 {
            let is_live = &self.ct_live;
            self.ct.compact(|wf, s| is_live.get(&wf) == Some(&s));
        }
        if self.pri.len() > 2 * live + 64 {
            let is_live = &self.pri_live;
            self.pri.compact(|wf, s| is_live.get(&wf) == Some(&s));
        }
    }
}

impl PriorityIndex for PairingIndex {
    fn name(&self) -> &'static str {
        "pheap"
    }

    fn insert(&mut self, wf: WorkflowId, ct: SimTime, lag: i64, deadline: SimTime) {
        let stamp = self.fresh_stamp();
        let id = wf.as_u64();
        self.ct_live.insert(id, stamp);
        self.pri_live.insert(id, stamp);
        self.ct.push((ct, id), id, stamp);
        self.pri.push(pri_key(lag, deadline, wf), id, stamp);
        self.len += 1;
        self.maybe_compact();
    }

    fn remove(&mut self, wf: WorkflowId, _ct: SimTime, _lag: i64, _deadline: SimTime) {
        let id = wf.as_u64();
        let had_ct = self.ct_live.remove(&id).is_some();
        let had_pri = self.pri_live.remove(&id).is_some();
        debug_assert!(had_ct && had_pri, "removing unqueued workflow {wf}");
        self.len = self.len.saturating_sub(usize::from(had_ct || had_pri));
        self.maybe_compact();
    }

    fn update(
        &mut self,
        wf: WorkflowId,
        old_ct: SimTime,
        old_lag: i64,
        new_ct: SimTime,
        new_lag: i64,
        deadline: SimTime,
    ) {
        // Lazy decrease-key: push replacements under a fresh stamp; the
        // outdated nodes die when they surface at a root (or at the next
        // compaction). Unchanged keys keep their node as-is.
        let id = wf.as_u64();
        debug_assert!(
            self.ct_live.contains_key(&id) && self.pri_live.contains_key(&id),
            "updating unqueued workflow {wf}"
        );
        let stamp = self.fresh_stamp();
        if old_ct != new_ct {
            self.ct_live.insert(id, stamp);
            self.ct.push((new_ct, id), id, stamp);
        }
        if old_lag != new_lag {
            self.pri_live.insert(id, stamp);
            self.pri.push(pri_key(new_lag, deadline, wf), id, stamp);
        }
        self.maybe_compact();
    }

    fn min_ct(&mut self) -> Option<(SimTime, WorkflowId)> {
        let live = &self.ct_live;
        self.ct
            .peek_live(|wf, s| live.get(&wf) == Some(&s))
            .map(|((t, _), wf)| (t, WorkflowId::new(wf)))
    }

    fn select(
        &mut self,
        visit: &mut dyn FnMut(i64, WorkflowId) -> bool,
    ) -> Option<(i64, WorkflowId)> {
        let live = &self.pri_live;
        self.pri
            .select_live(
                |wf, s| live.get(&wf) == Some(&s),
                |(neg, _, _), wf| visit(-neg, WorkflowId::new(wf)),
            )
            .map(|((neg, _, _), wf)| (-neg, WorkflowId::new(wf)))
    }

    fn priority_order(&mut self) -> Vec<(i64, WorkflowId)> {
        let mut live: Vec<(i64, u64, u64)> = self
            .pri
            .entries()
            .filter(|&(_, wf, stamp)| self.pri_live.get(&wf) == Some(&stamp))
            .map(|(key, _, _)| key)
            .collect();
        live.sort_unstable();
        live.into_iter()
            .map(|(neg, _, wf)| (-neg, WorkflowId::new(wf)))
            .collect()
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_pops_in_key_order() {
        let mut h: PairingHeap<u64> = PairingHeap::new();
        for (i, k) in [5u64, 3, 9, 1, 7, 1].into_iter().enumerate() {
            h.push(k, i as u64, i as u64);
        }
        let mut keys = Vec::new();
        while let Some((k, ..)) = h.pop() {
            keys.push(k);
        }
        assert_eq!(keys, vec![1, 1, 3, 5, 7, 9]);
        assert!(h.is_empty());
    }

    #[test]
    fn heap_recycles_slots() {
        let mut h: PairingHeap<u64> = PairingHeap::new();
        for i in 0..8u64 {
            h.push(i, i, i);
        }
        for _ in 0..8 {
            h.pop();
        }
        for i in 0..8u64 {
            h.push(i, i, 100 + i);
        }
        assert_eq!(h.nodes.len(), 8, "freed slots are reused");
        assert_eq!(h.peek(), Some((0, 0, 100)));
    }

    #[test]
    fn select_live_skips_and_restores() {
        let mut h: PairingHeap<u64> = PairingHeap::new();
        for i in 0..10u64 {
            h.push(i, i, i);
        }
        // Reject the first three live entries, accept the fourth.
        let mut seen = Vec::new();
        let got = h.select_live(
            |_, _| true,
            |k, _| {
                seen.push(k);
                k == 3
            },
        );
        assert_eq!(got, Some((3, 3)));
        assert_eq!(seen, vec![0, 1, 2, 3]);
        // The rejected entries are still in the heap.
        assert_eq!(h.pop().map(|(k, ..)| k), Some(0));
        assert_eq!(h.pop().map(|(k, ..)| k), Some(1));
        assert_eq!(h.len(), 8);
    }

    #[test]
    fn lazy_rekey_discards_stale_nodes() {
        let mut idx = PairingIndex::new();
        let wf = WorkflowId::new(7);
        idx.insert(wf, SimTime::from_secs(10), 5, SimTime::from_secs(100));
        idx.update(
            wf,
            SimTime::from_secs(10),
            5,
            SimTime::from_secs(20),
            -2,
            SimTime::from_secs(100),
        );
        assert_eq!(idx.min_ct(), Some((SimTime::from_secs(20), wf)));
        assert_eq!(idx.max_priority(), Some((-2, wf)));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn compaction_bounds_garbage() {
        let mut idx = PairingIndex::new();
        let wf = WorkflowId::new(1);
        idx.insert(wf, SimTime::from_secs(1), 0, SimTime::from_secs(100));
        for i in 0..10_000i64 {
            idx.update(
                wf,
                SimTime::from_secs(1),
                i,
                SimTime::from_secs(1),
                i + 1,
                SimTime::from_secs(100),
            );
        }
        assert!(
            idx.pri.len() <= 2 * idx.len() + 64 + 1,
            "garbage must stay bounded, got {}",
            idx.pri.len()
        );
        assert_eq!(idx.max_priority(), Some((10_000, wf)));
    }
}
