//! Mid-flight replanning: regenerate a workflow's scheduling plan from its
//! *remaining* work when reality has diverged too far from the original
//! client-side estimate.
//!
//! The paper's plans are computed once, at submission, from duration
//! estimates; it explicitly notes the plan "may not faithfully represent
//! the real execution trace" (§IV-A). When estimation error or contention
//! pushes a workflow far behind, the original requirement curve stops
//! being informative — every entry is overdue and the priority saturates.
//! Replanning rebuilds the curve for the work that is actually left,
//! re-anchored at the (effective) deadline, restoring a meaningful pacing
//! signal. This is the natural "dynamic WOHA" extension the paper's
//! future-work discussion gestures at.

use crate::plangen::{generate_plan_with_budget, CapMode};
use crate::priority::{JobPriorities, PriorityPolicy};
use serde::{Deserialize, Serialize};
use woha_model::{JobSpec, SimDuration, WorkflowBuilder, WorkflowSpec};
use woha_sim::{JobPhase, WorkflowState};

/// When to replan a workflow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplanConfig {
    /// Replan once the progress lag exceeds this fraction of the
    /// workflow's total tasks.
    pub lag_fraction: f64,
    /// Minimum spacing between replans of the same workflow.
    pub min_interval: SimDuration,
}

impl Default for ReplanConfig {
    fn default() -> Self {
        ReplanConfig {
            lag_fraction: 0.15,
            min_interval: SimDuration::from_mins(2),
        }
    }
}

/// Builds a [`WorkflowSpec`] describing the *remaining* work of a running
/// workflow: completed jobs disappear, partially-executed jobs shrink to
/// their unscheduled tasks, and the prerequisite relation is restricted to
/// jobs that still exist.
///
/// Approximations (all conservative for pacing purposes):
///
/// - running tasks count as scheduled (the plan paces *scheduling*, and
///   they already were);
/// - a job whose maps are all scheduled but whose reduces remain is given
///   one 1 ms phantom map task, because the workflow model requires every
///   job to have a map phase — it adds at most 1 ms to the simulated span.
///
/// Returns `None` when the workflow is complete (nothing to plan).
pub fn remaining_workflow(state: &WorkflowState) -> Option<WorkflowSpec> {
    let spec = state.spec();
    let mut builder = WorkflowBuilder::new(format!("{}#replan", spec.name()));
    // Map original job ids to new ids for jobs that still carry work.
    let mut new_ids = vec![None; spec.job_count()];
    for j in spec.job_ids() {
        let job_state = state.job(j);
        if job_state.phase() == JobPhase::Complete {
            continue;
        }
        let job_spec = spec.job(j);
        let remaining_maps = match job_state.phase() {
            // Not yet activated: everything remains.
            JobPhase::Blocked | JobPhase::Submitting => job_spec.map_tasks(),
            JobPhase::Active => job_state.pending_maps(),
            JobPhase::Complete => unreachable!("skipped above"),
        };
        let remaining_reduces = match job_state.phase() {
            JobPhase::Blocked | JobPhase::Submitting => job_spec.reduce_tasks(),
            JobPhase::Active => job_state.pending_reduces(),
            JobPhase::Complete => unreachable!("skipped above"),
        };
        if remaining_maps == 0 && remaining_reduces == 0 {
            // All tasks scheduled; the job will finish on its own.
            continue;
        }
        let (maps, map_duration) = if remaining_maps == 0 {
            (1, SimDuration::from_millis(1))
        } else {
            (remaining_maps, job_spec.map_duration())
        };
        let id = builder.add_job(JobSpec::new(
            job_spec.name(),
            maps,
            remaining_reduces,
            map_duration,
            job_spec.reduce_duration(),
        ));
        new_ids[j.index()] = Some(id);
    }
    // Restrict edges to surviving jobs (a completed prerequisite is
    // satisfied, so the edge simply disappears).
    for j in spec.job_ids() {
        let Some(succ) = new_ids[j.index()] else {
            continue;
        };
        for &p in spec.prerequisites(j) {
            if let Some(pred) = new_ids[p.index()] {
                builder.add_dependency(pred, succ);
            }
        }
    }
    builder.submit_at(spec.submit_time());
    if spec.deadline() != woha_model::SimTime::MAX {
        builder.deadline_at(spec.deadline());
    }
    builder.build().ok()
}

/// Generates a fresh plan for the remaining work of `state`, with the
/// given budget (time left to the effective deadline). Returns `None`
/// when nothing remains to schedule.
pub fn replan(
    state: &WorkflowState,
    policy: PriorityPolicy,
    total_slots: u32,
    cap_mode: CapMode,
    budget: SimDuration,
) -> Option<crate::plan::SchedulingPlan> {
    let remaining = remaining_workflow(state)?;
    let priorities = JobPriorities::compute(&remaining, policy);
    let mut plan =
        generate_plan_with_budget(&remaining, &priorities, total_slots, cap_mode, budget);
    // The plan's job order refers to the *remaining* workflow's dense ids;
    // translate it back to the original ids so the scheduler can use it.
    let mut original_of_new = Vec::new();
    {
        // Rebuild the id mapping the same way remaining_workflow did.
        let spec = state.spec();
        for j in spec.job_ids() {
            let job_state = state.job(j);
            if job_state.phase() == JobPhase::Complete {
                continue;
            }
            let all_scheduled = job_state.phase() == JobPhase::Active
                && job_state.pending_maps() == 0
                && job_state.pending_reduces() == 0;
            if all_scheduled {
                continue;
            }
            original_of_new.push(j);
        }
    }
    let translated: Vec<woha_model::JobId> = plan
        .job_order()
        .iter()
        .map(|&new_id| original_of_new[new_id.index()])
        .collect();
    plan = plan.with_job_order(translated);
    Some(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use woha_model::{JobId, SimTime, SlotKind, WorkflowSpec};
    use woha_sim::WorkflowPool;

    fn chain_spec() -> WorkflowSpec {
        let mut b = WorkflowBuilder::new("w");
        let a = b.add_job(JobSpec::new(
            "a",
            4,
            2,
            SimDuration::from_secs(10),
            SimDuration::from_secs(20),
        ));
        let c = b.add_job(JobSpec::new(
            "b",
            3,
            1,
            SimDuration::from_secs(10),
            SimDuration::from_secs(20),
        ));
        b.add_dependency(a, c);
        b.relative_deadline(SimDuration::from_mins(20));
        b.build().unwrap()
    }

    /// Drives a pool to a mid-execution state: job a fully scheduled and
    /// completed, job b active with 1 of 3 maps scheduled.
    fn mid_execution() -> WorkflowPool {
        let mut pool = WorkflowPool::new();
        let wf = pool.register(chain_spec());
        let a = JobId::new(0);
        let b = JobId::new(1);
        let t = SimTime::from_secs(1);
        pool.workflow_mut(wf).begin_submitting(a);
        pool.workflow_mut(wf).activate(a, t);
        for _ in 0..4 {
            pool.workflow_mut(wf).start_task(a, SlotKind::Map);
        }
        for _ in 0..4 {
            pool.workflow_mut(wf).finish_task(a, SlotKind::Map, t);
        }
        for _ in 0..2 {
            pool.workflow_mut(wf).start_task(a, SlotKind::Reduce);
        }
        for _ in 0..2 {
            pool.workflow_mut(wf).finish_task(a, SlotKind::Reduce, t);
        }
        assert!(pool.workflow_mut(wf).satisfy_prereq(b));
        pool.workflow_mut(wf).begin_submitting(b);
        pool.workflow_mut(wf).activate(b, t);
        pool.workflow_mut(wf).start_task(b, SlotKind::Map);
        pool
    }

    #[test]
    fn remaining_shrinks_to_unscheduled_work() {
        let pool = mid_execution();
        let state = pool.workflow(woha_model::WorkflowId::new(0));
        let remaining = remaining_workflow(state).unwrap();
        // Job a is gone; job b remains with 2 pending maps + 1 reduce.
        assert_eq!(remaining.job_count(), 1);
        assert_eq!(remaining.jobs()[0].map_tasks(), 2);
        assert_eq!(remaining.jobs()[0].reduce_tasks(), 1);
        assert_eq!(remaining.total_tasks(), 3);
        // The a -> b edge disappeared with a.
        assert!(remaining.initially_ready().len() == 1);
        // Deadline carried over.
        assert_eq!(remaining.deadline(), SimTime::from_mins(20));
    }

    #[test]
    fn untouched_workflow_remains_whole() {
        let mut pool = WorkflowPool::new();
        let wf = pool.register(chain_spec());
        let state = pool.workflow(wf);
        let remaining = remaining_workflow(state).unwrap();
        assert_eq!(remaining.total_tasks(), chain_spec().total_tasks());
        assert_eq!(remaining.job_count(), 2);
    }

    #[test]
    fn fully_scheduled_workflow_has_nothing_to_plan() {
        let mut pool = WorkflowPool::new();
        let wf = pool.register({
            let mut b = WorkflowBuilder::new("tiny");
            b.add_job(JobSpec::new(
                "j",
                1,
                0,
                SimDuration::from_secs(5),
                SimDuration::ZERO,
            ));
            b.relative_deadline(SimDuration::from_mins(5));
            b.build().unwrap()
        });
        let j = JobId::new(0);
        pool.workflow_mut(wf).begin_submitting(j);
        pool.workflow_mut(wf).activate(j, SimTime::ZERO);
        pool.workflow_mut(wf).start_task(j, SlotKind::Map);
        // Everything is scheduled (still running): nothing left to plan.
        let state = pool.workflow(wf);
        assert!(remaining_workflow(state).is_none());
    }

    #[test]
    fn reduce_only_job_gets_phantom_map() {
        let mut pool = WorkflowPool::new();
        let wf = pool.register({
            let mut b = WorkflowBuilder::new("r");
            b.add_job(JobSpec::new(
                "j",
                1,
                3,
                SimDuration::from_secs(5),
                SimDuration::from_secs(30),
            ));
            b.relative_deadline(SimDuration::from_mins(5));
            b.build().unwrap()
        });
        let j = JobId::new(0);
        pool.workflow_mut(wf).begin_submitting(j);
        pool.workflow_mut(wf).activate(j, SimTime::ZERO);
        pool.workflow_mut(wf).start_task(j, SlotKind::Map);
        // Map scheduled but not finished; 3 reduces pending.
        let remaining = remaining_workflow(pool.workflow(wf)).unwrap();
        assert_eq!(remaining.jobs()[0].map_tasks(), 1, "phantom map");
        assert_eq!(
            remaining.jobs()[0].map_duration(),
            SimDuration::from_millis(1)
        );
        assert_eq!(remaining.jobs()[0].reduce_tasks(), 3);
    }

    #[test]
    fn replan_produces_usable_plan_with_original_ids() {
        let pool = mid_execution();
        let state = pool.workflow(woha_model::WorkflowId::new(0));
        let plan = replan(
            state,
            PriorityPolicy::Lpf,
            12,
            CapMode::MinFeasible,
            SimDuration::from_mins(15),
        )
        .unwrap();
        assert_eq!(plan.total_tasks(), 3);
        // Job order refers to the ORIGINAL workflow's ids: only job 1
        // remains.
        assert_eq!(plan.job_order(), &[JobId::new(1)]);
        assert!(plan.span() <= SimDuration::from_mins(15));
    }
}
