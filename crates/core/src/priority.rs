//! Intra-workflow job prioritization policies (paper §V-C).
//!
//! The Scheduling Plan Generator consumes a total order over a workflow's
//! jobs. The paper evaluates three classic policies:
//!
//! - **HLF** (Highest Level First): jobs with longer chains of dependents
//!   (counted in jobs) first.
//! - **LPF** (Longest Path First): like HLF but weighting each job by its
//!   length (estimated map + reduce task duration).
//! - **MPF** (Maximum Parallelism First): jobs with more direct dependents
//!   first, to maximize the number of schedulable tasks.
//!
//! All three break ties by job id, as the paper specifies for HLF.

use serde::{Deserialize, Serialize};
use std::fmt;
use woha_model::{JobId, WorkflowSpec};

/// The intra-workflow job prioritization policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PriorityPolicy {
    /// Highest Level First.
    Hlf,
    /// Longest Path First.
    Lpf,
    /// Maximum Parallelism First.
    Mpf,
}

impl PriorityPolicy {
    /// All policies, in the paper's presentation order.
    pub const ALL: [PriorityPolicy; 3] = [
        PriorityPolicy::Hlf,
        PriorityPolicy::Lpf,
        PriorityPolicy::Mpf,
    ];
}

impl fmt::Display for PriorityPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PriorityPolicy::Hlf => f.write_str("HLF"),
            PriorityPolicy::Lpf => f.write_str("LPF"),
            PriorityPolicy::Mpf => f.write_str("MPF"),
        }
    }
}

/// A computed job priority assignment for one workflow.
///
/// Higher rank = higher priority. Ranks are only meaningful within the
/// workflow they were computed for.
///
/// # Examples
///
/// ```
/// use woha_core::priority::{JobPriorities, PriorityPolicy};
/// use woha_model::{JobSpec, SimDuration, WorkflowBuilder};
///
/// let mut b = WorkflowBuilder::new("w");
/// let a = b.add_job(JobSpec::new("a", 1, 0, SimDuration::from_secs(10), SimDuration::ZERO));
/// let z = b.add_job(JobSpec::new("z", 1, 0, SimDuration::from_secs(10), SimDuration::ZERO));
/// b.add_dependency(a, z);
/// let w = b.build().unwrap();
///
/// let pri = JobPriorities::compute(&w, PriorityPolicy::Hlf);
/// assert!(pri.rank(a) > pri.rank(z));
/// assert_eq!(pri.order(), &[a, z]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobPriorities {
    policy: PriorityPolicy,
    ranks: Vec<u64>,
    order: Vec<JobId>,
}

impl JobPriorities {
    /// Computes priorities for `workflow` under `policy`.
    pub fn compute(workflow: &WorkflowSpec, policy: PriorityPolicy) -> Self {
        let ranks: Vec<u64> = match policy {
            PriorityPolicy::Hlf => workflow.levels().into_iter().map(|l| l as u64).collect(),
            PriorityPolicy::Lpf => workflow.longest_paths_millis(),
            PriorityPolicy::Mpf => workflow
                .to_dag()
                .out_degrees()
                .into_iter()
                .map(|d| d as u64)
                .collect(),
        };
        let mut order: Vec<JobId> = workflow.job_ids().collect();
        // Descending rank; ties by ascending job id (paper: "ties are
        // broken by using their job IDs").
        order.sort_by(|&a, &b| {
            ranks[b.index()]
                .cmp(&ranks[a.index()])
                .then_with(|| a.cmp(&b))
        });
        JobPriorities {
            policy,
            ranks,
            order,
        }
    }

    /// The policy these priorities came from.
    pub fn policy(&self) -> PriorityPolicy {
        self.policy
    }

    /// The rank of one job (higher = more urgent).
    ///
    /// # Panics
    ///
    /// Panics if `job` is out of range for the originating workflow.
    pub fn rank(&self, job: JobId) -> u64 {
        self.ranks[job.index()]
    }

    /// Jobs in descending priority order.
    pub fn order(&self) -> &[JobId] {
        &self.order
    }

    /// True if `a` should be scheduled in preference to `b`.
    pub fn beats(&self, a: JobId, b: JobId) -> bool {
        self.ranks[a.index()]
            .cmp(&self.ranks[b.index()])
            .then_with(|| b.cmp(&a))
            .is_gt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use woha_model::{JobSpec, SimDuration, WorkflowBuilder};

    /// a -> {b, c} -> d, where c is much longer than b, and e is a
    /// disconnected source with many dependents f, g.
    fn sample() -> (WorkflowSpec, Vec<JobId>) {
        let mut b = WorkflowBuilder::new("w");
        let ja = b.add_job(JobSpec::new(
            "a",
            2,
            1,
            SimDuration::from_secs(10),
            SimDuration::from_secs(10),
        ));
        let jb = b.add_job(JobSpec::new(
            "b",
            2,
            1,
            SimDuration::from_secs(5),
            SimDuration::from_secs(5),
        ));
        let jc = b.add_job(JobSpec::new(
            "c",
            2,
            1,
            SimDuration::from_secs(500),
            SimDuration::from_secs(500),
        ));
        let jd = b.add_job(JobSpec::new(
            "d",
            2,
            1,
            SimDuration::from_secs(10),
            SimDuration::from_secs(10),
        ));
        let je = b.add_job(JobSpec::new(
            "e",
            2,
            1,
            SimDuration::from_secs(5),
            SimDuration::from_secs(5),
        ));
        let jf = b.add_job(JobSpec::new(
            "f",
            2,
            1,
            SimDuration::from_secs(5),
            SimDuration::from_secs(5),
        ));
        let jg = b.add_job(JobSpec::new(
            "g",
            2,
            1,
            SimDuration::from_secs(5),
            SimDuration::from_secs(5),
        ));
        b.add_dependency(ja, jb);
        b.add_dependency(ja, jc);
        b.add_dependency(jb, jd);
        b.add_dependency(jc, jd);
        b.add_dependency(je, jf);
        b.add_dependency(je, jg);
        (b.build().unwrap(), vec![ja, jb, jc, jd, je, jf, jg])
    }

    #[test]
    fn hlf_ranks_by_level() {
        let (w, ids) = sample();
        let p = JobPriorities::compute(&w, PriorityPolicy::Hlf);
        assert_eq!(p.policy(), PriorityPolicy::Hlf);
        // a is 2 levels above the sink; e is 1; leaves are 0.
        assert_eq!(p.rank(ids[0]), 2);
        assert_eq!(p.rank(ids[4]), 1);
        assert_eq!(p.rank(ids[3]), 0);
        // Order: a, then (b, c, e) level 1 by id, then level-0 leaves.
        assert_eq!(
            p.order(),
            &[ids[0], ids[1], ids[2], ids[4], ids[3], ids[5], ids[6]]
        );
    }

    #[test]
    fn lpf_prefers_heavy_chain() {
        let (w, ids) = sample();
        let p = JobPriorities::compute(&w, PriorityPolicy::Lpf);
        // c's chain (c -> d) is far heavier than b's, so c outranks b.
        assert!(p.rank(ids[2]) > p.rank(ids[1]));
        assert!(p.beats(ids[2], ids[1]));
        // a includes c's chain, so a outranks c.
        assert!(p.rank(ids[0]) > p.rank(ids[2]));
        // Order starts with a then c.
        assert_eq!(&p.order()[..2], &[ids[0], ids[2]]);
    }

    #[test]
    fn mpf_ranks_by_dependents() {
        let (w, ids) = sample();
        let p = JobPriorities::compute(&w, PriorityPolicy::Mpf);
        // a and e both have 2 dependents; tie broken by id, so a first.
        assert_eq!(p.rank(ids[0]), 2);
        assert_eq!(p.rank(ids[4]), 2);
        assert_eq!(&p.order()[..2], &[ids[0], ids[4]]);
        // b and c have 1 dependent each; leaves 0.
        assert_eq!(p.rank(ids[1]), 1);
        assert_eq!(p.rank(ids[3]), 0);
    }

    #[test]
    fn beats_is_a_strict_total_order() {
        let (w, _) = sample();
        for policy in PriorityPolicy::ALL {
            let p = JobPriorities::compute(&w, policy);
            for a in w.job_ids() {
                assert!(!p.beats(a, a), "{policy}: irreflexive");
                for b in w.job_ids() {
                    if a != b {
                        assert!(
                            p.beats(a, b) ^ p.beats(b, a),
                            "{policy}: exactly one of ({a},{b}) wins"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn order_is_consistent_with_beats() {
        let (w, _) = sample();
        for policy in PriorityPolicy::ALL {
            let p = JobPriorities::compute(&w, policy);
            for pair in p.order().windows(2) {
                assert!(p.beats(pair[0], pair[1]), "{policy}");
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(PriorityPolicy::Hlf.to_string(), "HLF");
        assert_eq!(PriorityPolicy::Lpf.to_string(), "LPF");
        assert_eq!(PriorityPolicy::Mpf.to_string(), "MPF");
    }
}
