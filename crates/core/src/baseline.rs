//! The state-of-the-art schedulers the paper ports onto workflows for
//! comparison (§V-B): Oozie+FIFO, Oozie+Fair, and EDF.
//!
//! All three share the *information separation* that motivates WOHA: the
//! "Oozie" side (the simulator driver) submits a wjob only when its
//! prerequisites finish, and the scheduler sees jobs — not workflow
//! topology. FIFO and Fair ignore deadlines entirely; EDF uses only the
//! deadline, not the workflow's shape or progress.

use serde::{Deserialize, Serialize, Value};
use woha_model::{JobId, SimTime, SlotKind, WorkflowId};
use woha_sim::{SchedulerState, WorkflowPool, WorkflowScheduler};

/// Encodes an activation queue as an array of `[workflow, job]` pairs for
/// the master-failover checkpoint (the vendored serde has no tuple impls).
fn queue_to_value(queue: &[(WorkflowId, JobId)]) -> Value {
    Value::Array(
        queue
            .iter()
            .map(|&(wf, job)| Value::Array(vec![wf.to_value(), job.to_value()]))
            .collect(),
    )
}

/// Inverse of [`queue_to_value`]; malformed entries are dropped rather than
/// failing recovery outright.
fn queue_from_value(state: &Value) -> Vec<(WorkflowId, JobId)> {
    state
        .as_array()
        .map(|pairs| {
            pairs
                .iter()
                .filter_map(|pair| {
                    let pair = pair.as_array()?;
                    let wf = WorkflowId::from_value(pair.first()?).ok()?;
                    let job = JobId::from_value(pair.get(1)?).ok()?;
                    Some((wf, job))
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Oozie + the default Hadoop `JobQueueTaskScheduler`: an ordered list of
/// jobs by submission (activation) time; each free slot goes to the first
/// job in the list with an available task.
#[derive(Debug, Default)]
pub struct FifoScheduler {
    /// Active jobs in activation order.
    queue: Vec<(WorkflowId, JobId)>,
}

impl FifoScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        FifoScheduler::default()
    }
}

impl SchedulerState for FifoScheduler {
    fn snapshot_state(&self) -> Value {
        queue_to_value(&self.queue)
    }

    fn restore_state(&mut self, _pool: &WorkflowPool, state: &Value) {
        self.queue = queue_from_value(state);
    }
}

impl WorkflowScheduler for FifoScheduler {
    fn name(&self) -> &str {
        "FIFO"
    }

    fn on_job_activated(
        &mut self,
        _pool: &WorkflowPool,
        wf: WorkflowId,
        job: JobId,
        _now: SimTime,
    ) {
        self.queue.push((wf, job));
    }

    fn on_job_completed(
        &mut self,
        _pool: &WorkflowPool,
        wf: WorkflowId,
        job: JobId,
        _now: SimTime,
    ) {
        self.queue.retain(|&(w, j)| (w, j) != (wf, job));
    }

    fn assign_task(
        &mut self,
        pool: &WorkflowPool,
        kind: SlotKind,
        _now: SimTime,
    ) -> Option<(WorkflowId, JobId)> {
        self.queue
            .iter()
            .copied()
            .find(|&(wf, job)| pool.eligible(wf, job, kind))
    }
}

/// Oozie + a FairScheduler-style policy: every *workflow* gets an even
/// share of the cluster, implemented work-conservingly by always granting
/// the next slot to the eligible workflow currently running the fewest
/// tasks. Within a workflow, jobs are served in activation order.
#[derive(Debug, Default)]
pub struct FairScheduler {
    /// Activation order of jobs, used for intra-workflow ordering.
    activation: Vec<(WorkflowId, JobId)>,
}

impl FairScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        FairScheduler::default()
    }
}

impl SchedulerState for FairScheduler {
    fn snapshot_state(&self) -> Value {
        queue_to_value(&self.activation)
    }

    fn restore_state(&mut self, _pool: &WorkflowPool, state: &Value) {
        self.activation = queue_from_value(state);
    }
}

impl WorkflowScheduler for FairScheduler {
    fn name(&self) -> &str {
        "Fair"
    }

    fn on_job_activated(
        &mut self,
        _pool: &WorkflowPool,
        wf: WorkflowId,
        job: JobId,
        _now: SimTime,
    ) {
        self.activation.push((wf, job));
    }

    fn on_job_completed(
        &mut self,
        _pool: &WorkflowPool,
        wf: WorkflowId,
        job: JobId,
        _now: SimTime,
    ) {
        self.activation.retain(|&(w, j)| (w, j) != (wf, job));
    }

    fn assign_task(
        &mut self,
        pool: &WorkflowPool,
        kind: SlotKind,
        _now: SimTime,
    ) -> Option<(WorkflowId, JobId)> {
        // The eligible workflow with the smallest current usage wins the
        // slot; ties go to the earlier workflow id.
        let target = pool
            .incomplete()
            .filter(|&wf| pool.workflow(wf).has_eligible_task(kind))
            .min_by_key(|&wf| (pool.workflow(wf).running_tasks(), wf))?;
        self.activation
            .iter()
            .copied()
            .find(|&(wf, job)| wf == target && pool.eligible(wf, job, kind))
    }
}

/// Earliest Deadline First over workflows: the workflow with the earliest
/// absolute deadline wins every slot; jobs within it are served in
/// activation order.
#[derive(Debug, Default)]
pub struct EdfScheduler {
    activation: Vec<(WorkflowId, JobId)>,
}

impl EdfScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        EdfScheduler::default()
    }
}

impl SchedulerState for EdfScheduler {
    fn snapshot_state(&self) -> Value {
        queue_to_value(&self.activation)
    }

    fn restore_state(&mut self, _pool: &WorkflowPool, state: &Value) {
        self.activation = queue_from_value(state);
    }
}

impl WorkflowScheduler for EdfScheduler {
    fn name(&self) -> &str {
        "EDF"
    }

    fn on_job_activated(
        &mut self,
        _pool: &WorkflowPool,
        wf: WorkflowId,
        job: JobId,
        _now: SimTime,
    ) {
        self.activation.push((wf, job));
    }

    fn on_job_completed(
        &mut self,
        _pool: &WorkflowPool,
        wf: WorkflowId,
        job: JobId,
        _now: SimTime,
    ) {
        self.activation.retain(|&(w, j)| (w, j) != (wf, job));
    }

    fn assign_task(
        &mut self,
        pool: &WorkflowPool,
        kind: SlotKind,
        _now: SimTime,
    ) -> Option<(WorkflowId, JobId)> {
        let target = pool
            .incomplete()
            .filter(|&wf| pool.workflow(wf).has_eligible_task(kind))
            .min_by_key(|&wf| (pool.workflow(wf).spec().deadline(), wf))?;
        self.activation
            .iter()
            .copied()
            .find(|&(wf, job)| wf == target && pool.eligible(wf, job, kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use woha_model::{JobSpec, SimDuration, WorkflowBuilder, WorkflowSpec};
    use woha_sim::{run_simulation, ClusterConfig, SimConfig, SimReport};

    /// A single fat job: 8 maps x 30s, 2 reduces x 30s.
    fn fat(name: &str, submit_s: u64, deadline_s: u64) -> WorkflowSpec {
        let mut b = WorkflowBuilder::new(name);
        b.add_job(JobSpec::new(
            "j",
            8,
            2,
            SimDuration::from_secs(30),
            SimDuration::from_secs(30),
        ));
        b.submit_at(SimTime::from_secs(submit_s));
        b.relative_deadline(SimDuration::from_secs(deadline_s));
        b.build().unwrap()
    }

    fn run(sched: &mut dyn WorkflowScheduler, workflows: &[WorkflowSpec]) -> SimReport {
        run_simulation(
            workflows,
            sched,
            &ClusterConfig::uniform(2, 2, 1),
            &SimConfig::default(),
        )
    }

    #[test]
    fn all_baselines_complete_work() {
        let workflows = vec![fat("a", 0, 900), fat("b", 5, 900)];
        for sched in [
            &mut FifoScheduler::new() as &mut dyn WorkflowScheduler,
            &mut FairScheduler::new(),
            &mut EdfScheduler::new(),
        ] {
            let report = run(sched, &workflows);
            assert!(report.completed, "{}", sched.name());
            assert_eq!(report.invalid_assignments, 0, "{}", sched.name());
        }
    }

    #[test]
    fn fifo_serves_in_submission_order() {
        // Two workflows contending for 4 map slots: FIFO finishes the first
        // arrival entirely before the second gets slots.
        let workflows = vec![fat("first", 0, 3_000), fat("second", 1, 3_000)];
        let report = run(&mut FifoScheduler::new(), &workflows);
        let f1 = report.outcome_by_name("first").unwrap().finished.unwrap();
        let f2 = report.outcome_by_name("second").unwrap().finished.unwrap();
        assert!(f1 < f2, "FIFO must finish the earlier submission first");
    }

    #[test]
    fn edf_favors_earliest_deadline() {
        // The later-submitted workflow has the earlier deadline: EDF should
        // finish it first, FIFO should not.
        let workflows = vec![
            fat("late-deadline", 0, 3_000),
            fat("early-deadline", 1, 135),
        ];
        let edf = run(&mut EdfScheduler::new(), &workflows);
        let fifo = run(&mut FifoScheduler::new(), &workflows);
        let edf_early = edf
            .outcome_by_name("early-deadline")
            .unwrap()
            .finished
            .unwrap();
        let edf_late = edf
            .outcome_by_name("late-deadline")
            .unwrap()
            .finished
            .unwrap();
        assert!(edf_early < edf_late, "EDF must favor the earlier deadline");
        assert!(edf
            .outcome_by_name("early-deadline")
            .unwrap()
            .met_deadline());
        assert!(!fifo
            .outcome_by_name("early-deadline")
            .unwrap()
            .met_deadline());
    }

    #[test]
    fn fair_splits_resources() {
        // Under Fair, two equal workflows submitted together finish at
        // nearly the same time (and later than either would alone).
        let workflows = vec![fat("a", 0, 3_000), fat("b", 0, 3_000)];
        let fair = run(&mut FairScheduler::new(), &workflows);
        let fa = fair.outcome_by_name("a").unwrap().finished.unwrap();
        let fb = fair.outcome_by_name("b").unwrap().finished.unwrap();
        let gap = if fa > fb { fa - fb } else { fb - fa };
        assert!(gap <= SimDuration::from_secs(35), "fair gap {gap}");

        let alone = run(&mut FairScheduler::new(), &[fat("a", 0, 3_000)]);
        let solo = alone.outcome_by_name("a").unwrap().finished.unwrap();
        assert!(fa > solo, "sharing must slow both workflows down");
    }

    #[test]
    fn activation_queue_survives_snapshot_restore() {
        let mut pool = woha_sim::WorkflowPool::new();
        let a = pool.register(fat("a", 0, 900));
        let b = pool.register(fat("b", 0, 900));
        let mut sched = FifoScheduler::new();
        sched.on_job_activated(&pool, b, JobId::new(0), SimTime::ZERO);
        sched.on_job_activated(&pool, a, JobId::new(0), SimTime::from_secs(1));
        let snap = sched.snapshot_state();
        let mut restored = FifoScheduler::new();
        restored.restore_state(&pool, &snap);
        // Order (b before a) is part of FIFO's state and must survive.
        assert_eq!(restored.queue, sched.queue);
        assert_eq!(restored.queue[0].0, b);

        let mut edf = EdfScheduler::new();
        edf.on_job_activated(&pool, a, JobId::new(0), SimTime::ZERO);
        let mut edf_restored = EdfScheduler::new();
        edf_restored.restore_state(&pool, &edf.snapshot_state());
        assert_eq!(edf_restored.activation, edf.activation);

        // A stateless default restores to empty.
        let mut fair = FairScheduler::new();
        fair.restore_state(&pool, &serde::Value::Null);
        assert!(fair.activation.is_empty());
    }

    #[test]
    fn fifo_with_chained_jobs_releases_queue_entries() {
        let mut b = WorkflowBuilder::new("chain");
        let a = b.add_job(JobSpec::new(
            "a",
            2,
            1,
            SimDuration::from_secs(10),
            SimDuration::from_secs(10),
        ));
        let z = b.add_job(JobSpec::new(
            "z",
            2,
            1,
            SimDuration::from_secs(10),
            SimDuration::from_secs(10),
        ));
        b.add_dependency(a, z);
        b.relative_deadline(SimDuration::from_mins(10));
        let w = b.build().unwrap();
        let mut sched = FifoScheduler::new();
        let report = run(&mut sched, &[w]);
        assert!(report.completed);
        assert!(
            sched.queue.is_empty(),
            "completed jobs must leave the queue"
        );
    }
}
