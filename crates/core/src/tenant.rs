//! Multi-tenant admission: per-tenant capacity caps, overuse checks, and
//! pluggable overload policy on top of the demand-bound necessity test.
//!
//! A live WOHA front door serves many submitters. This module layers a
//! [`MultiTenantGate`] over [`AdmissionController`]: every arrival is
//! first charged to its **tenant** (the workflow-name prefix before `/`,
//! so `ads/etl-7` belongs to tenant `ads`; prefix-less names belong to
//! `default`), checked against that tenant's in-flight cap and slot-ms
//! budget, and only then put through the cluster-wide demand-bound test.
//! When the demand-bound test reports *aggregate* overload — the cluster
//! is busy, not the workflow infeasible — an [`OverloadPolicy`] decides
//! who gets in: strict necessity, value-density ordering, or weighted
//! tenant fairness with graceful shedding.
//!
//! Rejection labels embed the tenant (`tenant_cap_exceeded:ads`), so the
//! per-reason counters in [`AdmissionReport`](woha_sim::AdmissionReport)
//! double as per-tenant counters with no report-schema change.
//!
//! The tenant configuration types deliberately avoid serde derives: the
//! service layer parses them from a small TOML subset, and the vendored
//! serde shim's derive does not support `#[serde(...)]` field attributes,
//! so keeping these plain keeps the vendor surface unchanged.

use crate::admission::{AdmissionController, RejectReason};
use std::collections::BTreeMap;
use woha_model::{SimTime, WorkflowSpec};
use woha_sim::{AdmissionGate, ClusterConfig};

/// The tenant a workflow belongs to: the name prefix before the first
/// `/`, or `"default"` for prefix-less names.
///
/// ```
/// use woha_core::tenant::tenant_of;
/// assert_eq!(tenant_of("ads/etl-7"), "ads");
/// assert_eq!(tenant_of("standalone"), "default");
/// ```
pub fn tenant_of(workflow_name: &str) -> &str {
    match workflow_name.split_once('/') {
        Some((tenant, _)) if !tenant.is_empty() => tenant,
        _ => "default",
    }
}

/// Per-tenant admission limits and fairness weight.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant name (matched against workflow-name prefixes).
    pub name: String,
    /// Maximum workflows in flight (admitted, not yet released).
    pub max_in_flight: usize,
    /// Optional cap on total in-flight work, in slot-milliseconds; `None`
    /// means unmetered. Exceeding it is "overuse" — the tenant holds more
    /// of the cluster than it paid for, regardless of global load.
    pub max_slot_ms: Option<u128>,
    /// Fairness weight under [`OverloadPolicy::WeightedFair`]; tenants
    /// with twice the weight keep twice the in-flight work when the
    /// cluster overloads. Must be positive to participate.
    pub weight: f64,
}

impl TenantSpec {
    /// A tenant with the given in-flight cap, no slot-ms budget, and
    /// weight 1.
    pub fn new(name: impl Into<String>, max_in_flight: usize) -> Self {
        TenantSpec {
            name: name.into(),
            max_in_flight,
            max_slot_ms: None,
            weight: 1.0,
        }
    }

    /// Sets the in-flight slot-ms budget (builder-style).
    pub fn with_slot_budget(mut self, max_slot_ms: u128) -> Self {
        self.max_slot_ms = Some(max_slot_ms);
        self
    }

    /// Sets the fairness weight (builder-style, clamped positive).
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = if weight > 0.0 { weight } else { 1.0 };
        self
    }
}

/// What to do when the cluster-wide demand-bound test reports *aggregate*
/// overload (structural rejections — critical path or own-work violations
/// — stand under every policy; no policy admits the impossible).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Reject: the necessity test is the last word (the PR-4 behaviour).
    #[default]
    Necessity,
    /// Value-density ordering: admit overload work anyway iff its density
    /// — slot-ms of work per millisecond of deadline budget, i.e. how
    /// much cluster value the workflow packs into its window — is at
    /// least the mean density of the work already in flight. Dense,
    /// urgent workflows ride through; sparse ones shed with
    /// `low_value_density`.
    ValueDensity,
    /// Weighted tenant fairness: admit overload work only while the
    /// submitting tenant's share of in-flight work is below its weighted
    /// fair share among active tenants; over-share tenants shed
    /// gracefully with `tenant_share_exceeded:<tenant>`.
    WeightedFair,
}

/// One admitted workflow's charge against its tenant.
#[derive(Debug, Clone)]
struct InFlight {
    tenant: String,
    work_ms: u128,
    density: f64,
}

/// A multi-tenant admission gate: per-tenant caps and budgets in front of
/// (and an overload policy behind) the demand-bound
/// [`AdmissionController`]. Plug it into the driver or the service loop as
/// the [`AdmissionGate`].
///
/// All decisions are pure functions of the configured tenants, the policy,
/// and the admit/release history — two identical arrival sequences shed
/// identically, which the tenant proptest pins.
#[derive(Debug, Clone)]
pub struct MultiTenantGate {
    inner: AdmissionController,
    tenants: BTreeMap<String, TenantSpec>,
    /// Fallback spec for tenants with no explicit entry; `None` rejects
    /// unknown tenants outright.
    fallback: Option<TenantSpec>,
    policy: OverloadPolicy,
    /// Admitted-but-unreleased workflows, by workflow name.
    in_flight: BTreeMap<String, InFlight>,
}

impl MultiTenantGate {
    /// A gate over `cluster` with no tenants configured and the
    /// [`Necessity`](OverloadPolicy::Necessity) policy. Until tenants are
    /// added (or [`allow_unknown`](Self::allow_unknown) is set), every
    /// arrival is rejected as `unknown_tenant:<tenant>`.
    pub fn new(cluster: &ClusterConfig) -> Self {
        MultiTenantGate {
            inner: AdmissionController::new(cluster),
            tenants: BTreeMap::new(),
            fallback: None,
            policy: OverloadPolicy::default(),
            in_flight: BTreeMap::new(),
        }
    }

    /// Sets the overload policy (builder-style).
    pub fn with_policy(mut self, policy: OverloadPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the inner demand-bound controller (builder-style), e.g.
    /// to adjust its capacity margin.
    pub fn with_controller(mut self, inner: AdmissionController) -> Self {
        self.inner = inner;
        self
    }

    /// Registers (or replaces) a tenant.
    pub fn add_tenant(&mut self, spec: TenantSpec) {
        self.tenants.insert(spec.name.clone(), spec);
    }

    /// Builder-style [`add_tenant`](Self::add_tenant).
    pub fn with_tenant(mut self, spec: TenantSpec) -> Self {
        self.add_tenant(spec);
        self
    }

    /// Admits tenants with no explicit entry under `fallback`'s limits
    /// (its name is ignored) instead of rejecting them.
    pub fn allow_unknown(mut self, fallback: TenantSpec) -> Self {
        self.fallback = Some(fallback);
        self
    }

    /// Registered tenants, in name order.
    pub fn tenants(&self) -> impl Iterator<Item = &TenantSpec> {
        self.tenants.values()
    }

    /// In-flight workflow count for `tenant`.
    pub fn tenant_in_flight(&self, tenant: &str) -> usize {
        self.in_flight
            .values()
            .filter(|f| f.tenant == tenant)
            .count()
    }

    /// In-flight slot-ms charged to `tenant`.
    pub fn tenant_work_ms(&self, tenant: &str) -> u128 {
        self.in_flight
            .values()
            .filter(|f| f.tenant == tenant)
            .map(|f| f.work_ms)
            .sum()
    }

    fn spec_for(&self, tenant: &str) -> Option<&TenantSpec> {
        self.tenants.get(tenant).or(self.fallback.as_ref())
    }

    /// Mean value density of all in-flight work (0 when idle).
    fn mean_density(&self) -> f64 {
        if self.in_flight.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.in_flight.values().map(|f| f.density).sum();
        sum / self.in_flight.len() as f64
    }

    /// The tenant's weighted fair share of in-flight work among active
    /// tenants (those with work in flight, plus the asking tenant).
    fn fair_share(&self, tenant: &str, weight: f64) -> f64 {
        let mut total_weight = weight;
        for spec in self.tenants.values() {
            if spec.name != tenant && self.tenant_in_flight(&spec.name) > 0 {
                total_weight += spec.weight;
            }
        }
        if total_weight > 0.0 {
            weight / total_weight
        } else {
            1.0
        }
    }

    /// The full admission pipeline; see the [module docs](self).
    ///
    /// # Errors
    ///
    /// Returns the stable rejection label, with the tenant embedded for
    /// tenant-scoped causes.
    pub fn try_admit(&mut self, spec: &WorkflowSpec, now: SimTime) -> Result<(), String> {
        self.inner.expire(now);
        let tenant = tenant_of(spec.name()).to_string();
        let Some(cfg) = self.spec_for(&tenant).cloned() else {
            return Err(format!("unknown_tenant:{tenant}"));
        };

        // Hard per-tenant limits come first: they hold regardless of how
        // idle the cluster is.
        if self.tenant_in_flight(&tenant) >= cfg.max_in_flight {
            return Err(format!("tenant_cap_exceeded:{tenant}"));
        }
        let work_ms = u128::from(spec.total_work().as_millis());
        if let Some(budget) = cfg.max_slot_ms {
            if self.tenant_work_ms(&tenant) + work_ms > budget {
                return Err(format!("tenant_overuse:{tenant}"));
            }
        }

        let budget_ms = spec.deadline().saturating_since(now).as_millis();
        let density = if spec.deadline() == SimTime::MAX || budget_ms == 0 {
            0.0
        } else {
            work_ms as f64 / budget_ms as f64
        };

        match self.inner.try_admit(spec, now) {
            Ok(()) => {}
            // Structural infeasibility: no policy admits a workflow that
            // cannot finish on any schedule.
            Err(
                reason @ (RejectReason::CriticalPathExceedsDeadline { .. }
                | RejectReason::OwnWorkExceedsCapacity { .. }),
            ) => return Err(reason.label().to_string()),
            // The cluster is busy: the overload policy arbitrates. An
            // admitted-anyway workflow takes the best-effort lane — it is
            // charged to its tenant but holds no demand-bound
            // reservation, so it cannot crowd out future necessity-clean
            // admissions.
            Err(reason @ RejectReason::AggregateOverload { .. }) => match self.policy {
                OverloadPolicy::Necessity => return Err(reason.label().to_string()),
                OverloadPolicy::ValueDensity => {
                    if density < self.mean_density() {
                        return Err("low_value_density".to_string());
                    }
                }
                OverloadPolicy::WeightedFair => {
                    let total: u128 = self.in_flight.values().map(|f| f.work_ms).sum();
                    let share = if total > 0 {
                        self.tenant_work_ms(&tenant) as f64 / total as f64
                    } else {
                        0.0
                    };
                    if share >= self.fair_share(&tenant, cfg.weight) {
                        return Err(format!("tenant_share_exceeded:{tenant}"));
                    }
                }
            },
        }

        self.in_flight.insert(
            spec.name().to_string(),
            InFlight {
                tenant,
                work_ms,
                density,
            },
        );
        Ok(())
    }

    /// Releases a completed (or withdrawn) workflow: frees its tenant
    /// charge and any demand-bound reservation.
    pub fn complete(&mut self, name: &str) {
        self.in_flight.remove(name);
        self.inner.complete(name);
    }
}

impl AdmissionGate for MultiTenantGate {
    fn admit(&mut self, spec: &WorkflowSpec, now: SimTime) -> Result<(), String> {
        self.try_admit(spec, now)
    }

    fn release(&mut self, name: &str) {
        self.complete(name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use woha_model::{JobSpec, SimDuration, WorkflowBuilder};

    fn workflow(name: &str, maps: u32, map_secs: u64, deadline_mins: u64) -> WorkflowSpec {
        let mut b = WorkflowBuilder::new(name);
        b.add_job(JobSpec::new(
            "j",
            maps,
            0,
            SimDuration::from_secs(map_secs),
            SimDuration::ZERO,
        ));
        b.relative_deadline(SimDuration::from_mins(deadline_mins));
        b.build().unwrap()
    }

    fn cluster() -> ClusterConfig {
        ClusterConfig::uniform(2, 2, 1)
    }

    fn gate() -> MultiTenantGate {
        MultiTenantGate::new(&cluster())
            .with_controller(AdmissionController::new(&cluster()).with_margin(1.0))
            .with_tenant(TenantSpec::new("ads", 2))
            .with_tenant(TenantSpec::new("etl", 2))
    }

    #[test]
    fn tenant_of_parses_prefixes() {
        assert_eq!(tenant_of("ads/pipeline-1"), "ads");
        assert_eq!(tenant_of("ads/a/b"), "ads");
        assert_eq!(tenant_of("no-prefix"), "default");
        assert_eq!(tenant_of("/odd"), "default");
    }

    #[test]
    fn unknown_tenants_are_rejected_unless_allowed() {
        let mut g = gate();
        assert_eq!(
            g.try_admit(&workflow("ops/x", 2, 30, 10), SimTime::ZERO),
            Err("unknown_tenant:ops".to_string())
        );
        let mut open = gate().allow_unknown(TenantSpec::new("*", 1));
        assert!(open
            .try_admit(&workflow("ops/x", 2, 30, 10), SimTime::ZERO)
            .is_ok());
        assert_eq!(
            open.try_admit(&workflow("ops/y", 2, 30, 10), SimTime::ZERO),
            Err("tenant_cap_exceeded:ops".to_string())
        );
    }

    #[test]
    fn per_tenant_cap_is_enforced_and_released() {
        let mut g = gate();
        assert!(g
            .try_admit(&workflow("ads/a", 2, 30, 10), SimTime::ZERO)
            .is_ok());
        assert!(g
            .try_admit(&workflow("ads/b", 2, 30, 10), SimTime::ZERO)
            .is_ok());
        assert_eq!(
            g.try_admit(&workflow("ads/c", 2, 30, 10), SimTime::ZERO),
            Err("tenant_cap_exceeded:ads".to_string())
        );
        // Another tenant is unaffected by ads' cap.
        assert!(g
            .try_admit(&workflow("etl/a", 2, 30, 10), SimTime::ZERO)
            .is_ok());
        g.complete("ads/a");
        assert!(g
            .try_admit(&workflow("ads/c", 2, 30, 10), SimTime::ZERO)
            .is_ok());
    }

    #[test]
    fn slot_budget_rejects_overuse() {
        let mut g = MultiTenantGate::new(&cluster())
            .with_controller(AdmissionController::new(&cluster()).with_margin(1.0))
            // 2 maps x 30s = 60_000 slot-ms per workflow; budget fits one.
            .with_tenant(TenantSpec::new("ads", 10).with_slot_budget(100_000));
        assert!(g
            .try_admit(&workflow("ads/a", 2, 30, 10), SimTime::ZERO)
            .is_ok());
        assert_eq!(
            g.try_admit(&workflow("ads/b", 2, 30, 10), SimTime::ZERO),
            Err("tenant_overuse:ads".to_string())
        );
        g.complete("ads/a");
        assert!(g
            .try_admit(&workflow("ads/b", 2, 30, 10), SimTime::ZERO)
            .is_ok());
    }

    #[test]
    fn structural_rejections_stand_under_every_policy() {
        for policy in [
            OverloadPolicy::Necessity,
            OverloadPolicy::ValueDensity,
            OverloadPolicy::WeightedFair,
        ] {
            let mut g = gate().with_policy(policy);
            // A 10-minute map with a 5-minute deadline is impossible.
            assert_eq!(
                g.try_admit(&workflow("ads/cp", 1, 600, 5), SimTime::ZERO),
                Err("critical_path_exceeds_deadline".to_string()),
                "{policy:?}"
            );
        }
    }

    /// Saturate the 4-map-slot cluster's 10-minute horizon: two 20x60s
    /// workflows hold 2400 of 2400 slot-s, so the next arrival trips the
    /// aggregate test and hands the decision to the overload policy.
    fn saturated(policy: OverloadPolicy) -> MultiTenantGate {
        let mut g = MultiTenantGate::new(&cluster())
            .with_controller(AdmissionController::new(&cluster()).with_margin(1.0))
            .with_policy(policy)
            .with_tenant(TenantSpec::new("ads", 10).with_weight(1.0))
            .with_tenant(TenantSpec::new("etl", 10).with_weight(1.0));
        assert!(g
            .try_admit(&workflow("ads/a", 20, 60, 10), SimTime::ZERO)
            .is_ok());
        assert!(g
            .try_admit(&workflow("ads/b", 20, 60, 10), SimTime::ZERO)
            .is_ok());
        g
    }

    #[test]
    fn necessity_policy_rejects_on_overload() {
        let mut g = saturated(OverloadPolicy::Necessity);
        assert_eq!(
            g.try_admit(&workflow("etl/c", 20, 60, 10), SimTime::ZERO),
            Err("aggregate_overload".to_string())
        );
    }

    #[test]
    fn value_density_admits_dense_work_and_sheds_sparse() {
        let mut g = saturated(OverloadPolicy::ValueDensity);
        // In-flight density: 1200 slot-s of work per 600s budget = 2.0.
        // A sparse straggler (60 slot-s over 10 min = 0.1) sheds...
        assert_eq!(
            g.try_admit(&workflow("etl/sparse", 1, 60, 10), SimTime::ZERO),
            Err("low_value_density".to_string())
        );
        // ...but an urgent dense workflow (1200 slot-s over 5 min = 4.0)
        // rides through the overload on the best-effort lane.
        assert!(g
            .try_admit(&workflow("etl/dense", 40, 30, 5), SimTime::ZERO)
            .is_ok());
    }

    #[test]
    fn weighted_fair_sheds_over_share_tenant_only() {
        let mut g = saturated(OverloadPolicy::WeightedFair);
        // ads holds 100% of in-flight work with a 50% fair share: shed.
        assert_eq!(
            g.try_admit(&workflow("ads/c", 20, 60, 10), SimTime::ZERO),
            Err("tenant_share_exceeded:ads".to_string())
        );
        // etl holds 0% with a 50% fair share: admitted despite overload.
        assert!(g
            .try_admit(&workflow("etl/c", 20, 60, 10), SimTime::ZERO)
            .is_ok());
    }

    #[test]
    fn deadline_less_work_counts_against_caps_but_has_no_density() {
        let mut g = gate();
        let mut b = WorkflowBuilder::new("ads/bg");
        b.add_job(JobSpec::new(
            "j",
            2,
            0,
            SimDuration::from_secs(30),
            SimDuration::ZERO,
        ));
        let bg = b.build().unwrap();
        assert!(g.try_admit(&bg, SimTime::ZERO).is_ok());
        assert_eq!(g.tenant_in_flight("ads"), 1);
        assert_eq!(g.tenant_work_ms("ads"), 60_000);
    }
}
