//! Admission control: should the cluster accept a new deadline-bound
//! workflow at all?
//!
//! WOHA schedules accepted workflows in a best-effort manner; the paper
//! leaves open what to do when the cluster is simply oversubscribed. This
//! module provides the natural companion: a **necessary-condition
//! admission test** in the style of real-time demand-bound analysis.
//! A workflow set can only be schedulable if, for every deadline `D_k`,
//! the total work of workflows due by `D_k` fits into the cluster's
//! capacity over `[now, D_k]`, and each workflow's own deadline leaves
//! room for its critical path and for its work at full parallelism.
//!
//! The test is *necessary, not sufficient* (deciding feasibility exactly
//! is the NP-hard problem the paper cites), so a rejected workflow is
//! certainly infeasible, while an admitted one may still miss under
//! unlucky interleaving — pair it with WOHA's best-effort scheduling.

use woha_model::{SimDuration, SimTime, SlotKind, WorkflowSpec};
use woha_sim::{AdmissionGate, ClusterConfig};

/// Why a workflow was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RejectReason {
    /// Its own critical path exceeds the time to its deadline: no cluster
    /// of any size could meet it.
    CriticalPathExceedsDeadline {
        /// The workflow's critical path.
        critical_path: SimDuration,
        /// Time from submission to deadline.
        budget: SimDuration,
    },
    /// Its own total work exceeds cluster capacity over its window.
    OwnWorkExceedsCapacity {
        /// Slot-milliseconds demanded.
        demand_ms: u128,
        /// Slot-milliseconds available by the deadline.
        supply_ms: u128,
    },
    /// Aggregate work of all admitted workflows due by some deadline
    /// exceeds capacity over that horizon.
    AggregateOverload {
        /// The deadline at which demand exceeds supply.
        at_deadline: SimTime,
        /// Slot-milliseconds demanded by then.
        demand_ms: u128,
        /// Slot-milliseconds available by then.
        supply_ms: u128,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::CriticalPathExceedsDeadline {
                critical_path,
                budget,
            } => write!(
                f,
                "critical path {critical_path} exceeds deadline budget {budget}"
            ),
            RejectReason::OwnWorkExceedsCapacity {
                demand_ms,
                supply_ms,
            } => write!(
                f,
                "workflow demands {demand_ms} slot-ms but only {supply_ms} fit by its deadline"
            ),
            RejectReason::AggregateOverload {
                at_deadline,
                demand_ms,
                supply_ms,
            } => write!(
                f,
                "aggregate demand {demand_ms} slot-ms exceeds supply {supply_ms} by deadline {at_deadline}"
            ),
        }
    }
}

/// Bookkeeping for one admitted workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Admitted {
    name: String,
    deadline: SimTime,
    /// Work per slot kind `[map, reduce]`, slot-milliseconds.
    work_ms: [u128; 2],
}

fn work_by_kind(w: &WorkflowSpec) -> [u128; 2] {
    let mut work = [0u128; 2];
    for job in w.jobs() {
        work[0] += u128::from(job.map_duration().as_millis()) * u128::from(job.map_tasks());
        work[1] += u128::from(job.reduce_duration().as_millis()) * u128::from(job.reduce_tasks());
    }
    work
}

/// A demand-bound admission controller for one cluster.
///
/// # Examples
///
/// ```
/// use woha_core::admission::AdmissionController;
/// use woha_model::{JobSpec, SimDuration, SimTime, WorkflowBuilder};
/// use woha_sim::ClusterConfig;
///
/// let mut ctl = AdmissionController::new(&ClusterConfig::uniform(2, 2, 1));
/// let mut b = WorkflowBuilder::new("w");
/// b.add_job(JobSpec::new("j", 4, 2,
///     SimDuration::from_secs(30), SimDuration::from_secs(60)));
/// b.relative_deadline(SimDuration::from_mins(10));
/// let w = b.build().unwrap();
/// assert!(ctl.try_admit(&w, SimTime::ZERO).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct AdmissionController {
    /// Capacity per slot kind `[map, reduce]`.
    capacity_slots: [u128; 2],
    admitted: Vec<Admitted>,
    /// A utilization margin in `[0, 1]`: only this fraction of raw
    /// capacity is considered available (slack for fragmentation, phase
    /// dependencies, and heartbeat quantization). Default 0.9.
    margin: f64,
}

impl AdmissionController {
    /// Creates a controller for `cluster` with the default 0.9 capacity
    /// margin.
    pub fn new(cluster: &ClusterConfig) -> Self {
        AdmissionController {
            capacity_slots: [
                u128::from(cluster.total_slots(SlotKind::Map)),
                u128::from(cluster.total_slots(SlotKind::Reduce)),
            ],
            admitted: Vec::new(),
            margin: 0.9,
        }
    }

    /// Overrides the capacity margin (builder-style).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < margin <= 1`.
    pub fn with_margin(mut self, margin: f64) -> Self {
        assert!(margin > 0.0 && margin <= 1.0, "margin must be in (0, 1]");
        self.margin = margin;
        self
    }

    /// Number of currently admitted (uncompleted) workflows.
    pub fn admitted_count(&self) -> usize {
        self.admitted.len()
    }

    fn supply_ms(&self, kind: usize, from: SimTime, until: SimTime) -> u128 {
        let horizon = u128::from(until.saturating_since(from).as_millis());
        (self.capacity_slots[kind] as f64 * self.margin) as u128 * horizon
    }

    /// Tests whether `workflow` (submitted at `now`) can be admitted; on
    /// success it is recorded against future admissions.
    ///
    /// Workflows without deadlines are always admitted and never consume
    /// reserved capacity (they are background work).
    ///
    /// # Errors
    ///
    /// Returns the first [`RejectReason`] that proves infeasibility.
    pub fn try_admit(&mut self, workflow: &WorkflowSpec, now: SimTime) -> Result<(), RejectReason> {
        if workflow.deadline() == SimTime::MAX {
            return Ok(());
        }
        let budget = workflow.deadline().saturating_since(now);
        let critical_path = workflow.critical_path();
        if critical_path > budget {
            return Err(RejectReason::CriticalPathExceedsDeadline {
                critical_path,
                budget,
            });
        }
        let work_ms = work_by_kind(workflow);
        for (kind, &demand_ms) in work_ms.iter().enumerate() {
            let own_supply = self.supply_ms(kind, now, workflow.deadline());
            if demand_ms > own_supply {
                return Err(RejectReason::OwnWorkExceedsCapacity {
                    demand_ms,
                    supply_ms: own_supply,
                });
            }
        }
        // Demand-bound test per slot kind: for every admitted deadline
        // D_k, total work of that kind due by D_k must fit its capacity.
        let mut horizon: Vec<(SimTime, [u128; 2])> = self
            .admitted
            .iter()
            .map(|a| (a.deadline, a.work_ms))
            .collect();
        horizon.push((workflow.deadline(), work_ms));
        horizon.sort_by_key(|&(d, _)| d);
        let mut cumulative = [0u128; 2];
        for &(deadline, work) in &horizon {
            for kind in 0..2 {
                cumulative[kind] += work[kind];
                let supply = self.supply_ms(kind, now, deadline);
                if cumulative[kind] > supply {
                    return Err(RejectReason::AggregateOverload {
                        at_deadline: deadline,
                        demand_ms: cumulative[kind],
                        supply_ms: supply,
                    });
                }
            }
        }
        self.admitted.push(Admitted {
            name: workflow.name().to_string(),
            deadline: workflow.deadline(),
            work_ms,
        });
        Ok(())
    }

    /// Releases a completed (or withdrawn) workflow's reservation.
    pub fn complete(&mut self, name: &str) {
        if let Some(pos) = self.admitted.iter().position(|a| a.name == name) {
            self.admitted.swap_remove(pos);
        }
    }

    /// Drops reservations whose deadlines have passed (their capacity
    /// window is gone whether they finished or not).
    pub fn expire(&mut self, now: SimTime) {
        self.admitted.retain(|a| a.deadline > now);
    }
}

impl RejectReason {
    /// The stable, snake_case label for this reason — the key used in
    /// [`AdmissionReport`](woha_sim::AdmissionReport) rejection counters.
    /// Unlike [`Display`](std::fmt::Display), labels carry no
    /// run-specific values, so equal causes aggregate under one key.
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::CriticalPathExceedsDeadline { .. } => "critical_path_exceeds_deadline",
            RejectReason::OwnWorkExceedsCapacity { .. } => "own_work_exceeds_capacity",
            RejectReason::AggregateOverload { .. } => "aggregate_overload",
        }
    }
}

/// Plugs the controller into the simulator's front door: the driver calls
/// [`admit`](AdmissionGate::admit) once per workflow pulled from the
/// source and [`release`](AdmissionGate::release) once per admitted
/// workflow that completes. Expired reservations are pruned on each
/// admission probe, since submission times arrive in nondecreasing order.
impl AdmissionGate for AdmissionController {
    fn admit(&mut self, spec: &WorkflowSpec, now: SimTime) -> Result<(), String> {
        self.expire(now);
        self.try_admit(spec, now)
            .map_err(|reason| reason.label().to_string())
    }

    fn release(&mut self, name: &str) {
        self.complete(name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use woha_model::{JobSpec, WorkflowBuilder};

    fn workflow(name: &str, maps: u32, map_secs: u64, deadline_mins: u64) -> WorkflowSpec {
        let mut b = WorkflowBuilder::new(name);
        b.add_job(JobSpec::new(
            "j",
            maps,
            0,
            SimDuration::from_secs(map_secs),
            SimDuration::ZERO,
        ));
        b.relative_deadline(SimDuration::from_mins(deadline_mins));
        b.build().unwrap()
    }

    fn controller() -> AdmissionController {
        // 4 map + 2 reduce slots; the test workflows are map-only, so the
        // binding capacity is 4 map slots. Margin 1.0 for exact math.
        AdmissionController::new(&ClusterConfig::uniform(2, 2, 1)).with_margin(1.0)
    }

    #[test]
    fn admits_feasible_workflow() {
        let mut ctl = controller();
        assert_eq!(
            ctl.try_admit(&workflow("w", 4, 30, 10), SimTime::ZERO),
            Ok(())
        );
        assert_eq!(ctl.admitted_count(), 1);
    }

    #[test]
    fn rejects_critical_path_violation() {
        let mut ctl = controller();
        // One 10-minute map task, 5-minute deadline.
        let w = workflow("w", 1, 600, 5);
        assert!(matches!(
            ctl.try_admit(&w, SimTime::ZERO),
            Err(RejectReason::CriticalPathExceedsDeadline { .. })
        ));
        assert_eq!(ctl.admitted_count(), 0);
    }

    #[test]
    fn rejects_own_work_overflow() {
        let mut ctl = controller();
        // 6 slots x 60s = 360 slot-s supply in 1 minute; demand 100 x 30s
        // maps = 3000 slot-s.
        let w = workflow("w", 100, 30, 1);
        assert!(matches!(
            ctl.try_admit(&w, SimTime::ZERO),
            Err(RejectReason::OwnWorkExceedsCapacity { .. })
        ));
    }

    #[test]
    fn rejects_aggregate_overload() {
        let mut ctl = controller();
        // Each workflow: 20 maps x 60s = 1200 slot-s of map work; map
        // supply by 10 min is 4 x 600 = 2400 slot-s. Two fit exactly; the
        // third overloads.
        assert!(ctl
            .try_admit(&workflow("a", 20, 60, 10), SimTime::ZERO)
            .is_ok());
        assert!(ctl
            .try_admit(&workflow("b", 20, 60, 10), SimTime::ZERO)
            .is_ok());
        let third = ctl.try_admit(&workflow("c", 20, 60, 10), SimTime::ZERO);
        assert!(
            matches!(third, Err(RejectReason::AggregateOverload { .. })),
            "{third:?}"
        );
        // A later deadline gives the third workflow room.
        assert!(ctl
            .try_admit(&workflow("c", 20, 60, 20), SimTime::ZERO)
            .is_ok());
    }

    #[test]
    fn earlier_deadline_is_checked_against_shorter_horizon() {
        let mut ctl = controller();
        // A big workflow due late fits (2100 of 2400 slot-s)...
        assert!(ctl
            .try_admit(&workflow("big", 35, 60, 10), SimTime::ZERO)
            .is_ok());
        // ...and a small workflow due very early only adds demand at its
        // own deadline (300 of 480 slot-s by minute 2), so it is admitted.
        assert!(ctl
            .try_admit(&workflow("small", 5, 60, 2), SimTime::ZERO)
            .is_ok());
        // But a second big one due at minute 10 now fails the aggregate
        // (2100 + 300 + 2100 > 2400).
        assert!(matches!(
            ctl.try_admit(&workflow("big2", 35, 60, 10), SimTime::ZERO),
            Err(RejectReason::AggregateOverload { .. })
        ));
    }

    #[test]
    fn completion_releases_capacity() {
        let mut ctl = controller();
        assert!(ctl
            .try_admit(&workflow("a", 20, 60, 10), SimTime::ZERO)
            .is_ok());
        assert!(ctl
            .try_admit(&workflow("b", 20, 60, 10), SimTime::ZERO)
            .is_ok());
        assert!(ctl
            .try_admit(&workflow("c", 20, 60, 10), SimTime::ZERO)
            .is_err());
        ctl.complete("a");
        assert!(ctl
            .try_admit(&workflow("c", 20, 60, 10), SimTime::ZERO)
            .is_ok());
    }

    #[test]
    fn expire_drops_past_deadlines() {
        let mut ctl = controller();
        assert!(ctl
            .try_admit(&workflow("a", 20, 60, 10), SimTime::ZERO)
            .is_ok());
        ctl.expire(SimTime::from_mins(11));
        assert_eq!(ctl.admitted_count(), 0);
    }

    #[test]
    fn deadline_less_workflows_pass_through() {
        let mut ctl = controller();
        let mut b = WorkflowBuilder::new("bg");
        b.add_job(JobSpec::new(
            "j",
            1_000,
            0,
            SimDuration::from_secs(600),
            SimDuration::ZERO,
        ));
        let w = b.build().unwrap();
        assert_eq!(ctl.try_admit(&w, SimTime::ZERO), Ok(()));
        assert_eq!(ctl.admitted_count(), 0, "background work reserves nothing");
    }

    #[test]
    fn margin_shrinks_supply() {
        let mut strict =
            AdmissionController::new(&ClusterConfig::uniform(2, 2, 1)).with_margin(0.5);
        // 4 map slots, margin 0.5 -> 2 effective; 20x60s = 1200 slot-s
        // demand vs 2 x 600 = 1200 supply: admitted exactly at the
        // boundary, and one more map task tips it over.
        assert!(strict
            .try_admit(&workflow("a", 20, 60, 10), SimTime::ZERO)
            .is_ok());
        assert!(strict
            .try_admit(&workflow("b", 1, 60, 10), SimTime::ZERO)
            .is_err());
    }

    #[test]
    #[should_panic(expected = "margin must be in (0, 1]")]
    fn rejects_bad_margin() {
        let _ = controller().with_margin(0.0);
    }

    #[test]
    fn reject_reasons_display() {
        let reasons = [
            RejectReason::CriticalPathExceedsDeadline {
                critical_path: SimDuration::from_secs(100),
                budget: SimDuration::from_secs(50),
            },
            RejectReason::OwnWorkExceedsCapacity {
                demand_ms: 10,
                supply_ms: 5,
            },
            RejectReason::AggregateOverload {
                at_deadline: SimTime::from_secs(60),
                demand_ms: 10,
                supply_ms: 5,
            },
        ];
        for r in reasons {
            assert!(!r.to_string().is_empty());
        }
    }

    #[test]
    fn labels_are_stable_and_value_free() {
        let reasons = [
            (
                RejectReason::CriticalPathExceedsDeadline {
                    critical_path: SimDuration::from_secs(100),
                    budget: SimDuration::from_secs(50),
                },
                "critical_path_exceeds_deadline",
            ),
            (
                RejectReason::OwnWorkExceedsCapacity {
                    demand_ms: 10,
                    supply_ms: 5,
                },
                "own_work_exceeds_capacity",
            ),
            (
                RejectReason::AggregateOverload {
                    at_deadline: SimTime::from_secs(60),
                    demand_ms: 10,
                    supply_ms: 5,
                },
                "aggregate_overload",
            ),
        ];
        for (r, label) in reasons {
            assert_eq!(r.label(), label);
        }
    }

    #[test]
    fn gate_maps_rejections_to_labels() {
        let mut gate: Box<dyn AdmissionGate> = Box::new(controller());
        assert_eq!(
            gate.admit(&workflow("ok", 4, 30, 10), SimTime::ZERO),
            Ok(())
        );
        // One 10-minute map, 5-minute deadline: structurally infeasible.
        assert_eq!(
            gate.admit(&workflow("cp", 1, 600, 5), SimTime::ZERO),
            Err("critical_path_exceeds_deadline".to_string())
        );
        // 3000 slot-s of demand in a 360 slot-s window.
        assert_eq!(
            gate.admit(&workflow("own", 100, 30, 1), SimTime::ZERO),
            Err("own_work_exceeds_capacity".to_string())
        );
        // Fill the 2400 slot-s map horizon to the brim ("ok" holds 120,
        // "a" 1200, "b" 1080), then one more 1200 slot-s workflow tips
        // the aggregate test.
        assert!(gate
            .admit(&workflow("a", 20, 60, 10), SimTime::ZERO)
            .is_ok());
        assert!(gate
            .admit(&workflow("b", 18, 60, 10), SimTime::ZERO)
            .is_ok());
        assert_eq!(
            gate.admit(&workflow("c", 20, 60, 10), SimTime::ZERO),
            Err("aggregate_overload".to_string())
        );
    }

    #[test]
    fn gate_release_frees_reservation() {
        let mut ctl = controller();
        assert!(ctl.admit(&workflow("a", 20, 60, 10), SimTime::ZERO).is_ok());
        assert!(ctl.admit(&workflow("b", 20, 60, 10), SimTime::ZERO).is_ok());
        assert!(ctl
            .admit(&workflow("c", 20, 60, 10), SimTime::ZERO)
            .is_err());
        ctl.release("a");
        assert!(ctl.admit(&workflow("c", 20, 60, 10), SimTime::ZERO).is_ok());
    }

    #[test]
    fn gate_expires_stale_reservations_on_admit() {
        let mut ctl = controller();
        assert!(ctl.admit(&workflow("a", 20, 60, 10), SimTime::ZERO).is_ok());
        assert!(ctl.admit(&workflow("b", 20, 60, 10), SimTime::ZERO).is_ok());
        // At minute 11 both reservations' windows are gone; without the
        // expiry sweep their stale deadlines would zero out the aggregate
        // supply and reject "c" outright.
        assert!(ctl
            .admit(&workflow("c", 20, 60, 20), SimTime::from_mins(11))
            .is_ok());
        assert_eq!(ctl.admitted_count(), 1);
    }

    /// The gate drives a real simulation: infeasible workflows are turned
    /// away at the front door (counted per label, no outcome), feasible
    /// ones run to completion, and a gate-free run of the same workload is
    /// unaffected.
    #[test]
    fn gate_filters_workflows_in_simulation() {
        use woha_sim::{
            try_run_simulation_streamed, ClusterConfig, SimConfig, SubmitOrderScheduler,
        };
        use woha_trace::VecSource;

        let cluster = ClusterConfig::uniform(2, 2, 1);
        let workload = vec![
            workflow("feasible", 4, 30, 10),
            workflow("hopeless", 1, 600, 5),
        ];
        let mut gate = AdmissionController::new(&cluster);
        let mut source = VecSource::new(workload.clone());
        let report = try_run_simulation_streamed(
            &mut source,
            &mut SubmitOrderScheduler::new(),
            &cluster,
            &SimConfig::default(),
            Some(&mut gate),
        )
        .unwrap();
        assert!(report.completed);
        assert_eq!(report.outcomes.len(), 1);
        assert_eq!(report.outcomes[0].name, "feasible");
        let admission = report.admission.expect("gated run reports admission");
        assert_eq!(admission.workflows_rejected, 1);
        assert_eq!(admission.rejections.len(), 1);
        assert_eq!(
            admission.rejections[0].reason,
            "critical_path_exceeds_deadline"
        );
        assert_eq!(admission.rejections[0].count, 1);

        // Without a gate the hopeless workflow still runs (and misses).
        let mut source = VecSource::new(workload);
        let ungated = try_run_simulation_streamed(
            &mut source,
            &mut SubmitOrderScheduler::new(),
            &cluster,
            &SimConfig::default(),
            None,
        )
        .unwrap();
        assert_eq!(ungated.outcomes.len(), 2);
        assert!(ungated.admission.is_none());
    }
}
