//! The WOHA progress-based Workflow Scheduler (paper §IV-B, Algorithm 2).
//!
//! On every slot offer the scheduler first walks the head of the ct list,
//! refreshing the priority of each workflow whose progress requirement
//! changed since the last offer, then hands the slot to the workflow with
//! the largest progress lag `F_i(ttd) - ρ_i` that actually has an eligible
//! task of the offered kind. Inside the chosen workflow, the job order from
//! the client's scheduling plan decides which job the task comes from.
//!
//! Four queue strategies are available, extending the paper's Fig 13(a):
//!
//! - [`QueueStrategy::Dsl`] — the Double Skip List (O(1) head operations);
//! - [`QueueStrategy::Bst`] — two balanced search trees (`BTreeMap`);
//! - [`QueueStrategy::Pairing`] — a cache-dense pairing heap with lazy
//!   decrease-key (see [`crate::pheap`]);
//! - [`QueueStrategy::Naive`] — no incremental index: every offer
//!   recomputes every queued workflow's lag and re-sorts, the strawman the
//!   paper shows collapsing beyond ~10⁴ workflows.
//!
//! All indexed strategies produce identical schedules — the backends are
//! different data structures over the same total order (pinned by the
//! differential test harness in `woha-core`'s `index_differential` test).

use crate::index::{BTreeIndex, DslIndex, PriorityIndex};
use crate::pheap::PairingIndex;
use crate::plangen::{
    generate_plan_with_budget, padded_budget, rework_fraction, CapMode, PadConfig,
};
use crate::priority::{JobPriorities, PriorityPolicy};
use crate::progress::WorkflowProgress;
use crate::replan::{replan, ReplanConfig};
use serde::{Deserialize, Serialize, Value};
use std::collections::{HashMap, HashSet};
use woha_model::{JobId, SimDuration, SimTime, SlotKind, WorkflowId};
use woha_sim::{SchedTrace, SchedulerState, WorkflowPool, WorkflowScheduler};

/// Which data structure orders the queued workflows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueueStrategy {
    /// Double Skip List (the paper's contribution).
    Dsl,
    /// Two balanced search trees.
    Bst,
    /// Pairing heap with lazy decrease-key.
    Pairing,
    /// Recompute-and-sort on every offer.
    Naive,
}

impl QueueStrategy {
    /// All strategies, indexed backends first (the paper's Fig 13(a) order
    /// with the pairing heap slotted before the naive strawman).
    pub const ALL: [QueueStrategy; 4] = [
        QueueStrategy::Dsl,
        QueueStrategy::Bst,
        QueueStrategy::Pairing,
        QueueStrategy::Naive,
    ];

    /// The backend label used by the CLI (`--index`), benches, and reports.
    pub fn label(self) -> &'static str {
        match self {
            QueueStrategy::Dsl => "dsl",
            QueueStrategy::Bst => "btree",
            QueueStrategy::Pairing => "pheap",
            QueueStrategy::Naive => "naive",
        }
    }

    /// Parses a CLI/flag spelling of a strategy. Accepts the canonical
    /// labels plus legacy synonyms (`bst`, `pairing`).
    pub fn from_flag(s: &str) -> Option<QueueStrategy> {
        match s {
            "dsl" => Some(QueueStrategy::Dsl),
            "btree" | "bst" => Some(QueueStrategy::Bst),
            "pheap" | "pairing" => Some(QueueStrategy::Pairing),
            "naive" => Some(QueueStrategy::Naive),
            _ => None,
        }
    }

    /// Builds the incremental index for this strategy (`None` for the
    /// naive recompute-everything strawman).
    pub fn build_index(self) -> Option<Box<dyn PriorityIndex + Send>> {
        match self {
            QueueStrategy::Dsl => Some(Box::new(DslIndex::new())),
            QueueStrategy::Bst => Some(Box::new(BTreeIndex::new())),
            QueueStrategy::Pairing => Some(Box::new(PairingIndex::new())),
            QueueStrategy::Naive => None,
        }
    }
}

/// Configuration of the WOHA scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WohaConfig {
    /// Intra-workflow job prioritization policy.
    pub policy: PriorityPolicy,
    /// Resource-cap mode for client-side plan generation.
    pub cap_mode: CapMode,
    /// Cluster capacity in slots, as the client would learn from the
    /// JobTracker when generating plans.
    pub total_slots: u32,
    /// Workflow queue implementation.
    pub queue: QueueStrategy,
    /// Fraction of the relative deadline reserved as safety slack when
    /// generating and anchoring the plan. A slack of `0.05` makes the plan
    /// pace the workflow as if its deadline were 5 % earlier, absorbing
    /// submitter latencies, heartbeat quantization, and estimation error.
    pub plan_slack: f64,
    /// Mid-flight replanning (see [`crate::replan`]); `None` (the default
    /// and the paper's behaviour) keeps the submission-time plan for the
    /// workflow's whole life.
    pub replan: Option<ReplanConfig>,
    /// Proactive failure padding (see [`crate::plangen::PadConfig`]):
    /// shrink each plan's makespan budget by the expected rework fraction
    /// so deadlines keep margin under node churn. `None` (the default and
    /// the paper's zero-failure assumption) plans against the raw budget.
    pub padding: Option<PadConfig>,
}

impl WohaConfig {
    /// The paper's default configuration: resource-capped plans on the
    /// given cluster capacity, DSL queues.
    pub fn new(policy: PriorityPolicy, total_slots: u32) -> Self {
        WohaConfig {
            policy,
            cap_mode: CapMode::MinFeasible,
            total_slots,
            queue: QueueStrategy::Dsl,
            plan_slack: 0.08,
            replan: None,
            padding: None,
        }
    }
}

/// The progress-based workflow scheduler.
///
/// # Examples
///
/// ```
/// use woha_core::{PriorityPolicy, WohaConfig, WohaScheduler};
/// use woha_sim::{run_simulation, ClusterConfig, SimConfig};
/// use woha_model::{JobSpec, SimDuration, SlotKind, WorkflowBuilder};
///
/// let mut b = WorkflowBuilder::new("w");
/// b.add_job(JobSpec::new("j", 4, 2,
///     SimDuration::from_secs(10), SimDuration::from_secs(20)));
/// b.relative_deadline(SimDuration::from_mins(5));
/// let cluster = ClusterConfig::uniform(2, 2, 1);
/// let mut woha = WohaScheduler::new(WohaConfig::new(
///     PriorityPolicy::Lpf,
///     cluster.total_slots(SlotKind::Map) + cluster.total_slots(SlotKind::Reduce),
/// ));
/// let report = run_simulation(&[b.build().unwrap()], &mut woha, &cluster,
///     &SimConfig::default());
/// assert_eq!(report.deadline_misses(), 0);
/// ```
#[derive(Debug)]
pub struct WohaScheduler {
    config: WohaConfig,
    name: String,
    /// Records indexed by dense workflow id; `None` once completed.
    records: Vec<Option<WorkflowProgress>>,
    /// Incremental index (all strategies but Naive).
    index: Option<Box<dyn PriorityIndex + Send>>,
    /// Queue membership for the naive strategy.
    naive_members: Vec<WorkflowId>,
    /// Last replan instant per workflow (dense by id).
    last_replan: Vec<SimTime>,
    /// Total replans performed (observable for tests and reports).
    replans: u64,
    /// Total `ρ` rollbacks after task failures / node losses (observable
    /// for tests and reports).
    rho_rollbacks: u64,
    /// Plans (initial or replacement) generated with a nonzero failure
    /// pad (observable for tests and reports).
    plans_padded: u64,
    /// Structured decision-trace buffer; `None` (the default) disables
    /// tracing entirely, so the untraced hot path only pays an
    /// `Option` check.
    trace: Option<Vec<SchedTrace>>,
}

impl WohaScheduler {
    /// Creates a WOHA scheduler with the given configuration.
    pub fn new(config: WohaConfig) -> Self {
        let index = config.queue.build_index();
        WohaScheduler {
            name: format!("WOHA-{}", config.policy),
            config,
            records: Vec::new(),
            index,
            naive_members: Vec::new(),
            last_replan: Vec::new(),
            replans: 0,
            rho_rollbacks: 0,
            plans_padded: 0,
            trace: None,
        }
    }

    /// Number of mid-flight replans performed so far.
    pub fn replans(&self) -> u64 {
        self.replans
    }

    /// Number of `ρ` rollbacks performed after task failures or node
    /// losses.
    pub fn rho_rollbacks(&self) -> u64 {
        self.rho_rollbacks
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &WohaConfig {
        &self.config
    }

    /// Applies the configured failure padding to a plan budget, counting
    /// the plans that actually received a nonzero pad.
    fn pad_budget(&mut self, spec: &woha_model::WorkflowSpec, budget: SimDuration) -> SimDuration {
        let Some(pad) = &self.config.padding else {
            return budget;
        };
        let fraction = rework_fraction(spec, pad);
        if fraction > 0.0 {
            self.plans_padded += 1;
        }
        padded_budget(budget, fraction)
    }

    /// The progress record of a queued workflow (for inspection/tests).
    pub fn progress(&self, wf: WorkflowId) -> Option<&WorkflowProgress> {
        self.records
            .get(wf.as_u64() as usize)
            .and_then(Option::as_ref)
    }

    fn record_mut(&mut self, wf: WorkflowId) -> &mut WorkflowProgress {
        self.records[wf.as_u64() as usize]
            .as_mut()
            .expect("workflow is queued")
    }

    /// Algorithm 2 lines 4–19: pop ct-list heads whose requirement changed
    /// and refresh their priorities.
    fn refresh_due_workflows(&mut self, now: SimTime) {
        let Some(index) = self.index.as_mut() else {
            return;
        };
        while let Some((t, wf)) = index.min_ct() {
            if t > now {
                break;
            }
            let record = self.records[wf.as_u64() as usize]
                .as_mut()
                .expect("indexed workflow has a record");
            let (old_ct, old_lag) = (record.next_change(), record.lag());
            record.catch_up(now);
            index.update(
                wf,
                old_ct,
                old_lag,
                record.next_change(),
                record.lag(),
                record.deadline(),
            );
        }
    }

    /// Replanning checkpoint shared by job completions and node losses:
    /// replaces the workflow's plan when it has fallen far enough behind
    /// and the previous replan is old enough (see [`ReplanConfig`]).
    fn maybe_replan(&mut self, pool: &WorkflowPool, wf: WorkflowId, now: SimTime) {
        let Some(rc) = self.config.replan else {
            return;
        };
        let slot = wf.as_u64() as usize;
        let Some(record) = self.records.get(slot).and_then(Option::as_ref) else {
            return;
        };
        let threshold = (record.plan().total_tasks() as f64 * rc.lag_fraction) as i64;
        if record.lag() <= threshold.max(1)
            || now.saturating_since(self.last_replan[slot]) < rc.min_interval
        {
            return;
        }
        let deadline = record.deadline();
        let budget = self.pad_budget(pool.workflow(wf).spec(), deadline.saturating_since(now));
        if budget.is_zero() {
            return; // already past the effective deadline; nothing to re-pace
        }
        let Some(new_plan) = replan(
            pool.workflow(wf),
            self.config.policy,
            self.config.total_slots,
            self.config.cap_mode,
            budget,
        ) else {
            return;
        };
        let old = self.records[slot].take().expect("record checked above");
        if let Some(index) = self.index.as_mut() {
            index.remove(wf, old.next_change(), old.lag(), old.deadline());
        }
        let new_record = WorkflowProgress::new(wf, new_plan, deadline, now);
        if let Some(index) = self.index.as_mut() {
            index.insert(wf, new_record.next_change(), new_record.lag(), deadline);
        }
        self.records[slot] = Some(new_record);
        self.last_replan[slot] = now;
        self.replans += 1;
        if let Some(buf) = &mut self.trace {
            buf.push(SchedTrace::Replan { workflow: wf });
        }
    }

    /// Picks the highest-priority workflow with an eligible task of `kind`,
    /// and the highest-priority job within it per the plan's job order.
    fn pick(
        &self,
        pool: &WorkflowPool,
        kind: SlotKind,
        ordered: impl Iterator<Item = WorkflowId>,
    ) -> Option<(WorkflowId, JobId)> {
        for wf in ordered {
            let state = pool.workflow(wf);
            if !state.has_eligible_task(kind) {
                continue;
            }
            let record = self.progress(wf).expect("queued workflow has a record");
            if let Some(&job) = record
                .plan()
                .job_order()
                .iter()
                .find(|&&j| pool.eligible(wf, j, kind))
            {
                return Some((wf, job));
            }
        }
        None
    }
}

/// Serialized form of the WOHA master's private bookkeeping for the
/// master-failover checkpoint. The incremental index is *not* serialized:
/// it is derived state, rebuilt from the records on restore.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct WohaSnapshot {
    records: Vec<Option<WorkflowProgress>>,
    naive_members: Vec<WorkflowId>,
    last_replan: Vec<SimTime>,
    replans: u64,
    rho_rollbacks: u64,
    /// Defaulted so checkpoints taken before failure padding existed still
    /// decode.
    #[serde(default)]
    plans_padded: u64,
}

impl SchedulerState for WohaScheduler {
    fn snapshot_state(&self) -> Value {
        WohaSnapshot {
            records: self.records.clone(),
            naive_members: self.naive_members.clone(),
            last_replan: self.last_replan.clone(),
            replans: self.replans,
            rho_rollbacks: self.rho_rollbacks,
            plans_padded: self.plans_padded,
        }
        .to_value()
    }

    fn restore_state(&mut self, _pool: &WorkflowPool, state: &Value) {
        let Ok(snap) = WohaSnapshot::from_value(state) else {
            return;
        };
        self.records = snap.records;
        self.naive_members = snap.naive_members;
        self.last_replan = snap.last_replan;
        self.replans = snap.replans;
        self.rho_rollbacks = snap.rho_rollbacks;
        self.plans_padded = snap.plans_padded;
        // Rebuild the index by re-inserting every queued record under its
        // current keys, replacing whatever the index held before.
        self.index = self.config.queue.build_index();
        if let Some(index) = self.index.as_mut() {
            for record in self.records.iter().flatten() {
                index.insert(
                    record.id(),
                    record.next_change(),
                    record.lag(),
                    record.deadline(),
                );
            }
        }
    }
}

impl WorkflowScheduler for WohaScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_workflow_submitted(&mut self, pool: &WorkflowPool, wf: WorkflowId, now: SimTime) {
        // Client side: analyze the workflow and generate the plan. The
        // plan is generated and anchored against a slightly earlier
        // "effective deadline" (see [`WohaConfig::plan_slack`]).
        let spec = pool.workflow(wf).spec();
        let priorities = JobPriorities::compute(spec, self.config.policy);
        let effective_deadline = if spec.deadline() == woha_model::SimTime::MAX {
            spec.deadline()
        } else {
            let slack = spec
                .relative_deadline()
                .mul_f64(self.config.plan_slack.clamp(0.0, 0.9));
            spec.deadline().saturating_sub(slack)
        };
        let budget = self.pad_budget(
            spec,
            effective_deadline.saturating_since(spec.submit_time()),
        );
        let plan = generate_plan_with_budget(
            spec,
            &priorities,
            self.config.total_slots,
            self.config.cap_mode,
            budget,
        );
        let record = WorkflowProgress::new(wf, plan, effective_deadline, now);
        if let Some(buf) = &mut self.trace {
            buf.push(SchedTrace::PlanGenerated {
                workflow: wf,
                jobs: record.plan().job_order().len(),
            });
        }

        // Master side: enqueue the record.
        let slot = wf.as_u64() as usize;
        if self.records.len() <= slot {
            self.records.resize_with(slot + 1, || None);
            self.last_replan.resize(slot + 1, SimTime::ZERO);
        }
        self.last_replan[slot] = now;
        if let Some(index) = self.index.as_mut() {
            index.insert(wf, record.next_change(), record.lag(), record.deadline());
        } else {
            self.naive_members.push(wf);
        }
        self.records[slot] = Some(record);
    }

    fn on_job_completed(&mut self, pool: &WorkflowPool, wf: WorkflowId, _job: JobId, now: SimTime) {
        // Mid-flight replanning checkpoint: job completions are frequent
        // enough to react but far rarer than slot offers.
        self.maybe_replan(pool, wf, now);
    }

    fn on_workflow_completed(&mut self, _pool: &WorkflowPool, wf: WorkflowId, _now: SimTime) {
        if let Some(record) = self.records[wf.as_u64() as usize].take() {
            if let Some(index) = self.index.as_mut() {
                index.remove(wf, record.next_change(), record.lag(), record.deadline());
            } else {
                self.naive_members.retain(|&m| m != wf);
            }
        }
    }

    fn on_task_assigned(
        &mut self,
        _pool: &WorkflowPool,
        wf: WorkflowId,
        _job: JobId,
        _kind: SlotKind,
        _now: SimTime,
    ) {
        // Algorithm 2 lines 20–23: delete, update priority, re-insert.
        let record = self.record_mut(wf);
        let (ct, old_lag, deadline) = (record.next_change(), record.lag(), record.deadline());
        record.on_task_assigned();
        let new_lag = record.lag();
        if let Some(index) = self.index.as_mut() {
            index.update(wf, ct, old_lag, ct, new_lag, deadline);
        }
    }

    fn on_task_failed(
        &mut self,
        _pool: &WorkflowPool,
        wf: WorkflowId,
        _job: JobId,
        _kind: SlotKind,
        _now: SimTime,
    ) {
        // The failed task re-enters the pending queue, so the counted
        // assignment never happened: roll back `ρ` (and the priority) the
        // same way an assignment advanced them. Guarded: a late failure
        // notification for an already-completed workflow is a no-op.
        let slot = wf.as_u64() as usize;
        let Some(record) = self.records.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let (ct, old_lag, deadline) = (record.next_change(), record.lag(), record.deadline());
        record.on_task_failed();
        let new_lag = record.lag();
        if let Some(index) = self.index.as_mut() {
            index.update(wf, ct, old_lag, ct, new_lag, deadline);
        }
        self.rho_rollbacks += 1;
        if let Some(buf) = &mut self.trace {
            buf.push(SchedTrace::RhoRollback { workflow: wf });
        }
    }

    fn on_node_lost(&mut self, pool: &WorkflowPool, _node: woha_model::NodeId, now: SimTime) {
        // A node loss can throw many workflows behind their plans at once
        // (rolled-back tasks plus invalidated map outputs), so treat it as
        // a replanning checkpoint for every queued workflow. `maybe_replan`
        // itself filters by lag threshold and the per-workflow cooldown.
        if self.config.replan.is_none() {
            return;
        }
        let queued: Vec<WorkflowId> = self
            .records
            .iter()
            .flatten()
            .map(WorkflowProgress::id)
            .collect();
        for wf in queued {
            self.maybe_replan(pool, wf, now);
        }
    }

    fn assign_task(
        &mut self,
        pool: &WorkflowPool,
        kind: SlotKind,
        now: SimTime,
    ) -> Option<(WorkflowId, JobId)> {
        match self.config.queue {
            QueueStrategy::Naive => {
                // Recompute every queued workflow's lag and sort — the
                // O(n_w log n_w)-per-offer strawman.
                let members = self.naive_members.clone();
                let mut order: Vec<(i64, SimTime, WorkflowId)> = members
                    .into_iter()
                    .map(|wf| {
                        let record = self.record_mut(wf);
                        record.catch_up(now);
                        (record.lag(), record.deadline(), wf)
                    })
                    .collect();
                order.sort_by(|a, b| {
                    b.0.cmp(&a.0)
                        .then_with(|| a.1.cmp(&b.1))
                        .then_with(|| a.2.cmp(&b.2))
                });
                let choice = self.pick(pool, kind, order.iter().map(|&(.., wf)| wf));
                if let (Some(buf), Some((wf, _))) = (&mut self.trace, choice) {
                    let rank = order.iter().position(|&(.., w)| w == wf).unwrap_or(0) as u32;
                    buf.push(SchedTrace::Pick {
                        workflow: wf,
                        rank: rank + 1,
                        blocked: 0,
                    });
                }
                choice
            }
            _ => {
                self.refresh_due_workflows(now);
                let records = &self.records;
                let index = self.index.as_mut().expect("indexed strategy");
                // Lazy descent of the priority list: in the common case
                // the head workflow is eligible and this touches one node.
                let mut choice = None;
                let mut probes = 0u32;
                index.select(&mut |_, wf| {
                    probes += 1;
                    if !pool.workflow(wf).has_eligible_task(kind) {
                        return false;
                    }
                    let record = records[wf.as_u64() as usize]
                        .as_ref()
                        .expect("queued workflow has a record");
                    match record
                        .plan()
                        .job_order()
                        .iter()
                        .find(|&&j| pool.eligible(wf, j, kind))
                    {
                        Some(&job) => {
                            choice = Some((wf, job));
                            true
                        }
                        None => false,
                    }
                });
                if let (Some(buf), Some((wf, _))) = (&mut self.trace, choice) {
                    buf.push(SchedTrace::Pick {
                        workflow: wf,
                        rank: probes,
                        blocked: 0,
                    });
                }
                choice
            }
        }
    }

    fn assign_batch(
        &mut self,
        pool: &WorkflowPool,
        kind: SlotKind,
        now: SimTime,
        max_tasks: u32,
    ) -> Option<Vec<(WorkflowId, JobId)>> {
        // Naive strategy: fall back to per-slot probes.
        self.index.as_ref()?;
        // One ct-list refresh covers the whole batch: every heartbeat in it
        // shares `now`, so requirements cannot change mid-batch.
        self.refresh_due_workflows(now);
        let mut picks: Vec<(WorkflowId, JobId)> = Vec::new();
        // Tasks claimed by this batch, not yet reflected in `pool` (the
        // driver starts them after we return).
        let mut taken: HashMap<(u64, u32), u32> = HashMap::new();
        // Workflows found task-less during this batch. Sound to cache: at
        // fixed `now` a workflow only *loses* eligible tasks as the batch
        // claims them, so a rejection cannot become acceptance later.
        let mut blocked: HashSet<u64> = HashSet::new();
        while (picks.len() as u32) < max_tasks {
            let records = &self.records;
            let index = self.index.as_mut().expect("checked above");
            let mut choice = None;
            let mut probes = 0u32;
            index.select(&mut |_, wf| {
                probes += 1;
                if blocked.contains(&wf.as_u64()) {
                    return false;
                }
                let record = records[wf.as_u64() as usize]
                    .as_ref()
                    .expect("queued workflow has a record");
                // `pool.eligible` minus the batch's claims: the same test
                // the sequential path would make after starting the
                // already-picked tasks.
                let found = record.plan().job_order().iter().copied().find(|&j| {
                    let claimed = taken.get(&(wf.as_u64(), j.as_u32())).copied().unwrap_or(0);
                    pool.workflow(wf).job(j).eligible_tasks(kind) > claimed
                });
                match found {
                    Some(job) => {
                        choice = Some((wf, job));
                        true
                    }
                    None => {
                        blocked.insert(wf.as_u64());
                        false
                    }
                }
            });
            let Some((wf, job)) = choice else { break };
            *taken.entry((wf.as_u64(), job.as_u32())).or_insert(0) += 1;
            // Commit Algorithm 2's post-assignment bookkeeping now so the
            // next pick in the batch sees the updated lag; the driver must
            // not call `on_task_assigned` again for these picks.
            self.on_task_assigned(pool, wf, job, kind, now);
            if let Some(buf) = &mut self.trace {
                buf.push(SchedTrace::Pick {
                    workflow: wf,
                    rank: probes,
                    blocked: blocked.len() as u32,
                });
            }
            picks.push((wf, job));
        }
        Some(picks)
    }

    fn set_tracing(&mut self, on: bool) {
        self.trace = on.then(Vec::new);
    }

    fn drain_trace(&mut self, out: &mut Vec<SchedTrace>) {
        if let Some(buf) = &mut self.trace {
            out.append(buf);
        }
    }

    fn backend_label(&self) -> &'static str {
        self.config.queue.label()
    }

    fn slack_fraction(&self, pool: &WorkflowPool, wf: WorkflowId, now: SimTime) -> f64 {
        // A workflow behind its plan is deadline-critical regardless of
        // how much wall-clock slack the raw deadline suggests: the plan
        // already prices in the work left, so a positive lag means the
        // remaining window is insufficient at the current pace.
        if let Some(record) = self.progress(wf) {
            if record.lag() > 0 {
                return 0.0;
            }
        }
        woha_sim::spec_slack_fraction(pool, wf, now)
    }

    fn plans_padded(&self) -> u64 {
        self.plans_padded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use woha_model::{JobSpec, SimDuration, WorkflowBuilder, WorkflowSpec};
    use woha_sim::{run_simulation, ClusterConfig, SimConfig};

    fn chain_workflow(name: &str, submit_s: u64, deadline_s: u64) -> WorkflowSpec {
        let mut b = WorkflowBuilder::new(name);
        let a = b.add_job(JobSpec::new(
            "a",
            6,
            3,
            SimDuration::from_secs(10),
            SimDuration::from_secs(10),
        ));
        let z = b.add_job(JobSpec::new(
            "z",
            3,
            1,
            SimDuration::from_secs(10),
            SimDuration::from_secs(10),
        ));
        b.add_dependency(a, z);
        b.submit_at(SimTime::from_secs(submit_s));
        b.relative_deadline(SimDuration::from_secs(deadline_s));
        b.build().unwrap()
    }

    fn run(queue: QueueStrategy, workflows: &[WorkflowSpec]) -> woha_sim::SimReport {
        let cluster = ClusterConfig::uniform(3, 2, 1);
        let mut sched = WohaScheduler::new(WohaConfig {
            queue,
            ..WohaConfig::new(PriorityPolicy::Lpf, 9)
        });
        run_simulation(workflows, &mut sched, &cluster, &SimConfig::default())
    }

    #[test]
    fn completes_single_workflow() {
        for queue in QueueStrategy::ALL {
            let report = run(queue, &[chain_workflow("w", 0, 600)]);
            assert!(report.completed, "{queue:?}");
            assert_eq!(report.deadline_misses(), 0, "{queue:?}");
            assert_eq!(report.invalid_assignments, 0, "{queue:?}");
        }
    }

    #[test]
    fn all_strategies_agree_on_outcomes() {
        let workflows = vec![
            chain_workflow("w1", 0, 300),
            chain_workflow("w2", 10, 250),
            chain_workflow("w3", 20, 200),
        ];
        let dsl = run(QueueStrategy::Dsl, &workflows);
        let bst = run(QueueStrategy::Bst, &workflows);
        let naive = run(QueueStrategy::Naive, &workflows);
        // DSL and BST implement the identical algorithm and must agree
        // exactly; Naive recomputes priorities at slightly different
        // instants, but on this workload it lands on the same outcomes.
        assert_eq!(dsl.outcomes, bst.outcomes);
        assert_eq!(dsl.outcomes, naive.outcomes);
    }

    #[test]
    fn prioritizes_lagging_workflow() {
        // One workflow with a loose deadline, one tight: the tight one's
        // plan demands early progress, so it wins contention even though
        // it was submitted later.
        let loose = chain_workflow("loose", 0, 3_000);
        let tight = chain_workflow("tight", 5, 150);
        let report = run(QueueStrategy::Dsl, &[loose, tight]);
        assert!(
            report.outcome_by_name("tight").unwrap().met_deadline(),
            "tight workflow should meet its deadline: {report:?}"
        );
    }

    #[test]
    fn scheduler_name_includes_policy() {
        let s = WohaScheduler::new(WohaConfig::new(PriorityPolicy::Hlf, 10));
        assert_eq!(s.name(), "WOHA-HLF");
        assert_eq!(s.config().total_slots, 10);
    }

    #[test]
    fn replanning_fires_under_contention() {
        // Two identical two-job chains whose min-feasible plans each
        // assume near-exclusive use of the 4 map slots; sharing makes both
        // fall far behind their plans, so the job-completion checkpoint
        // must trigger a replan.
        let make = |name: &str| {
            let mut b = woha_model::WorkflowBuilder::new(name);
            let a = b.add_job(JobSpec::new(
                "a",
                12,
                0,
                SimDuration::from_secs(60),
                SimDuration::ZERO,
            ));
            let z = b.add_job(JobSpec::new(
                "z",
                12,
                0,
                SimDuration::from_secs(60),
                SimDuration::ZERO,
            ));
            b.add_dependency(a, z);
            b.relative_deadline(SimDuration::from_secs(480));
            b.build().unwrap()
        };
        let workflows = vec![make("w1"), make("w2")];
        let cluster = ClusterConfig::uniform(2, 2, 0);
        let mut sched = WohaScheduler::new(WohaConfig {
            replan: Some(crate::replan::ReplanConfig {
                lag_fraction: 0.1,
                min_interval: SimDuration::from_secs(30),
            }),
            ..WohaConfig::new(PriorityPolicy::Lpf, 4)
        });
        let report = run_simulation(&workflows, &mut sched, &cluster, &SimConfig::default());
        assert!(report.completed);
        assert!(sched.replans() > 0, "replanning should have fired");
    }

    #[test]
    fn replanning_does_not_change_feasible_outcomes() {
        let workflows = vec![
            chain_workflow("w1", 0, 300),
            chain_workflow("w2", 10, 250),
            chain_workflow("w3", 20, 200),
        ];
        let cluster = ClusterConfig::uniform(3, 2, 1);
        let base = {
            let mut s = WohaScheduler::new(WohaConfig::new(PriorityPolicy::Lpf, 9));
            run_simulation(&workflows, &mut s, &cluster, &SimConfig::default())
        };
        let with_replan = {
            let mut s = WohaScheduler::new(WohaConfig {
                replan: Some(crate::replan::ReplanConfig::default()),
                ..WohaConfig::new(PriorityPolicy::Lpf, 9)
            });
            run_simulation(&workflows, &mut s, &cluster, &SimConfig::default())
        };
        assert_eq!(base.deadline_misses(), 0);
        assert_eq!(with_replan.deadline_misses(), 0);
    }

    #[test]
    fn node_crash_rolls_back_progress() {
        use woha_sim::{FaultConfig, ScriptedFault};
        // Node 2 dies at t=5 with two of job a's maps running on it; the
        // rolled-back assignments must be mirrored in ρ (and any lost map
        // outputs, had there been completed maps on the node).
        let workflows = vec![chain_workflow("w", 0, 600)];
        let cluster = ClusterConfig::uniform(3, 2, 1).with_faults(FaultConfig::scripted(vec![
            ScriptedFault::one(
                woha_model::NodeId::new(2),
                SimTime::from_secs(5),
                Some(SimTime::from_secs(60)),
            ),
        ]));
        let mut sched = WohaScheduler::new(WohaConfig::new(PriorityPolicy::Lpf, 9));
        let report = run_simulation(&workflows, &mut sched, &cluster, &SimConfig::default());
        assert!(report.completed);
        assert_eq!(report.node_failures, 1);
        assert!(report.tasks_requeued > 0);
        assert!(sched.rho_rollbacks() > 0, "hooks should have fired");
        assert_eq!(
            sched.rho_rollbacks(),
            report.tasks_requeued + report.map_outputs_lost
        );
        assert_eq!(report.deadline_misses(), 0);
    }

    #[test]
    fn node_loss_is_a_replanning_checkpoint() {
        // Submit a workflow, let it idle far past its plan, then deliver a
        // node-loss notification: the on_node_lost checkpoint must replan
        // without waiting for a job completion.
        let mut pool = woha_sim::WorkflowPool::new();
        let wf = pool.register(chain_workflow("w", 0, 120));
        let mut sched = WohaScheduler::new(WohaConfig {
            replan: Some(crate::replan::ReplanConfig {
                lag_fraction: 0.1,
                min_interval: SimDuration::from_secs(1),
            }),
            ..WohaConfig::new(PriorityPolicy::Lpf, 9)
        });
        sched.on_workflow_submitted(&pool, wf, SimTime::ZERO);
        let now = SimTime::from_secs(60);
        let _ = sched.assign_task(&pool, SlotKind::Map, now); // refresh lags
        assert_eq!(sched.replans(), 0);
        sched.on_node_lost(&pool, woha_model::NodeId::new(0), now);
        assert!(sched.replans() > 0, "node loss should trigger a replan");
    }

    #[test]
    fn scheduler_state_survives_snapshot_restore() {
        for queue in QueueStrategy::ALL {
            let mut pool = woha_sim::WorkflowPool::new();
            let wf = pool.register(chain_workflow("w", 0, 300));
            let make = || {
                WohaScheduler::new(WohaConfig {
                    queue,
                    ..WohaConfig::new(PriorityPolicy::Lpf, 9)
                })
            };
            let mut sched = make();
            sched.on_workflow_submitted(&pool, wf, SimTime::ZERO);
            let job = JobId::new(0);
            pool.workflow_mut(wf).begin_submitting(job);
            pool.workflow_mut(wf).activate(job, SimTime::from_secs(1));
            sched.on_job_activated(&pool, wf, job, SimTime::from_secs(1));
            pool.workflow_mut(wf).start_task(job, SlotKind::Map);
            sched.on_task_assigned(&pool, wf, job, SlotKind::Map, SimTime::from_secs(2));

            let mut restored = make();
            restored.restore_state(&pool, &sched.snapshot_state());
            assert_eq!(restored.progress(wf), sched.progress(wf), "{queue:?}");
            assert_eq!(restored.replans(), sched.replans(), "{queue:?}");
            // The rebuilt index agrees with the original on the next pick.
            let now = SimTime::from_secs(3);
            assert_eq!(
                restored.assign_task(&pool, SlotKind::Map, now),
                sched.assign_task(&pool, SlotKind::Map, now),
                "{queue:?}"
            );
        }
    }

    #[test]
    fn progress_records_drop_on_completion() {
        let workflows = vec![chain_workflow("w", 0, 600)];
        let cluster = ClusterConfig::uniform(3, 2, 1);
        let mut sched = WohaScheduler::new(WohaConfig::new(PriorityPolicy::Hlf, 9));
        let report = run_simulation(&workflows, &mut sched, &cluster, &SimConfig::default());
        assert!(report.completed);
        assert!(sched.progress(WorkflowId::new(0)).is_none());
    }
}
