//! An ordered-map skip list with O(1) access to the head element.
//!
//! The Double Skip List of the paper (§IV-B) needs two ordered structures
//! whose dominant operations are *"read/remove the smallest element"* and
//! *"re-insert near the smallest element"* — which a balanced search tree
//! serves in O(log n) but a skip list serves in O(1), because the
//! bottom-level list starts at the minimum and the head pointers are the
//! minimum's predecessors at every level. Arbitrary inserts and removals
//! remain O(log n).
//!
//! The paper cites the *deterministic* skip list of Munro, Papadakis and
//! Sedgewick for worst-case bounds. This implementation keeps the
//! determinism (identical operation sequences produce identical structures
//! on every run — node levels come from a splitmix64 hash of an insertion
//! counter, not a random source) with the classic expected O(log n)
//! bounds, which is what the Fig 13(a) throughput comparison exercises.
//!
//! # Representation
//!
//! Nodes live in parallel flat arrays (`keys`, `values`, `levels`, and a
//! stride-`MAX_LEVEL` `forward` array) indexed by `u32`, recycled through
//! a free list. A freed slot keeps a default key/value until reuse; it is
//! unreachable from any live forward pointer, so it is never read. This
//! keeps traversal to one predictable indexed load per hop with no
//! `Option` discriminants and no per-node allocation — the skip list is
//! safe Rust with no `unsafe`.

use std::fmt;

const MAX_LEVEL: usize = 16;
const NIL: u32 = u32::MAX;

/// An ordered map on `K: Ord` with O(1) head access/removal, O(1) head
/// insertion, O(log n) expected arbitrary insert/remove, and
/// deterministic structure.
///
/// Keys must be unique; inserting an existing key replaces its value.
/// Keys and values additionally need `Default` for the removal operations
/// (removed slots are reset in place); the index keys used by the WOHA
/// scheduler are plain integer tuples, which satisfy this trivially.
///
/// # Examples
///
/// ```
/// use woha_core::skiplist::SkipList;
/// let mut list = SkipList::new();
/// list.insert(3, "c");
/// list.insert(1, "a");
/// list.insert(2, "b");
/// assert_eq!(list.first(), Some((&1, &"a")));
/// assert_eq!(list.pop_first(), Some((1, "a")));
/// assert_eq!(list.remove(&3), Some("c"));
/// assert_eq!(list.len(), 1);
/// ```
#[derive(Clone)]
pub struct SkipList<K, V> {
    keys: Vec<K>,
    values: Vec<V>,
    /// Level of each node (1..=MAX_LEVEL); stale for freed slots.
    levels: Vec<u8>,
    /// Flattened forward pointers: node `i` level `l` at `i * MAX_LEVEL + l`.
    forward: Vec<u32>,
    free: Vec<u32>,
    /// head[l] = first node at level l.
    head: [u32; MAX_LEVEL],
    /// Highest level currently in use.
    level: usize,
    len: usize,
    counter: u64,
}

impl<K: Ord, V> Default for SkipList<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, V> SkipList<K, V> {
    /// Creates an empty list.
    pub fn new() -> Self {
        SkipList {
            keys: Vec::new(),
            values: Vec::new(),
            levels: Vec::new(),
            forward: Vec::new(),
            free: Vec::new(),
            head: [NIL; MAX_LEVEL],
            level: 1,
            len: 0,
            counter: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Deterministic node level: a splitmix64 hash of the insertion counter
    /// drives a geometric(1/2) level choice.
    fn next_level(&mut self) -> usize {
        let mut h = self.counter.wrapping_add(0x9E37_79B9_7F4A_7C15);
        self.counter += 1;
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        ((h.trailing_ones() as usize) + 1).min(MAX_LEVEL)
    }

    #[inline]
    fn next_of(&self, node: u32, level: usize) -> u32 {
        self.forward[node as usize * MAX_LEVEL + level]
    }

    #[inline]
    fn next_at(&self, pred: u32, level: usize) -> u32 {
        if pred == NIL {
            self.head[level]
        } else {
            self.next_of(pred, level)
        }
    }

    #[inline]
    fn set_next(&mut self, pred: u32, level: usize, target: u32) {
        if pred == NIL {
            self.head[level] = target;
        } else {
            self.forward[pred as usize * MAX_LEVEL + level] = target;
        }
    }

    /// For each level `l`, the index of the last node strictly before
    /// `key` (or `NIL` meaning "the head pointer itself").
    fn find_predecessors(&self, key: &K) -> [u32; MAX_LEVEL] {
        let mut preds = [NIL; MAX_LEVEL];
        let mut current = NIL;
        for l in (0..self.level).rev() {
            loop {
                let next = self.next_at(current, l);
                if next != NIL && self.keys[next as usize] < *key {
                    current = next;
                } else {
                    break;
                }
            }
            preds[l] = current;
        }
        preds
    }

    /// Allocates a slot for `(key, value)` and returns its index. The
    /// node's forward pointers are left for the caller to fill.
    fn alloc(&mut self, key: K, value: V, level: usize) -> u32 {
        debug_assert!((1..=MAX_LEVEL).contains(&level));
        match self.free.pop() {
            Some(idx) => {
                self.keys[idx as usize] = key;
                self.values[idx as usize] = value;
                self.levels[idx as usize] = level as u8;
                idx
            }
            None => {
                let idx = self.keys.len() as u32;
                self.keys.push(key);
                self.values.push(value);
                self.levels.push(level as u8);
                self.forward.extend(std::iter::repeat_n(NIL, MAX_LEVEL));
                idx
            }
        }
    }

    /// Inserts `key -> value`. Returns the previous value if the key was
    /// already present.
    ///
    /// Inserting a key smaller than the current minimum is O(1) — together
    /// with the O(1) head removal this is what lets the Double Skip List
    /// outpace balanced trees on head-dominated workloads.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        // O(1) fast path: the new key becomes the head.
        let becomes_head = match self.head[0] {
            NIL => true,
            first => key < self.keys[first as usize],
        };
        if becomes_head {
            let level = self.next_level();
            if level > self.level {
                self.level = level;
            }
            let idx = self.alloc(key, value, level);
            for l in 0..level {
                self.forward[idx as usize * MAX_LEVEL + l] = self.head[l];
                self.head[l] = idx;
            }
            self.len += 1;
            return None;
        }
        let preds = self.find_predecessors(&key);
        let candidate = self.next_at(preds[0], 0);
        if candidate != NIL && self.keys[candidate as usize] == key {
            return Some(std::mem::replace(
                &mut self.values[candidate as usize],
                value,
            ));
        }
        let level = self.next_level();
        if level > self.level {
            self.level = level;
        }
        let idx = self.alloc(key, value, level);
        for (l, &pred) in preds.iter().enumerate().take(level) {
            let next = self.next_at(pred, l);
            self.forward[idx as usize * MAX_LEVEL + l] = next;
            self.set_next(pred, l, idx);
        }
        self.len += 1;
        None
    }

    fn shrink_level(&mut self) {
        while self.level > 1 && self.head[self.level - 1] == NIL {
            self.level -= 1;
        }
    }

    /// Removes `key`, returning its value if present.
    ///
    /// Removing the current head is O(1) (the common case for the WOHA
    /// scheduler's ct and priority lists); other removals are O(log n).
    pub fn remove(&mut self, key: &K) -> Option<V>
    where
        K: Default,
        V: Default,
    {
        // O(1) fast path via pop_first when the head is the target.
        let head = self.head[0];
        if head != NIL && self.keys[head as usize] == *key {
            return self.pop_first().map(|(_, v)| v);
        }
        let preds = self.find_predecessors(key);
        let target = self.next_at(preds[0], 0);
        if target == NIL || self.keys[target as usize] != *key {
            return None;
        }
        let node_level = usize::from(self.levels[target as usize]);
        for (l, &pred) in preds.iter().enumerate().take(node_level) {
            debug_assert_eq!(self.next_at(pred, l), target);
            let after = self.next_of(target, l);
            self.set_next(pred, l, after);
        }
        self.free.push(target);
        self.len -= 1;
        self.shrink_level();
        self.keys[target as usize] = K::default();
        Some(std::mem::take(&mut self.values[target as usize]))
    }

    /// The smallest entry — O(1).
    pub fn first(&self) -> Option<(&K, &V)> {
        match self.head[0] {
            NIL => None,
            idx => Some((&self.keys[idx as usize], &self.values[idx as usize])),
        }
    }

    /// Removes and returns the smallest entry — O(1) (the predecessor of
    /// the head is the head pointer array at every level).
    pub fn pop_first(&mut self) -> Option<(K, V)>
    where
        K: Default,
        V: Default,
    {
        let idx = self.head[0];
        if idx == NIL {
            return None;
        }
        let node_level = usize::from(self.levels[idx as usize]);
        for l in 0..node_level {
            debug_assert_eq!(self.head[l], idx);
            self.head[l] = self.next_of(idx, l);
        }
        self.free.push(idx);
        self.len -= 1;
        self.shrink_level();
        let key = std::mem::take(&mut self.keys[idx as usize]);
        let value = std::mem::take(&mut self.values[idx as usize]);
        Some((key, value))
    }

    /// The value for `key`, if present — O(log n).
    pub fn get(&self, key: &K) -> Option<&V> {
        let preds = self.find_predecessors(key);
        let idx = self.next_at(preds[0], 0);
        if idx != NIL && self.keys[idx as usize] == *key {
            Some(&self.values[idx as usize])
        } else {
            None
        }
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Iterates entries in ascending key order.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter {
            list: self,
            current: self.head[0],
        }
    }

    /// Capacity of the node arena (for tests of slot reuse).
    #[cfg(test)]
    fn arena_len(&self) -> usize {
        self.keys.len()
    }
}

/// Ascending-order iterator over a [`SkipList`]; see [`SkipList::iter`].
pub struct Iter<'a, K, V> {
    list: &'a SkipList<K, V>,
    current: u32,
}

impl<'a, K: Ord, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.current == NIL {
            return None;
        }
        let idx = self.current as usize;
        self.current = self.list.next_of(self.current, 0);
        Some((&self.list.keys[idx], &self.list.values[idx]))
    }
}

impl<K: Ord + fmt::Debug, V: fmt::Debug> fmt::Debug for SkipList<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_remove() {
        let mut l = SkipList::new();
        assert!(l.is_empty());
        assert_eq!(l.insert(5, "five"), None);
        assert_eq!(l.insert(5, "FIVE"), Some("five"));
        assert_eq!(l.get(&5), Some(&"FIVE"));
        assert!(l.contains_key(&5));
        assert!(!l.contains_key(&6));
        assert_eq!(l.remove(&5), Some("FIVE"));
        assert_eq!(l.remove(&5), None);
        assert!(l.is_empty());
    }

    #[test]
    fn orders_ascending() {
        let mut l = SkipList::new();
        for k in [9, 3, 7, 1, 5] {
            l.insert(k, k * 10);
        }
        let keys: Vec<i32> = l.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 3, 5, 7, 9]);
        assert_eq!(l.first(), Some((&1, &10)));
    }

    #[test]
    fn pop_first_drains_in_order() {
        let mut l = SkipList::new();
        for k in (0..100).rev() {
            l.insert(k, k);
        }
        let mut popped = Vec::new();
        while let Some((k, _)) = l.pop_first() {
            popped.push(k);
        }
        assert_eq!(popped, (0..100).collect::<Vec<i32>>());
        assert!(l.pop_first().is_none());
    }

    #[test]
    fn head_churn_stays_consistent() {
        // The WOHA access pattern: remove the head, re-insert it slightly
        // shifted, thousands of times.
        let mut l: SkipList<(i64, u64), u64> = SkipList::new();
        for i in 0..500u64 {
            l.insert((i as i64 * 10, i), i);
        }
        let mut key = *l.first().unwrap().0;
        for step in 0..10_000 {
            let v = l.remove(&key).expect("head exists");
            key.0 += 1;
            l.insert(key, v);
            assert_eq!(l.len(), 500, "step {step}");
        }
        let keys: Vec<(i64, u64)> = l.iter().map(|(k, _)| *k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn matches_btreemap_under_mixed_ops() {
        let mut l: SkipList<u64, u64> = SkipList::new();
        let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
        let mut state = 12345u64;
        let mut rand = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for step in 0..5_000 {
            let op = rand() % 4;
            let key = rand() % 200;
            match op {
                0 | 1 => {
                    assert_eq!(l.insert(key, step), reference.insert(key, step));
                }
                2 => {
                    assert_eq!(l.remove(&key), reference.remove(&key));
                }
                _ => {
                    assert_eq!(l.pop_first(), reference.pop_first());
                }
            }
            assert_eq!(l.len(), reference.len());
            assert_eq!(
                l.first().map(|(k, v)| (*k, *v)),
                reference.first_key_value().map(|(k, v)| (*k, *v))
            );
        }
        let ours: Vec<(u64, u64)> = l.iter().map(|(k, v)| (*k, *v)).collect();
        let theirs: Vec<(u64, u64)> = reference.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(ours, theirs);
    }

    #[test]
    fn structure_is_deterministic() {
        let build = || {
            let mut l = SkipList::new();
            for k in [5, 2, 8, 1, 9, 3] {
                l.insert(k, 0u8);
            }
            l.remove(&8);
            format!("{l:?}")
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn arena_reuses_slots() {
        let mut l = SkipList::new();
        for k in 0..1_000 {
            l.insert(k, 0u8);
        }
        for k in 0..1_000 {
            assert!(l.remove(&k).is_some());
        }
        for k in 0..1_000 {
            l.insert(k, 0u8);
        }
        assert!(l.arena_len() <= 1_001, "arena grew to {}", l.arena_len());
    }

    #[test]
    fn large_list_stays_consistent() {
        let mut l = SkipList::new();
        for k in 0..10_000u32 {
            l.insert(k.reverse_bits(), k);
        }
        assert_eq!(l.len(), 10_000);
        let keys: Vec<u32> = l.iter().map(|(k, _)| *k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn debug_format_nonempty() {
        let mut l = SkipList::new();
        l.insert(1, "x");
        assert_eq!(format!("{l:?}"), "{1: \"x\"}");
        let empty: SkipList<i32, i32> = SkipList::default();
        assert_eq!(format!("{empty:?}"), "{}");
    }
}
