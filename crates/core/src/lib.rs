//! WOHA: deadline-aware Map-Reduce workflow scheduling (ICDCS 2014).
//!
//! This crate implements the paper's contribution end to end:
//!
//! - **Client side** — intra-workflow job priorities ([`priority`]: HLF,
//!   LPF, MPF) and the Scheduling Plan Generator ([`plangen`]: Algorithm 1
//!   plus the resource-cap binary search), producing compact
//!   [`plan::SchedulingPlan`]s.
//! - **Master side** — the progress-based Workflow Scheduler ([`woha`]:
//!   Algorithm 2) over the Double Skip List ([`index`], [`skiplist`]),
//!   with BST and naive queue strategies for the Fig 13(a) comparison.
//! - **Baselines** — the ported Oozie+FIFO, Oozie+Fair, and EDF workflow
//!   schedulers ([`baseline`]).
//! - **Extensions** — demand-bound admission control ([`admission`]),
//!   which the paper leaves open.
//!
//! Everything plugs into the `woha-sim` cluster simulator through its
//! [`woha_sim::WorkflowScheduler`] trait, mirroring how the real WOHA
//! replaces the Hadoop JobTracker's task scheduler.
//!
//! # Quick example
//!
//! ```
//! use woha_core::{PriorityPolicy, WohaConfig, WohaScheduler};
//! use woha_sim::{run_simulation, ClusterConfig, SimConfig};
//! use woha_model::{JobSpec, SimDuration, WorkflowBuilder};
//!
//! let mut b = WorkflowBuilder::new("etl");
//! let extract = b.add_job(JobSpec::new("extract", 8, 2,
//!     SimDuration::from_secs(30), SimDuration::from_secs(60)));
//! let report = b.add_job(JobSpec::new("report", 4, 1,
//!     SimDuration::from_secs(20), SimDuration::from_secs(120)));
//! b.add_dependency(extract, report);
//! b.relative_deadline(SimDuration::from_mins(20));
//!
//! let cluster = ClusterConfig::uniform(4, 2, 1);
//! let mut scheduler = WohaScheduler::new(WohaConfig::new(PriorityPolicy::Lpf, 12));
//! let result = run_simulation(&[b.build().unwrap()], &mut scheduler,
//!     &cluster, &SimConfig::default());
//! assert_eq!(result.deadline_misses(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod baseline;
pub mod index;
pub mod pheap;
pub mod plan;
pub mod plangen;
pub mod priority;
pub mod progress;
pub mod replan;
pub mod skiplist;
pub mod tenant;
pub mod woha;

pub use admission::{AdmissionController, RejectReason};
pub use baseline::{EdfScheduler, FairScheduler, FifoScheduler};
pub use index::{BTreeIndex, BstIndex, DslIndex, PriorityIndex, WorkflowIndex};
pub use pheap::{PairingHeap, PairingIndex};
pub use plan::{ProgressRequirement, SchedulingPlan};
pub use plangen::{
    generate_plan, generate_plan_with_budget, generate_reqs, padded_budget, rework_fraction,
    CapMode, PadConfig,
};
pub use priority::{JobPriorities, PriorityPolicy};
pub use progress::WorkflowProgress;
pub use replan::{remaining_workflow, ReplanConfig};
pub use skiplist::SkipList;
pub use tenant::{tenant_of, MultiTenantGate, OverloadPolicy, TenantSpec};
pub use woha::{QueueStrategy, WohaConfig, WohaScheduler};
